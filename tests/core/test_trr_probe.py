"""Tests for the Section 7 U-TRR probe (black-box TRR discovery)."""

import pytest

from repro.core.trr_probe import TrrProbe


@pytest.fixture(scope="module")
def findings():
    """Run the full probe once against a fresh Chip 0 device."""
    from repro.bender.host import BenderSession
    from repro.chips.profiles import make_chip

    chip = make_chip(0)
    session = BenderSession(chip.make_device(),
                            mapping=chip.row_mapping())
    return TrrProbe(session).uncover()


class TestUncoveredMechanism:
    def test_obsv24_cadence_is_17(self, findings):
        assert findings.cadence == 17

    def test_obsv25_both_neighbors_refreshed(self, findings):
        assert findings.refreshes_both_neighbors is True

    def test_obsv26_first_activation_detected(self, findings):
        assert findings.first_activation_detected is True

    def test_sampler_capacity_matches_fig14(self, findings):
        """2 side-channel writes + 2 escape dummies = capacity 4."""
        assert findings.cam_escape_dummies == 2

    def test_obsv27_count_rule(self, findings):
        assert findings.count_rule_at_half is True
        assert findings.count_rule_below_half is False


class TestProbeMechanics:
    @pytest.fixture()
    def probe(self, chip0):
        from repro.bender.host import BenderSession

        session = BenderSession(chip0.make_device(),
                                mapping=chip0.row_mapping())
        return TrrProbe(session)

    def test_find_probe_site(self, probe):
        site = probe.find_probe_site()
        assert site.victims[0].row == site.aggressor.row - 1
        assert site.victims[1].row == site.aggressor.row + 1
        assert site.retention_ns >= 3 * 64.0e6

    def test_ref_counter_tracks(self, probe):
        probe.issue_refs(5)
        assert probe.refs_issued == 5

    def test_cycle_without_detection_leaves_flips(self, probe):
        """If nothing triggers TRR, the side-channel rows decay."""
        site = probe.find_probe_site()
        refreshed = probe.cycle(site, [], refs_after_acts=1)
        assert refreshed == (False, False)

    def test_probe_on_trr_free_chip_finds_nothing(self, chip5):
        """Chips without the mechanism never refresh the side channel."""
        from repro.bender.host import BenderSession

        session = BenderSession(chip5.make_device(),
                                mapping=chip5.row_mapping())
        probe = TrrProbe(session)
        site = probe.find_probe_site()
        with pytest.raises(LookupError):
            probe.discover_cadence(site, max_period=20)
