"""Tests for the high-level characterization campaign."""

import pytest

from repro.core.campaign import characterize_chip


@pytest.fixture(scope="module")
def report(chip0_module):
    return characterize_chip(chip0_module, scale=0.02)


@pytest.fixture(scope="module")
def chip0_module():
    from repro.chips.profiles import make_chip

    return make_chip(0)


class TestReportContent:
    def test_covers_all_channels(self, report):
        assert sorted(report.channels) == list(range(8))

    def test_ranking_consistent_with_means(self, report):
        bers = [report.channels[c][0] for c in report.channel_ranking]
        assert bers == sorted(bers, reverse=True)

    def test_chip0_worst_pair(self, report):
        """CH0/CH7 lead Chip 0's ranking (Obsv. 8)."""
        assert set(report.channel_ranking[:2]) == {0, 7}

    def test_chip_aggregates(self, report):
        assert report.chip_mean_ber == pytest.approx(
            sum(b for b, __ in report.channels.values()) / 8)
        assert report.chip_min_hc_first == min(
            hc for __, hc in report.channels.values())

    def test_subarray_resilience_visible(self, report):
        assert report.subarray_resilience < 0.8

    def test_rowpress_series_monotone(self, report):
        values = [report.rowpress_hc[t]
                  for t in sorted(report.rowpress_hc)]
        assert all(b <= a for a, b in zip(values, values[1:]))
        assert report.rowpress_hc[16.0e6] == pytest.approx(1.0, abs=0.1)

    def test_render_contains_key_lines(self, report):
        text = report.render()
        assert "Chip 0 characterization" in text
        assert "Channel ranking" in text
        assert "RowPress HC_first" in text

    def test_invalid_scale_rejected(self, chip0_module):
        with pytest.raises(ValueError):
            characterize_chip(chip0_module, scale=0.0)
