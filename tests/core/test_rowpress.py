"""Tests for the Section 6 RowPress studies."""

import numpy as np
import pytest

from repro.core.rowpress import (ROWPRESS_BER_T_ONS,
                                 ROWPRESS_HCFIRST_T_ONS,
                                 measure_scrubbed_row_ber,
                                 rowpress_ber_study,
                                 rowpress_hcfirst_study)
from repro.dram.geometry import RowAddress


@pytest.fixture(scope="module")
def ber_study():
    from repro.chips.profiles import make_chip

    return rowpress_ber_study([make_chip(0), make_chip(3)],
                              rows_per_segment=32)


@pytest.fixture(scope="module")
def hc_study():
    from repro.chips.profiles import make_chip

    return rowpress_hcfirst_study([make_chip(0), make_chip(3)],
                                  rows_per_channel=64)


class TestBerStudy:
    def test_obsv21_monotone_increase(self, ber_study):
        means = [ber_study.mean_at(t) for t in ber_study.t_ons]
        assert all(b >= a for a, b in zip(means, means[1:]))

    def test_converges_to_polarity_cap(self, ber_study):
        assert ber_study.mean_at(35.1e3) == pytest.approx(0.5, abs=0.05)

    def test_trefi_value_near_paper(self, ber_study):
        """Paper: 31.00% mean BER at t_AggON = tREFI."""
        assert ber_study.mean_at(3.9e3) == pytest.approx(0.31, abs=0.06)

    def test_obsv22_ranks_stable_for_heterogeneous_chip(self, ber_study):
        """Chip 3's channels keep their BER ordering across on-times."""
        assert ber_study.channel_rank_stability("Chip 3") > -0.3

    def test_series_shape(self, ber_study):
        series = ber_study.series()
        assert [t for t, __ in series] == list(ROWPRESS_BER_T_ONS)


class TestHcFirstStudy:
    def test_obsv23_hc_decreases_with_t_on(self, hc_study):
        means = [hc_study.mean_at(t) for t in hc_study.t_ons]
        assert all(b <= a for a, b in zip(means, means[1:]))

    def test_reduction_factor_is_paper_anchor(self, hc_study):
        """222.57x at 35.1 us by construction of the amplification."""
        assert hc_study.reduction_factor(35.1e3) == pytest.approx(
            222.57, rel=0.02)

    def test_hc_first_of_one_at_16ms(self, hc_study):
        assert hc_study.mean_at(16.0e6) == pytest.approx(1.0, abs=0.01)
        assert hc_study.min_at(16.0e6) == 1.0

    def test_included_rows_positive(self, hc_study):
        assert all(count > 0 for count in hc_study.included_rows.values())

    def test_included_rows_not_all(self, hc_study):
        """Some rows cannot show a bitflip within the refresh window at
        the baseline on-time (the paper's grey boxes are below 384)."""
        total_tested = 64 * 3
        assert any(count < total_tested
                   for count in hc_study.included_rows.values())


class TestScrubbing:
    def test_scrubbed_ber_removes_retention_flips(self, chip0, session):
        """Footnote 6: retention flips are profiled and removed."""
        from repro.core.patterns import CHECKERED0

        # Pick a victim whose retention time is shorter than the ~1.2 s
        # experiment so retention flips demonstrably contaminate it.
        victim = None
        for row in range(5000, 5400):
            candidate = RowAddress(0, 0, 0, row)
            if chip0.retention.row_retention_ns(candidate) < 0.9e9:
                victim = candidate
                break
        assert victim is not None
        result = measure_scrubbed_row_ber(
            session, victim, CHECKERED0, hammer_count=150_000,
            t_on=3.9e3)
        # The run lasts ~1.2 s, far beyond the 32 ms window: retention
        # failures must exist and be subtracted.
        assert result.retention_positions.size > 0
        assert result.scrubbed_bitflips <= result.raw.bitflips
        # Scrubbed BER reflects read disturbance: at amplification 55 and
        # 150K hammers virtually every weak cell flips.
        population = chip0.cell_population(victim, "Checkered0")
        expected = population.ber(150_000 * 55.09)
        assert result.scrubbed_ber == pytest.approx(expected, abs=0.05)
