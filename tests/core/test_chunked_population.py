"""Chunk-streamed cell evaluation is bit-identical to all-at-once.

The full-geometry contract (``repro.dram.cells``): every population
kernel is elementwise with per-combo seed-chain prefixes, so evaluating
a sweep in whole-combo chunks — at *any* ``HBMSIM_CELLS_CHUNK`` bound,
spilled to an mmap working set or not — produces the same bytes as one
monolithic batch.  These tests pin that equivalence with hypothesis
over random sweep shapes and chunk bounds, plus the strict-parse
behaviour of both knobs.
"""

import os
import warnings
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chips.profiles import make_chip
from repro.core import analytic
from repro.dram import cells
from repro.dram.batch import RowBatchProfile
from repro.dram.cells import (DEFAULT_CHUNK_ELEMS, allocate_cells,
                              cells_chunk_elems, cells_mmap_enabled,
                              chunk_combo_blocks)
from repro.dram.geometry import RowAddress

CHIP = make_chip(0)
#: A 6-combo sweep slice (two channels x three banks) of modest rows —
#: large enough to split into many chunks at small bounds, small enough
#: for hypothesis to re-evaluate repeatedly.
COMBOS = [(0, 0, 0), (0, 0, 5), (0, 0, 11),
          (1, 1, 0), (1, 1, 5), (1, 1, 11)]
ROWS = analytic.stratified_rows(CHIP.geometry.rows, 48)


@contextmanager
def chunk_env(value):
    """Temporarily pin ``HBMSIM_CELLS_CHUNK`` (None = unset)."""
    saved = os.environ.get(cells._CHUNK_ENV)
    try:
        if value is None:
            os.environ.pop(cells._CHUNK_ENV, None)
        else:
            os.environ[cells._CHUNK_ENV] = str(value)
        yield
    finally:
        if saved is None:
            os.environ.pop(cells._CHUNK_ENV, None)
        else:
            os.environ[cells._CHUNK_ENV] = saved


@contextmanager
def mmap_env(value):
    """Temporarily pin ``HBMSIM_CELLS_MMAP``."""
    saved = os.environ.get(cells._MMAP_ENV)
    try:
        os.environ[cells._MMAP_ENV] = value
        yield
    finally:
        if saved is None:
            os.environ.pop(cells._MMAP_ENV, None)
        else:
            os.environ[cells._MMAP_ENV] = saved


class TestChunkComboBlocks:
    @given(n_combos=st.integers(0, 64), rows=st.integers(1, 512),
           chunk=st.integers(1, 4096))
    @settings(max_examples=60, deadline=None)
    def test_blocks_partition_the_range(self, n_combos, rows, chunk):
        blocks = chunk_combo_blocks(n_combos, rows, chunk)
        if n_combos == 0:
            assert blocks == []
            return
        # Contiguous, ordered, covering exactly [0, n_combos).
        assert blocks[0][0] == 0
        assert blocks[-1][1] == n_combos
        for (_, stop), (start, _) in zip(blocks, blocks[1:]):
            assert stop == start
        per_chunk = max(1, chunk // rows)
        assert all(1 <= stop - start <= per_chunk
                   for start, stop in blocks)

    def test_oversized_combo_still_evaluates(self):
        # One combo larger than the bound: the bound is a target, not
        # a hard split of seed-chain blocks.
        assert chunk_combo_blocks(3, 1000, 10) == [(0, 1), (1, 2),
                                                   (2, 3)]

    def test_bad_rows_per_combo_rejected(self):
        with pytest.raises(ValueError):
            chunk_combo_blocks(4, 0, 100)


class TestChunkKnob:
    @pytest.fixture(autouse=True)
    def _fresh_warn_state(self, monkeypatch):
        monkeypatch.setattr(cells, "_WARNED_VALUES", set())

    def test_default_and_blank(self):
        with chunk_env(None):
            assert cells_chunk_elems() == DEFAULT_CHUNK_ELEMS
        with chunk_env("  "):
            assert cells_chunk_elems() == DEFAULT_CHUNK_ELEMS

    def test_positive_value_honoured(self):
        with chunk_env(4096):
            assert cells_chunk_elems() == 4096

    @pytest.mark.parametrize("value", ["0", "-1", "-4096"])
    def test_nonpositive_rejected_loudly(self, value):
        with chunk_env(value):
            with pytest.raises(ValueError):
                cells_chunk_elems()

    def test_unparsable_warns_once_then_defaults(self):
        with chunk_env("a-lot"):
            with pytest.warns(RuntimeWarning, match="a-lot"):
                assert cells_chunk_elems() == DEFAULT_CHUNK_ELEMS
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert cells_chunk_elems() == DEFAULT_CHUNK_ELEMS


class TestMmapKnob:
    @pytest.fixture(autouse=True)
    def _fresh_warn_state(self, monkeypatch):
        monkeypatch.setattr(cells, "_WARNED_VALUES", set())

    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_on_values(self, value):
        with mmap_env(value):
            assert cells_mmap_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "No", "off", ""])
    def test_off_values(self, value):
        with mmap_env(value):
            assert not cells_mmap_enabled()

    def test_unrecognized_warns_once_and_stays_off(self):
        with mmap_env("mmap-please"):
            with pytest.warns(RuntimeWarning, match="mmap-please"):
                assert not cells_mmap_enabled()
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert not cells_mmap_enabled()


class TestAllocateCells:
    def test_anonymous_by_default(self):
        with mmap_env("0"):
            array = allocate_cells((4, 8), float)
        assert type(array) is np.ndarray
        assert array.shape == (4, 8) and array.dtype == np.float64

    def test_mmap_spill_round_trips(self):
        with mmap_env("1"):
            array = allocate_cells((16, 32), float)
        assert isinstance(array, np.memmap)
        values = np.arange(16 * 32, dtype=float).reshape(16, 32)
        array[:] = values
        assert np.array_equal(np.asarray(array), values)


def _clear_population_caches():
    analytic._COMBO_CACHE.clear()
    from repro.chips import vectorized
    vectorized._COMBO_BASE_CACHE.clear()


class TestChunkedEquivalence:
    """Chunked == monolithic, bit for bit, for every streamed engine."""

    @pytest.fixture(scope="class")
    def whole(self):
        with chunk_env(10**9):
            _clear_population_caches()
            hc = analytic.wcdp_hc_first_multi(CHIP, COMBOS, ROWS)
            ber = analytic.wcdp_ber_multi(CHIP, COMBOS, ROWS,
                                          sampled=False)
            sampled = analytic.wcdp_ber_multi(
                CHIP, COMBOS, ROWS,
                rng=np.random.default_rng(1234))
            matrix = analytic.combo_ber_matrix(CHIP, COMBOS, ROWS,
                                               "Checkered0", 300_000.0)
        _clear_population_caches()
        return hc, ber, sampled, matrix

    @given(chunk=st.integers(1, 2 * len(ROWS) * len(COMBOS)))
    @settings(max_examples=12, deadline=None)
    def test_wcdp_hc_first_multi(self, whole, chunk):
        with chunk_env(chunk):
            _clear_population_caches()
            chunked = analytic.wcdp_hc_first_multi(CHIP, COMBOS, ROWS)
        for name, expected in whole[0].items():
            assert np.array_equal(np.asarray(chunked[name]),
                                  np.asarray(expected)), name

    @given(chunk=st.integers(1, 2 * len(ROWS) * len(COMBOS)))
    @settings(max_examples=8, deadline=None)
    def test_wcdp_ber_multi_closed_form(self, whole, chunk):
        with chunk_env(chunk):
            _clear_population_caches()
            chunked = analytic.wcdp_ber_multi(CHIP, COMBOS, ROWS,
                                              sampled=False)
        for name, expected in whole[1].items():
            assert np.array_equal(np.asarray(chunked[name]),
                                  np.asarray(expected)), name

    @given(chunk=st.integers(1, 2 * len(ROWS) * len(COMBOS)))
    @settings(max_examples=8, deadline=None)
    def test_wcdp_ber_multi_sampled_rng_order(self, whole, chunk):
        # The binomial sampling consumes the generator in scalar order
        # (combo-major, pattern-minor) regardless of chunking, so a
        # seeded study draws the same variates at any chunk size.
        with chunk_env(chunk):
            _clear_population_caches()
            chunked = analytic.wcdp_ber_multi(
                CHIP, COMBOS, ROWS, rng=np.random.default_rng(1234))
        for name, expected in whole[2].items():
            assert np.array_equal(np.asarray(chunked[name]),
                                  np.asarray(expected)), name

    @given(chunk=st.integers(1, 2 * len(ROWS) * len(COMBOS)))
    @settings(max_examples=8, deadline=None)
    def test_combo_ber_matrix(self, whole, chunk):
        with chunk_env(chunk):
            _clear_population_caches()
            chunked = analytic.combo_ber_matrix(CHIP, COMBOS, ROWS,
                                                "Checkered0", 300_000.0)
        assert np.array_equal(np.asarray(chunked),
                              np.asarray(whole[3]))

    def test_mmap_spill_is_bit_identical(self, whole):
        with chunk_env(1024), mmap_env("1"):
            _clear_population_caches()
            hc = analytic.wcdp_hc_first_multi(CHIP, COMBOS, ROWS)
        for name, expected in whole[0].items():
            assert np.array_equal(np.asarray(hc[name]),
                                  np.asarray(expected)), name


class TestBatchHammerChunking:
    """RowBatchProfile.hammer streams the threshold comparison."""

    @pytest.fixture(scope="class")
    def profile(self):
        chip = make_chip(1)  # TRR-free: the engine accepts it
        device = chip.make_device()
        from repro.core.patterns import CHECKERED0
        victims = [RowAddress(0, 0, bank, row)
                   for bank in (0, 3) for row in (100, 5000, 16383)]
        return RowBatchProfile(device, victims, CHECKERED0)

    @given(chunk=st.integers(1, 4 * 8192))
    @settings(max_examples=8, deadline=None)
    def test_hammer_chunk_invariant(self, profile, chunk):
        with chunk_env(10**9):
            whole = profile.hammer(600_000)
        with chunk_env(chunk):
            chunked = profile.hammer(600_000)
        assert np.array_equal(chunked.images, whole.images)
        assert np.array_equal(chunked.committed, whole.committed)
        assert np.array_equal(chunked.bitflips, whole.bitflips)

    def test_subset_chunk_invariant(self, profile):
        subset = np.array([4, 1, 3])
        with chunk_env(10**9):
            whole = profile.hammer(450_000, subset=subset)
        with chunk_env(1):
            chunked = profile.hammer(450_000, subset=subset)
        assert np.array_equal(chunked.images, whole.images)
