"""Tests for the Section 5 HC_nth study."""

import numpy as np
import pytest

from repro.core.hcnth import (HcNthStudy, RowHcNth, hcnth_study,
                              most_vulnerable_channels)


@pytest.fixture(scope="module")
def study():
    from repro.chips.profiles import make_chip

    return hcnth_study([make_chip(0), make_chip(4)], rows_per_segment=16)


class TestChannelSelection:
    def test_returns_two_channels(self, chip0):
        channels = most_vulnerable_channels(chip0)
        assert len(channels) == 2
        assert all(0 <= c < 8 for c in channels)

    def test_deterministic(self, chip0):
        assert most_vulnerable_channels(chip0) == \
            most_vulnerable_channels(chip0)


class TestRowHcNth:
    def test_properties(self):
        row = RowHcNth("Chip 0", 0, 1, "Checkered0",
                       np.array([100.0, 120.0, 180.0]))
        assert row.hc_first == 100.0
        assert np.allclose(row.normalized, [1.0, 1.2, 1.8])
        assert row.additional_to_last == 80.0


class TestStudy:
    def test_population_size(self, study):
        # 2 chips x 2 channels x 3 segments x 16 rows x 4 patterns.
        assert len(study.measurements) == 2 * 2 * 3 * 16 * 4

    def test_normalized_first_is_one(self, study):
        matrix = study.normalized_matrix()
        assert np.allclose(matrix[:, 0], 1.0)

    def test_normalized_monotone(self, study):
        matrix = study.normalized_matrix()
        assert np.all(np.diff(matrix, axis=1) >= 0)

    def test_obsv18_average_below_2x(self, study):
        """Fewer than 2x HC_first hammers induce 10 bitflips on average."""
        assert study.mean_normalized()[-1] < 2.0

    def test_obsv18_range(self, study):
        lo, hi = study.normalized_range()
        assert lo < 1.3
        assert hi > 2.5

    def test_obsv19_pattern_effect_moderate(self, study):
        effect = study.pattern_effect()
        values = list(effect.values())
        spread = (max(values) - min(values)) / min(values)
        assert spread < 0.35  # "moderately affected"

    def test_obsv20_negative_correlation(self, study):
        correlations = study.chip_correlations()
        assert all(value < 0.1 for value in correlations.values())
        assert np.mean(list(correlations.values())) < -0.1

    def test_chip_fit_shapes(self, study):
        coefficients = study.chip_fit("Chip 0", degree=2)
        assert coefficients.shape == (3,)

    def test_empty_filter_rejected(self, study):
        with pytest.raises(ValueError):
            study.normalized_matrix("NoSuchPattern")
