"""Tests for the analytic measurement engine."""

import numpy as np
import pytest

from repro.core import analytic
from repro.dram.geometry import RowAddress


class TestEffectiveHammers:
    def test_baseline_identity(self, chip0):
        assert analytic.effective_hammers(chip0, 1000) == \
            pytest.approx(1000.0)

    def test_rowpress_amplifies(self, chip0):
        assert analytic.effective_hammers(chip0, 1000, t_on=35.1e3) == \
            pytest.approx(222_570.0, rel=1e-6)

    def test_amplification_none_is_one(self, chip0):
        assert analytic.amplification(chip0, None) == 1.0


class TestMeasure:
    def test_ber_and_hc(self, chip0):
        rows = np.arange(1000, 1100)
        measurement = analytic.measure(chip0, 0, 0, 0, rows, "Checkered0")
        ber = measurement.ber(sampled=False)
        hc = measurement.hc_first()
        assert ber.shape == rows.shape
        assert hc.shape == rows.shape
        assert np.all(ber > 0)
        assert np.all(hc > 1000)

    def test_device_agreement(self, chip0, session):
        """Analytic BER equals the device-measured BER within binomial
        noise, and HC_first agrees within search tolerance."""
        from repro.bender.routines import measure_row_ber, search_hc_first
        from repro.core.patterns import CHECKERED0

        victim = RowAddress(1, 0, 2, 7000)
        measurement = analytic.measure(chip0, 1, 0, 2,
                                       np.array([7000]), "Checkered0")
        device_ber = measure_row_ber(session, victim, CHECKERED0,
                                     hammer_count=512_000).ber
        assert device_ber == pytest.approx(
            float(measurement.ber(sampled=False)[0]), abs=0.008)
        device_hc = search_hc_first(session, victim, CHECKERED0).hc_first
        assert device_hc == pytest.approx(
            float(measurement.hc_first()[0]), rel=0.02)


class TestWcdp:
    def test_wcdp_is_minimum(self, chip0):
        rows = np.arange(2000, 2050)
        hc = analytic.wcdp_hc_first(chip0, 0, 0, 0, rows)
        stacked = np.stack([hc[name] for name in
                            ("Rowstripe0", "Rowstripe1", "Checkered0",
                             "Checkered1")])
        assert np.allclose(hc["WCDP"], stacked.min(axis=0))

    def test_wcdp_ber_uses_worst_pattern(self, chip0):
        rows = np.arange(2000, 2020)
        bers = analytic.wcdp_ber(chip0, 0, 0, 0, rows, sampled=False)
        hc = analytic.wcdp_hc_first(chip0, 0, 0, 0, rows)
        names = ("Rowstripe0", "Rowstripe1", "Checkered0", "Checkered1")
        for i in range(rows.size):
            worst = min(names, key=lambda name: hc[name][i])
            assert bers["WCDP"][i] == bers[worst][i]


class TestRowSelection:
    def test_stratified_rows_cover_range(self):
        rows = analytic.stratified_rows(16384, 100)
        assert rows[0] == 0
        assert rows[-1] == 16383
        assert rows.size == 100

    def test_stratified_full_population(self):
        rows = analytic.stratified_rows(100, 1000)
        assert np.array_equal(rows, np.arange(100))

    def test_sample_rows_unique_sorted(self, rng):
        rows = analytic.sample_rows(16384, 100, rng)
        assert np.all(np.diff(rows) > 0)
        assert rows.size == 100

    def test_segment_rows(self):
        assert np.array_equal(analytic.segment_rows(16384, "first", 3),
                              np.array([0, 1, 2]))
        last = analytic.segment_rows(16384, "last", 3)
        assert np.array_equal(last, np.array([16381, 16382, 16383]))
        middle = analytic.segment_rows(16384, "middle", 4)
        assert 8192 in middle

    def test_unknown_segment_rejected(self):
        with pytest.raises(ValueError):
            analytic.segment_rows(16384, "bogus", 3)
