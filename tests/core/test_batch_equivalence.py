"""Equivalence suite for the batched analytic experiment path.

Three invariants from the batched-engine contract:

- :func:`population_combos` (the block-chained, base-cached kernel) is
  bit-identical to per-combo :func:`population_grid` results,
- the ``*_multi`` WCDP helpers equal their scalar per-combo forms,
- the experiment reports are byte-identical with batching on and off
  (``HBMSIM_BATCH=0``), pinning the seed reference hashes for fig05 and
  fig07.
"""

import hashlib

import numpy as np
import pytest

from repro.chips import vectorized
from repro.chips.profiles import make_chip
from repro.chips.vectorized import population_combos, population_grid
from repro.core import analytic
from repro.core.analytic import (combo_population, wcdp_ber,
                                 wcdp_ber_multi, wcdp_hc_first,
                                 wcdp_hc_first_multi)
from repro.experiments.registry import run_experiment

COMBOS = [(0, 0, 0), (2, 1, 3), (7, 0, 15)]
ROWS = np.array([0, 831, 832, 5000, 12000, 16383])
PATTERN = "Checkered0"


@pytest.fixture(scope="module")
def chip():
    return make_chip(2)


def clear_caches():
    analytic._COMBO_CACHE.clear()
    vectorized._COMBO_BASE_CACHE.clear()


class TestPopulationCombos:
    def test_matches_per_combo_grids(self, chip):
        clear_caches()
        batch = population_combos(
            chip,
            [channel for channel, __, __ in COMBOS],
            [pc for __, pc, __ in COMBOS],
            [bank for __, __, bank in COMBOS],
            ROWS, PATTERN)
        grids = [population_grid(chip, channel, pc, bank, ROWS, PATTERN)
                 for channel, pc, bank in COMBOS]
        # The batch materializes its deferred strong draws on first use.
        batch.ber(1.0e5)
        for field in ("f_weak", "mu_weak", "sigma_weak", "mu_strong",
                      "flippable", "n_weak", "profile_seeds"):
            stacked = np.concatenate(
                [np.atleast_1d(getattr(grid, field)) for grid in grids])
            assert np.array_equal(getattr(batch, field), stacked), field

    def test_measurements_match_per_combo(self, chip):
        clear_caches()
        batch = combo_population(chip, COMBOS, ROWS, PATTERN)
        shape = (len(COMBOS), ROWS.size)
        hc = batch.hc_first(1.25).reshape(shape)
        ber = batch.ber(2.0e5).reshape(shape)
        nth = batch.hc_nth(3, 1.25).reshape(shape + (3,))
        for index, (channel, pc, bank) in enumerate(COMBOS):
            grid = population_grid(chip, channel, pc, bank, ROWS, PATTERN)
            assert np.array_equal(hc[index], grid.hc_first(1.25))
            assert np.array_equal(ber[index], grid.ber(2.0e5))
            assert np.array_equal(nth[index], grid.hc_nth(3, 1.25))

    def test_cached_base_is_bit_identical(self, chip):
        """A second pattern reuses the pattern-independent base; results
        must equal a from-scratch computation."""
        clear_caches()
        combo_population(chip, COMBOS, ROWS, "Checkered0")
        warm = combo_population(chip, COMBOS, ROWS, "RowStripe0")
        warm.ber(1.0e5)
        clear_caches()
        cold = combo_population(chip, COMBOS, ROWS, "RowStripe0")
        cold.ber(1.0e5)
        for field in ("f_weak", "mu_weak", "sigma_weak", "mu_strong",
                      "flippable", "n_weak", "profile_seeds"):
            assert np.array_equal(getattr(warm, field),
                                  getattr(cold, field)), field

    def test_combo_cache_returns_memo(self, chip):
        clear_caches()
        first = combo_population(chip, COMBOS, ROWS, PATTERN)
        assert combo_population(chip, COMBOS, ROWS, PATTERN) is first


class TestWcdpMulti:
    def test_hc_first_multi_matches_scalar(self, chip):
        clear_caches()
        multi = wcdp_hc_first_multi(chip, COMBOS, ROWS)
        for index, (channel, pc, bank) in enumerate(COMBOS):
            scalar = wcdp_hc_first(chip, channel, pc, bank, ROWS)
            for name, values in scalar.items():
                assert np.array_equal(multi[name][index], values), name

    def test_ber_multi_matches_scalar(self, chip):
        clear_caches()
        multi = wcdp_ber_multi(chip, COMBOS, ROWS, hammer_count=300_000)
        for index, (channel, pc, bank) in enumerate(COMBOS):
            scalar = wcdp_ber(chip, channel, pc, bank, ROWS,
                              hammer_count=300_000)
            for name, values in scalar.items():
                assert np.array_equal(multi[name][index], values), name


def report_hash(experiment_id: str, scale: float) -> str:
    result = run_experiment(experiment_id, scale)
    return hashlib.sha256(result.text.encode()).hexdigest()[:16]


class TestExperimentEquivalence:
    def test_fig05_reference_hash(self):
        assert report_hash("fig05", 0.25) == "44546c2cd83c30da"

    def test_fig07_reference_hash(self):
        assert report_hash("fig07", 0.25) == "e22a1494c3310f21"

    @pytest.mark.parametrize("experiment_id,scale",
                             [("fig04", 0.02), ("fig08", 0.02),
                              ("fig10", 0.02), ("fig13", 0.02)])
    def test_batch_off_is_byte_identical(self, experiment_id, scale,
                                         monkeypatch):
        batched = run_experiment(experiment_id, scale).text
        monkeypatch.setenv("HBMSIM_BATCH", "0")
        scalar = run_experiment(experiment_id, scale).text
        assert scalar == batched
