"""Tests for the Section 7 TRR-bypass attack."""

import numpy as np
import pytest

from repro.core.trr_bypass import (AttackConfig, attack_effective_hammers,
                                   bypass_study, dummy_rows_for,
                                   run_attack, run_attack_epochs,
                                   run_attack_exact)
from repro.core.patterns import CHECKERED0, ROWSTRIPE1
from repro.dram.geometry import RowAddress


class TestAttackConfig:
    def test_budget_is_78(self):
        assert AttackConfig(4, 18).budget == 78

    def test_paper_dummy_acts_example(self):
        """4 dummies at 18 aggressor acts: (78 - 36) // 4 = 10 each."""
        assert AttackConfig(4, 18).dummy_acts_each == 10

    def test_windows_two_trefw(self):
        assert AttackConfig(4, 18).total_windows == 2 * 8205

    def test_count_rule_safe(self):
        assert AttackConfig(8, 34).count_rule_safe
        assert AttackConfig(4, 18).count_rule_safe

    def test_aggressors_above_budget_rejected(self):
        with pytest.raises(ValueError):
            AttackConfig(4, 40)

    def test_no_room_for_dummies_rejected(self):
        with pytest.raises(ValueError):
            AttackConfig(20, 36)


class TestDummyRows:
    def test_far_from_victim(self):
        victim = RowAddress(0, 0, 0, 5000)
        rows = dummy_rows_for(victim, AttackConfig(8, 34), 16384)
        assert len(rows) == 8
        assert all(abs(row - 5000) > 2 for row in rows)
        assert len(set(rows)) == 8


class TestEffectiveHammers:
    def test_bypassed_accumulates_full_window(self, chip0):
        config = AttackConfig(8, 34)
        assert attack_effective_hammers(chip0, config, bypassed=True) == \
            34 * 8205

    def test_detected_caps_at_cadence(self, chip0):
        config = AttackConfig(2, 34)
        assert attack_effective_hammers(chip0, config, bypassed=False) == \
            34 * 17


class TestBypassStudy:
    @pytest.fixture(scope="class")
    def study(self):
        from repro.chips.profiles import make_chip

        rows = np.arange(0, 16384, 128)
        return bypass_study(make_chip(0),
                            dummy_counts=(1, 3, 4, 6, 8),
                            aggressor_acts=(18, 24, 30, 34), rows=rows)

    def test_fewer_than_four_dummies_fail(self, study):
        for dummies in (1, 3):
            for acts in (18, 34):
                assert study.mean_ber(dummies, acts) < 1e-5

    def test_four_dummies_succeed(self, study):
        assert study.mean_ber(4, 34) > 1e-3

    def test_ber_grows_with_aggressor_acts(self, study):
        means = [study.mean_ber(8, acts) for acts in (18, 24, 30, 34)]
        assert all(b > a for a, b in zip(means, means[1:]))

    def test_scaling_order_of_magnitude(self, study):
        """Paper: 10.28x from 18 to 34 acts; require the same decade."""
        scaling = study.acts_scaling(8)
        assert 4.0 < scaling[34] < 30.0

    def test_dummies_beyond_four_equivalent(self, study):
        assert study.dummy_sensitivity(34) < 0.002


class TestExactAttack:
    def test_exact_attack_validates_bypass_threshold(self, chip0):
        """Command-accurate runs (every REF, every TRR sample) confirm
        >= 4 dummies bypass and 3 do not, on a reduced window count."""
        from repro.bender.host import BenderSession

        victim = RowAddress(0, 0, 0, 5000)
        flips = {}
        for dummies in (3, 4):
            session = BenderSession(chip0.make_device(),
                                    mapping=chip0.row_mapping())
            config = AttackConfig(dummy_rows=dummies, aggressor_acts=34)
            flips[dummies] = run_attack_exact(session, victim, config,
                                              CHECKERED0)
        assert flips[3] == 0
        assert flips[4] > 0


def fresh_session(chip, trr_config=None):
    from repro.bender.host import BenderSession

    kwargs = {} if trr_config is None else {"trr_config": trr_config}
    return BenderSession(chip.make_device(**kwargs),
                         mapping=chip.row_mapping())


class TestEpochAttackEquivalence:
    """``run_attack_epochs`` must return the exact path's flip count."""

    @pytest.fixture(scope="class")
    def weak_victim(self, chip0):
        """A weak early row: flips within few hundred windows, and its
        rolling-refresh sweep lands inside the run."""
        from repro.core import analytic

        rows = np.arange(16, 2048, 16)
        hc = analytic.wcdp_hc_first(chip0, 0, 0, 0, rows)["Checkered0"]
        # Total windows needed: survive the sweep at ~row/2, then
        # accumulate hc_first units at 34 per window.
        budget = rows // 2 + np.ceil(hc / 34.0).astype(int) + 40
        best = int(np.argmin(budget))
        return RowAddress(0, 0, 0, int(rows[best])), int(budget[best])

    def both_paths(self, chip, victim, config, pattern=CHECKERED0,
                   trr_config=None):
        exact = run_attack_exact(fresh_session(chip, trr_config), victim,
                                 config, pattern)
        session = fresh_session(chip, trr_config)
        device = session.device
        before = (device.now_ns, device.stats.acts, device.stats.refs)
        assert session.batching_active()
        epochs = run_attack_epochs(session, victim, config, pattern)
        # The epoch replay is a measurement surface: no device mutation.
        assert (device.now_ns, device.stats.acts,
                device.stats.refs) == before
        return exact, epochs

    def test_bypass_flips_match_exact(self, chip0, weak_victim):
        victim, windows = weak_victim
        config = AttackConfig(dummy_rows=4, aggressor_acts=34,
                              windows=windows)
        exact, epochs = self.both_paths(chip0, victim, config)
        assert exact == epochs
        assert epochs > 0  # non-vacuous: the attack must flip bits

    def test_protected_configs_match_exact(self, chip0, weak_victim):
        victim, windows = weak_victim
        for dummies in (0, 3):
            config = AttackConfig(dummy_rows=dummies, aggressor_acts=34,
                                  windows=windows)
            exact, epochs = self.both_paths(chip0, victim, config)
            assert exact == epochs == 0

    def test_trr_variant_and_pattern_match_exact(self, chip0, weak_victim):
        from repro.dram.trr import TrrConfig

        victim, windows = weak_victim
        variant = TrrConfig(capable_interval=9, cam_capacity=2)
        config = AttackConfig(dummy_rows=3, aggressor_acts=30,
                              windows=windows)
        exact, epochs = self.both_paths(chip0, victim, config,
                                        pattern=ROWSTRIPE1,
                                        trr_config=variant)
        assert exact == epochs

    def test_trr_disabled_chip_matches_exact(self, weak_victim):
        from repro.chips.profiles import make_chip

        chip1 = make_chip(1)  # a TRR-free chip
        __, windows = weak_victim
        victim = RowAddress(0, 0, 0, 900)
        config = AttackConfig(dummy_rows=4, aggressor_acts=34,
                              windows=min(windows, 400))
        exact, epochs = self.both_paths(chip1, victim, config)
        assert exact == epochs

    def test_subarray_boundary_victim_matches_exact(self, chip0):
        """Row 832's low aggressor sits across a sense-amp stripe."""
        victim = RowAddress(0, 0, 0, 832)
        config = AttackConfig(dummy_rows=4, aggressor_acts=34, windows=120)
        exact, epochs = self.both_paths(chip0, victim, config)
        assert exact == epochs

    def test_dispatcher_uses_epoch_path(self, chip0, monkeypatch):
        victim = RowAddress(0, 0, 0, 5000)
        config = AttackConfig(dummy_rows=4, aggressor_acts=34, windows=40)
        session = fresh_session(chip0)
        now_before = session.device.now_ns
        run_attack(session, victim, config)
        assert session.device.now_ns == now_before  # epoch path taken
        monkeypatch.setenv("HBMSIM_BATCH", "0")
        session = fresh_session(chip0)
        run_attack(session, victim, config)
        assert session.device.now_ns > now_before  # scalar path taken
