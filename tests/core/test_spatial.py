"""Tests for the Section 4 spatial-variation studies."""

import numpy as np
import pytest

from repro.core import spatial


@pytest.fixture(scope="module")
def two_chips():
    from repro.chips.profiles import make_chip

    return (make_chip(0), make_chip(5))


class TestChipBerStudy:
    def test_structure(self, two_chips):
        study = spatial.chip_ber_study(two_chips, rows_per_channel=64)
        assert set(study.summaries) == {"Chip 0", "Chip 5"}
        for by_pattern in study.summaries.values():
            assert set(by_pattern) == set(spatial.PATTERN_COLUMNS)

    def test_obsv1_bitflips_everywhere(self, two_chips):
        """Obsv. 1: RowHammer bitflips in all tested rows of all chips."""
        study = spatial.chip_ber_study(two_chips, rows_per_channel=64)
        for by_pattern in study.summaries.values():
            assert by_pattern["WCDP"].minimum > 0

    def test_obsv2_chip0_worse_than_chip5(self, two_chips):
        study = spatial.chip_ber_study(two_chips, rows_per_channel=128)
        assert study.chip_mean("Chip 0", "Checkered0") > \
            study.chip_mean("Chip 5", "Checkered0")

    def test_obsv3_checkered_beats_rowstripe(self, two_chips):
        study = spatial.chip_ber_study(two_chips, rows_per_channel=128)
        for label in ("Chip 0", "Chip 5"):
            checkered = study.summaries[label]["Checkered0"].mean
            rowstripe = study.summaries[label]["Rowstripe0"].mean
            assert checkered > rowstripe

    def test_wcdp_tracks_worst_patterns(self, two_chips):
        """WCDP (the min-HC_first pattern per row) has mean BER close to
        or above any single pattern's mean."""
        study = spatial.chip_ber_study(two_chips, rows_per_channel=64)
        for by_pattern in study.summaries.values():
            for name in ("Rowstripe0", "Checkered0"):
                assert by_pattern["WCDP"].mean >= by_pattern[name].mean \
                    * 0.9


class TestChipHcFirstStudy:
    def test_minima_in_paper_ballpark(self, two_chips):
        study = spatial.chip_hcfirst_study(two_chips, rows_per_bank=256)
        for label in ("Chip 0", "Chip 5"):
            minimum = study.chip_minimum(label)
            assert 10_000 < minimum < 80_000

    def test_wcdp_minimum_not_above_patterns(self, two_chips):
        study = spatial.chip_hcfirst_study(two_chips, rows_per_bank=128)
        for by_pattern in study.summaries.values():
            for name in ("Rowstripe0", "Checkered1"):
                assert by_pattern["WCDP"].minimum <= \
                    by_pattern[name].minimum


class TestChannelStudies:
    def test_chip0_worst_pair_is_ch0_ch7(self, two_chips):
        """Obsv. 8: CH0/CH7 (one die) dominate Chip 0's BER."""
        study = spatial.channel_ber_study(two_chips[0],
                                          rows_per_channel=256)
        means = study.channel_means("WCDP")
        worst = max(means, key=means.get)
        assert worst in (0, 7)
        assert study.extreme_ratio("WCDP") > 1.5

    def test_die_pairs_behave_alike(self, two_chips):
        study = spatial.channel_ber_study(two_chips[0],
                                          rows_per_channel=256)
        means = study.channel_means("WCDP")
        for a, b in spatial.die_pairs(two_chips[0]):
            assert means[a] == pytest.approx(means[b], rel=0.25)

    def test_hcfirst_channels_anticorrelate_with_ber(self, two_chips):
        ber = spatial.channel_ber_study(two_chips[0],
                                        rows_per_channel=128)
        hc = spatial.channel_hcfirst_study(two_chips[0],
                                           rows_per_bank=128)
        ber_means = [ber.channel_means("WCDP")[c] for c in range(8)]
        hc_means = [hc.channel_means("WCDP")[c] for c in range(8)]
        assert np.corrcoef(ber_means, hc_means)[0, 1] < -0.4


class TestRowProfile:
    def test_resilient_subarrays_lower(self, two_chips):
        study = spatial.row_ber_profile(two_chips[0], channels=(0,),
                                        row_stride=16)
        means = study.subarray_means(0)
        layout = two_chips[0].geometry.subarrays
        resilient = [means[layout.middle_subarray],
                     means[layout.last_subarray]]
        normal = [m for i, m in enumerate(means)
                  if i not in (layout.middle_subarray,
                               layout.last_subarray)]
        assert np.mean(resilient) < 0.7 * np.mean(normal)

    def test_boundaries_exposed(self, two_chips):
        study = spatial.row_ber_profile(two_chips[0], channels=(0,),
                                        row_stride=64)
        assert study.subarray_boundaries == \
            two_chips[0].geometry.subarrays.boundaries


class TestBankVariation:
    def test_bimodal_clusters(self, two_chips):
        study = spatial.bank_variation_study(two_chips[0],
                                             rows_per_segment=24)
        assert len(study.points) == 256
        low_cv, high_cv = study.cluster_split()
        mean_low = np.mean([p.mean_ber for p in low_cv])
        mean_high = np.mean([p.mean_ber for p in high_cv])
        # Obsv. 16: lower-CV banks have the higher mean BER.
        assert mean_low > mean_high

    def test_channel_dominates_banks(self, two_chips):
        """Obsv. 17 direction: channel spread >= typical intra-channel
        bank spread."""
        study = spatial.bank_variation_study(two_chips[0],
                                             rows_per_segment=24)
        intra = np.mean([study.intra_channel_spread(c) for c in range(8)])
        assert study.channel_spread() > 0.5 * intra
