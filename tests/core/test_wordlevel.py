"""Tests for the Section 8 word-level / ECC analysis."""

import numpy as np
import pytest

from repro.core.wordlevel import (secded_outcomes, word_level_study)


@pytest.fixture(scope="module")
def study():
    from repro.chips.profiles import make_chip

    return word_level_study(make_chip(4), rows_per_channel=512)


class TestHistogram:
    def test_all_patterns_present(self, study):
        assert set(study.histogram) == {
            "Rowstripe0", "Rowstripe1", "Checkered0", "Checkered1"}

    def test_buckets_structure(self, study):
        for buckets in study.histogram.values():
            assert set(buckets) == {1, 2, 3}
            assert all(v >= 0 for v in buckets.values())

    def test_substantial_words_beyond_secded(self, study):
        """Section 8: words with >2 bitflips are plentiful (974,935 of
        18M, i.e. ~5%, for Checkered0 in the paper)."""
        beyond = study.words_beyond_secded("Checkered0")
        fraction = beyond / study.total_words
        assert 0.005 < fraction < 0.15

    def test_most_flipped_words_have_multiple_flips(self, study):
        """'Most words with at least one bitflip actually have more than
        one' (Section 8.1)."""
        assert study.multi_flip_fraction("Checkered0") > 0.5

    def test_max_flips_reaches_double_digits(self, study):
        """The paper finds a word with 16 bitflips."""
        assert study.max_flips["Checkered0"] >= 8

    def test_max_flips_bounded_by_word(self, study):
        assert all(value <= 64 for value in study.max_flips.values())

    def test_secded_classes(self, study):
        classes = study.secded_classes("Checkered0")
        assert classes["correctable"] == study.histogram["Checkered0"][1]
        assert classes["potentially_undetectable"] == \
            study.histogram["Checkered0"][3]


class TestSecdedOutcomes:
    def test_outcomes_sum(self, study):
        outcomes = secded_outcomes(study, "Checkered0", sample_size=200)
        total = (outcomes.ok + outcomes.corrected + outcomes.detected
                 + outcomes.miscorrected)
        assert total == outcomes.sampled_words == 200

    def test_single_flips_always_corrected(self, study):
        outcomes = secded_outcomes(study, "Checkered0", sample_size=300)
        assert outcomes.corrected > 0

    def test_silent_failures_exist(self, study):
        """>2-flip words can silently miscorrect — the security payload
        of the Section 8 argument."""
        outcomes = secded_outcomes(study, "Checkered0", sample_size=400)
        assert outcomes.miscorrected > 0
        assert outcomes.silent_failure_fraction > 0.0
