"""Tests for the Table 1 data patterns."""

import numpy as np
import pytest

from repro.core.patterns import (ALL_PATTERNS, CHECKERED0, CHECKERED1,
                                 PATTERNS_BY_NAME, ROWSTRIPE0, ROWSTRIPE1,
                                 pattern_by_name, select_wcdp)


class TestTable1:
    def test_four_patterns(self):
        assert len(ALL_PATTERNS) == 4

    @pytest.mark.parametrize("pattern,victim,aggressor,far", [
        (ROWSTRIPE0, 0x00, 0xFF, 0x00),
        (ROWSTRIPE1, 0xFF, 0x00, 0xFF),
        (CHECKERED0, 0x55, 0xAA, 0x55),
        (CHECKERED1, 0xAA, 0x55, 0xAA),
    ])
    def test_byte_assignments(self, pattern, victim, aggressor, far):
        assert pattern.victim_byte == victim
        assert pattern.aggressor_byte == aggressor
        assert pattern.far_byte == far

    def test_row_images(self):
        assert np.all(CHECKERED0.victim_row() == 0x55)
        assert np.all(CHECKERED0.aggressor_row() == 0xAA)
        assert np.all(CHECKERED0.far_row() == 0x55)

    def test_row_image_by_distance(self):
        assert np.all(CHECKERED0.row_image(0) == 0x55)
        assert np.all(CHECKERED0.row_image(1) == 0xAA)
        assert np.all(CHECKERED0.row_image(-1) == 0xAA)
        assert np.all(CHECKERED0.row_image(8) == 0x55)

    def test_row_image_beyond_radius_rejected(self):
        with pytest.raises(ValueError):
            CHECKERED0.row_image(9)

    def test_is_checkered(self):
        assert CHECKERED0.is_checkered and CHECKERED1.is_checkered
        assert not ROWSTRIPE0.is_checkered

    def test_victim_polarity(self):
        assert ROWSTRIPE0.victim_polarity == 0
        assert ROWSTRIPE1.victim_polarity == 1
        assert CHECKERED0.victim_polarity == 0
        assert CHECKERED1.victim_polarity == 1

    def test_lookup(self):
        assert pattern_by_name("Checkered0") is CHECKERED0
        with pytest.raises(ValueError):
            pattern_by_name("nope")

    def test_registry_complete(self):
        assert set(PATTERNS_BY_NAME) == {
            "Rowstripe0", "Rowstripe1", "Checkered0", "Checkered1"}


class TestWcdpSelection:
    def test_unique_minimum_wins(self):
        wcdp = select_wcdp({"A": 100.0, "B": 50.0}, {})
        assert wcdp == "B"

    def test_tie_broken_by_ber(self):
        wcdp = select_wcdp({"A": 50.0, "B": 50.0},
                           {"A": 0.01, "B": 0.02})
        assert wcdp == "B"

    def test_tie_without_ber_rejected(self):
        with pytest.raises(ValueError):
            select_wcdp({"A": 50.0, "B": 50.0}, {"A": 0.01})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_wcdp({}, {})
