"""Tests for the vulnerability metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import metrics


def image(byte: int, size: int = 1024) -> np.ndarray:
    return np.full(size, byte, dtype=np.uint8)


class TestBitflipCounting:
    def test_identical_rows_zero(self):
        assert metrics.count_bitflips(image(0x55), image(0x55)) == 0

    def test_single_bit(self):
        observed = image(0x55)
        observed[0] = 0x54
        assert metrics.count_bitflips(image(0x55), observed) == 1

    def test_full_inversion(self):
        assert metrics.count_bitflips(image(0x00), image(0xFF)) == 8192

    def test_positions_match_count(self):
        observed = image(0x00)
        observed[[3, 100, 1000]] = 0x80
        positions = metrics.bitflip_positions(image(0x00), observed)
        assert positions.tolist() == [3 * 8, 100 * 8, 1000 * 8]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            metrics.count_bitflips(image(0, 10), image(0, 11))

    @given(st.sets(st.integers(min_value=0, max_value=8191), max_size=30))
    @settings(max_examples=50)
    def test_count_equals_injected_flips(self, positions):
        expected = image(0x55)
        observed = expected.copy()
        for position in positions:
            observed[position // 8] ^= (1 << (7 - position % 8))
        assert metrics.count_bitflips(expected, observed) == len(positions)
        recovered = metrics.bitflip_positions(expected, observed)
        assert set(recovered.tolist()) == positions


class TestBer:
    def test_ber_fraction(self):
        observed = image(0x00)
        observed[0] = 0xFF
        assert metrics.ber(image(0x00), observed) == pytest.approx(8 / 8192)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            metrics.ber(np.array([], dtype=np.uint8),
                        np.array([], dtype=np.uint8))


class TestRowMeasurement:
    def test_bitflips_property(self):
        measurement = metrics.RowMeasurement(
            chip=0, channel=1, pseudo_channel=0, bank=2, row=3,
            pattern="Checkered0", ber=0.0302, hc_first=14531)
        assert measurement.bitflips == 247  # the paper's headline count


class TestSummaries:
    def test_summarize(self):
        summary = metrics.summarize_bers([0.01, 0.02, 0.03])
        assert summary["mean"] == pytest.approx(0.02)
        assert summary["min"] == 0.01
        assert summary["max"] == 0.03
        assert summary["count"] == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            metrics.summarize_bers([])

    def test_cv(self):
        assert metrics.coefficient_of_variation([1.0, 1.0]) == 0.0
        assert metrics.coefficient_of_variation([1.0, 3.0]) == \
            pytest.approx(0.5)

    def test_cv_zero_mean_rejected(self):
        with pytest.raises(ValueError):
            metrics.coefficient_of_variation([-1.0, 1.0])


class TestConstants:
    def test_paper_constants(self):
        assert metrics.WCDP_TIE_BREAK_HAMMERS == 256_000
        assert metrics.ROWPRESS_BER_HAMMERS == 150_000
        assert metrics.BER_TEST_HAMMERS > metrics.WCDP_TIE_BREAK_HAMMERS
