"""Tests for the statistics, fitting, and reporting helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (bimodality_coefficient,
                            coefficient_of_variation, compare_line,
                            evaluate_polynomial, linear_regression,
                            loglog_interpolate, pearson_correlation,
                            percent, polynomial_fit, quantiles,
                            relative_difference, render_series,
                            render_table, summarize, within_factor)


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=200)
        y = x * 0.5 + rng.normal(size=200)
        assert pearson_correlation(x, y) == pytest.approx(
            np.corrcoef(x, y)[0, 1])

    def test_constant_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones(5), np.arange(5.0))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.arange(4.0), np.arange(5.0))


class TestFits:
    def test_polynomial_recovers_coefficients(self):
        x = np.linspace(0, 10, 50)
        y = 3 * x ** 2 - 2 * x + 1
        coefficients = polynomial_fit(x, y, 2)
        assert np.allclose(coefficients, [3, -2, 1], atol=1e-8)

    def test_evaluate(self):
        assert evaluate_polynomial(np.array([1.0, 0.0]), np.array([5.0]))[0] \
            == 5.0

    def test_linear_regression(self):
        slope, intercept = linear_regression(np.arange(10.0),
                                             2 * np.arange(10.0) + 3)
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(3.0)

    def test_underdetermined_rejected(self):
        with pytest.raises(ValueError):
            polynomial_fit(np.array([1.0]), np.array([1.0]), 2)

    def test_loglog_interpolation_exact_on_powerlaw(self):
        x = np.array([1.0, 10.0, 100.0])
        y = x ** 2
        interpolated = loglog_interpolate(x, y, np.array([3.16227766]))
        assert interpolated[0] == pytest.approx(10.0, rel=1e-6)

    def test_loglog_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            loglog_interpolate(np.array([0.0, 1.0]), np.array([1.0, 2.0]),
                               np.array([0.5]))


class TestStats:
    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["median"] == 2.0
        assert summary["count"] == 3

    def test_cv(self):
        assert coefficient_of_variation([2.0, 2.0]) == 0.0

    def test_quantiles(self):
        q = quantiles(np.arange(101.0), qs=(0.5,))
        assert q[0.5] == 50.0

    def test_bimodality_detects_two_modes(self):
        bimodal = np.concatenate([np.zeros(100), np.ones(100)])
        unimodal = np.random.default_rng(0).normal(size=200)
        assert bimodality_coefficient(bimodal) > 0.555
        assert bimodality_coefficient(unimodal) < 0.555

    def test_relative_difference(self):
        assert relative_difference(1.0, 1.0) == 0.0
        assert relative_difference(1.0, 3.0) == pytest.approx(1.0)
        assert relative_difference(0.0, 0.0) == 0.0

    @given(st.floats(min_value=0.01, max_value=100.0),
           st.floats(min_value=1.0, max_value=10.0))
    @settings(max_examples=50)
    def test_within_factor_symmetric(self, value, factor):
        assert within_factor(value, value, factor)
        assert within_factor(value * factor, value, factor)
        assert not within_factor(value * factor * 1.01, value, factor)


class TestReporting:
    def test_render_table_aligns(self):
        text = render_table(["A", "Bee"], [[1, 2.5], ["x", 30000.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")
        assert "30,000" in lines[3]

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["A"], [[1, 2]])

    def test_render_table_title(self):
        text = render_table(["A"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_render_series(self):
        text = render_series("s", [1, 2], [0.5, 0.25])
        assert "s" in text and "0.5" in text

    def test_percent(self):
        assert percent(0.0302) == "3.02%"

    def test_compare_line(self):
        line = compare_line("metric", 1.99, 2.01)
        assert "paper=1.99" in line and "measured=2.01" in line
