"""Concurrency tests for the bench append lock (satellite: record_run
must not lose runs when several processes append at once)."""

import json
import multiprocessing

import pytest

from repro.experiments import bench

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="concurrent writers use the fork start method")


def _append(path: str, writer: int, runs: int) -> None:
    for index in range(runs):
        bench.record_run({f"w{writer}-r{index}": 0.1}, scale=0.5,
                         jobs=1, cache="warm", path=path)


@needs_fork
def test_concurrent_writers_lose_no_records(tmp_path):
    path = tmp_path / "BENCH_experiments.json"
    writers, runs_each = 4, 5
    context = multiprocessing.get_context("fork")
    procs = [context.Process(target=_append,
                             args=(str(path), writer, runs_each))
             for writer in range(writers)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    payload = json.loads(path.read_text())
    assert len(payload["runs"]) == writers * runs_each
    names = {name for run in payload["runs"]
             for name in run["experiments"]}
    assert len(names) == writers * runs_each
    assert not (tmp_path / "BENCH_experiments.json.lock").exists()


def test_lock_file_removed_after_append(tmp_path):
    path = tmp_path / "BENCH_experiments.json"
    bench.record_run({"fig05": 1.0}, scale=0.1, path=str(path))
    assert path.exists()
    assert not (tmp_path / "BENCH_experiments.json.lock").exists()


def test_stale_lock_is_broken(tmp_path, monkeypatch):
    path = tmp_path / "BENCH_experiments.json"
    lock = tmp_path / "BENCH_experiments.json.lock"
    lock.write_text("999999")
    # Pretend the lock is ancient so the stale-breaking path fires
    # without waiting out the real 30 s threshold.
    monkeypatch.setattr(bench, "_LOCK_STALE_S", 0.0)
    bench.record_run({"fig05": 1.0}, scale=0.1, path=str(path))
    payload = json.loads(path.read_text())
    assert len(payload["runs"]) == 1
    assert not lock.exists()


class TestStaleBreakToctou:
    """Regression: breaking a stale lock must be single-winner.

    The old break was ``lock.unlink()`` after a stat — two waiters
    could both judge the lock stale, the first would unlink + reacquire,
    and the second's unlink deleted the first's *fresh* lock, putting
    two processes inside the critical section.  The rename-claim in
    ``_break_stale_lock`` closes that hole.
    """

    def test_second_breaker_loses_the_claim(self, tmp_path):
        lock = tmp_path / "b.json.lock"
        lock.write_text("1234")
        ino = lock.stat().st_ino
        assert bench._break_stale_lock(lock, ino)
        assert not lock.exists()
        # Breaker B observed the same stale lock but A won the rename.
        assert not bench._break_stale_lock(lock, ino)

    def test_late_breaker_cannot_steal_a_fresh_lock(self, tmp_path):
        """The exact TOCTOU: A breaks the stale lock and re-acquires;
        B (still holding the stale observation) must not destroy A's
        fresh lock."""
        import os

        lock = tmp_path / "b.json.lock"
        lock.write_text("stale-holder")
        stale_ino = lock.stat().st_ino
        # A distinct inode for A's fresh lock, allocated while the
        # stale one still exists (unlinked inodes get reused at once
        # on some filesystems, which would fake out the check below).
        fresh = tmp_path / "fresh-lock"
        fresh.write_text("fresh-holder")
        fresh_ino = fresh.stat().st_ino
        assert fresh_ino != stale_ino

        # Breaker A: claims the stale lock and re-acquires.
        assert bench._break_stale_lock(lock, stale_ino)
        os.rename(fresh, lock)  # A's new lock

        # Breaker B fires with its outdated observation: it must back
        # off and leave A's fresh lock in place.
        assert not bench._break_stale_lock(lock, stale_ino)
        assert lock.exists()
        assert lock.stat().st_ino == fresh_ino
        assert lock.read_text() == "fresh-holder"
        # No victim debris left behind either.
        assert list(tmp_path.glob("*.stale.*")) == []

    def test_exclusive_lock_uses_the_claiming_break(self, tmp_path,
                                                    monkeypatch):
        target = tmp_path / "b.json"
        lock = tmp_path / "b.json.lock"
        lock.write_text("crashed-holder")
        monkeypatch.setattr(bench, "_LOCK_STALE_S", 0.0)
        with bench._exclusive_lock(target):
            # The stale lock was claimed and replaced by ours.
            assert lock.exists()
            assert lock.read_text() != "crashed-holder"
        assert not lock.exists()
