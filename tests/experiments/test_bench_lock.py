"""Concurrency tests for the bench append lock (satellite: record_run
must not lose runs when several processes append at once)."""

import json
import multiprocessing

import pytest

from repro.experiments import bench

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="concurrent writers use the fork start method")


def _append(path: str, writer: int, runs: int) -> None:
    for index in range(runs):
        bench.record_run({f"w{writer}-r{index}": 0.1}, scale=0.5,
                         jobs=1, cache="warm", path=path)


@needs_fork
def test_concurrent_writers_lose_no_records(tmp_path):
    path = tmp_path / "BENCH_experiments.json"
    writers, runs_each = 4, 5
    context = multiprocessing.get_context("fork")
    procs = [context.Process(target=_append,
                             args=(str(path), writer, runs_each))
             for writer in range(writers)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    payload = json.loads(path.read_text())
    assert len(payload["runs"]) == writers * runs_each
    names = {name for run in payload["runs"]
             for name in run["experiments"]}
    assert len(names) == writers * runs_each
    assert not (tmp_path / "BENCH_experiments.json.lock").exists()


def test_lock_file_removed_after_append(tmp_path):
    path = tmp_path / "BENCH_experiments.json"
    bench.record_run({"fig05": 1.0}, scale=0.1, path=str(path))
    assert path.exists()
    assert not (tmp_path / "BENCH_experiments.json.lock").exists()


def test_stale_lock_is_broken(tmp_path, monkeypatch):
    path = tmp_path / "BENCH_experiments.json"
    lock = tmp_path / "BENCH_experiments.json.lock"
    lock.write_text("999999")
    # Pretend the lock is ancient so the stale-breaking path fires
    # without waiting out the real 30 s threshold.
    monkeypatch.setattr(bench, "_LOCK_STALE_S", 0.0)
    bench.record_run({"fig05": 1.0}, scale=0.1, path=str(path))
    payload = json.loads(path.read_text())
    assert len(payload["runs"]) == 1
    assert not lock.exists()
