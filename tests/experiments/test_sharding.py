"""Shard-parallel row sweeps: spec parsing, merge identity, fan-out.

The full-geometry contract (ISSUE 8, extended by ISSUE 10 to the whole
row-sweep family): a shardable experiment's sweep splits into
contiguous unit ranges — (channel, pseudo channel) pairs, channels, or
bank combos — whose merged result is byte-identical to the unsharded
run — under the CLI ``--shard i/n`` flag, the service ``shard`` field,
and the pool's transparent ``-j N`` fan-out alike.
"""

from unittest import mock

import pytest

from repro.errors import AdmissionError, HbmSimError
from repro.experiments import fig05_hcfirst_chips, registry, runner
from repro.experiments.registry import run_timed
from repro.experiments.sharding import ShardSpec, shard_labels
from repro.service.admission import AdmissionGate

SCALE = 0.02


class TestShardSpec:
    def test_parse_roundtrip(self):
        spec = ShardSpec.parse("2/8")
        assert spec == ShardSpec(2, 8)
        assert spec.label == "2/8"

    @pytest.mark.parametrize("value", [None, "ch0", "0/0x", "a/b",
                                       "1-4", ""])
    def test_non_matching_values_stay_opaque(self, value):
        assert ShardSpec.parse(value) is None

    @pytest.mark.parametrize("value", ["4/4", "5/2", "0/0"])
    def test_malformed_matches_rejected(self, value):
        with pytest.raises(ValueError):
            ShardSpec.parse(value)

    def test_labels_enumerate_a_fanout(self):
        assert shard_labels(3) == ["0/3", "1/3", "2/3"]

    @pytest.mark.parametrize("count,n_units", [(1, 16), (3, 16),
                                               (4, 16), (16, 16),
                                               (20, 16), (5, 7)])
    def test_slices_partition_contiguously(self, count, n_units):
        slices = [ShardSpec(i, count).slice_of(n_units)
                  for i in range(count)]
        assert slices[0][0] == 0
        assert slices[-1][1] == n_units
        for (_, stop), (start, _) in zip(slices, slices[1:]):
            assert stop == start
        sizes = [stop - start for start, stop in slices]
        assert max(sizes) - min(sizes) <= 1  # balanced


class TestMergeIdentity:
    @pytest.fixture(scope="class")
    def full(self):
        return {eid: registry.run_experiment(eid, SCALE)
                for eid in registry.SHARDABLE}

    @pytest.mark.parametrize("count", [1, 3, 4, 16, 20])
    @pytest.mark.parametrize("eid", sorted(registry.SHARDABLE))
    def test_merged_shards_match_full_run(self, full, eid, count):
        partials = [registry.run_experiment(eid, SCALE, shard=label)
                    for label in shard_labels(count)]
        module = registry.SHARDABLE[eid]
        merged = module.merge_shards(partials, SCALE)
        assert merged.text == full[eid].text

    def test_incomplete_fanout_rejected(self):
        partials = [registry.run_experiment("fig05", SCALE, shard=label)
                    for label in ("0/4", "2/4", "3/4")]
        with pytest.raises(HbmSimError, match="fan-out"):
            fig05_hcfirst_chips.merge_flats(partials)

    def test_mixed_fanout_rejected(self):
        partials = [registry.run_experiment("fig05", SCALE, shard="0/2"),
                    registry.run_experiment("fig05", SCALE, shard="1/4")]
        with pytest.raises(HbmSimError):
            fig05_hcfirst_chips.merge_flats(partials)

    def test_empty_shards_beyond_units_contribute_nothing(self):
        # 20 > 16 units: the tail shards carry empty flats.
        result = registry.run_experiment("fig05", SCALE, shard="19/20")
        flats = result.data["flats"]
        assert all(flats[label][name].size == 0
                   for label in flats for name in flats[label])


class TestRegistryShardApi:
    def test_shard_units(self):
        assert registry.shard_units("fig05") == 16
        assert registry.shard_units("fig07") == 16
        assert registry.shard_units("fig04") == 8
        assert registry.shard_units("fig06") == 8
        assert registry.shard_units("fig08") == 3
        assert registry.shard_units("fig09") == 256
        assert registry.shard_units("fig12") == 8
        assert registry.shard_units("fig13") == 3
        assert registry.shard_units("fig03") is None

    def test_opaque_label_runs_full(self):
        full = registry.run_experiment("fig05", SCALE)
        labelled = registry.run_experiment("fig05", SCALE, shard="ch0")
        assert labelled.text == full.text

    def test_shard_on_non_shardable_rejected(self):
        with pytest.raises(HbmSimError, match="shard"):
            registry.run_experiment("fig03", SCALE, shard="0/2")

    def test_merge_on_non_shardable_rejected(self):
        with pytest.raises(HbmSimError):
            registry.merge_shard_results("fig03", [], SCALE)


class TestPoolFanout:
    def test_fanout_requires_jobs_and_units(self):
        assert runner._shard_fanout("fig05", 1) == 1
        assert runner._shard_fanout("fig03", 4) == 1
        assert runner._shard_fanout("fig04", 4) == 4
        assert runner._shard_fanout("fig05", 4) == 4
        assert runner._shard_fanout("fig05", 64) == 16
        assert runner._shard_fanout("fig08", 8) == 3

    def test_pooled_shard_run_matches_serial(self):
        serial, __ = run_timed(["fig05", "fig07"], SCALE, jobs=1)
        with mock.patch.object(runner, "_available_cores",
                               return_value=4):
            pooled, records = run_timed(["fig05", "fig07"], SCALE,
                                        jobs=4)
        assert [r.text for r in pooled] == [r.text for r in serial]
        assert all(r.status == "ok" for r in records)
        # The merged record carries the fan-out's merge phase.
        assert "merge" in pooled[0].phases

    def test_explicit_shard_task_is_not_refanned(self):
        # A task already carrying --shard i/n runs as that single
        # slice, even under -j N.
        with mock.patch.object(runner, "_available_cores",
                               return_value=4):
            results, records = run_timed(["fig05"], SCALE, jobs=4,
                                         shard="1/4")
        assert records[0].status == "ok"
        assert results[0].data["shard_index"] == 1
        assert results[0].data["shard_count"] == 4

    def test_submit_validates_shard_strings(self):
        pool = runner.ResilientPool(slots=1)
        try:
            with pytest.raises(ValueError):
                pool.submit("fig05", SCALE, shard="9/4")
        finally:
            pool.shutdown()


class TestServiceShardAdmission:
    def test_execution_shard_admits_for_shardable(self):
        request = AdmissionGate().admit(
            {"experiment_id": "fig05", "scale": SCALE, "shard": "0/8"})
        assert request.shard == "0/8"

    def test_opaque_label_still_admits(self):
        request = AdmissionGate().admit(
            {"experiment_id": "fig03", "scale": SCALE, "shard": "ch0"})
        assert request.shard == "ch0"

    def test_malformed_execution_shard_rejected(self):
        with pytest.raises(AdmissionError) as excinfo:
            AdmissionGate().admit(
                {"experiment_id": "fig05", "shard": "5/2"})
        assert excinfo.value.field == "shard"

    def test_execution_shard_on_non_shardable_rejected(self):
        with pytest.raises(AdmissionError) as excinfo:
            AdmissionGate().admit(
                {"experiment_id": "fig03", "shard": "0/8"})
        assert excinfo.value.field == "shard"

    def test_shard_requests_never_coalesce_across_slices(self):
        keys = {AdmissionGate().admit(
                    {"experiment_id": "fig05", "scale": SCALE,
                     "shard": label}).coalescing_key()
                for label in shard_labels(4)}
        assert len(keys) == 4
