"""Tests for the CI perf gate (``repro.experiments.perf_gate``)."""

import json

from repro.experiments import bench
from repro.experiments.perf_gate import find_run, main


def write_bench(path, runs):
    path.write_text(json.dumps({"schema": 2, "runs": runs}))


def run_entry(seconds, scale=0.25, jobs=1, cache="warm", **extra):
    run = {"scale": scale, "jobs": jobs, "cache": cache,
           "batch": True, "timestamp": "2026-08-06T00:00:00+00:00",
           "experiments": {"fig05": {"seconds": seconds, "phases": {}}},
           "total_seconds": seconds}
    run.update(extra)
    return run


class TestFindRun:
    def test_newest_matching_run_wins(self, tmp_path):
        payload = {"runs": [run_entry(1.0), run_entry(0.5)]}
        seconds, run = find_run(payload, "fig05", 0.25, 1, "warm")
        assert seconds == 0.5

    def test_criteria_filter(self):
        payload = {"runs": [run_entry(9.0, cache="cold"),
                            run_entry(8.0, jobs=2),
                            run_entry(7.0, scale=0.1),
                            run_entry(0.4)]}
        seconds, __ = find_run(payload, "fig05", 0.25, 1, "warm")
        assert seconds == 0.4

    def test_schema1_float_entries(self):
        """The checked-in PR-1 history stores plain floats."""
        payload = {"runs": [{"scale": 0.25, "jobs": 1, "cache": "warm",
                             "experiments": {"fig05": 1.2838},
                             "total_seconds": 1.2838}]}
        seconds, __ = find_run(payload, "fig05", 0.25, 1, "warm")
        assert seconds == 1.2838

    def test_no_match_returns_none(self):
        assert find_run({"runs": []}, "fig05", 0.25, 1, "warm") \
            == (None, None)

    def test_batch_filter_skips_other_engine(self):
        """A newer scalar-engine record must not shadow the batched
        baseline when the gate asks for like-for-like."""
        payload = {"runs": [run_entry(0.3, batch=True),
                            run_entry(1.1, batch=False)]}
        seconds, __ = find_run(payload, "fig05", 0.25, 1, "warm",
                               batch=True)
        assert seconds == 0.3
        seconds, __ = find_run(payload, "fig05", 0.25, 1, "warm",
                               batch=False)
        assert seconds == 1.1
        seconds, __ = find_run(payload, "fig05", 0.25, 1, "warm")
        assert seconds == 1.1  # default: newest regardless of engine

    def test_batch_filter_excludes_schema1(self):
        """Schema-1 entries carry no batch flag, so they only match
        the 'any' default."""
        payload = {"runs": [{"scale": 0.25, "jobs": 1, "cache": "warm",
                             "experiments": {"fig05": 1.2838},
                             "total_seconds": 1.2838}]}
        assert find_run(payload, "fig05", 0.25, 1, "warm",
                        batch=True) == (None, None)
        seconds, __ = find_run(payload, "fig05", 0.25, 1, "warm")
        assert seconds == 1.2838


class TestGateCli:
    def gate(self, tmp_path, baseline_s, measured_s, factor="2.0"):
        baseline = tmp_path / "baseline.json"
        measured = tmp_path / "measured.json"
        write_bench(baseline, [run_entry(baseline_s)])
        write_bench(measured, [run_entry(measured_s)])
        return main(["--baseline", str(baseline),
                     "--measured", str(measured),
                     "--factor", factor])

    def test_passes_within_limit(self, tmp_path):
        assert self.gate(tmp_path, 0.30, 0.55) == 0

    def test_fails_beyond_limit(self, tmp_path):
        assert self.gate(tmp_path, 0.30, 0.61) == 1

    def test_limit_is_inclusive(self, tmp_path):
        assert self.gate(tmp_path, 0.30, 0.60) == 0

    def test_missing_baseline_run_errors(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        measured = tmp_path / "measured.json"
        write_bench(baseline, [run_entry(0.3, cache="cold")])
        write_bench(measured, [run_entry(0.3)])
        assert main(["--baseline", str(baseline),
                     "--measured", str(measured)]) == 2

    def test_unreadable_file_errors(self, tmp_path):
        measured = tmp_path / "measured.json"
        write_bench(measured, [run_entry(0.3)])
        assert main(["--baseline", str(tmp_path / "nope.json"),
                     "--measured", str(measured)]) == 2

    def test_batch_on_ignores_newer_scalar_baseline(self, tmp_path):
        """The CI invocation (--batch on) gates against the batched
        baseline even when a scalar-engine run was recorded later."""
        baseline = tmp_path / "baseline.json"
        measured = tmp_path / "measured.json"
        write_bench(baseline, [run_entry(0.30, batch=True),
                               run_entry(1.10, batch=False)])
        write_bench(measured, [run_entry(0.90, batch=True)])
        args = ["--baseline", str(baseline), "--measured", str(measured)]
        assert main(args) == 0            # any: 0.90 <= 2 * 1.10
        assert main(args + ["--batch", "on"]) == 1  # 0.90 > 2 * 0.30

    def test_gate_reads_record_run_output(self, tmp_path):
        """End to end: records written by the bench harness gate
        cleanly (schema-2 round trip)."""
        baseline = tmp_path / "baseline.json"
        measured = tmp_path / "measured.json"
        bench.record_run({"fig05": 0.30}, scale=0.25, jobs=1,
                         cache="warm", path=str(baseline))
        bench.record_run({"fig05": 0.45}, scale=0.25, jobs=1,
                         cache="warm", path=str(measured))
        assert main(["--baseline", str(baseline),
                     "--measured", str(measured)]) == 0


class TestRssCeiling:
    def gate(self, tmp_path, measured_extra, args=()):
        baseline = tmp_path / "baseline.json"
        measured = tmp_path / "measured.json"
        write_bench(baseline, [run_entry(0.30)])
        write_bench(measured, [run_entry(0.35, **measured_extra)])
        return main(["--baseline", str(baseline),
                     "--measured", str(measured)] + list(args))

    def test_rss_within_ceiling_passes(self, tmp_path):
        assert self.gate(tmp_path, {"peak_rss_mb": 900.0}) == 0

    def test_rss_beyond_ceiling_fails(self, tmp_path):
        assert self.gate(tmp_path, {"peak_rss_mb": 900.0},
                         ["--max-rss-mb", "512"]) == 1

    def test_pre_schema3_runs_without_rss_pass(self, tmp_path):
        assert self.gate(tmp_path, {}, ["--max-rss-mb", "1"]) == 0


class TestBatchSpeedupGate:
    def gate(self, tmp_path, batched_s, scalar_s, minimum="3.0"):
        baseline = tmp_path / "baseline.json"
        measured = tmp_path / "measured.json"
        write_bench(baseline, [run_entry(batched_s, batch=True)])
        write_bench(measured, [run_entry(batched_s, batch=True),
                               run_entry(scalar_s, batch=False)])
        return main(["--baseline", str(baseline),
                     "--measured", str(measured), "--batch", "on",
                     "--min-batch-speedup", minimum])

    def test_sufficient_speedup_passes(self, tmp_path):
        assert self.gate(tmp_path, 0.10, 0.55) == 0

    def test_insufficient_speedup_fails(self, tmp_path):
        assert self.gate(tmp_path, 0.30, 0.55) == 1

    def test_missing_scalar_run_errors(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        measured = tmp_path / "measured.json"
        write_bench(baseline, [run_entry(0.10, batch=True)])
        write_bench(measured, [run_entry(0.10, batch=True)])
        assert main(["--baseline", str(baseline),
                     "--measured", str(measured), "--batch", "on",
                     "--min-batch-speedup", "3.0"]) == 2


class TestFaultsFilter:
    def test_fault_runs_never_match_by_default(self):
        """Schema 4: chaos-mode runs are invisible to the default gate
        so they cannot shadow a fault-free baseline."""
        payload = {"runs": [run_entry(0.3),
                            run_entry(9.9, faults=True)]}
        seconds, __ = find_run(payload, "fig05", 0.25, 1, "warm")
        assert seconds == 0.3
        seconds, __ = find_run(payload, "fig05", 0.25, 1, "warm",
                               faults=True)
        assert seconds == 9.9
        seconds, __ = find_run(payload, "fig05", 0.25, 1, "warm",
                               faults=None)
        assert seconds == 9.9  # 'any': newest regardless

    def test_pre_schema4_runs_match_faults_off(self):
        payload = {"runs": [run_entry(0.7)]}  # no "faults" key
        seconds, __ = find_run(payload, "fig05", 0.25, 1, "warm",
                               faults=False)
        assert seconds == 0.7
        assert find_run(payload, "fig05", 0.25, 1, "warm",
                        faults=True) == (None, None)

    def test_faults_on_speedup_gate(self, tmp_path):
        """The chaos speedup CI invocation: both engine runs are
        fault-tagged and only they feed the ratio."""
        baseline = tmp_path / "baseline.json"
        measured = tmp_path / "measured.json"
        write_bench(baseline, [run_entry(0.10, batch=True, faults=True)])
        write_bench(measured, [run_entry(0.10, batch=True, faults=True),
                               run_entry(0.80, batch=False, faults=True),
                               run_entry(0.11, batch=False)])
        args = ["--baseline", str(baseline), "--measured", str(measured),
                "--batch", "on", "--faults", "on",
                "--min-batch-speedup", "5.0"]
        assert main(args) == 0  # 0.80 / 0.10 = 8x, fault runs only
        # Without the faults filter the fault-free 0.11s scalar run is
        # newest and the apparent speedup collapses below 5x.
        assert main(["--baseline", str(baseline),
                     "--measured", str(measured), "--batch", "on",
                     "--faults", "any",
                     "--min-batch-speedup", "5.0"]) == 1


class TestPhaseGate:
    def test_phase_seconds_gate(self, tmp_path):
        """--phase compile gates the compiler's recorded seconds."""
        baseline = tmp_path / "baseline.json"
        measured = tmp_path / "measured.json"

        def entry(total, compile_s):
            run = run_entry(total)
            run["experiments"]["fig05"]["phases"] = {
                "compile": compile_s, "execute": total - compile_s}
            return run

        write_bench(baseline, [entry(1.0, 0.02)])
        write_bench(measured, [entry(1.0, 0.03)])
        args = ["--baseline", str(baseline), "--measured", str(measured),
                "--phase", "compile"]
        assert main(args) == 0          # 0.03 <= 2 * 0.02
        assert main(args + ["--factor", "1.2"]) == 1

    def test_runs_without_phase_are_skipped(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        measured = tmp_path / "measured.json"
        write_bench(baseline, [run_entry(1.0)])
        write_bench(measured, [run_entry(1.0)])
        assert main(["--baseline", str(baseline),
                     "--measured", str(measured),
                     "--phase", "compile"]) == 2


class TestRssFactorGate:
    def files(self, tmp_path, baseline_rss, measured_rss):
        baseline = tmp_path / "baseline.json"
        measured = tmp_path / "measured.json"
        base_run = run_entry(0.3)
        meas_run = run_entry(0.4)
        if baseline_rss is not None:
            base_run["peak_rss_mb"] = baseline_rss
        if measured_rss is not None:
            meas_run["peak_rss_mb"] = measured_rss
        write_bench(baseline, [base_run])
        write_bench(measured, [meas_run])
        return ["--baseline", str(baseline), "--measured", str(measured)]

    def test_within_factor_passes(self, tmp_path):
        args = self.files(tmp_path, 500.0, 700.0)
        assert main(args + ["--rss-factor", "1.5"]) == 0

    def test_beyond_factor_fails(self, tmp_path):
        args = self.files(tmp_path, 500.0, 800.0)
        assert main(args + ["--rss-factor", "1.5"]) == 1

    def test_missing_rss_skips_with_note(self, tmp_path, capsys):
        args = self.files(tmp_path, None, 800.0)
        assert main(args + ["--rss-factor", "1.5"]) == 0
        assert "skipped" in capsys.readouterr().out

    def test_flat_ceiling_still_applies(self, tmp_path):
        args = self.files(tmp_path, 500.0, 700.0)
        assert main(args + ["--rss-factor", "2.0",
                            "--max-rss-mb", "600"]) == 1


class TestParallelSpeedupGate:
    def files(self, tmp_path, serial_s, parallel_s, parallel_jobs=4):
        baseline = tmp_path / "baseline.json"
        measured = tmp_path / "measured.json"
        write_bench(baseline, [run_entry(serial_s)])
        write_bench(measured, [
            run_entry(serial_s, wall_seconds=serial_s + 0.5),
            run_entry(parallel_s, jobs=parallel_jobs,
                      wall_seconds=parallel_s + 1.0)])
        return ["--baseline", str(baseline), "--measured", str(measured)]

    def test_sufficient_speedup_passes(self, tmp_path):
        args = self.files(tmp_path, 4.0, 1.2)
        assert main(args + ["--min-parallel-speedup", "2.0"]) == 0

    def test_insufficient_speedup_fails(self, tmp_path):
        args = self.files(tmp_path, 4.0, 2.5)
        assert main(args + ["--min-parallel-speedup", "2.0"]) == 1

    def test_uses_experiment_seconds_not_wall(self, tmp_path, capsys):
        # jobs=4 entry seconds (the slowest shard's compute) are the
        # gated metric; wall clock is printed as context only.
        args = self.files(tmp_path, 4.0, 1.9)
        assert main(args + ["--min-parallel-speedup", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "parallel speedup 2.11x" in out
        assert "wall" in out

    def test_missing_parallel_run_errors(self, tmp_path):
        args = self.files(tmp_path, 4.0, 1.0, parallel_jobs=2)
        assert main(args + ["--min-parallel-speedup", "2.0"]) == 2
