"""Tests running every experiment at reduced scale.

These are the integration points the benchmark harness exercises at
larger scale; here we verify structure and the paper's *shape* claims on
small populations.
"""

import pytest

from repro.experiments.base import ExperimentResult, default_scale, scaled
from repro.experiments.registry import EXPERIMENTS, run_all, run_experiment

#: Scale small enough for CI, large enough for the shape assertions.
SCALE = 0.02


@pytest.fixture(scope="module")
def results():
    """Run the cheap experiments once (the heavyweights get their own
    dedicated tests below)."""
    cheap = ("table1", "table2", "table3", "fig04", "fig05", "fig06",
             "fig07", "fig09", "fig12", "fig13", "fig14", "fig15")
    return {experiment_id: run_experiment(experiment_id, SCALE)
            for experiment_id in cheap}


class TestRegistry:
    def test_seventeen_artifacts(self):
        """3 tables + 13 figures/sections = every artifact in the paper's
        evaluation."""
        assert len(EXPERIMENTS) == 17

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_paper_order(self):
        ids = list(EXPERIMENTS)
        assert ids[0] == "table1"
        assert ids[-1] == "fig15"


class TestStructure:
    def test_results_have_text_and_reference(self, results):
        for result in results.values():
            assert isinstance(result, ExperimentResult)
            assert result.text
            assert result.paper_reference
            assert str(result) == result.text


class TestTables:
    def test_table1_matches_paper(self, results):
        assert results["table1"].data == results["table1"].paper_reference

    def test_table2_matches_paper(self, results):
        assert results["table2"].data == results["table2"].paper_reference

    def test_table3_matches_paper(self, results):
        assert results["table3"].data == results["table3"].paper_reference


class TestFig04:
    def test_checkered_beats_rowstripe(self, results):
        data = results["fig04"].data
        assert data["mean_checkered"] > data["mean_rowstripe"]

    def test_chip0_worse_than_chip5(self, results):
        data = results["fig04"].data
        assert data["Chip 0"]["Checkered0"]["mean"] > \
            data["Chip 5"]["Checkered0"]["mean"]

    def test_means_in_paper_ballpark(self, results):
        data = results["fig04"].data
        assert data["Chip 0"]["Checkered0"]["mean"] == pytest.approx(
            0.0104, rel=0.4)
        assert data["Chip 5"]["Checkered0"]["mean"] == pytest.approx(
            0.0066, rel=0.4)


class TestFig05:
    def test_minima_in_ballpark(self, results):
        """At reduced scale the minima are upper estimates; they must
        still sit within a factor of ~3 of the paper's 14.5-18K."""
        minima = results["fig05"].data["minima"]
        for value in minima.values():
            assert 10_000 < value < 60_000


class TestFig06:
    def test_chip0_extreme_ratio(self, results):
        data = results["fig06"].data
        assert data["Chip 0"]["extreme_ratio_wcdp"] == pytest.approx(
            1.99, rel=0.35)

    def test_channel_spread_dominates_chip_spread(self, results):
        """Obsv. 11 for Chip 4 (largest channel spread)."""
        data = results["fig06"].data
        assert data["Chip 4"]["checkered0_channel_spread"] > \
            data["chip_level_spread_checkered0"]

    def test_chip5_exception(self, results):
        """Obsv. 11: Chip 5's channel spread is the smallest."""
        data = results["fig06"].data
        spreads = {label: data[label]["checkered0_channel_spread"]
                   for label in (f"Chip {i}" for i in range(6))}
        assert spreads["Chip 5"] == min(spreads.values())


class TestFig09:
    def test_bimodal_and_higher_mean_lower_cv(self, results):
        data = results["fig09"].data
        assert data["bank_count"] == 256
        assert data["low_cv_cluster_mean_ber"] > \
            data["high_cv_cluster_mean_ber"]


class TestFig12:
    def test_monotone_and_converges(self, results):
        data = results["fig12"].data
        assert data["monotone"]
        assert data["converges_to_half"]


class TestFig13:
    def test_mean_series_matches_paper(self, results):
        data = results["fig13"].data
        assert data["mean"][29.0] == pytest.approx(83_689, rel=0.25)
        assert data["mean"][3.9e3] == pytest.approx(1_519, rel=0.25)
        assert data["mean"][35.1e3] == pytest.approx(376, rel=0.25)
        assert data["hc_first_of_one_at_16ms"]

    def test_reduction_factor(self, results):
        assert results["fig13"].data["reduction_at_35us"] == \
            pytest.approx(222.57, rel=0.05)


class TestFig14:
    def test_bypass_threshold(self, results):
        assert results["fig14"].data["bypass_threshold_dummies"] == 4

    def test_acts_scaling_monotone(self, results):
        scaling = results["fig14"].data["acts_scaling_8_dummies"]
        assert scaling[18] == pytest.approx(1.0)
        assert scaling[24] < scaling[30] < scaling[34]


class TestFig15:
    def test_beyond_secded_substantial(self, results):
        data = results["fig15"].data
        beyond = data["histogram"]["Checkered0"][3]
        assert beyond / data["total_words"] > 0.005


class TestScaling:
    def test_scaled_respects_minimum(self):
        assert scaled(1000, 0.001, minimum=8) == 8
        assert scaled(1000, 1.0) == 1000

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            scaled(100, 0.0)

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.setenv("HBMSIM_SCALE", "0.25")
        assert default_scale() == 0.25
        monkeypatch.setenv("HBMSIM_SCALE", "-1")
        with pytest.raises(ValueError):
            default_scale()
        monkeypatch.delenv("HBMSIM_SCALE")
        assert default_scale() == 1.0


class TestHeavyExperiments:
    """fig03 (thermal), fig08 (row profile), fig10/11 (HC_nth), sec7
    (probe) run individually with their own smaller budgets."""

    def test_fig03(self):
        result = run_experiment("fig03", 0.02)
        assert result.data["Chip 0"]["controlled"]
        assert result.data["Chip 0"]["mean_c"] == pytest.approx(82.0,
                                                                abs=1.5)
        for index in range(1, 6):
            assert result.data[f"Chip {index}"]["peak_to_peak_c"] < 4.0

    def test_fig08(self):
        result = run_experiment("fig08", 0.05)
        for channel_data in result.data["per_channel"].values():
            assert channel_data["resilient_over_normal"] < 0.80
        assert result.data["mid_over_edge"] > 1.1
        assert sorted(set(result.data["subarray_sizes"])) == [768, 832]

    def test_fig10(self):
        result = run_experiment("fig10", 0.5)
        means = result.data["mean_normalized"]["Rowstripe1"]
        assert means[0] == pytest.approx(1.0)
        assert means[-1] < 2.0
        lo, hi = result.data["normalized_range"]
        assert lo < 1.3 and hi > 2.5

    def test_fig11(self):
        result = run_experiment("fig11", 0.5)
        assert result.data["all_negative"] or (
            sum(1 for v in result.data["pearson"].values() if v < 0) >= 5)

    def test_sec7(self):
        result = run_experiment("sec7", 1.0)
        assert result.data["cadence"] == 17
        assert result.data["refreshes_both_neighbors"]
        assert result.data["first_activation_detected"]
        assert result.data["sampler_capacity"] == 4
        assert result.data["count_rule_at_half"]
        assert not result.data["count_rule_below_half"]
