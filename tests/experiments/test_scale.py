"""Strict scale handling: ``scaled()`` boundaries and ``HBMSIM_SCALE``.

The ISSUE-8 contract: a scale that parses but cannot scale a
population (NaN, inf, <= 0) fails loudly; an outright unparsable value
warns once per distinct value and falls back to 1.0, so a typo never
silently runs a different population.
"""

import warnings

import pytest

from repro.experiments import base
from repro.experiments.base import default_scale, scaled


class TestScaledBoundaries:
    def test_identity_at_full_scale(self):
        assert scaled(3072, 1.0) == 3072

    def test_minimum_clamp(self):
        assert scaled(3072, 1e-9) == 8
        assert scaled(3072, 1e-9, minimum=64) == 64

    def test_minimum_clamp_is_inclusive(self):
        # Exactly the minimum stays the minimum (no off-by-one).
        assert scaled(64, 1.0, minimum=64) == 64
        assert scaled(65, 1.0, minimum=64) == 65

    def test_rounds_to_nearest(self):
        assert scaled(1000, 0.0994, minimum=8) == 99
        assert scaled(1000, 0.0996, minimum=8) == 100

    def test_half_ties_round_to_even(self):
        # Python's round(): 30.5 -> 30, 31.5 -> 32.  Pinned so a
        # reimplementation cannot silently shift population sizes.
        assert scaled(1000, 0.0305, minimum=8) == 30
        assert scaled(1000, 0.0315, minimum=8) == 32

    def test_scale_above_one_grows(self):
        assert scaled(1000, 2.5) == 2500

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(ValueError):
            scaled(100, 0.0)
        with pytest.raises(ValueError):
            scaled(100, -0.25)


class TestDefaultScaleStrict:
    @pytest.fixture(autouse=True)
    def _fresh_warn_state(self, monkeypatch):
        monkeypatch.setattr(base, "_WARNED_SCALE_VALUES", set())

    def test_unset_and_blank_default_to_one(self, monkeypatch):
        monkeypatch.delenv("HBMSIM_SCALE", raising=False)
        assert default_scale() == 1.0
        monkeypatch.setenv("HBMSIM_SCALE", "   ")
        assert default_scale() == 1.0

    def test_parsable_value_wins(self, monkeypatch):
        monkeypatch.setenv("HBMSIM_SCALE", "0.125")
        assert default_scale() == 0.125

    @pytest.mark.parametrize("value", ["nan", "NaN", "inf", "-inf",
                                       "0", "0.0", "-1", "-0.25"])
    def test_unusable_numbers_fail_loudly(self, monkeypatch, value):
        monkeypatch.setenv("HBMSIM_SCALE", value)
        with pytest.raises(ValueError):
            default_scale()

    def test_unparsable_warns_once_then_defaults(self, monkeypatch):
        monkeypatch.setenv("HBMSIM_SCALE", "quarter")
        with pytest.warns(RuntimeWarning, match="quarter"):
            assert default_scale() == 1.0
        # Second read of the same typo: silent, same fallback.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert default_scale() == 1.0

    def test_distinct_typos_each_warn(self, monkeypatch):
        monkeypatch.setenv("HBMSIM_SCALE", "fast")
        with pytest.warns(RuntimeWarning):
            default_scale()
        monkeypatch.setenv("HBMSIM_SCALE", "slow")
        with pytest.warns(RuntimeWarning):
            default_scale()
