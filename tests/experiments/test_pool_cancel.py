"""ResilientPool submission/cancellation tests (satellite: the pool's
``cancel()`` must release the slot immediately by killing the worker,
not wait out a timeout)."""

import multiprocessing
import time

import pytest

from repro.errors import HbmSimError, UnknownExperimentError
from repro.experiments import registry
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ResilientPool

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="pool requires the fork start method")

pytestmark = needs_fork


def _pool_quick(scale: float) -> ExperimentResult:
    return ExperimentResult(experiment_id="pool-quick",
                            title="pool-quick", text="ran pool-quick")


def _pool_hang(scale: float) -> ExperimentResult:
    time.sleep(60.0)
    return ExperimentResult(experiment_id="pool-hang",
                            title="pool-hang", text="ran pool-hang")


@pytest.fixture()
def pool_registry(monkeypatch):
    monkeypatch.setitem(registry.EXPERIMENTS, "pool-quick", _pool_quick)
    monkeypatch.setitem(registry.EXPERIMENTS, "pool-hang", _pool_hang)


@pytest.fixture()
def pool(pool_registry):
    pool = ResilientPool(slots=1)
    yield pool
    pool.shutdown()


class TestSubmit:
    def test_submit_returns_a_waitable_job(self, pool):
        job = pool.submit("pool-quick")
        record = job.wait(timeout=30.0)
        assert job.done()
        assert record.status == "ok"
        assert record.result.text == "ran pool-quick"

    def test_submit_validates_arguments(self, pool):
        with pytest.raises(UnknownExperimentError):
            pool.submit("no-such-experiment")
        with pytest.raises(ValueError):
            pool.submit("pool-quick", retries=-1)
        with pytest.raises(ValueError):
            pool.submit("pool-quick", timeout=0)

    def test_wait_timeout_raises(self, pool):
        job = pool.submit("pool-hang")
        with pytest.raises(TimeoutError):
            job.wait(timeout=0.2)
        assert pool.cancel(job.invocation_id)

    def test_completion_callback_fires(self, pool):
        seen = []
        job = pool.submit("pool-quick", on_done=seen.append)
        job.wait(timeout=30.0)
        assert seen == [job]


class TestCancel:
    def test_cancel_running_releases_the_slot_immediately(self, pool):
        """The slot must be usable right away — not after pool-hang's
        60 s sleep — because cancel kills the worker process."""
        hung = pool.submit("pool-hang")
        deadline = time.monotonic() + 10.0
        while hung.record.status == "pending" \
                and not hung.done() and time.monotonic() < deadline:
            if pool.cancel(hung.invocation_id):
                break
            time.sleep(0.01)
        assert pool.cancel(hung.invocation_id) or hung.done()
        record = hung.wait(timeout=10.0)
        assert record.status == "cancelled"
        assert hung.exception is not None

        started = time.monotonic()
        follow = pool.submit("pool-quick")
        assert follow.wait(timeout=30.0).status == "ok"
        assert time.monotonic() - started < 30.0

    def test_cancel_pending_never_occupies_a_worker(self, pool):
        hung = pool.submit("pool-hang")
        queued = pool.submit("pool-quick")
        assert pool.cancel(queued.invocation_id)
        record = queued.wait(timeout=5.0)
        assert record.status == "cancelled"
        assert record.attempts == 0
        pool.cancel(hung.invocation_id)

    def test_cancel_unknown_or_finished_returns_false(self, pool):
        job = pool.submit("pool-quick")
        job.wait(timeout=30.0)
        assert not pool.cancel(job.invocation_id)
        assert not pool.cancel(12345)

    def test_cancel_wins_a_race_with_completion(self, pool):
        """Once cancel() returns True the record terminates
        'cancelled', even if the worker's reply was already in the
        pipe."""
        for _ in range(5):
            job = pool.submit("pool-quick")
            if pool.cancel(job.invocation_id):
                assert job.wait(timeout=10.0).status == "cancelled"
            else:
                assert job.wait(timeout=10.0).status == "ok"


class TestShutdown:
    def test_shutdown_finalizes_unfinished_jobs(self, pool_registry):
        pool = ResilientPool(slots=1)
        hung = pool.submit("pool-hang")
        queued = pool.submit("pool-quick")
        pool.shutdown()
        assert hung.wait(timeout=1.0).status == "cancelled"
        assert queued.wait(timeout=1.0).status == "cancelled"

    def test_submit_after_shutdown_rejected(self, pool_registry):
        pool = ResilientPool(slots=1)
        pool.shutdown()
        with pytest.raises(HbmSimError):
            pool.submit("pool-quick")
        pool.shutdown()  # idempotent
