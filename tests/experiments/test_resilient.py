"""Tests for the resilient runner: retries, timeouts, crash recovery,
keep-going degradation, and checkpoint/resume."""

import multiprocessing
import os
from pathlib import Path

import pytest

from repro.errors import (ExperimentError, ExperimentTimeoutError,
                          HbmSimError, UnknownExperimentError)
from repro.experiments import registry
from repro.experiments.__main__ import main
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import backoff_delay, run_resilient

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="pool path requires the fork start method")

MARKER_ENV = "HBMSIM_TEST_MARKER"


def _result(experiment_id: str) -> ExperimentResult:
    return ExperimentResult(experiment_id=experiment_id,
                            title=experiment_id, text=f"ran {experiment_id}")


# Chaos experiments must live at module level so fork workers inherit
# them through the monkeypatched registry.
def _chaos_ok(scale: float) -> ExperimentResult:
    return _result("chaos-ok")


def _chaos_ok2(scale: float) -> ExperimentResult:
    return _result("chaos-ok2")


def _chaos_bad(scale: float) -> ExperimentResult:
    raise RuntimeError("injected failure")


def _chaos_flaky(scale: float) -> ExperimentResult:
    """Fail until the marker file exists, creating it on the way out."""
    marker = Path(os.environ[MARKER_ENV])
    if not marker.exists():
        marker.write_text("seen")
        raise RuntimeError("flaky: first attempt")
    return _result("chaos-flaky")


def _chaos_crash(scale: float) -> ExperimentResult:
    """Kill the worker process outright on the first attempt."""
    marker = Path(os.environ[MARKER_ENV])
    if not marker.exists():
        marker.write_text("seen")
        os._exit(97)
    return _result("chaos-crash")


def _chaos_sleep(scale: float) -> ExperimentResult:
    import time
    time.sleep(30.0)
    return _result("chaos-sleep")


@pytest.fixture()
def chaos_registry(monkeypatch, tmp_path):
    for name, fn in [("chaos-ok", _chaos_ok), ("chaos-ok2", _chaos_ok2),
                     ("chaos-bad", _chaos_bad),
                     ("chaos-flaky", _chaos_flaky),
                     ("chaos-crash", _chaos_crash),
                     ("chaos-sleep", _chaos_sleep)]:
        monkeypatch.setitem(registry.EXPERIMENTS, name, fn)
    monkeypatch.setenv(MARKER_ENV, str(tmp_path / "marker"))
    return tmp_path


class TestInlinePath:
    def test_keep_going_returns_partial_results(self, chaos_registry):
        records = run_resilient(["chaos-ok", "chaos-bad", "chaos-ok2"],
                                keep_going=True)
        assert [r.status for r in records] == ["ok", "failed", "ok"]
        assert records[0].result.text == "ran chaos-ok"
        assert records[1].result is None
        assert "RuntimeError" in records[1].error
        assert "injected failure" in records[1].error
        assert records[1].attempts == 1

    def test_fail_fast_raises_experiment_error(self, chaos_registry):
        with pytest.raises(ExperimentError) as excinfo:
            run_resilient(["chaos-ok", "chaos-bad"])
        assert excinfo.value.experiment_id == "chaos-bad"
        assert isinstance(excinfo.value, HbmSimError)

    def test_retry_recovers_flaky_experiment(self, chaos_registry):
        records = run_resilient(["chaos-flaky"], retries=2,
                                retry_delay=0.01)
        assert records[0].status == "retried"
        assert records[0].attempts == 2
        assert records[0].result.text == "ran chaos-flaky"

    def test_retries_exhausted_keeps_failure(self, chaos_registry):
        records = run_resilient(["chaos-bad"], retries=2,
                                retry_delay=0.01, keep_going=True)
        assert records[0].status == "failed"
        assert records[0].attempts == 3

    def test_unknown_id_rejected_before_running(self, chaos_registry):
        with pytest.raises(UnknownExperimentError):
            run_resilient(["chaos-ok", "no-such-exp"])

    def test_argument_validation(self, chaos_registry):
        with pytest.raises(ValueError):
            run_resilient(["chaos-ok"], retries=-1)
        with pytest.raises(ValueError):
            run_resilient(["chaos-ok"], timeout=0)
        with pytest.raises(HbmSimError):
            run_resilient(["chaos-ok"], resume=True)

    def test_backoff_is_deterministic_and_exponential(self):
        first = backoff_delay("fig05", 1, base=0.25)
        again = backoff_delay("fig05", 1, base=0.25)
        second = backoff_delay("fig05", 2, base=0.25)
        assert first == again
        assert 0.25 <= first <= 0.375
        assert 0.5 <= second <= 0.75
        assert backoff_delay("fig07", 1, base=0.25) != first


@needs_fork
class TestPoolPath:
    def test_worker_crash_is_retried(self, chaos_registry):
        records = run_resilient(
            ["chaos-ok", "chaos-crash", "chaos-ok2"],
            jobs=2, retries=1, retry_delay=0.01, keep_going=True)
        assert [r.experiment_id for r in records] \
            == ["chaos-ok", "chaos-crash", "chaos-ok2"]
        by_id = {r.experiment_id: r for r in records}
        assert by_id["chaos-crash"].status == "retried"
        assert by_id["chaos-crash"].attempts == 2
        # Survivors are unaffected by the crashed sibling.
        assert by_id["chaos-ok"].status == "ok"
        assert by_id["chaos-ok2"].status == "ok"

    def test_worker_crash_without_retry_fails(self, chaos_registry):
        records = run_resilient(["chaos-crash"], jobs=1, timeout=30.0,
                                keep_going=True)
        assert records[0].status == "failed"
        assert "worker" in records[0].error.lower()

    def test_timeout_kills_hung_experiment(self, chaos_registry):
        records = run_resilient(["chaos-sleep", "chaos-ok"], jobs=2,
                                timeout=1.0, keep_going=True)
        by_id = {r.experiment_id: r for r in records}
        assert by_id["chaos-sleep"].status == "timeout"
        assert "timed out" in by_id["chaos-sleep"].error.lower()
        assert by_id["chaos-ok"].status == "ok"

    def test_timeout_fail_fast_raises(self, chaos_registry):
        with pytest.raises(ExperimentTimeoutError):
            run_resilient(["chaos-sleep"], jobs=1, timeout=0.5)


class TestCheckpointResume:
    def test_resume_reruns_only_failures(self, chaos_registry, tmp_path):
        run_dir = tmp_path / "run"
        first = run_resilient(["chaos-ok", "chaos-bad"], keep_going=True,
                              run_dir=run_dir)
        assert [r.status for r in first] == ["ok", "failed"]
        # "Fix" the failure, then resume: the survivor must come back
        # from its checkpoint without re-executing.
        registry.EXPERIMENTS["chaos-bad"] = _chaos_ok
        second = run_resilient(["chaos-ok", "chaos-bad"], keep_going=True,
                               run_dir=run_dir, resume=True)
        assert [r.status for r in second] == ["cached", "ok"]
        assert second[0].result.text == "ran chaos-ok"
        assert (run_dir / "records.json").exists()

    def test_resume_requires_matching_manifest(self, chaos_registry,
                                               tmp_path):
        run_dir = tmp_path / "run"
        run_resilient(["chaos-ok"], scale=0.5, keep_going=True,
                      run_dir=run_dir)
        with pytest.raises(HbmSimError):
            run_resilient(["chaos-ok"], scale=1.0, keep_going=True,
                          run_dir=run_dir, resume=True)

    def test_fresh_run_clears_stale_checkpoints(self, chaos_registry,
                                                tmp_path):
        run_dir = tmp_path / "run"
        run_resilient(["chaos-ok"], keep_going=True, run_dir=run_dir)
        # Without --resume, the same run-dir starts from scratch.
        records = run_resilient(["chaos-ok"], keep_going=True,
                                run_dir=run_dir)
        assert records[0].status == "ok"


class TestDeterministicSequence:
    def test_identical_chaos_runs_identical_records(self, chaos_registry,
                                                    tmp_path, monkeypatch):
        sequences = []
        for attempt in ("a", "b"):
            monkeypatch.setenv(MARKER_ENV,
                               str(tmp_path / f"marker-{attempt}"))
            records = run_resilient(
                ["chaos-ok", "chaos-flaky", "chaos-bad", "chaos-ok2"],
                retries=1, retry_delay=0.01, keep_going=True)
            sequences.append([(r.experiment_id, r.status, r.attempts)
                              for r in records])
        assert sequences[0] == sequences[1]
        assert sequences[0] == [
            ("chaos-ok", "ok", 1), ("chaos-flaky", "retried", 2),
            ("chaos-bad", "failed", 2), ("chaos-ok2", "ok", 1)]


class TestCliExitCodes:
    def test_unknown_id_suggests_and_exits_2(self, capsys):
        code = main(["fig9"])
        captured = capsys.readouterr()
        assert code == 2
        assert "did you mean" in captured.err
        assert "fig09" in captured.err

    def test_keep_going_partial_exit_1(self, chaos_registry, capsys):
        code = main(["chaos-ok", "chaos-bad", "--keep-going"])
        captured = capsys.readouterr()
        assert code == 1
        assert "ran chaos-ok" in captured.out
        assert "FAILED" in captured.out
        assert "RuntimeError" in captured.err
        assert "1 failed" in captured.err

    def test_fail_fast_exit_1(self, chaos_registry, capsys):
        code = main(["chaos-bad"])
        captured = capsys.readouterr()
        assert code == 1
        assert "injected failure" in captured.err

    def test_resume_flag_requires_run_dir(self, chaos_registry, capsys):
        code = main(["chaos-ok", "--resume"])
        assert code == 2
