"""Tests for the parallel experiment runner and the bench harness."""

import json

import pytest

from repro.experiments import bench
from repro.experiments.__main__ import main
from repro.experiments.registry import (EXPERIMENTS, run_all, run_many,
                                        run_timed)

#: Cheap, deterministic subset exercised both serially and in parallel.
IDS = ["table1", "fig04", "fig09", "fig14"]
SCALE = 0.02


class TestParallelEquivalence:
    def test_parallel_matches_serial_reports(self):
        """jobs=4 must render byte-identical report text in the same
        order as the serial runner (ISSUE equivalence invariant)."""
        serial = run_many(IDS, SCALE, jobs=1)
        parallel = run_many(IDS, SCALE, jobs=4)
        assert [r.experiment_id for r in parallel] == IDS
        assert [r.text for r in parallel] == [r.text for r in serial]

    def test_run_all_accepts_jobs(self):
        """run_all(jobs=...) routes through the same order-preserving
        runner; serial jobs=1 keeps the paper order exactly."""
        results = run_all(0.01, jobs=1)
        assert [r.experiment_id for r in results] == list(EXPERIMENTS)

    def test_unknown_id_rejected_before_spawning(self):
        with pytest.raises(KeyError):
            run_many(["table1", "fig99"], SCALE, jobs=4)

    def test_run_timed_reports_wall_times(self):
        results, records = run_timed(["table1"], SCALE)
        assert results[0].experiment_id == "table1"
        assert [r.experiment_id for r in records] == ["table1"]
        assert records[0].status == "ok"
        assert records[0].elapsed > 0

    def test_duplicate_ids_keep_per_invocation_records(self):
        """run_timed(["x", "x"]) must not collapse the timing entries
        (historical dict-comprehension bug)."""
        results, records = run_timed(["table1", "table1"], SCALE)
        assert [r.experiment_id for r in results] == ["table1", "table1"]
        assert [(r.experiment_id, r.index) for r in records] \
            == [("table1", 0), ("table1", 1)]
        assert all(r.status == "ok" for r in records)


class TestBenchHarness:
    def test_record_creates_and_appends(self, tmp_path):
        path = tmp_path / "BENCH_experiments.json"
        bench.record_run({"fig05": 1.25}, scale=0.25, jobs=1,
                         cache="cold", path=str(path))
        bench.record_run({"fig05": 0.40, "fig07": 0.30}, scale=0.25,
                         jobs=2, cache="warm", path=str(path))
        payload = json.loads(path.read_text())
        assert payload["schema"] == 5
        assert len(payload["runs"]) == 2
        first, second = payload["runs"]
        assert first["cache"] == "cold"
        assert first["geometry"] == bench.geometry_label()
        assert bench.experiment_seconds(
            first["experiments"]["fig05"]) == 1.25
        assert isinstance(first["batch"], bool)
        assert first["faults"] is False
        assert first["repeats"] == 1
        assert first["peak_rss_mb"] > 0
        assert second["jobs"] == 2
        assert second["total_seconds"] == pytest.approx(0.70)

    def test_median_entries_and_repeats(self, tmp_path):
        """Schema 3: repeated sweeps record the lower-median sample."""
        samples = [
            {"fig05": {"seconds": 1.4,
                       "phases": {"execute": 1.4}}},
            {"fig05": {"seconds": 0.9, "phases": {"execute": 0.9}},
             "fig07": 0.5},
            {"fig05": {"seconds": 1.1, "phases": {"execute": 1.1}}},
        ]
        entries = bench.median_entries(samples)
        assert entries["fig05"]["seconds"] == 1.1
        assert entries["fig05"]["phases"] == {"execute": 1.1}
        assert entries["fig07"]["seconds"] == 0.5  # single sample
        path = tmp_path / "bench.json"
        bench.record_run(entries, scale=0.25, repeats=len(samples),
                         path=str(path))
        run = json.loads(path.read_text())["runs"][0]
        assert run["repeats"] == 3
        assert run["experiments"]["fig05"]["seconds"] == 1.1

    def test_schema2_phases_batch_and_wall(self, tmp_path):
        path = tmp_path / "bench.json"
        bench.record_run(
            {"fig05": {"seconds": 1.0,
                       "phases": {"calibrate": 0.4, "execute": 0.6}}},
            scale=0.1, batch=False, wall_seconds=1.25, path=str(path))
        run = json.loads(path.read_text())["runs"][0]
        assert run["batch"] is False
        assert run["wall_seconds"] == 1.25
        assert run["experiments"]["fig05"]["phases"]["calibrate"] == 0.4
        assert bench.experiment_seconds(run["experiments"]["fig05"]) == 1.0

    def test_experiment_seconds_reads_schema1_floats(self):
        """Checked-in schema-1 baselines must stay readable (the CI
        perf gate compares against them)."""
        assert bench.experiment_seconds(1.2838) == 1.2838
        assert bench.experiment_seconds({"seconds": 0.31}) == 0.31

    def test_run_records_carry_phases_into_bench(self, tmp_path):
        path = tmp_path / "bench.json"
        __, records = run_timed(["table1"], SCALE)
        assert "execute" in records[0].result.phases
        assert "report" in records[0].result.phases
        bench.record_run(records, SCALE, path=str(path))
        entry = json.loads(path.read_text())["runs"][0] \
            ["experiments"]["table1"]
        assert entry["phases"]
        assert entry["seconds"] == pytest.approx(records[0].elapsed,
                                                 abs=1e-3)

    def test_corrupt_file_is_replaced(self, tmp_path):
        path = tmp_path / "BENCH_experiments.json"
        path.write_text("not json")
        bench.record_run({"fig05": 1.0}, scale=0.1, path=str(path))
        payload = json.loads(path.read_text())
        assert len(payload["runs"]) == 1

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HBMSIM_BENCH_PATH",
                           str(tmp_path / "bench.json"))
        assert bench.bench_path() == tmp_path / "bench.json"

    def test_cache_state_classification(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HBMSIM_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv("HBMSIM_NO_CACHE", raising=False)
        assert bench.cache_state() == "cold"
        (tmp_path / "cache").mkdir()
        (tmp_path / "cache" / "fweak-abc.json").write_text("{}")
        assert bench.cache_state() == "warm"
        monkeypatch.setenv("HBMSIM_NO_CACHE", "1")
        assert bench.cache_state() == "disabled"


class TestCli:
    def test_jobs_and_bench_flags(self, tmp_path, capsys):
        path = tmp_path / "BENCH_experiments.json"
        code = main(["table1", "table2", "--scale", "0.02",
                     "-j", "2", "--bench", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert out.index("=== table1") < out.index("=== table2")
        payload = json.loads(path.read_text())
        assert set(payload["runs"][0]["experiments"]) \
            == {"table1", "table2"}
        assert payload["runs"][0]["jobs"] == 2

    def test_serial_cli_unchanged(self, capsys):
        assert main(["table1", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "=== table1" in out
        assert "Table 1" in out


class TestBenchCompare:
    def record(self, path, timings, **kwargs):
        bench.record_run(timings, scale=0.25, cache="warm",
                         path=str(path), **kwargs)

    def test_reports_speedup_and_regression(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self.record(a, {"fig05": 10.0, "fig07": 4.0},
                    wall_seconds=15.0)
        self.record(b, {"fig05": 2.5, "fig07": 5.0, "fig14": 1.0},
                    jobs=4, wall_seconds=6.0)
        report = bench.compare_runs(str(a), str(b))
        assert "fig05" in report and "4.00x" in report
        assert "REGRESSION" in report        # fig07 slowed 0.8x
        assert "only in B" in report         # fig14 absent from A
        assert "wall" in report
        assert "run parameters differ (jobs)" in report

    def test_compares_last_runs(self, tmp_path):
        a = tmp_path / "a.json"
        self.record(a, {"fig05": 99.0})
        self.record(a, {"fig05": 10.0})
        report = bench.compare_runs(str(a), str(a))
        assert "10.0000" not in report       # formatted at 10.000
        assert "99.000" not in report        # older run ignored
        assert "1.00x" in report

    def test_empty_file_raises(self, tmp_path):
        from repro.errors import HbmSimError

        a = tmp_path / "a.json"
        self.record(a, {"fig05": 1.0})
        with pytest.raises(HbmSimError):
            bench.compare_runs(str(a), str(tmp_path / "missing.json"))

    def test_cli_entry(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self.record(a, {"fig05": 2.0})
        self.record(b, {"fig05": 1.0})
        assert main(["--bench-compare", str(a), str(b)]) == 0
        assert "2.00x" in capsys.readouterr().out
        assert main(["--bench-compare", str(a),
                     str(tmp_path / "missing.json")]) == 2
