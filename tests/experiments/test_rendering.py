"""Tests that each experiment's rendered report carries its headline
content (the text the benchmark harness archives and prints)."""

import pytest

from repro.experiments.registry import run_experiment

#: experiment id -> (scale, substrings the report must contain).
EXPECTATIONS = {
    "table1": (1.0, ["Table 1", "Rowstripe0", "0x55", "0xAA"]),
    "table2": (1.0, ["Table 2", "RowHammer BER", "16384"]),
    "table3": (1.0, ["Table 3", "Bittware XUPVVH",
                     "AMD Xilinx Alveo U50"]),
    "fig03": (0.02, ["Fig. 3", "82 C setpoint", "uncontrolled"]),
    "fig04": (0.01, ["Fig. 4", "Mean BER", "paper: 0.76% vs 0.67%"]),
    "fig05": (0.01, ["Fig. 5", "minimum HC_first", "paper: 3556"]),
    "fig06": (0.01, ["Fig. 6", "CH7/CH3", "paper: 1.99x"]),
    "fig07": (0.01, ["Fig. 7", "Rowstripe0 vs Rowstripe1",
                     "103905"]),
    "fig08": (0.02, ["Fig. 8", "832", "768", "Resilient"]),
    "fig09": (0.05, ["Fig. 9", "paper: 256",
                     "bimodality coefficient"]),
    "fig10": (0.1, ["Fig. 10", "HC_10", "paper: 1.15x .. 5.22x"]),
    "fig11": (0.1, ["Fig. 11", "Pearson", "decreasing"]),
    "fig12": (0.05, ["Fig. 12", "35.1 us", "polarity cap"]),
    "fig13": (0.1, ["Fig. 13", "222.57x", "16 ms"]),
    "fig14": (0.05, ["Fig. 14", "budget", "paper: 78", "paper: 4"]),
    "fig15": (0.01, ["Fig. 15", "974,935", "Hamming(7,4)"]),
}


@pytest.mark.parametrize("experiment_id", sorted(EXPECTATIONS))
def test_report_contains_headlines(experiment_id):
    scale, substrings = EXPECTATIONS[experiment_id]
    result = run_experiment(experiment_id, scale)
    for substring in substrings:
        assert substring in result.text, (experiment_id, substring)


def test_sec7_report(chip_sec7_result):
    text = chip_sec7_result.text
    for substring in ("Obsv. 24", "Obsv. 25", "Obsv. 26", "Obsv. 27",
                      "17"):
        assert substring in text


@pytest.fixture(scope="module")
def chip_sec7_result():
    return run_experiment("sec7", 1.0)
