"""Unit tests for the scorecard mechanics (the full run is a benchmark)."""

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.scorecard import (CLAIMS, Claim, DEFAULT_SCALES,
                                         Scorecard, _within_abs,
                                         _within_factor)


def make_result(data) -> ExperimentResult:
    return ExperimentResult("x", "t", "text", data, {})


class TestComparators:
    def test_within_factor(self):
        check = _within_factor(2.0)
        assert check(1.0, 1.9)
        assert check(1.9, 1.0)
        assert not check(1.0, 2.1)
        assert not check(-1.0, 1.0)

    def test_within_abs(self):
        check = _within_abs(0.5)
        assert check(1.0, 1.4)
        assert not check(1.0, 1.6)


class TestClaimEvaluation:
    def test_pass_and_fail(self):
        claim = Claim("c", "x", "d", 10.0,
                      lambda r: r.data["v"], _within_factor(1.5))
        assert claim.evaluate(make_result({"v": 12.0})).passed
        assert not claim.evaluate(make_result({"v": 30.0})).passed

    def test_outcome_carries_measured(self):
        claim = Claim("c", "x", "d", 10.0,
                      lambda r: r.data["v"], _within_factor(1.5))
        outcome = claim.evaluate(make_result({"v": 12.0}))
        assert outcome.measured == 12.0


class TestRegistry:
    def test_claim_count(self):
        assert len(CLAIMS) >= 30

    def test_claim_ids_unique(self):
        ids = [claim.claim_id for claim in CLAIMS]
        assert len(ids) == len(set(ids))

    def test_every_claim_experiment_has_scale(self):
        for claim in CLAIMS:
            assert claim.experiment_id in DEFAULT_SCALES

    def test_claims_cover_every_analysis_section(self):
        experiments = {claim.experiment_id for claim in CLAIMS}
        assert {"fig04", "fig05", "fig06", "fig08", "fig09", "fig10",
                "fig11", "fig12", "fig13", "sec7", "fig14",
                "fig15"} <= experiments


class TestRendering:
    def test_render_counts(self):
        claim = Claim("c", "x", "d", True, lambda r: True,
                      lambda m, p: m is True)
        outcome = claim.evaluate(make_result({}))
        scorecard = Scorecard([outcome], {})
        text = scorecard.render()
        assert "1/1 headline claims reproduced" in text
        assert "PASS" in text
