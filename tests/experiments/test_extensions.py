"""Tests for the extension experiments (Section 8 implications)."""

import pytest

from repro.experiments.registry import EXTENSIONS, run_experiment


class TestRegistry:
    def test_extensions_registered(self):
        assert set(EXTENSIONS) == {"ext-defenses", "ext-temperature"}

    def test_extensions_not_in_paper_sweep(self):
        from repro.experiments.registry import EXPERIMENTS

        assert not set(EXTENSIONS) & set(EXPERIMENTS)

    def test_run_experiment_resolves_extensions(self):
        result = run_experiment("ext-temperature", 0.2)
        assert result.experiment_id == "ext-temperature"


class TestTemperatureExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext-temperature", 0.2)

    def test_hc_first_monotone_decreasing(self, result):
        series = result.data["hc_first"]
        values = [series[t] for t in sorted(series)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_retention_worsens_with_heat(self, result):
        retention = result.data["retention"]
        assert retention[102.0] > retention[82.0]


class TestDefenseExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext-defenses", 0.2)

    def test_undefended_flips(self, result):
        assert result.data["none"]["double_sided_flips"] > 0

    def test_all_defenses_stop_double_sided(self, result):
        for name in ("PARA", "RowPress-PARA", "Graphene", "BlockHammer"):
            assert result.data[name]["double_sided_flips"] == 0, name

    def test_only_rowpress_aware_stops_rowpress(self, result):
        assert result.data["RowPress-PARA"]["rowpress_flips"] == 0
        assert result.data["PARA"]["rowpress_flips"] > 0

    def test_benign_costs_ranked(self, result):
        para = result.data["PARA"]["benign_refreshes_per_kilo_act"]
        graphene = result.data["Graphene"][
            "benign_refreshes_per_kilo_act"]
        assert graphene < 0.2 * para
        assert result.data["BlockHammer"]["benign_slowdown"] < 0.01
