"""Integration tests: attacks vs defended devices."""

import pytest

from repro.defenses import (BlockHammer, Graphene, HeterogeneousGraphene,
                            Para, RowPressAwarePara, burst_double_sided,
                            defended_session, evaluate,
                            para_probability_for, pick_vulnerable_victim,
                            rowpress_burst)
from repro.dram.geometry import RowAddress


@pytest.fixture(scope="module")
def victim(chip0_module):
    return pick_vulnerable_victim(chip0_module)


@pytest.fixture(scope="module")
def chip0_module():
    from repro.chips.profiles import make_chip

    return make_chip(0)


@pytest.fixture(scope="module")
def para_p(chip0_module):
    return para_probability_for(14_000)


class TestUndefendedBaseline:
    def test_double_sided_flips(self, chip0_module, victim):
        session = defended_session(chip0_module, None)
        assert burst_double_sided(session, victim) > 0

    def test_rowpress_flips(self, chip0_module, victim):
        session = defended_session(chip0_module, None)
        assert rowpress_burst(session, victim) > 0


class TestParaDefense:
    def test_blocks_double_sided(self, chip0_module, victim, para_p):
        controller = Para(probability=para_p,
                          believed_mapping=chip0_module.row_mapping())
        session = defended_session(chip0_module, controller)
        assert burst_double_sided(session, victim) == 0
        assert controller.stats.preventive_refreshes > 0

    def test_overhead_near_design_probability(self, chip0_module, victim,
                                              para_p):
        controller = Para(probability=para_p,
                          believed_mapping=chip0_module.row_mapping())
        session = defended_session(chip0_module, controller)
        burst_double_sided(session, victim)
        assert controller.stats.refresh_overhead() == pytest.approx(
            para_p, rel=0.25)

    def test_plain_para_misses_rowpress(self, chip0_module, victim,
                                        para_p):
        """Takeaway 7's defense gap: activation-count-based sampling
        undercounts long-open aggressors."""
        controller = Para(probability=para_p,
                          believed_mapping=chip0_module.row_mapping())
        session = defended_session(chip0_module, controller)
        assert rowpress_burst(session, victim) > 0

    def test_rowpress_aware_para_closes_the_gap(self, chip0_module,
                                                victim, para_p):
        controller = RowPressAwarePara(
            probability=para_p,
            believed_mapping=chip0_module.row_mapping())
        session = defended_session(chip0_module, controller)
        assert rowpress_burst(session, victim) == 0


class TestGrapheneDefense:
    def test_blocks_double_sided_cheaply(self, chip0_module, victim,
                                         para_p):
        controller = Graphene(
            threshold=3500,
            believed_mapping=chip0_module.row_mapping())
        session = defended_session(chip0_module, controller)
        assert burst_double_sided(session, victim) == 0
        # Deterministic counting refreshes far less often than PARA.
        assert controller.stats.refresh_overhead() < para_p

    def test_xor_scramble_halves_protection_but_survives(
            self, chip0_module, victim):
        """Chip 0's XOR scramble displaces rows by at most 2, so an
        identity-assuming controller still lands one of its two victim
        refreshes on the real victim — protection degrades but holds."""
        controller = Graphene(threshold=3500, believed_mapping=None)
        session = defended_session(chip0_module, controller)
        assert burst_double_sided(session, victim) == 0

    def test_wrong_mapping_breaks_graphene(self, chip0_module):
        """Vendors hiding their row scramble hurts defenses: under the
        block-interleave layout the physically adjacent aggressors live
        far away logically, so an identity-assuming controller refreshes
        rows that are never the real victims."""
        from repro.bender.host import BenderSession
        from repro.defenses.base import DefendedDevice
        from repro.dram.device import HBM2Stack
        from repro.dram.row_mapping import BlockInterleaveMapping
        from repro.dram.trr import TrrConfig

        mapping = BlockInterleaveMapping(chip0_module.geometry.rows)

        def session_with(controller):
            device = HBM2Stack(profile_provider=chip0_module,
                               retention=chip0_module.retention,
                               trr_config=TrrConfig(enabled=False),
                               row_mapping=mapping)
            if controller is not None:
                device = DefendedDevice(device, controller)
            return BenderSession(device, mapping=mapping)

        # Physical row 3 of a group: its logical address under the
        # interleave has both physical neighbors > 2 logical rows away.
        victim = RowAddress(0, 0, 0, 155)  # 155 % 8 == 3
        blind = Graphene(threshold=3500, believed_mapping=None)
        assert burst_double_sided(session_with(blind), victim) > 0
        informed = Graphene(threshold=3500, believed_mapping=mapping)
        assert burst_double_sided(session_with(informed), victim) == 0


class TestBlockHammerDefense:
    def test_throttling_blocks_double_sided(self, chip0_module, victim):
        controller = BlockHammer(
            believed_mapping=chip0_module.row_mapping())
        session = defended_session(chip0_module, controller)
        assert burst_double_sided(session, victim) == 0
        assert controller.stats.preventive_refreshes == 0
        assert controller.stats.throttle_delay_ns > 1.0e9


class TestHeterogeneousGraphene:
    @pytest.fixture(scope="class")
    def controller_factory(self, chip0_module):
        def factory():
            return HeterogeneousGraphene(
                chip0_module,
                believed_mapping=chip0_module.row_mapping(),
                rows_per_subarray=8)

        return factory

    def test_still_protects_weak_rows(self, chip0_module, victim,
                                      controller_factory):
        session = defended_session(chip0_module, controller_factory())
        assert burst_double_sided(session, victim) == 0

    def test_local_thresholds_exceed_uniform(self, controller_factory):
        """Section 8.2: adapting to the heterogeneity buys headroom —
        resilient subarrays tolerate far more activations before a
        preventive refresh."""
        controller = controller_factory()
        assert controller.mean_threshold() > \
            1.5 * controller.uniform_equivalent_threshold()

    def test_saves_refreshes_on_resilient_rows(self, chip0_module,
                                               controller_factory):
        """Hammering a resilient-subarray row: the uniform design pays
        preventive refreshes the local silicon does not need."""
        layout = chip0_module.geometry.subarrays
        resilient_row = layout.rows_of(layout.last_subarray)[400]
        target = RowAddress(3, 0, 0, resilient_row)
        hetero = controller_factory()
        uniform = Graphene(
            threshold=hetero.uniform_equivalent_threshold(),
            believed_mapping=chip0_module.row_mapping())
        flips = {}
        for name, controller in (("hetero", hetero),
                                 ("uniform", uniform)):
            session = defended_session(chip0_module, controller)
            flips[name] = burst_double_sided(session, target,
                                             hammer_count=100_000)
        assert flips["hetero"] == 0 and flips["uniform"] == 0
        assert hetero.stats.preventive_refreshes < \
            uniform.stats.preventive_refreshes


class TestEvaluateHarness:
    def test_reports_structure(self, chip0_module, victim, para_p):
        reports = evaluate(
            chip0_module,
            lambda: Para(probability=para_p,
                         believed_mapping=chip0_module.row_mapping()),
            "para", victim)
        assert set(reports) == {"double_sided_burst", "rowpress_burst"}
        for report in reports.values():
            assert report.defense == "para"
            assert report.observed_activations > 0


class TestDefendedRefreshBurst:
    """DefendedDevice.refresh_burst == the sequential refresh() loop."""

    def _twin(self, chip0_module):
        from repro.defenses.base import DefendedDevice
        from repro.dram.trr import TrrConfig

        controller = Graphene(threshold=600, entries=8,
                              believed_mapping=chip0_module.row_mapping())
        device = chip0_module.make_device(
            trr_config=TrrConfig(enabled=False))
        return DefendedDevice(device, controller)

    def test_burst_matches_scalar_across_rollover(self, chip0_module):
        """Enough REFs to cross a tREFW boundary: the rollover must fire
        at the same REF index (same now_ns) on both paths."""
        scalar = self._twin(chip0_module)
        burst = self._twin(chip0_module)
        timings = scalar.device.timings
        # Seed tracker state so on_window_rollover has something to wipe.
        addr = RowAddress(0, 0, 0, 5000)
        for target in (scalar, burst):
            target.hammer(addr, 40)
        count = int(timings.t_refw / timings.t_rfc) + 37
        for __ in range(count):
            scalar.refresh(0, 0)
        burst.refresh_burst(0, 0, count)
        assert burst.device.now_ns == scalar.device.now_ns
        assert burst.device.stats.refs == scalar.device.stats.refs
        assert burst._window_start_ns == scalar._window_start_ns
        # The rollover wiped both trackers identically.
        for key, table in scalar.controller._tables.items():
            twin = burst.controller._tables[key]
            assert table.counters == twin.counters

    def test_small_burst_matches(self, chip0_module):
        scalar = self._twin(chip0_module)
        burst = self._twin(chip0_module)
        for __ in range(3):
            scalar.refresh(0, 0)
        burst.refresh_burst(0, 0, 3)
        assert burst.device.now_ns == scalar.device.now_ns
        assert burst._window_start_ns == scalar._window_start_ns
