"""Unit tests for the mitigation controllers."""

import numpy as np
import pytest

from repro.defenses.blockhammer import BlockHammer, CountingBloomFilter
from repro.defenses.graphene import Graphene, _BankTable
from repro.defenses.para import (Para, RowPressAwarePara,
                                 para_probability_for)
from repro.dram.geometry import RowAddress

ADDR = RowAddress(0, 0, 0, 1000)


class TestParaProbability:
    def test_design_equation(self):
        p = para_probability_for(14_000, failure_probability=1e-9)
        # (1 - p/2)^N must be at most the failure probability.
        assert (1 - p / 2) ** 14_000 <= 1e-9 * 1.01

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            para_probability_for(0)
        with pytest.raises(ValueError):
            para_probability_for(1000, failure_probability=1.5)


class TestPara:
    def test_sampling_rate(self):
        para = Para(probability=0.01)
        victims = para.observe(ADDR, 100_000, None, 0.0)
        assert len(victims) == pytest.approx(1000, rel=0.2)

    def test_victims_are_neighbors(self):
        para = Para(probability=1.0)
        victims = set(para.observe(ADDR, 10, None, 0.0))
        assert victims <= {999, 1001}

    def test_zero_count(self):
        assert Para(probability=0.5).observe(ADDR, 0, None, 0.0) == []

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Para(probability=0.0)

    def test_rowpress_aware_scales_with_on_time(self):
        plain = Para(probability=0.001, seed=1)
        aware = RowPressAwarePara(probability=0.001, seed=1)
        base = len(aware.observe(ADDR, 10_000, 29.0, 0.0))
        pressed = len(aware.observe(ADDR, 10_000, 35.1e3, 0.0))
        assert pressed > base * 10
        # Plain PARA cannot tell the difference.
        a = len(plain.observe(ADDR, 10_000, None, 0.0))
        b = len(plain.observe(ADDR, 10_000, None, 0.0))
        assert abs(a - b) < max(a, b)  # same order regardless of on-time


class TestMisraGries:
    def test_exact_below_capacity(self):
        table = _BankTable(entries=4)
        assert table.add(1, 10) == 10
        assert table.add(1, 5) == 15

    def test_decrement_all_on_overflow(self):
        table = _BankTable(entries=2)
        table.add(1, 5)
        table.add(2, 3)
        table.add(3, 3)  # evicts by decrementing
        # Row 2's counter (3) was consumed; row 3 may hold the rest.
        assert table.spill > 0

    def test_undercount_bounded(self):
        """Misra-Gries guarantee: estimate >= true - W/(entries+1)."""
        rng = np.random.default_rng(0)
        table = _BankTable(entries=8)
        true_counts = {}
        for __ in range(3000):
            row = int(rng.integers(0, 50))
            table.add(row, 1)
            true_counts[row] = true_counts.get(row, 0) + 1
        window = sum(true_counts.values())
        bound = window / (8 + 1)
        for row, true in true_counts.items():
            estimate = table.counters.get(row, 0)
            assert estimate >= true - bound - 1


class TestGraphene:
    def test_fires_at_threshold(self):
        graphene = Graphene(threshold=100, entries=8)
        victims = graphene.observe(ADDR, 100, None, 0.0)
        assert set(victims) == {999, 1001}

    def test_counter_resets_after_firing(self):
        graphene = Graphene(threshold=100, entries=8)
        graphene.observe(ADDR, 100, None, 0.0)
        assert graphene.observe(ADDR, 99, None, 0.0) == []

    def test_below_threshold_silent(self):
        graphene = Graphene(threshold=100, entries=8)
        assert graphene.observe(ADDR, 99, None, 0.0) == []

    def test_no_escape_through_eviction(self):
        """A heavy hitter cannot hide behind many one-off rows as long
        as its share exceeds the Misra-Gries bound W/(entries+1)."""
        graphene = Graphene(threshold=500, entries=4)
        fired = False
        for round_index in range(600):
            # Hitter rate 3/8 of the stream: true count 1800 of W=4800,
            # bound 4800/5 = 960, so the estimate stays >= 840 > 500.
            if graphene.observe(ADDR, 3, None, 0.0):
                fired = True
            for noise_row in range(5):
                graphene.observe(
                    RowAddress(0, 0, 0, 2000 + (round_index * 5
                                                + noise_row) % 500),
                    1, None, 0.0)
        assert fired

    def test_window_rollover_clears(self):
        graphene = Graphene(threshold=100, entries=8)
        graphene.observe(ADDR, 99, None, 0.0)
        graphene.on_window_rollover(1.0)
        assert graphene.observe(ADDR, 99, None, 0.0) == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Graphene(threshold=0)
        with pytest.raises(ValueError):
            Graphene(entries=0)


class TestCountingBloomFilter:
    def test_never_undercounts(self):
        cbf = CountingBloomFilter(size=256)
        rng = np.random.default_rng(0)
        true = {}
        for __ in range(500):
            key = int(rng.integers(0, 40))
            cbf.add(key)
            true[key] = true.get(key, 0) + 1
        for key, count in true.items():
            assert cbf.estimate(key) >= count

    def test_clear(self):
        cbf = CountingBloomFilter(size=64)
        cbf.add(7, 10)
        cbf.clear()
        assert cbf.estimate(7) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(size=4)


class TestBlockHammer:
    def test_no_throttle_below_blacklist(self):
        controller = BlockHammer(blacklist_threshold=1000)
        assert controller.throttle_ns(ADDR, 100, None, 0.0) == 0.0

    def test_throttles_above_blacklist(self):
        controller = BlockHammer(blacklist_threshold=100,
                                 max_safe_activations=8192)
        controller.observe(ADDR, 200, None, 0.0)
        delay = controller.throttle_ns(ADDR, 64, None, 0.0)
        assert delay > 0

    def test_pacing_caps_rate(self):
        """After throttling, a row's activations are paced to at most
        max_safe per refresh window."""
        controller = BlockHammer(blacklist_threshold=100,
                                 max_safe_activations=8192)
        now = 0.0
        total = 0
        while now < 32.0e6:  # one refresh window
            delay = controller.throttle_ns(ADDR, 64, None, now)
            now += delay
            if now >= 32.0e6:
                break
            controller.observe(ADDR, 64, None, now)
            total += 64
            now += 64 * 45.0
        assert total <= 8192 * 1.05

    def test_blacklist_flag(self):
        controller = BlockHammer(blacklist_threshold=100)
        assert not controller.is_blacklisted(ADDR)
        controller.observe(ADDR, 200, None, 0.0)
        assert controller.is_blacklisted(ADDR)

    def test_rollover_clears_filter(self):
        controller = BlockHammer(blacklist_threshold=100)
        controller.observe(ADDR, 200, None, 0.0)
        controller.on_window_rollover(32.0e6)
        assert not controller.is_blacklisted(ADDR)

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            BlockHammer(blacklist_threshold=8192,
                        max_safe_activations=8192)
