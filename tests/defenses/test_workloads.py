"""Tests for the benign-workload traces and overhead measurement."""

import numpy as np
import pytest

from repro.defenses import (BlockHammer, Graphene, Para,
                            para_probability_for)
from repro.workloads import benign_trace, measure_benign_overhead


@pytest.fixture(scope="module")
def chip():
    from repro.chips.profiles import make_chip

    return make_chip(0)


@pytest.fixture(scope="module")
def trace():
    return benign_trace(total_activations=30_000)


class TestTraceGeneration:
    def test_total_activations(self, trace):
        assert trace.total_activations == 30_000

    def test_zipf_popularity_shape(self, trace):
        """Hot rows exist but stay benign (single-digit percent share)."""
        share = trace.hottest_row_share()
        assert 0.005 < share < 0.08

    def test_broad_row_coverage(self, trace):
        assert trace.distinct_rows > 5_000

    def test_deterministic(self):
        a = benign_trace(total_activations=5_000, seed=9)
        b = benign_trace(total_activations=5_000, seed=9)
        assert a.epochs == b.epochs

    def test_seed_changes_trace(self):
        a = benign_trace(total_activations=5_000, seed=9)
        b = benign_trace(total_activations=5_000, seed=10)
        assert a.epochs != b.epochs

    def test_exponent_controls_concentration(self):
        flat = benign_trace(total_activations=20_000, zipf_exponent=0.2)
        hot = benign_trace(total_activations=20_000, zipf_exponent=1.4)
        assert hot.hottest_row_share() > 3 * flat.hottest_row_share()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            benign_trace(total_activations=0)
        with pytest.raises(ValueError):
            benign_trace(zipf_exponent=3.5)


class TestBenignOverhead:
    def test_no_defense_no_overhead(self, chip, trace):
        report = measure_benign_overhead(chip, lambda: None, "none",
                                         trace)
        assert report.preventive_refreshes == 0
        assert report.slowdown_fraction == 0.0
        assert report.corrupted_rows == 0

    def test_para_overhead_equals_probability(self, chip, trace):
        p = para_probability_for(14_000)
        report = measure_benign_overhead(
            chip,
            lambda: Para(probability=p,
                         believed_mapping=chip.row_mapping()),
            "para", trace)
        assert report.refreshes_per_kilo_act == pytest.approx(
            1000 * p, rel=0.25)
        assert report.corrupted_rows == 0

    def test_graphene_near_free_on_benign(self, chip, trace):
        report = measure_benign_overhead(
            chip,
            lambda: Graphene(threshold=3500,
                             believed_mapping=chip.row_mapping()),
            "graphene", trace)
        assert report.refreshes_per_kilo_act < 0.1
        assert report.corrupted_rows == 0

    def test_blockhammer_does_not_slow_benign(self, chip, trace):
        """The whole point of blacklisting: benign rows never get
        throttled."""
        report = measure_benign_overhead(
            chip,
            lambda: BlockHammer(believed_mapping=chip.row_mapping()),
            "blockhammer", trace)
        assert report.slowdown_fraction < 0.01
        assert report.corrupted_rows == 0
