"""Parity tests: ``observe_epoch`` vs the per-call ``observe`` path.

The epoch API's bit-identity contract is exact equality with the
sequential reference loop — returned victim lists (order included) AND
all controller-internal state, so the two paths stay interchangeable
under any continuation of the activation stream.
"""

import numpy as np
import pytest

from repro.defenses.base import MitigationController
from repro.defenses.blockhammer import BlockHammer, CountingBloomFilter
from repro.defenses.graphene import Graphene
from repro.defenses.heterogeneous import HeterogeneousGraphene
from repro.defenses.para import Para, RowPressAwarePara
from repro.dram.geometry import RowAddress


def entry_stream(rows=16384, length=400, seed=7):
    """A deterministic mixed stream of (address, count, t_on) entries."""
    rng = np.random.default_rng(seed)
    # A few hot rows (so thresholds actually trip) plus background noise.
    hot = rng.integers(8, rows - 8, size=6)
    entries = []
    for __ in range(length):
        if rng.random() < 0.5:
            row = int(hot[rng.integers(0, hot.size)])
        else:
            row = int(rng.integers(0, rows))
        count = int(rng.integers(1, 96))
        t_on = float(rng.choice([0.0, 121.0, 35_100.0])) or None
        bank = int(rng.integers(0, 4))
        entries.append((RowAddress(0, 0, bank, row), count, t_on))
    return entries


def run_both(factory, entries, now_ns=1.0e6):
    """Feed the same stream per-call and epoch-wise; return both."""
    reference, epoch = factory(), factory()
    ref_victims = []
    for address, count, t_on in entries:
        ref_victims.extend(reference.observe(address, count, t_on,
                                             now_ns))
    epoch_victims = epoch.observe_epoch(entries, now_ns)
    assert ref_victims == epoch_victims
    return reference, epoch


def assert_same_rng(a, b):
    """Both controllers' generators must sit at the same stream point."""
    assert a._rng.bit_generator.state == b._rng.bit_generator.state


class TestParaParity:
    def test_victims_and_rng_stream_match(self):
        ref, epoch = run_both(lambda: Para(probability=0.02),
                              entry_stream())
        assert_same_rng(ref, epoch)

    def test_rowpress_aware_victims_and_rng_match(self):
        ref, epoch = run_both(
            lambda: RowPressAwarePara(probability=0.002), entry_stream())
        assert_same_rng(ref, epoch)


class TestGrapheneParity:
    def test_tables_match_after_epoch(self):
        ref, epoch = run_both(
            lambda: Graphene(threshold=600, entries=8),
            entry_stream())
        assert set(ref._tables) == set(epoch._tables)
        for key, table in ref._tables.items():
            assert table.counters == epoch._tables[key].counters
            assert table.spill == epoch._tables[key].spill

    def test_threshold_crossings_occur(self):
        """Non-vacuous: the stream must actually trip the tracker."""
        graphene = Graphene(threshold=600, entries=8)
        victims = graphene.observe_epoch(entry_stream(), 0.0)
        assert victims


class TestHeterogeneousParity:
    @pytest.fixture(scope="class")
    def hetero_factory(self, chip0):
        thresholds = None

        def factory():
            nonlocal thresholds
            controller = HeterogeneousGraphene(chip0, entries=8,
                                               rows_per_subarray=8)
            if thresholds is None:
                thresholds = controller.local_thresholds
            else:
                # Reuse the (deterministic) profiling result; rebuilding
                # it per instance only costs test time.
                controller.local_thresholds = thresholds
            return controller

        return factory

    def test_victims_and_tables_match(self, hetero_factory):
        ref, epoch = run_both(hetero_factory, entry_stream(length=250))
        for key, table in ref._tables.items():
            assert table.counters == epoch._tables[key].counters


class TestBlockHammerParity:
    def test_filter_counts_match(self):
        ref, epoch = run_both(lambda: BlockHammer(rng=np.random.
                                                  default_rng(3)),
                              entry_stream())
        assert np.array_equal(ref.filter.counts, epoch.filter.counts)

    def test_add_many_dedupes_colliding_indices(self):
        """A key whose hash indices collide must add its count once per
        distinct slot — fancy-index += semantics, not scatter-add."""
        rng = np.random.default_rng(0)
        fltr = CountingBloomFilter(size=8, hashes=6, rng=rng)
        collider = None
        for key in range(4096):
            if np.unique(fltr._indices(key)).size < fltr.hashes:
                collider = key
                break
        assert collider is not None, "no colliding key in a size-8 filter?"
        sequential = CountingBloomFilter(size=8, hashes=6,
                                         rng=np.random.default_rng(0))
        sequential.add(collider, 5)
        fltr.add_many([collider], [5])
        assert np.array_equal(sequential.counts, fltr.counts)


class TestBaseReferenceLoop:
    def test_empty_epoch(self):
        assert Para().observe_epoch([], 0.0) == []
        assert BlockHammer().observe_epoch([], 0.0) == []

    def test_reference_loop_is_default(self):
        """A minimal subclass inherits the per-call reference loop."""

        class Recorder(MitigationController):
            def __init__(self):
                super().__init__()
                self.calls = []

            def observe(self, address, count, t_on, now_ns):
                self.calls.append((address.row, count, t_on))
                return [address.row]

        recorder = Recorder()
        entries = [(RowAddress(0, 0, 0, r), r + 1, None)
                   for r in range(5)]
        victims = recorder.observe_epoch(entries, 0.0)
        assert victims == [0, 1, 2, 3, 4]
        assert recorder.calls == [(r, r + 1, None) for r in range(5)]
