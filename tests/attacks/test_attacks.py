"""Tests for the attack library (Section 8.1 implications)."""

import numpy as np
import pytest

from repro.attacks import (PTE_TEMPLATE, ExploitTemplate, TemplatingCampaign,
                           half_double_disturbance, run_many_sided)
from repro.dram.geometry import RowAddress


class TestHalfDouble:
    @pytest.fixture(scope="class")
    def result(self, chip0):
        return half_double_disturbance(chip0, RowAddress(0, 0, 0, 5200),
                                       windows=170)

    def test_trr_amplifies_the_attack(self, result):
        """Section 8.1: TRR's victim refreshes help the attacker."""
        assert result.units_with_trr > result.units_without_trr
        assert result.amplification > 1.2

    def test_trr_contribution_tracks_refreshes(self, result):
        """Each capable-REF refresh of the two near rows delivers ~1
        unit; the contribution should be within 2x of that estimate."""
        capable_refs = result.windows // 17
        expected = capable_refs * 1.0
        assert result.trr_contribution == pytest.approx(expected,
                                                        rel=0.8)

    def test_without_trr_only_distance_two(self, chip0, result):
        """The TRR-free baseline is pure distance-2 coupling."""
        per_act = chip0.disturbance.units_per_activation(29.0, 2)
        expected = (2 * result.far_acts_per_window * result.windows
                    * per_act)
        assert result.units_without_trr == pytest.approx(expected,
                                                         rel=0.1)

    def test_victim_near_bank_edge_rejected(self, chip0):
        with pytest.raises(ValueError):
            half_double_disturbance(chip0, RowAddress(0, 0, 0, 1),
                                    windows=10)


class TestManySided:
    @pytest.fixture(scope="class")
    def result(self, chip0):
        return run_many_sided(chip0, victim_rows=[5000, 5008, 5016])

    def test_target_pair_flips(self, result):
        """The pair behind the sampler-filling pairs escapes TRR."""
        assert result.flips[5016] > 0

    def test_sacrificial_victims_protected(self, result):
        """The front pairs are tracked and their victims refreshed."""
        assert result.flips[5000] == 0
        assert result.flips[5008] == 0

    def test_budget_respected(self, result):
        acts = (result.pair_count - 1) * 2 \
            + 2 * result.target_acts_per_aggressor
        assert acts <= 78
        # The count rule would fire at half the window total.
        assert 2 * result.target_acts_per_aggressor < acts

    def test_close_victims_rejected(self, chip0):
        with pytest.raises(ValueError):
            run_many_sided(chip0, victim_rows=[5000, 5002], windows=10)

    def test_too_many_pairs_rejected(self, chip0):
        with pytest.raises(ValueError):
            run_many_sided(chip0,
                           victim_rows=list(range(4000, 4400, 8)),
                           windows=10)


class TestTemplating:
    def test_template_validation(self):
        with pytest.raises(ValueError):
            ExploitTemplate("bad", bit_offsets=())
        with pytest.raises(ValueError):
            ExploitTemplate("bad", bit_offsets=(64,))

    def test_template_matching(self):
        template = ExploitTemplate("t", bit_offsets=(0, 1),
                                   word_stride=2)
        positions = np.array([0, 1, 2, 64, 128, 129])
        usable = template.matches(positions)
        # Word 0 offsets 0,1 match; word 1 (odd) filtered; word 2 (bit
        # 128, 129) offsets 0,1 match.
        assert usable.tolist() == [0, 1, 128, 129]

    def test_best_channel_first_ordering(self, chip0):
        campaign = TemplatingCampaign(chip0)
        order = campaign.best_channel_first()
        assert sorted(order) == list(range(8))
        # Chip 0's most vulnerable die pair is (0, 7).
        assert order[0] in (0, 7)

    def test_vulnerable_channel_templates_faster(self, chip0):
        campaign = TemplatingCampaign(chip0)
        order = campaign.best_channel_first()
        rows = range(4096, 4156)
        best = campaign.scan_channel(order[0], rows)
        worst = campaign.scan_channel(order[-1], rows)
        assert best.hit_rate > worst.hit_rate
        assert best.simulated_seconds > 0

    def test_hits_are_template_conformant(self, chip0):
        campaign = TemplatingCampaign(chip0)
        result = campaign.scan_channel(0, range(4096, 4126))
        for __, positions in result.exploitable:
            offsets = positions % 64
            words = positions // 64
            assert np.isin(offsets, PTE_TEMPLATE.bit_offsets).all()
            assert (words % PTE_TEMPLATE.word_stride == 0).all()
