"""Additional attack-library coverage: parameter edges and scaling."""

import pytest

from repro.attacks import half_double_disturbance, run_many_sided
from repro.attacks.templating import ExploitTemplate
from repro.dram.geometry import RowAddress


class TestHalfDoubleScaling:
    def test_contribution_scales_with_windows(self, chip0):
        short = half_double_disturbance(chip0,
                                        RowAddress(0, 0, 0, 5200),
                                        windows=68)
        long = half_double_disturbance(chip0,
                                       RowAddress(0, 0, 0, 5200),
                                       windows=204)
        assert long.trr_contribution > 2 * short.trr_contribution

    def test_zero_windows_rejected(self, chip0):
        with pytest.raises(ValueError):
            half_double_disturbance(chip0, RowAddress(0, 0, 0, 5200),
                                    windows=0)

    def test_forces_the_mechanism_regardless_of_chip(self, chip5):
        """The comparison instruments the TRR engine explicitly (on vs
        off), so it quantifies the mechanism even on chips that do not
        ship it — Chip 5's cells under a Chip-0-style defense."""
        result = half_double_disturbance(chip5,
                                         RowAddress(0, 0, 0, 5200),
                                         windows=68)
        assert result.amplification > 1.2
        assert result.trr_victim_refreshes > 0


class TestManySidedVariants:
    def test_four_pairs_still_works(self, chip0):
        """With 4 pairs the first two fill the CAM and the last pair
        still gets enough budget ((78 - 6) / 2 = 36 per side)."""
        result = run_many_sided(chip0,
                                victim_rows=[5000, 5008, 5016, 5024],
                                windows=16410)
        assert result.target_acts_per_aggressor >= 30
        assert result.flips[5024] > 0
        assert result.flips[5000] == 0

    def test_single_pair_rejected(self, chip0):
        """One pair alone cannot dodge the count rule: its two
        aggressors always hold exactly half the window's activations
        each, so the attack is rejected as unbuildable."""
        with pytest.raises(ValueError):
            run_many_sided(chip0, victim_rows=[5000], windows=10)

    def test_sacrificial_acts_validation(self, chip0):
        with pytest.raises(ValueError):
            run_many_sided(chip0, victim_rows=[5000, 5008],
                           sacrificial_acts=0, windows=10)

    def test_empty_victims_rejected(self, chip0):
        with pytest.raises(ValueError):
            run_many_sided(chip0, victim_rows=[])


class TestTemplateEdges:
    def test_no_matches(self):
        import numpy as np

        template = ExploitTemplate("t", bit_offsets=(63,),
                                   word_stride=128)
        assert template.matches(np.array([0, 1, 64, 100])).size == 0

    def test_stride_one_matches_any_word(self):
        import numpy as np

        template = ExploitTemplate("t", bit_offsets=(0,), word_stride=1)
        positions = np.array([0, 64, 128, 65])
        assert template.matches(positions).tolist() == [0, 64, 128]
