"""Hypothesis property tests on cross-module invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chips.vectorized import population_grid
from repro.core import analytic
from repro.dram.cell_model import CellPopulation, RowDisturbanceProfile
from repro.dram.geometry import DEFAULT_GEOMETRY, RowAddress
from repro.dram.timing import DEFAULT_TIMINGS

_row = st.integers(min_value=0, max_value=16383)
_channel = st.integers(min_value=0, max_value=7)
_bank = st.integers(min_value=0, max_value=15)
_pattern = st.sampled_from(["Rowstripe0", "Rowstripe1", "Checkered0",
                            "Checkered1"])


class TestProfileInvariants:
    @given(_channel, _bank, _row, _pattern)
    @settings(max_examples=40, deadline=None)
    def test_hc_nth_monotone_everywhere(self, chip0_cached, channel, bank,
                                        row, pattern):
        chip = chip0_cached
        profile = chip.profile(RowAddress(channel, 0, bank, row), pattern)
        hc = profile.hc_nth(10)
        assert np.all(np.diff(hc) >= 0)
        assert hc[0] >= 1.0

    @given(_channel, _bank, _row)
    @settings(max_examples=40, deadline=None)
    def test_ber_bounded_by_mixture_mass(self, chip0_cached, channel,
                                         bank, row):
        chip = chip0_cached
        population = chip.cell_population(
            RowAddress(channel, 0, bank, row), "Checkered0")
        ber = population.ber(1.0e15)
        cap = population.f_weak \
            + (1 - population.f_weak) * population.flippable_strong_fraction
        assert 0.0 <= ber <= cap + 1e-12

    @given(_row, st.floats(min_value=29.0, max_value=1.0e6))
    @settings(max_examples=40, deadline=None)
    def test_rowpress_never_increases_hc_first(self, chip0_cached, row,
                                               t_on):
        chip = chip0_cached
        profile = chip.profile(RowAddress(0, 0, 0, row), "Checkered0")
        amplification = chip.disturbance.amplification(t_on)
        assert profile.hc_first(amplification) <= profile.hc_first() + 1e-9


class TestGridInvariants:
    @given(_channel, _bank, _pattern)
    @settings(max_examples=20, deadline=None)
    def test_grid_matches_scalar_on_random_banks(self, chip0_cached,
                                                 channel, bank, pattern):
        chip = chip0_cached
        rows = np.array([17, 900, 8200])
        grid = population_grid(chip, channel, 0, bank, rows, pattern)
        for i, row in enumerate(rows):
            population = chip.cell_population(
                RowAddress(channel, 0, bank, int(row)), pattern)
            assert population.f_weak == pytest.approx(grid.f_weak[i],
                                                      abs=1e-14)
            assert population.mu_weak == pytest.approx(grid.mu_weak[i],
                                                       abs=1e-12)


class TestTimingInvariants:
    @given(st.integers(min_value=1, max_value=500_000),
           st.floats(min_value=29.0, max_value=1.0e5))
    @settings(max_examples=60)
    def test_hammers_within_is_floor_inverse(self, count, t_on):
        duration = DEFAULT_TIMINGS.hammer_duration(count, t_on)
        recovered = DEFAULT_TIMINGS.hammers_within(duration, t_on)
        assert recovered in (count, count - 1) or recovered == count

    @given(st.floats(min_value=0.1, max_value=1.0e6))
    @settings(max_examples=60)
    def test_quantize_rounds_up_within_one_clock(self, time_ns):
        # Idempotence only holds up to float division noise; quantizing
        # twice may add at most one extra clock tick.
        once = DEFAULT_TIMINGS.quantize(time_ns)
        twice = DEFAULT_TIMINGS.quantize(once)
        assert once >= time_ns - 1e-9
        assert 0.0 <= twice - once <= DEFAULT_TIMINGS.t_ck + 1e-9


class TestDeviceInvariants:
    @given(st.integers(min_value=1, max_value=16382),
           st.integers(min_value=1, max_value=3000))
    @settings(max_examples=25, deadline=None)
    def test_accumulation_additivity(self, plain_device_factory, row,
                                     count):
        """Two hammer bursts accumulate exactly like one combined one."""
        device_a = plain_device_factory()
        device_b = plain_device_factory()
        aggressor = RowAddress(0, 0, 0, row)
        victim = aggressor.neighbor(1)
        if victim.row >= 16384 or not DEFAULT_GEOMETRY.subarrays \
                .same_subarray(aggressor.row, victim.row):
            return
        device_a.hammer(aggressor, count)
        device_a.hammer(aggressor, count)
        device_b.hammer(aggressor, 2 * count)
        assert device_a.accumulated_units(victim) == pytest.approx(
            device_b.accumulated_units(victim))

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=30, deadline=None)
    def test_write_read_roundtrip_arbitrary_byte(self,
                                                 plain_device_factory,
                                                 byte):
        device = plain_device_factory()
        address = RowAddress(0, 0, 0, 100)
        image = np.full(1024, byte, dtype=np.uint8)
        device.write_row(address, image)
        assert np.array_equal(device.read_row(address), image)


class TestAnalyticInvariants:
    @given(st.integers(min_value=1, max_value=16384),
           st.integers(min_value=1, max_value=16384))
    @settings(max_examples=50)
    def test_stratified_rows_valid(self, total, count):
        rows = analytic.stratified_rows(total, count)
        assert rows.size <= min(total, count)
        assert rows.size >= 1
        assert np.all(np.diff(rows) > 0)
        assert rows[0] >= 0 and rows[-1] < total


@pytest.fixture(scope="module")
def chip0_cached():
    from repro.chips.profiles import make_chip

    return make_chip(0)


@pytest.fixture(scope="module")
def plain_device_factory():
    from repro.dram.device import HBM2Stack, UniformProfileProvider

    def factory():
        return HBM2Stack(
            profile_provider=UniformProfileProvider(
                CellPopulation(f_weak=0.014, mu_weak=5.0)),
            retention=None)

    return factory
