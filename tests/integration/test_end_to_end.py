"""End-to-end integration tests across the full stack.

These exercise complete paper workflows: reverse-engineer the mapping
from scratch, characterize a row, defeat the TRR mechanism — all through
the public APIs only.
"""

import numpy as np
import pytest

from repro.bender.host import BenderSession
from repro.bender.routines import (find_boundaries, identify_mapping,
                                   measure_row_ber, search_hc_first)
from repro.core.patterns import ALL_PATTERNS, CHECKERED0, select_wcdp
from repro.core.trr_bypass import AttackConfig, run_attack_exact
from repro.dram.geometry import RowAddress


class TestFullCharacterizationWorkflow:
    def test_reveng_then_characterize(self, chip0):
        """The paper's methodology end to end: identify the mapping with
        single-sided hammers, then use it for double-sided tests."""
        session = BenderSession(chip0.make_device())
        mapping = identify_mapping(session,
                                   probe_rows=tuple(range(2048, 2072)))
        session.use_mapping(mapping)
        victim = RowAddress(0, 0, 0, 5000)
        result = measure_row_ber(session, victim, CHECKERED0,
                                 hammer_count=512_000)
        assert result.bitflips > 0

    def test_wcdp_selection_workflow(self, chip0):
        """Per-row WCDP: smallest HC_first, ties broken by BER."""
        session = BenderSession(chip0.make_device(),
                                mapping=chip0.row_mapping())
        victim = RowAddress(0, 0, 0, 5000)
        hc_firsts = {}
        bers = {}
        for pattern in ALL_PATTERNS:
            search = search_hc_first(session, victim, pattern)
            assert search.found
            hc_firsts[pattern.name] = search.hc_first
            bers[pattern.name] = measure_row_ber(
                session, victim, pattern, hammer_count=256_000).ber
        wcdp = select_wcdp(hc_firsts, bers)
        assert wcdp in hc_firsts
        assert hc_firsts[wcdp] == min(hc_firsts.values())

    def test_experiment_stays_within_refresh_window(self, session):
        """A 512K-hammer double-sided test fits in 32 ms (Section 3.1)."""
        victim = RowAddress(0, 0, 0, 5000)
        session.begin_refresh_window()
        from repro.bender.routines import double_sided_hammer

        double_sided_hammer(session, victim, 340_000)
        session.assert_within_refresh_window()


class TestAnalyticExactAgreement:
    """The analytic engine and the command-level device must agree: same
    populations, same draws, same physics."""

    @pytest.mark.parametrize("row", [1000, 5000, 8195, 12000])
    def test_hc_first_agreement(self, chip0, row):
        session = BenderSession(chip0.make_device(),
                                mapping=chip0.row_mapping())
        victim = RowAddress(0, 0, 0, row)
        measured = search_hc_first(session, victim, CHECKERED0,
                                   tolerance=0.005)
        analytic_value = chip0.profile(victim, "Checkered0").hc_first()
        assert measured.hc_first == pytest.approx(analytic_value,
                                                  rel=0.01)

    def test_subarray_edge_victim_needs_double_hammers(self, chip0):
        """A victim at a subarray edge has one of its two aggressors
        across a sense-amplifier stripe: half the disturbance arrives,
        so the measured HC_first doubles relative to the interior-row
        model (same isolation the paper's footnote 3 exploits)."""
        session = BenderSession(chip0.make_device(),
                                mapping=chip0.row_mapping())
        victim = RowAddress(0, 0, 0, 8192)  # first row of the middle SA
        measured = search_hc_first(session, victim, CHECKERED0,
                                   tolerance=0.005)
        analytic_value = chip0.profile(victim, "Checkered0").hc_first()
        assert measured.hc_first == pytest.approx(2 * analytic_value,
                                                  rel=0.02)

    def test_ber_agreement_across_patterns(self, chip0):
        session = BenderSession(chip0.make_device(),
                                mapping=chip0.row_mapping())
        victim = RowAddress(3, 1, 7, 4321)
        for pattern in ALL_PATTERNS:
            measured = measure_row_ber(session, victim, pattern,
                                       hammer_count=512_000).ber
            expected = chip0.profile(
                victim, pattern.name).expected_ber(512_000)
            assert measured == pytest.approx(expected, abs=0.008)

    def test_rowpress_agreement(self, chip0):
        session = BenderSession(chip0.make_device(),
                                mapping=chip0.row_mapping())
        victim = RowAddress(0, 0, 0, 9000)
        measured = measure_row_ber(session, victim, CHECKERED0,
                                   hammer_count=10_000, t_on=3.9e3).ber
        expected = chip0.profile(victim, "Checkered0").expected_ber(
            10_000 * 55.09)
        assert measured == pytest.approx(expected, abs=0.01)


class TestTrrBattle:
    """The full Section 7 story: TRR protects against naive double-sided
    hammering but the dummy-row pattern defeats it."""

    def test_naive_attack_blocked_bypass_succeeds(self, chip0):
        victim = RowAddress(0, 0, 0, 6000)
        # Naive: double-sided only, REF every tREFI -> TRR detects the
        # aggressors (first-activated rows) and saves the victim.
        naive_session = BenderSession(chip0.make_device(),
                                      mapping=chip0.row_mapping())
        naive = run_attack_exact(
            naive_session, victim,
            AttackConfig(dummy_rows=0, aggressor_acts=34, windows=4000),
            CHECKERED0)
        assert naive == 0
        assert naive_session.device.stats.trr_victim_refreshes > 0
        # Bypass: 4+ dummies occupy the sampler.
        bypass_session = BenderSession(chip0.make_device(),
                                       mapping=chip0.row_mapping())
        bypass = run_attack_exact(
            bypass_session, victim,
            AttackConfig(dummy_rows=4, aggressor_acts=34),
            CHECKERED0)
        assert bypass > 0


class TestSubarrayReveng:
    def test_boundary_detection_matches_ground_truth(self, chip0):
        session = BenderSession(chip0.make_device(),
                                mapping=chip0.row_mapping())
        layout = chip0.geometry.subarrays
        # Probe around the second boundary (rows 1664 +- 4).
        report = find_boundaries(session, row_range=range(1660, 1670))
        assert 1664 in report.boundaries
        assert layout.boundaries[2] == 1664
