"""Integration tests for the refresh machinery (rolling pointer, TRR
interplay, retention restoration)."""

import numpy as np
import pytest

from repro.dram.cell_model import CellPopulation
from repro.dram.device import HBM2Stack, UniformProfileProvider
from repro.dram.geometry import RowAddress
from repro.dram.retention import RetentionModel


def make_device(retention=None):
    return HBM2Stack(
        profile_provider=UniformProfileProvider(
            CellPopulation(f_weak=0.014, mu_weak=5.0)),
        retention=retention)


class TestRollingPointer:
    def test_full_sweep_covers_all_rows(self):
        """8192 REFs advance the 2-rows-per-REF pointer across the whole
        bank — one refresh window covers every row (tREFW semantics)."""
        device = make_device()
        device.hammer(RowAddress(0, 0, 0, 16382), 1000)
        victim = RowAddress(0, 0, 0, 16383)
        assert device.accumulated_units(victim) > 0
        for __ in range(8192):
            device.refresh(0, 0)
        assert device.accumulated_units(victim) == 0.0

    def test_pointer_is_per_pseudo_channel(self):
        device = make_device()
        device.hammer(RowAddress(0, 0, 0, 1), 1000)
        device.hammer(RowAddress(0, 1, 0, 1), 1000)
        device.refresh(0, 0)  # covers rows 0-1 of PC0 only
        assert device.accumulated_units(RowAddress(0, 0, 0, 0)) == 0.0
        assert device.accumulated_units(RowAddress(0, 1, 0, 0)) > 0.0

    def test_refresh_covers_all_banks_of_the_pc(self):
        device = make_device()
        for bank in (0, 7, 15):
            device.hammer(RowAddress(0, 0, bank, 1), 1000)
        device.refresh(0, 0)
        for bank in (0, 7, 15):
            assert device.accumulated_units(
                RowAddress(0, 0, bank, 0)) == 0.0


class TestRetentionRestoration:
    def test_rolling_refresh_resets_retention_clock(self):
        retention = RetentionModel(seed=5)
        device = make_device(retention=retention)
        # Find a row with retention in (100 ms, 400 ms).
        address = None
        for row in range(0, 64):
            candidate = RowAddress(0, 0, 0, row)
            time_ns = retention.row_retention_ns(candidate)
            if 100.0e6 < time_ns < 400.0e6:
                address = candidate
                retention_ns = time_ns
                break
        assert address is not None
        image = np.full(1024, 0xFF, dtype=np.uint8)
        device.write_row(address, image)
        # Refresh the row halfway through its retention time, twice.
        for __ in range(2):
            device.wait(retention_ns * 0.6)
            # Advance the pointer exactly over this row's pair.
            refs_needed = 8192
            for __ in range(refs_needed):
                device.refresh(0, 0)
        assert np.array_equal(device.read_row(address), image)

    def test_unrefreshed_row_decays(self):
        retention = RetentionModel(seed=5)
        device = make_device(retention=retention)
        address = RowAddress(0, 0, 0, 40)
        image = np.full(1024, 0xFF, dtype=np.uint8)
        device.write_row(address, image)
        device.wait(retention.row_retention_ns(address) * 1.2)
        assert not np.array_equal(device.read_row(address), image)


class TestTrrAndRollingRefreshCompose:
    def test_trr_victims_also_survive_rolling_refresh(self, chip0):
        """TRR victim refreshes and the rolling pointer must not double
        count flips (flip commits are idempotent per cell)."""
        device = chip0.make_device()
        victim = RowAddress(0, 0, 0, 5000)
        image = np.full(1024, 0x55, dtype=np.uint8)
        device.write_row(victim, image)
        aggressor = victim.neighbor(1)
        for __ in range(40):
            device.hammer(aggressor, 2000)
            device.refresh(0, 0)
        first = device.read_row(victim)
        for __ in range(8192):
            device.refresh(0, 0)
        assert np.array_equal(device.read_row(victim), first)
