"""Tests for the thermal <-> fault-physics coupling (extension).

The paper holds Chip 0 at 82 C precisely because read disturbance and
retention are temperature-sensitive; these tests verify the coupling the
simulator adds on top (following the DDR4 temperature literature the
paper cites: mild HC sensitivity, retention halving per ~10 C).
"""

import numpy as np
import pytest

from repro.dram.cell_model import CellPopulation
from repro.dram.device import (HBM2Stack, UniformProfileProvider,
                               TEMPERATURE_HC_SENSITIVITY)
from repro.dram.geometry import RowAddress
from repro.thermal.controller import TemperatureController
from repro.thermal.plant import ThermalPlant

VICTIM = RowAddress(0, 0, 0, 5000)


def make_device(temperature_c=50.0):
    device = HBM2Stack(
        profile_provider=UniformProfileProvider(
            CellPopulation(f_weak=0.014, mu_weak=5.0)),
        retention=None,
        calibration_temperature_c=50.0)
    device.set_temperature(temperature_c)
    return device


class TestDisturbanceFactor:
    def test_unity_at_calibration(self):
        assert make_device(50.0).temperature_disturbance_factor() == 1.0

    def test_hotter_disturbs_more(self):
        factor = make_device(90.0).temperature_disturbance_factor()
        assert factor == pytest.approx(
            1.0 + 40 * TEMPERATURE_HC_SENSITIVITY)

    def test_colder_disturbs_less(self):
        assert make_device(30.0).temperature_disturbance_factor() < 1.0

    def test_floor(self):
        assert make_device(-1000.0).temperature_disturbance_factor() \
            == 0.2

    def test_disabled_without_calibration_point(self):
        device = HBM2Stack(retention=None)
        device.set_temperature(120.0)
        assert device.temperature_disturbance_factor() == 1.0

    def test_accumulation_scales(self):
        cold = make_device(50.0)
        hot = make_device(90.0)
        for device in (cold, hot):
            device.hammer(VICTIM.neighbor(1), 1000)
        ratio = hot.accumulated_units(VICTIM) \
            / cold.accumulated_units(VICTIM)
        assert ratio == pytest.approx(
            1.0 + 40 * TEMPERATURE_HC_SENSITIVITY)


class TestRetentionAcceleration:
    def test_doubles_per_ten_degrees(self):
        assert make_device(60.0).retention_acceleration() == \
            pytest.approx(2.0)
        assert make_device(40.0).retention_acceleration() == \
            pytest.approx(0.5)

    def test_hot_chip_loses_data_sooner(self, chip0):
        device = chip0.make_device()
        # Find a row with retention just above 1 s at calibration temp.
        address = None
        for row in range(3000, 3400):
            candidate = RowAddress(0, 0, 0, row)
            retention = chip0.retention.row_retention_ns(candidate)
            if 1.0e9 < retention < 2.0e9:
                address = candidate
                truth = retention
                break
        assert address is not None
        image = np.full(1024, 0xFF, dtype=np.uint8)
        # At calibration temperature: survives 0.9x its retention time.
        device.write_row(address, image)
        device.wait(truth * 0.9)
        assert np.array_equal(device.read_row(address), image)
        # 20 C hotter: the same wait spans 3.6x the retention time.
        device.set_temperature(chip0.spec.nominal_temperature_c + 20.0)
        device.write_row(address, image)
        device.wait(truth * 0.9)
        assert not np.array_equal(device.read_row(address), image)


class TestControllerCoupling:
    def test_coupled_controller_drives_device_temperature(self):
        device = make_device(50.0)
        controller = TemperatureController(
            ThermalPlant(ambient_c=38.0), target_c=82.0,
            rng=np.random.default_rng(0))
        controller.couple(device)
        controller.run(3600.0)
        assert device.temperature_c == pytest.approx(82.0, abs=1.5)
        assert device.temperature_disturbance_factor() > 1.05
