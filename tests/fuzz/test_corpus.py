"""Suite for reproducer persistence (``repro.fuzz.corpus``).

Contract under test: save/load round-trips a case (program stream,
fault plan, TRR flag), corpus iteration is deterministic, and every
reproducer committed under ``tests/fuzz/corpus`` replays clean through
the differential harness — a divergence found once stays fixed.
"""

from pathlib import Path

from repro.dram.device import HBM2Stack
from repro.fuzz.corpus import (corpus_names, iter_corpus, load_case,
                               save_case)
from repro.fuzz.generator import generate_case
from repro.fuzz.harness import run_case

COMMITTED_CORPUS = Path(__file__).parent / "corpus"

ROW_BYTES = HBM2Stack().geometry.row_bytes


def _stream_key(program):
    return [(c.kind, c.channel, c.pseudo_channel, c.bank, c.row,
             c.count, c.t_on, c.duration,
             None if c.data is None else c.data.tobytes())
            for c in program.flatten()]


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        for index in range(15):
            case = generate_case(9, index, row_bytes=ROW_BYTES)
            target = save_case(tmp_path, case,
                               divergences=["example divergence"])
            loaded = load_case(target, row_bytes=ROW_BYTES)
            assert _stream_key(loaded.program) \
                == _stream_key(case.program)
            assert loaded.fault_plan == case.fault_plan
            assert loaded.trr_enabled == case.trr_enabled
            assert loaded.seed == case.seed
            assert loaded.index == case.index

    def test_saved_layout(self, tmp_path):
        case = generate_case(9, 0, row_bytes=ROW_BYTES)
        target = save_case(tmp_path, case)
        assert (target / "program.sbp").is_file()
        assert (target / "case.json").is_file()
        assert target.name == case.name

    def test_iter_corpus_sorted_and_missing_root_empty(self, tmp_path):
        assert list(iter_corpus(tmp_path / "nope")) == []
        for index in (3, 1, 2):
            save_case(tmp_path, generate_case(9, index,
                                              row_bytes=ROW_BYTES))
        names = corpus_names(tmp_path)
        assert names == sorted(names) and len(names) == 3


class TestCommittedCorpus:
    def test_corpus_exists(self):
        assert corpus_names(COMMITTED_CORPUS), \
            "tests/fuzz/corpus must hold at least one reproducer"

    def test_every_committed_reproducer_replays_clean(self):
        for case in iter_corpus(COMMITTED_CORPUS, row_bytes=ROW_BYTES):
            result = run_case(case)
            assert result.ok, \
                f"regression: {case.name}\n{result.describe()}"
