"""Suite for the HC_first differential search probe (PR 10).

Contract under test (``repro.fuzz.search``): generated search cases are
pure functions of ``(seed, index)``, a clean build diverges on none of
them, a blinded speculation classifier is caught and shrunk to a
still-failing reproducer, and search reproducers round-trip through the
``kind``-tagged JSON corpus.
"""

from unittest import mock

import numpy as np
import pytest

from repro.faults.plan import FaultPlan
from repro.fuzz.corpus import iter_corpus, load_case, save_case
from repro.fuzz.generator import FuzzCase, generate_case
from repro.fuzz.search import (SearchCase, generate_search_case,
                               run_search_budget, run_search_case,
                               search_case_variants, still_fails_search)
from repro.fuzz.shrink import shrink


class TestGenerator:
    def test_pure_function_of_seed_and_index(self):
        assert generate_search_case(3, 11) == generate_search_case(3, 11)
        assert generate_search_case(3, 11) != generate_search_case(3, 12)
        assert generate_search_case(3, 11) != generate_search_case(4, 11)

    def test_victims_unique_and_in_bounds(self):
        for index in range(30):
            case = generate_search_case(0, index)
            keys = [(v.channel, v.pseudo_channel, v.bank, v.row)
                    for v in case.victims]
            assert len(keys) == len(set(keys))
            assert case.victims
            for victim in case.victims:
                assert 0 <= victim.row < 16384
            assert case.start >= 1
            assert case.max_hammers >= case.start

    def test_draw_stream_distinct_from_program_cases(self):
        # Same (seed, index) must not replay the program generator's
        # Philox stream: the contexts should decorrelate.
        contexts = {(generate_search_case(0, i).trr_enabled,
                     generate_case(0, i).trr_enabled)
                    for i in range(20)}
        assert len(contexts) > 1


class TestDifferential:
    def test_clean_build_has_no_divergence(self):
        assert run_search_budget(0, 10) == []

    def test_blinded_classifier_is_caught_and_shrunk(self):
        real = FaultPlan.classify_probe_windows

        def blind(self, bases, writes, hammers):
            dirty, reads = real(self, bases, writes, hammers)
            return np.zeros_like(dirty), reads

        with mock.patch.object(FaultPlan, "classify_probe_windows",
                               blind):
            failures = run_search_budget(0, 40)
            assert failures
            shrunk = shrink(failures[0].case, still_fails_search,
                            variants=search_case_variants)
            assert isinstance(shrunk, SearchCase)
            assert still_fails_search(shrunk)
            # The seeded bug needs a fault plan to matter; shrinking
            # must not have discarded it.
            assert shrunk.fault_plan is not None

    def test_unmirrored_counter_is_caught(self):
        # A speculation that forgets to consume its counters desyncs
        # the schedule: the final command counter must betray it.
        from repro.faults.injector import FaultyStack

        real = FaultyStack.advance_counter

        def skewed(self, count):
            return real(self, max(0, count - 1))

        with mock.patch.object(FaultyStack, "advance_counter", skewed):
            failures = run_search_budget(0, 40)
        assert failures
        assert any("counter" in text or "events" in text
                   for failure in failures
                   for text in failure.divergences)


class TestShrinkVariants:
    def test_variants_only_reduce(self):
        case = generate_search_case(0, 5)
        for variant in search_case_variants(case):
            assert (len(variant.victims), variant.max_hammers,
                    variant.fault_plan is not None, variant.trr_enabled) \
                <= (len(case.victims), case.max_hammers,
                    case.fault_plan is not None, case.trr_enabled) \
                or variant.tolerance > case.tolerance

    def test_single_victim_is_kept(self):
        case = generate_search_case(0, 0)
        single = SearchCase(seed=0, index=0, victims=case.victims[:1],
                            pattern=case.pattern, start=case.start,
                            max_hammers=case.max_hammers,
                            tolerance=case.tolerance,
                            trr_enabled=False, fault_plan=None)
        for variant in search_case_variants(single):
            assert variant.victims


class TestCorpus:
    def test_search_case_round_trips(self, tmp_path):
        case = generate_search_case(2, 7)
        target = save_case(tmp_path, case, ["victim[0] probes: 5 vs 6"])
        assert (target / "case.json").is_file()
        assert not (target / "program.sbp").exists()
        loaded = load_case(target)
        assert loaded == case

    def test_kind_field_dispatches(self, tmp_path):
        import json

        search = generate_search_case(2, 7)
        save_case(tmp_path, search)
        payload = json.loads(
            (tmp_path / search.name / "case.json").read_text())
        assert payload["kind"] == "search"
        program = generate_case(0, 0)
        save_case(tmp_path, program)
        payload = json.loads(
            (tmp_path / program.name / "case.json").read_text())
        assert payload["kind"] == "program"
        kinds = {type(entry) for entry in iter_corpus(tmp_path)}
        assert kinds == {SearchCase, FuzzCase}

    def test_unknown_kind_rejected(self, tmp_path):
        target = tmp_path / "weird"
        target.mkdir()
        (target / "case.json").write_text('{"kind": "mystery"}')
        with pytest.raises(ValueError, match="mystery"):
            load_case(target)

    def test_legacy_payload_defaults_to_program(self, tmp_path):
        # Pre-PR-10 corpus entries have no kind field.
        case = generate_case(0, 3)
        target = save_case(tmp_path, case)
        import json

        payload = json.loads((target / "case.json").read_text())
        del payload["kind"]
        (target / "case.json").write_text(json.dumps(payload))
        loaded = load_case(target)
        assert isinstance(loaded, FuzzCase)
        assert loaded.seed == case.seed
