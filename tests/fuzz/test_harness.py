"""Suite for the differential harness (``repro.fuzz.harness``).

Contract under test: on healthy engines a generated budget runs clean;
each seeded engine bug (mutation) is caught; the divergence strings
name what diverged; shrinking produces a minimal case that still
fails.
"""

import pytest

from repro.bender.program import TestProgram
from repro.dram.geometry import RowAddress
from repro.fuzz.generator import FuzzCase, generate_case
from repro.fuzz.harness import run_budget, run_case, still_fails
from repro.fuzz.mutations import MUTATIONS, seeded_bug
from repro.fuzz.shrink import shrink

#: Small in-test budget; CI's fuzz-smoke job runs the full 200.
BUDGET = 25


def _conflict_case():
    program = TestProgram("seeded-conflict")
    program.activate(RowAddress(0, 0, 0, 100))
    program.activate(RowAddress(0, 0, 0, 101))
    return FuzzCase(seed=0, index=0, program=program,
                    trr_enabled=False, fault_plan=None)


class TestHealthyEngines:
    def test_budget_runs_clean(self):
        failures = run_budget(0, BUDGET)
        assert failures == []

    def test_timing_error_cases_agree_across_engines(self):
        result = run_case(_conflict_case())
        assert result.ok, result.describe()
        for outcome in result.outcomes.values():
            assert outcome.error is not None
            assert outcome.error[0] == "TimingError"

    def test_checked_engine_reports_online_findings(self):
        result = run_case(_conflict_case())
        checked = result.outcomes["checked"]
        assert [f.rule for f in checked.findings
                if f.severity == "error"] == ["P001"]


class TestMutations:
    @pytest.mark.parametrize("name", MUTATIONS)
    def test_each_seeded_bug_is_caught(self, name):
        with seeded_bug(name):
            failures = run_budget(0, BUDGET)
        assert failures, f"mutation {name!r} escaped a {BUDGET}-case " \
                         f"budget"

    def test_mutations_leave_no_trace_after_exit(self):
        with seeded_bug("clock-skew"):
            pass
        assert run_budget(0, 5) == []

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation"):
            seeded_bug("nonexistent")


class TestShrinking:
    def test_lint_blind_shrinks_to_minimal_conflict(self):
        with seeded_bug("lint-blind"):
            failures = run_budget(0, BUDGET)
            assert failures
            shrunk = shrink(failures[0].case, still_fails)
            assert still_fails(shrunk)
            # Minimal P001 reproducer: two row commands, no context.
            assert shrunk.program.static_command_count() <= 3
            assert shrunk.fault_plan is None
            assert not shrunk.trr_enabled
        # The shrunk case passes once the bug is gone (regression
        # corpus semantics).
        assert run_case(shrunk).ok

    def test_shrink_is_deterministic(self):
        with seeded_bug("lint-blind"):
            failures = run_budget(0, BUDGET)
            first = shrink(failures[0].case, still_fails)
            second = shrink(failures[0].case, still_fails)
        assert [repr(i) for i in first.program.instructions] \
            == [repr(i) for i in second.program.instructions]
