"""Suite for the fuzz-case generator (``repro.fuzz.generator``).

Contract under test: cases are pure functions of ``(seed, index)``,
stay within the assembly language's expressive range (round-trip
through disassemble/assemble), and the distribution actually exercises
the shapes the harness cross-checks (loops, REFs, hammers, fault
plans, TRR both ways).
"""

from repro.bender.assembler import assemble, disassemble
from repro.bender.program import Loop
from repro.dram.commands import CommandKind
from repro.fuzz.generator import FuzzCase, generate_case

ROW_BYTES = 128


def _stream_key(program):
    return [(c.kind, c.channel, c.pseudo_channel, c.bank, c.row,
             c.count, c.t_on, c.duration,
             None if c.data is None else c.data.tobytes())
            for c in program.flatten()]


class TestDeterminism:
    def test_same_seed_index_same_case(self):
        for index in range(10):
            first = generate_case(42, index, row_bytes=ROW_BYTES)
            second = generate_case(42, index, row_bytes=ROW_BYTES)
            assert _stream_key(first.program) \
                == _stream_key(second.program)
            assert first.trr_enabled == second.trr_enabled
            assert first.fault_plan == second.fault_plan

    def test_different_indices_differ(self):
        streams = {tuple(_stream_key(
            generate_case(42, index, row_bytes=ROW_BYTES).program))
            for index in range(10)}
        assert len(streams) > 1

    def test_case_name_encodes_seed_and_index(self):
        case = generate_case(7, 3, row_bytes=ROW_BYTES)
        assert case.name == "fuzz-7-3"


class TestRoundTrip:
    def test_every_case_round_trips_through_assembly(self):
        for index in range(40):
            case = generate_case(1, index, row_bytes=ROW_BYTES)
            rebuilt = assemble(disassemble(case.program),
                               name=case.name, row_bytes=ROW_BYTES)
            assert _stream_key(rebuilt) == _stream_key(case.program)


class TestDistribution:
    def test_distribution_covers_the_interesting_shapes(self):
        kinds = set()
        saw_loop = saw_plan = saw_no_plan = 0
        trr_values = set()
        for index in range(80):
            case = generate_case(0, index, row_bytes=ROW_BYTES)
            trr_values.add(case.trr_enabled)
            if case.fault_plan is None:
                saw_no_plan += 1
            else:
                saw_plan += 1
            for instruction in case.program.instructions:
                if isinstance(instruction, Loop):
                    saw_loop += 1
            kinds.update(c.kind for c in case.program.flatten())
        assert {CommandKind.ACT, CommandKind.REF, CommandKind.HAMMER,
                CommandKind.WAIT} <= kinds
        assert saw_loop > 5
        assert saw_plan > 10 and saw_no_plan > 10
        assert trr_values == {True, False}

    def test_fault_plans_are_wall_clock_safe(self):
        for index in range(80):
            case = generate_case(0, index, row_bytes=ROW_BYTES)
            if case.fault_plan is not None:
                assert case.fault_plan.stall_rate == 0.0
                assert case.fault_plan.hang_rate == 0.0


class TestFuzzCase:
    def test_with_program_keeps_context(self):
        case = generate_case(5, 0, row_bytes=ROW_BYTES)
        replaced = case.with_program(case.program)
        assert isinstance(replaced, FuzzCase)
        assert replaced.seed == case.seed
        assert replaced.fault_plan == case.fault_plan
