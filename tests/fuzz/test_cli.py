"""Suite for the fuzzer CLI (``python -m repro.fuzz``).

Contract under test: exit codes (0 clean / mutation caught, 1 failure
found / mutation escaped, 2 usage), reproducer persistence via
``--corpus``, and ``--replay`` over a saved corpus.
"""

from pathlib import Path

import pytest

from repro.fuzz.__main__ import main

CORPUS = Path(__file__).parent / "corpus"


class TestExitCodes:
    def test_clean_budget_exits_zero(self, capsys):
        assert main(["--seed", "0", "--budget", "10"]) == 0
        out = capsys.readouterr().out
        assert "0 failing" in out

    def test_zero_budget_is_clean(self):
        assert main(["--seed", "0", "--budget", "0"]) == 0

    def test_negative_budget_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--budget", "-1"])
        assert excinfo.value.code == 2

    def test_unknown_mutation_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--mutate", "nonexistent"])
        assert excinfo.value.code == 2


class TestMutationMode:
    def test_caught_mutation_exits_zero_and_shrinks(self, capsys):
        assert main(["--seed", "0", "--budget", "25",
                     "--mutate", "lint-blind"]) == 0
        out = capsys.readouterr().out
        assert "caught and shrunk" in out
        assert "shrunk reproducer" in out

    def test_escaped_mutation_exits_one(self, capsys):
        # Budget 0 cannot catch anything: the mutation "escapes".
        assert main(["--seed", "0", "--budget", "0",
                     "--mutate", "clock-skew"]) == 1
        assert "ESCAPED" in capsys.readouterr().err


class TestCorpusFlags:
    def test_corpus_flag_persists_reproducer(self, tmp_path, capsys):
        corpus = tmp_path / "out"
        assert main(["--seed", "0", "--budget", "25",
                     "--mutate", "lint-blind",
                     "--corpus", str(corpus)]) == 0
        saved = [p for p in corpus.iterdir() if p.is_dir()]
        assert len(saved) == 1
        assert (saved[0] / "program.sbp").is_file()
        assert (saved[0] / "case.json").is_file()

    def test_replay_committed_corpus_is_clean(self, capsys):
        assert main(["--replay", str(CORPUS)]) == 0
        out = capsys.readouterr().out
        assert "replayed 2 corpus case(s), 0 failing" in out

    def test_replay_detects_reintroduced_bug(self, capsys):
        from repro.fuzz.mutations import seeded_bug

        with seeded_bug("lint-blind"):
            code = main(["--replay", str(CORPUS)])
        assert code == 1


class TestSearchBudget:
    def test_clean_search_budget_exits_zero(self, capsys):
        assert main(["--seed", "0", "--budget", "0",
                     "--search-budget", "5"]) == 0
        out = capsys.readouterr().out
        assert "5 generated search case(s)" in out
        assert "0 failing" in out

    def test_negative_search_budget_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--search-budget", "-1"])
        assert excinfo.value.code == 2

    def test_search_failure_shrinks_and_persists(self, tmp_path, capsys):
        import json
        from unittest import mock

        import numpy as np

        from repro.faults.plan import FaultPlan

        real = FaultPlan.classify_probe_windows

        def blind(plan, bases, writes, hammers):
            dirty, reads = real(plan, bases, writes, hammers)
            return np.zeros_like(dirty), reads

        corpus = tmp_path / "out"
        with mock.patch.object(FaultPlan, "classify_probe_windows",
                               blind):
            code = main(["--seed", "0", "--budget", "0",
                         "--search-budget", "40",
                         "--corpus", str(corpus)])
        assert code == 1
        out = capsys.readouterr().out
        assert "shrunk reproducer" in out
        assert "victim ch" in out
        saved = [p for p in corpus.iterdir() if p.is_dir()]
        assert len(saved) == 1
        payload = json.loads((saved[0] / "case.json").read_text())
        assert payload["kind"] == "search"
        assert not (saved[0] / "program.sbp").exists()
