"""Tests for the HBM2 device engine."""

import numpy as np
import pytest

from repro.dram.cell_model import CellPopulation
from repro.dram.commands import CommandKind, act, hammer, pre, rd, ref, wait, wr
from repro.dram.device import (HBM2Stack, UniformProfileProvider,
                               classify_victim_pattern)
from repro.dram.geometry import RowAddress
from repro.dram.timing import TimingError
from repro.dram.trr import TrrConfig


def make_device(**kwargs) -> HBM2Stack:
    kwargs.setdefault("profile_provider", UniformProfileProvider(
        CellPopulation(f_weak=0.014, mu_weak=5.0)))
    kwargs.setdefault("retention", None)
    return HBM2Stack(**kwargs)


def image(byte: int) -> np.ndarray:
    return np.full(1024, byte, dtype=np.uint8)


VICTIM = RowAddress(0, 0, 0, 5000)


class TestPatternClassification:
    @pytest.mark.parametrize("byte,name", [
        (0x00, "Rowstripe0"), (0xFF, "Rowstripe1"),
        (0x55, "Checkered0"), (0xAA, "Checkered1")])
    def test_canonical(self, byte, name):
        assert classify_victim_pattern(image(byte)) == name

    def test_non_uniform_is_custom(self):
        data = image(0x00)
        data[5] = 1
        assert classify_victim_pattern(data) == "custom"

    def test_unknown_byte_is_custom(self):
        assert classify_victim_pattern(image(0x12)) == "custom"


class TestReadWrite:
    def test_roundtrip(self):
        device = make_device()
        device.write_row(VICTIM, image(0x55))
        assert np.array_equal(device.read_row(VICTIM), image(0x55))

    def test_unwritten_row_reads_zero(self):
        device = make_device()
        assert np.array_equal(device.read_row(VICTIM), image(0x00))

    def test_wrong_size_rejected(self):
        device = make_device()
        with pytest.raises(ValueError):
            device.write_row(VICTIM, np.zeros(100, dtype=np.uint8))

    def test_time_advances(self):
        device = make_device()
        before = device.now_ns
        device.write_row(VICTIM, image(0x55))
        assert device.now_ns > before


class TestHammering:
    def test_hammer_induces_flips_in_neighbors(self):
        device = make_device()
        device.write_row(VICTIM, image(0x55))
        for offset in (-1, 1):
            device.hammer(VICTIM.neighbor(offset), 400_000)
        observed = device.read_row(VICTIM)
        assert not np.array_equal(observed, image(0x55))

    def test_small_hammer_no_flips(self):
        device = make_device()
        device.write_row(VICTIM, image(0x55))
        for offset in (-1, 1):
            device.hammer(VICTIM.neighbor(offset), 100)
        assert np.array_equal(device.read_row(VICTIM), image(0x55))

    def test_flips_monotone_in_count(self):
        flips = []
        for count in (200_000, 400_000, 800_000):
            device = make_device()
            device.write_row(VICTIM, image(0x55))
            for offset in (-1, 1):
                device.hammer(VICTIM.neighbor(offset), count)
            observed = device.read_row(VICTIM)
            diff = np.unpackbits(observed ^ image(0x55)).sum()
            flips.append(int(diff))
        assert flips[0] <= flips[1] <= flips[2]

    def test_rewrite_rearms_cells(self):
        device = make_device()
        device.write_row(VICTIM, image(0x55))
        for offset in (-1, 1):
            device.hammer(VICTIM.neighbor(offset), 400_000)
        device.read_row(VICTIM)
        device.write_row(VICTIM, image(0x55))
        assert np.array_equal(device.read_row(VICTIM), image(0x55))

    def test_accumulation_units(self):
        device = make_device()
        device.hammer(VICTIM.neighbor(1), 1000)
        # One-sided: 0.5 units per activation at baseline.
        assert device.accumulated_units(VICTIM) == pytest.approx(500.0)

    def test_rowpress_amplifies(self):
        device = make_device()
        device.hammer(VICTIM.neighbor(1), 1000, t_on=3.9e3)
        assert device.accumulated_units(VICTIM) == pytest.approx(
            500.0 * 55.09, rel=1e-6)

    def test_disturbance_stops_at_subarray_boundary(self):
        device = make_device()
        edge = RowAddress(0, 0, 0, 831)  # last row of subarray 0
        device.hammer(edge, 1000)
        assert device.accumulated_units(RowAddress(0, 0, 0, 830)) > 0
        assert device.accumulated_units(RowAddress(0, 0, 0, 832)) == 0

    def test_blast_radius_two(self):
        device = make_device()
        device.hammer(VICTIM, 1000)
        near = device.accumulated_units(VICTIM.neighbor(1))
        far = device.accumulated_units(VICTIM.neighbor(2))
        assert far > 0
        assert far < near * 0.05

    def test_flipped_cells_do_not_flip_back(self):
        device = make_device()
        device.write_row(VICTIM, image(0x55))
        for offset in (-1, 1):
            device.hammer(VICTIM.neighbor(offset), 600_000)
        first = device.read_row(VICTIM)
        for offset in (-1, 1):
            device.hammer(VICTIM.neighbor(offset), 600_000)
        second = device.read_row(VICTIM)
        # Bits flipped in the first round stay flipped.
        first_flips = np.unpackbits(first ^ image(0x55)).astype(bool)
        second_flips = np.unpackbits(second ^ image(0x55)).astype(bool)
        assert np.all(second_flips[first_flips])


class TestBankStateMachine:
    def test_act_to_open_bank_rejected(self):
        device = make_device()
        device.execute(act(0, 0, 0, 100))
        with pytest.raises(TimingError):
            device.execute(act(0, 0, 0, 200))

    def test_act_pre_cycle(self):
        device = make_device()
        device.execute(act(0, 0, 0, 100))
        device.execute(pre(0, 0, 0))
        device.execute(act(0, 0, 0, 200))  # now legal

    def test_pre_enforces_tras(self):
        device = make_device()
        device.execute(act(0, 0, 0, 100))
        before = device.now_ns
        device.execute(pre(0, 0, 0))
        assert device.now_ns - before >= device.timings.t_ras

    def test_pre_on_closed_bank_is_noop(self):
        device = make_device()
        device.execute(pre(0, 0, 0))  # must not raise

    def test_act_wait_pre_applies_rowpress(self):
        device = make_device()
        aggressor = VICTIM.neighbor(1)
        device.execute(act(aggressor.channel, aggressor.pseudo_channel,
                           aggressor.bank, aggressor.row))
        device.execute(wait(35.1e3))
        device.execute(pre(aggressor.channel, aggressor.pseudo_channel,
                           aggressor.bank))
        assert device.accumulated_units(VICTIM) == pytest.approx(
            0.5 * 222.57, rel=0.02)

    def test_hammer_requires_closed_bank(self):
        device = make_device()
        device.execute(act(0, 0, 0, 100))
        with pytest.raises(TimingError):
            device.hammer(RowAddress(0, 0, 0, 500), 10)

    def test_rd_different_open_row_rejected(self):
        device = make_device()
        device.execute(act(0, 0, 0, 100))
        with pytest.raises(TimingError):
            device.read_row(RowAddress(0, 0, 0, 200))


class TestRefresh:
    def test_ref_restores_charge(self):
        device = make_device()
        device.hammer(VICTIM.neighbor(1), 1000)
        # Refresh pointer starts at 0; advance until it covers row 5000.
        for __ in range(2501):
            device.refresh(0, 0)
        assert device.accumulated_units(VICTIM) == 0.0

    def test_ref_does_not_unflip(self):
        device = make_device()
        device.write_row(VICTIM, image(0x55))
        for offset in (-1, 1):
            device.hammer(VICTIM.neighbor(offset), 600_000)
        flipped = device.inspect_row(VICTIM)
        for __ in range(2501):
            device.refresh(0, 0)
        assert np.array_equal(device.read_row(VICTIM), flipped)

    # Per-side activations per REF window: low enough that a TRR victim
    # refresh every 17 REFs keeps accumulation below the weakest cell
    # (~24K units for the uniform test population), high enough that 60
    # unprotected windows exceed it.
    _ACTS_PER_WINDOW = 800
    _WINDOWS = 60

    def test_trr_victim_refresh_protects(self):
        """With TRR enabled and no dummies, the victim is saved."""
        device = make_device(trr_config=TrrConfig(enabled=True))
        device.write_row(VICTIM, image(0x55))
        aggressors = [VICTIM.neighbor(-1), VICTIM.neighbor(1)]
        for round_index in range(self._WINDOWS):
            for aggressor in aggressors:
                device.hammer(aggressor, self._ACTS_PER_WINDOW)
            device.refresh(0, 0)
        assert device.stats.trr_victim_refreshes > 0
        assert np.array_equal(device.read_row(VICTIM), image(0x55))

    def test_without_trr_same_pattern_flips(self):
        device = make_device(trr_config=TrrConfig(enabled=False))
        device.write_row(VICTIM, image(0x55))
        aggressors = [VICTIM.neighbor(-1), VICTIM.neighbor(1)]
        for round_index in range(self._WINDOWS):
            for aggressor in aggressors:
                device.hammer(aggressor, self._ACTS_PER_WINDOW)
            device.refresh(0, 0)
        assert not np.array_equal(device.read_row(VICTIM), image(0x55))


class TestRetention:
    def test_retention_flips_appear_after_long_wait(self, chip0):
        device = chip0.make_device()
        # Find a row with a short retention time.
        address = None
        for row in range(3000, 3200):
            candidate = RowAddress(0, 0, 0, row)
            if chip0.retention.row_retention_ns(candidate) < 0.5e9:
                address = candidate
                break
        assert address is not None
        logical = address.with_row(
            chip0.row_mapping().to_logical(address.row))
        device.write_row(logical, image(0xFF))
        device.wait(1.0e9)
        observed = device.read_row(logical)
        assert not np.array_equal(observed, image(0xFF))

    def test_no_retention_failures_within_window(self, chip0):
        device = chip0.make_device()
        device.write_row(VICTIM, image(0xFF))
        device.wait(30.0e6)  # within the 32 ms guarantee
        assert np.array_equal(device.read_row(VICTIM), image(0xFF))


class TestOnDieEcc:
    def _hammered_device(self, ecc: bool) -> HBM2Stack:
        device = make_device()
        device.mode_registers.set_field(4, "ecc_enable", ecc)
        device.write_row(VICTIM, image(0x55))
        for offset in (-1, 1):
            device.hammer(VICTIM.neighbor(offset), 300_000)
        return device

    def test_ecc_masks_single_bit_words(self):
        """With on-die ECC left enabled (the power-up state), words with
        a single flipped bit read back clean — the reason the paper
        disables ECC (Section 3.1)."""
        raw = self._hammered_device(ecc=False)
        masked = self._hammered_device(ecc=True)
        raw_flips = np.unpackbits(raw.read_row(VICTIM)
                                  ^ image(0x55)).sum()
        masked_flips = np.unpackbits(masked.read_row(VICTIM)
                                     ^ image(0x55)).sum()
        assert masked_flips < raw_flips
        assert masked.stats.ecc_corrections > 0

    def test_ecc_cannot_mask_multi_bit_words(self):
        """Words holding 2+ flips pass through uncorrected (the
        Section 8 security argument)."""
        device = self._hammered_device(ecc=True)
        observed = device.read_row(VICTIM)
        flips = np.unpackbits(observed ^ image(0x55))
        words = flips.reshape(-1, 64).sum(axis=1)
        surviving = words[words > 0]
        if surviving.size:
            assert np.all(surviving >= 2)

    def test_disable_ecc_default_matches_paper(self):
        assert not make_device().mode_registers.ecc_enabled

    def test_power_up_state_available(self):
        device = HBM2Stack(disable_ecc=False, retention=None)
        assert device.mode_registers.ecc_enabled

    def test_vectorized_correction_matches_scalar_reference(self):
        """The index-arithmetic ECC path must byte-match a per-word
        scalar corrector on arbitrary flip masks."""
        from repro.dram.device import _RowState

        device = make_device()
        rng = np.random.default_rng(7)
        for density in (0.0005, 0.01, 0.2):
            flipped = rng.random(8192) < density
            state = _RowState(data=image(0x55), already_flipped=flipped)
            data = rng.integers(0, 256, 1024).astype(np.uint8)

            expected = data.copy()
            corrections = 0
            for word in range(128):
                bits = np.flatnonzero(flipped[word * 64:(word + 1) * 64])
                if bits.size == 1:
                    bit = word * 64 + int(bits[0])
                    expected[bit // 8] ^= np.uint8(1 << (7 - bit % 8))
                    corrections += 1

            before = device.stats.ecc_corrections
            observed = device._apply_on_die_ecc(state, data)
            assert np.array_equal(observed, expected)
            assert device.stats.ecc_corrections - before == corrections


class TestTrrRefreshDisturbance:
    def test_trr_victim_refresh_disturbs_its_neighbors(self):
        """A TRR victim refresh internally activates the row, delivering
        distance-1 disturbance to *its* neighbors — the HalfDouble lever
        (Section 8.1)."""
        device = make_device(trr_config=TrrConfig(enabled=True))
        aggressor = RowAddress(0, 0, 0, 5002)
        outer_victim = RowAddress(0, 0, 0, 5000)  # neighbor of 5001
        device.hammer(aggressor, 10)  # sampled by the CAM
        for __ in range(17):
            device.refresh(0, 0)
        # TRR refreshed 5001 and 5003; 5001's refresh disturbs 5000.
        assert device.stats.trr_victim_refreshes >= 2
        units = device.accumulated_units(outer_victim)
        assert units == pytest.approx(0.5 + 10 * 0.5 * 0.015, rel=0.05)


class TestCommandInterface:
    def test_run_program_of_commands(self):
        device = make_device()
        results = device.run([
            wr(0, 0, 0, 10, image(0xAA)),
            rd(0, 0, 0, 10),
            ref(0, 0),
        ])
        assert results[0] is None
        assert np.array_equal(results[1], image(0xAA))

    def test_stats_counters(self):
        device = make_device()
        device.run([
            wr(0, 0, 0, 10, image(0xAA)),
            rd(0, 0, 0, 10),
            hammer(0, 0, 0, 100, 50),
            ref(0, 0),
        ])
        assert device.stats.writes == 1
        assert device.stats.reads == 1
        assert device.stats.refs == 1
        assert device.stats.acts >= 52

    def test_wr_requires_data(self):
        from repro.dram.commands import Command

        device = make_device()
        with pytest.raises(ValueError):
            device.execute(Command(CommandKind.WR, 0, 0, 0, 10))


class TestMapping:
    def test_logical_physical_translation(self, chip0):
        device = chip0.make_device()
        mapping = chip0.row_mapping()
        physical = RowAddress(0, 0, 0, 5000)
        logical = physical.with_row(mapping.to_logical(physical.row))
        device.write_row(logical, image(0x55))
        # Hammering the *physical* neighbors must disturb the victim.
        for offset in (-1, 1):
            neighbor_physical = physical.row + offset
            neighbor_logical = mapping.to_logical(neighbor_physical)
            device.hammer(physical.with_row(neighbor_logical), 700_000)
        observed = device.read_row(logical)
        assert not np.array_equal(observed, image(0x55))
