"""Error-path coverage for HBM2Stack timing checks and the shared
error taxonomy (satellite: TimingError paths in dram/device.py)."""

import numpy as np
import pytest

from repro.dram.cell_model import CellPopulation
from repro.dram.device import HBM2Stack, UniformProfileProvider
from repro.dram.geometry import RowAddress
from repro.errors import HbmSimError, TimingError

ROW = RowAddress(0, 0, 0, 50)
OTHER_ROW = RowAddress(0, 0, 0, 51)


@pytest.fixture()
def device() -> HBM2Stack:
    return HBM2Stack(profile_provider=UniformProfileProvider(
        CellPopulation(f_weak=0.014, mu_weak=5.0)))


class TestTimingErrorPaths:
    def test_read_with_different_row_open(self, device):
        device.activate(ROW)
        with pytest.raises(TimingError, match="different row open"):
            device.read_row(OTHER_ROW)

    def test_write_with_different_row_open(self, device):
        device.activate(ROW)
        with pytest.raises(TimingError, match="different row open"):
            device.write_row(OTHER_ROW,
                             np.zeros(device.geometry.row_bytes,
                                      dtype=np.uint8))

    def test_hammer_on_open_bank(self, device):
        device.activate(ROW)
        with pytest.raises(TimingError, match="closed bank"):
            device.hammer(OTHER_ROW, 10)

    def test_double_activate(self, device):
        device.activate(ROW)
        with pytest.raises(TimingError, match="already open"):
            device.activate(OTHER_ROW)

    def test_negative_wait_is_value_error(self, device):
        # Invalid argument, not a protocol violation: stays ValueError.
        with pytest.raises(ValueError):
            device.wait(-1.0)

    def test_same_row_read_while_open_is_legal(self, device):
        device.activate(ROW)
        device.read_row(ROW)  # no TimingError
        device.precharge(ROW.channel, ROW.pseudo_channel, ROW.bank)


class TestErrorTaxonomy:
    def test_timing_error_is_hbmsim_error(self, device):
        device.activate(ROW)
        with pytest.raises(HbmSimError):
            device.read_row(OTHER_ROW)

    def test_legacy_import_path_still_works(self):
        from repro.dram.timing import TimingError as LegacyTimingError
        from repro.dram import TimingError as PackageTimingError
        assert LegacyTimingError is TimingError
        assert PackageTimingError is TimingError
