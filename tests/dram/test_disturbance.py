"""Tests for the RowPress amplification model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.disturbance import (DEFAULT_DISTURBANCE, DisturbanceModel)


class TestAmplification:
    def test_baseline_is_one(self):
        assert DEFAULT_DISTURBANCE.amplification(29.0) == 1.0

    def test_below_baseline_clamps_to_one(self):
        assert DEFAULT_DISTURBANCE.amplification(1.0) == 1.0

    def test_anchor_at_trefi(self):
        """Mean HC_first drops 83689 -> 1519 at tREFI (Fig. 13)."""
        assert DEFAULT_DISTURBANCE.amplification(3.9e3) == pytest.approx(
            55.09, rel=1e-6)

    def test_anchor_at_9_trefi_is_paper_value(self):
        """The paper quotes the 222.57x average HC_first reduction."""
        assert DEFAULT_DISTURBANCE.amplification(35.1e3) == pytest.approx(
            222.57, rel=1e-6)

    def test_16ms_amplification_reaches_hc_first_of_one(self):
        """At 16 ms a single hammer must flip typical rows (Obsv. 23)."""
        amplification = DEFAULT_DISTURBANCE.amplification(16.0e6)
        assert amplification >= 1.0e5

    @given(st.floats(min_value=29.0, max_value=1.0e7))
    @settings(max_examples=200)
    def test_monotone_nondecreasing(self, t_on):
        model = DEFAULT_DISTURBANCE
        assert model.amplification(t_on * 1.1) >= model.amplification(t_on)

    def test_extrapolation_beyond_last_anchor(self):
        model = DEFAULT_DISTURBANCE
        assert model.amplification(32.0e6) > model.amplification(16.0e6)

    def test_array_matches_scalar(self):
        """Element-wise bit-identical to the scalar method (the batched
        experiment path depends on exact equality, not closeness)."""
        t_ons = [29.0, 58.0, 100.0, 3.9e3, 31.3e3, 1.0e6, 32.0e6]
        array = DEFAULT_DISTURBANCE.amplification_array(t_ons)
        scalar = [DEFAULT_DISTURBANCE.amplification(t) for t in t_ons]
        assert np.array_equal(array, scalar)


class TestDistanceCoupling:
    def test_distance_one_full(self):
        assert DEFAULT_DISTURBANCE.distance_factor(1) == 1.0

    def test_distance_two_weak(self):
        factor = DEFAULT_DISTURBANCE.distance_factor(2)
        assert 0.0 < factor < 0.1

    def test_beyond_radius_zero(self):
        assert DEFAULT_DISTURBANCE.distance_factor(3) == 0.0

    def test_blast_radius(self):
        assert DEFAULT_DISTURBANCE.blast_radius == 2

    def test_nonpositive_distance_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_DISTURBANCE.distance_factor(0)


class TestEffectiveHammers:
    def test_double_sided_baseline_identity(self):
        """Per-side hammer count N at baseline == N baseline units."""
        model = DEFAULT_DISTURBANCE
        assert model.effective_hammers(1000, 29.0) == pytest.approx(1000.0)

    def test_single_sided_is_half(self):
        model = DEFAULT_DISTURBANCE
        assert model.effective_hammers(1000, 29.0, sides=1) \
            == pytest.approx(500.0)

    def test_amplification_scales_units(self):
        model = DEFAULT_DISTURBANCE
        assert model.effective_hammers(1000, 35.1e3) == pytest.approx(
            1000 * 222.57)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_DISTURBANCE.effective_hammers(-1, 29.0)


class TestValidation:
    def test_unordered_anchors_rejected(self):
        with pytest.raises(ValueError):
            DisturbanceModel(anchors=((29.0, 1.0), (20.0, 2.0)))

    def test_decreasing_amplification_rejected(self):
        with pytest.raises(ValueError):
            DisturbanceModel(anchors=((29.0, 2.0), (60.0, 1.0)))

    def test_single_anchor_rejected(self):
        with pytest.raises(ValueError):
            DisturbanceModel(anchors=((29.0, 1.0),))

    def test_custom_anchors_interpolate(self):
        model = DisturbanceModel(anchors=((10.0, 1.0), (1000.0, 100.0)))
        assert model.amplification(100.0) == pytest.approx(10.0, rel=1e-6)
