"""Tests for logical-to-physical row mappings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.row_mapping import (MAPPING_FAMILIES, IdentityMapping,
                                    MirrorOddMapping, XorScrambleMapping,
                                    make_mapping)

_ROWS = 16384
_row = st.integers(min_value=0, max_value=_ROWS - 1)


def all_mappings():
    return [make_mapping(name, _ROWS) for name in MAPPING_FAMILIES]


class TestBijectivity:
    @given(_row)
    @settings(max_examples=150)
    def test_roundtrip_all_families(self, row):
        for mapping in all_mappings():
            assert mapping.to_logical(mapping.to_physical(row)) == row
            assert mapping.to_physical(mapping.to_logical(row)) == row

    def test_full_permutation(self):
        for mapping in all_mappings():
            image = {mapping.to_physical(r) for r in range(2048)}
            assert image == set(range(2048))


class TestIdentity:
    def test_identity(self):
        mapping = IdentityMapping(_ROWS)
        assert mapping.to_physical(123) == 123
        assert mapping.physical_neighbors(100) == [99, 101]


class TestXorScramble:
    def test_scramble_changes_some_rows(self):
        mapping = XorScrambleMapping(_ROWS)
        changed = sum(mapping.to_physical(r) != r for r in range(64))
        assert changed == 32  # half the rows have the source bit set

    def test_neighbors_not_always_adjacent_logically(self):
        mapping = XorScrambleMapping(_ROWS)
        neighbor_sets = [tuple(mapping.physical_neighbors(r))
                         for r in range(16)]
        plain = [(r - 1, r + 1) for r in range(16)]
        assert any(n != p for n, p in zip(neighbor_sets[1:], plain[1:]))

    def test_same_bits_rejected(self):
        with pytest.raises(ValueError):
            XorScrambleMapping(_ROWS, target_bit=2, source_bit=2)

    def test_bits_beyond_width_rejected(self):
        with pytest.raises(ValueError):
            XorScrambleMapping(4, target_bit=1, source_bit=2)


class TestMirrorOdd:
    def test_permutation_within_groups(self):
        mapping = MirrorOddMapping(_ROWS)
        assert [mapping.to_physical(r) for r in range(4)] == [0, 2, 1, 3]
        assert [mapping.to_physical(r) for r in range(4, 8)] == [4, 6, 5, 7]


class TestNeighbors:
    def test_bank_edges_have_one_neighbor(self):
        for mapping in all_mappings():
            low_edge_logical = mapping.to_logical(0)
            assert len(mapping.physical_neighbors(low_edge_logical)) == 1
            high_edge_logical = mapping.to_logical(_ROWS - 1)
            assert len(mapping.physical_neighbors(high_edge_logical)) == 1

    @given(_row)
    @settings(max_examples=100)
    def test_neighbors_are_physically_adjacent(self, row):
        for mapping in all_mappings():
            physical = mapping.to_physical(row)
            for neighbor in mapping.physical_neighbors(row):
                assert abs(mapping.to_physical(neighbor) - physical) == 1


class TestFactory:
    def test_known_families(self):
        for name in ("IdentityMapping", "XorScrambleMapping",
                     "MirrorOddMapping"):
            assert make_mapping(name, _ROWS).name == name

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            make_mapping("Nonsense", _ROWS)

    def test_nonpositive_rows_rejected(self):
        with pytest.raises(ValueError):
            IdentityMapping(0)
