"""Tests for the data-retention fault model."""

import numpy as np
import pytest

from repro.dram.geometry import RowAddress
from repro.dram.retention import (GUARANTEED_RETENTION_NS, RetentionModel)


@pytest.fixture
def model():
    return RetentionModel(seed=42)


def addr(row: int) -> RowAddress:
    return RowAddress(0, 0, 0, row)


class TestRowRetention:
    def test_deterministic(self, model):
        assert model.row_retention_ns(addr(5)) \
            == model.row_retention_ns(addr(5))

    def test_rows_differ(self, model):
        times = {model.row_retention_ns(addr(r)) for r in range(50)}
        assert len(times) == 50

    def test_never_below_guarantee(self, model):
        """Manufacturers guarantee no failures within the 32 ms window."""
        for row in range(300):
            assert model.row_retention_ns(addr(row)) \
                > GUARANTEED_RETENTION_NS

    def test_median_near_configured(self, model):
        times = [model.row_retention_ns(addr(r)) for r in range(2000)]
        assert np.median(times) == pytest.approx(model.median_ns, rel=0.15)

    def test_usable_side_channel_population(self, model):
        """U-TRR needs rows with retention in the hundreds of ms."""
        times = [model.row_retention_ns(addr(r)) for r in range(2000)]
        usable = [t for t in times if 192.0e6 <= t <= 1.0e9]
        assert len(usable) > 100


class TestCellLadder:
    def test_first_rung_is_row_retention(self, model):
        times, __ = model.cell_ladder(addr(9))
        assert times[0] == pytest.approx(model.row_retention_ns(addr(9)))

    def test_ladder_sorted(self, model):
        times, __ = model.cell_ladder(addr(9))
        assert np.all(np.diff(times) >= 0)

    def test_positions_distinct(self, model):
        __, positions = model.cell_ladder(addr(9))
        assert np.unique(positions).size == positions.size

    def test_positions_in_row(self, model):
        __, positions = model.cell_ladder(addr(9))
        assert positions.min() >= 0 and positions.max() < 8192


class TestFailures:
    def test_no_failures_before_retention(self, model):
        address = addr(3)
        retention = model.row_retention_ns(address)
        assert model.failure_count(address, retention * 0.9) == 0
        assert not model.has_failed(address, retention * 0.9)

    def test_failures_after_retention(self, model):
        address = addr(3)
        retention = model.row_retention_ns(address)
        assert model.failure_count(address, retention * 1.01) >= 1
        assert model.has_failed(address, retention * 1.01)

    def test_failures_monotone_in_time(self, model):
        address = addr(3)
        retention = model.row_retention_ns(address)
        counts = [model.failure_count(address, retention * k)
                  for k in (1.0, 3.0, 10.0, 100.0)]
        assert all(b >= a for a, b in zip(counts, counts[1:]))

    def test_negative_elapsed_rejected(self, model):
        with pytest.raises(ValueError):
            model.failing_bits(addr(0), -1.0)


class TestProfiling:
    def test_profile_is_64ms_multiple(self, model):
        profiled = model.profile_retention_ns(addr(11))
        if profiled != float("inf"):
            assert profiled % 64.0e6 == pytest.approx(0.0, abs=1.0)

    def test_profile_upper_bounds_truth(self, model):
        address = addr(11)
        profiled = model.profile_retention_ns(address)
        truth = model.row_retention_ns(address)
        assert profiled >= truth
        assert profiled - truth < 64.0e6

    def test_different_seeds_give_different_populations(self):
        a = RetentionModel(seed=1)
        b = RetentionModel(seed=2)
        address = addr(7)
        assert a.row_retention_ns(address) != b.row_retention_ns(address)
