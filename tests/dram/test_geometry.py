"""Tests for HBM2 geometry and addressing."""

import pytest

from repro.dram.geometry import (DEFAULT_GEOMETRY, DEFAULT_SUBARRAY_SIZES,
                                 HBM2Geometry, RowAddress, SubarrayLayout,
                                 adjacent_rows)


class TestSubarrayLayout:
    def test_default_sizes_match_paper(self):
        layout = SubarrayLayout()
        assert set(layout.sizes) == {832, 768}

    def test_total_rows(self):
        assert SubarrayLayout().rows == 16384

    def test_subarray_count(self):
        assert SubarrayLayout().count == len(DEFAULT_SUBARRAY_SIZES)

    def test_boundaries_start_at_zero_and_end_at_rows(self):
        layout = SubarrayLayout()
        assert layout.boundaries[0] == 0
        assert layout.boundaries[-1] == layout.rows

    def test_middle_subarray_is_832_rows(self):
        layout = SubarrayLayout()
        assert layout.sizes[layout.middle_subarray] == 832

    def test_last_subarray_is_832_rows(self):
        layout = SubarrayLayout()
        assert layout.sizes[layout.last_subarray] == 832

    def test_subarray_of_first_and_last_row(self):
        layout = SubarrayLayout()
        assert layout.subarray_of(0) == 0
        assert layout.subarray_of(layout.rows - 1) == layout.count - 1

    def test_position_in_subarray_roundtrip(self):
        layout = SubarrayLayout()
        for row in (0, 831, 832, 8191, 8192, 16383):
            index, offset, size = layout.position_in_subarray(row)
            assert layout.boundaries[index] + offset == row
            assert layout.sizes[index] == size

    def test_rows_of_covers_every_row_exactly_once(self):
        layout = SubarrayLayout()
        seen = []
        for index in range(layout.count):
            seen.extend(layout.rows_of(index))
        assert seen == list(range(layout.rows))

    def test_edge_rows(self):
        layout = SubarrayLayout()
        assert layout.is_edge_row(0)
        assert layout.is_edge_row(831)
        assert not layout.is_edge_row(416)

    def test_same_subarray(self):
        layout = SubarrayLayout()
        assert layout.same_subarray(0, 831)
        assert not layout.same_subarray(831, 832)

    def test_out_of_range_row_rejected(self):
        layout = SubarrayLayout()
        with pytest.raises(ValueError):
            layout.subarray_of(layout.rows)
        with pytest.raises(ValueError):
            layout.subarray_of(-1)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            SubarrayLayout(sizes=(0, 16384))


class TestHBM2Geometry:
    def test_paper_dimensions(self):
        geometry = DEFAULT_GEOMETRY
        assert geometry.channels == 8
        assert geometry.pseudo_channels == 2
        assert geometry.banks == 16
        assert geometry.rows == 16384
        assert geometry.row_bits == 8192
        assert geometry.row_bytes == 1024

    def test_stack_density_is_4gib(self):
        assert DEFAULT_GEOMETRY.density_bytes == 4 * 1024 ** 3

    def test_total_banks(self):
        assert DEFAULT_GEOMETRY.total_banks == 256

    def test_die_pairing_is_mirrored(self):
        geometry = DEFAULT_GEOMETRY
        assert geometry.die_of_channel(0) == geometry.die_of_channel(7)
        assert geometry.die_of_channel(3) == geometry.die_of_channel(4)
        assert geometry.die_of_channel(0) != geometry.die_of_channel(3)

    def test_every_die_has_two_channels(self):
        geometry = DEFAULT_GEOMETRY
        counts = {}
        for channel in range(geometry.channels):
            die = geometry.die_of_channel(channel)
            counts[die] = counts.get(die, 0) + 1
        assert all(count == 2 for count in counts.values())

    def test_check_address_accepts_valid(self):
        DEFAULT_GEOMETRY.check_address(7, 1, 15, 16383)

    @pytest.mark.parametrize("kwargs", [
        {"channel": 8, "pseudo_channel": 0, "bank": 0, "row": 0},
        {"channel": 0, "pseudo_channel": 2, "bank": 0, "row": 0},
        {"channel": 0, "pseudo_channel": 0, "bank": 16, "row": 0},
        {"channel": 0, "pseudo_channel": 0, "bank": 0, "row": 16384},
    ])
    def test_check_address_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            DEFAULT_GEOMETRY.check_address(**kwargs)

    def test_iter_banks_counts(self):
        assert len(list(DEFAULT_GEOMETRY.iter_banks())) == 256

    def test_mismatched_subarray_layout_rejected(self):
        with pytest.raises(ValueError):
            HBM2Geometry(rows=1000)


class TestRowAddress:
    def test_validate_returns_self(self):
        address = RowAddress(0, 0, 0, 0)
        assert address.validate(DEFAULT_GEOMETRY) is address

    def test_neighbor(self):
        address = RowAddress(1, 0, 2, 100)
        assert address.neighbor(1).row == 101
        assert address.neighbor(-1).row == 99
        assert address.neighbor(1).bank_key == address.bank_key

    def test_with_row(self):
        address = RowAddress(1, 1, 2, 100)
        moved = address.with_row(55)
        assert moved.row == 55
        assert moved.bank_key == address.bank_key

    def test_ordering(self):
        assert RowAddress(0, 0, 0, 1) < RowAddress(0, 0, 0, 2)

    def test_bank_key(self):
        assert RowAddress(3, 1, 7, 9).bank_key == (3, 1, 7)


class TestAdjacentRows:
    def test_middle_row_has_two_neighbors_at_radius_one(self):
        neighbors = adjacent_rows(RowAddress(0, 0, 0, 100),
                                  DEFAULT_GEOMETRY, radius=1)
        assert sorted(n.row for n in neighbors) == [99, 101]

    def test_bank_edge_row_has_one_neighbor(self):
        neighbors = adjacent_rows(RowAddress(0, 0, 0, 0),
                                  DEFAULT_GEOMETRY, radius=1)
        assert [n.row for n in neighbors] == [1]

    def test_subarray_boundary_blocks_disturbance(self):
        # Row 831 is the last row of subarray 0; row 832 starts subarray 1.
        neighbors = adjacent_rows(RowAddress(0, 0, 0, 831),
                                  DEFAULT_GEOMETRY, radius=1)
        assert [n.row for n in neighbors] == [830]

    def test_radius_two_respects_boundaries(self):
        neighbors = adjacent_rows(RowAddress(0, 0, 0, 830),
                                  DEFAULT_GEOMETRY, radius=2)
        assert sorted(n.row for n in neighbors) == [828, 829, 831]
