"""Tests for the device command trace (debugging aid)."""

import numpy as np
import pytest

from repro.dram.cell_model import CellPopulation
from repro.dram.device import HBM2Stack, UniformProfileProvider
from repro.dram.geometry import RowAddress


@pytest.fixture
def device():
    return HBM2Stack(
        profile_provider=UniformProfileProvider(
            CellPopulation(f_weak=0.014, mu_weak=5.0)),
        retention=None)


def image(byte: int) -> np.ndarray:
    return np.full(1024, byte, dtype=np.uint8)


class TestTracing:
    def test_disabled_by_default(self, device):
        device.write_row(RowAddress(0, 0, 0, 10), image(0x55))
        assert device.trace() == []

    def test_records_operations_in_order(self, device):
        device.enable_tracing()
        device.write_row(RowAddress(0, 0, 0, 10), image(0x55))
        device.hammer(RowAddress(0, 0, 0, 9), 500)
        device.read_row(RowAddress(0, 0, 0, 10))
        device.refresh(0, 0)
        kinds = [entry.kind for entry in device.trace()]
        # WR opens/closes the bank itself (no explicit ACT recorded);
        # RD auto-activates, reads, then precharges.
        assert kinds == ["PRE", "WR", "HAMMER", "ACT", "PRE", "RD",
                         "REF"]

    def test_noop_precharge_still_traced(self, device):
        """PRE to a bank with no open row must appear in the trace:
        stats.pres and the trace are two views of the same command
        stream and may not disagree."""
        device.enable_tracing()
        device.precharge(0, 0, 3)
        entries = device.trace()
        assert [entry.kind for entry in entries] == ["PRE"]
        assert entries[0].bank == 3
        assert device.stats.pres == 1

    def test_hammer_entry_carries_count(self, device):
        device.enable_tracing()
        device.hammer(RowAddress(0, 0, 0, 9), 1234)
        entry = device.trace()[0]
        assert entry.kind == "HAMMER"
        assert entry.count == 1234
        assert entry.row == 9

    def test_ring_buffer_capacity(self, device):
        device.enable_tracing(capacity=3)
        for __ in range(5):
            device.refresh(0, 0)
        trace = device.trace()
        assert len(trace) == 3
        assert all(entry.kind == "REF" for entry in trace)

    def test_timestamps_monotone(self, device):
        device.enable_tracing()
        device.hammer(RowAddress(0, 0, 0, 9), 10)
        device.refresh(0, 0)
        device.hammer(RowAddress(0, 0, 0, 9), 10)
        times = [entry.time_ns for entry in device.trace()]
        assert times == sorted(times)

    def test_str_rendering(self, device):
        device.enable_tracing()
        device.hammer(RowAddress(1, 0, 3, 9), 10)
        device.refresh(0, 1)
        rendered = [str(entry) for entry in device.trace()]
        assert "HAMMER ch1 pc0 ba3 row 9 x10" in rendered[0]
        assert "REF ch0 pc1" in rendered[1]
        assert "ba-1" not in rendered[1]

    def test_disable_tracing(self, device):
        device.enable_tracing()
        device.refresh(0, 0)
        device.disable_tracing()
        device.refresh(0, 0)
        assert device.trace() == []

    def test_invalid_capacity(self, device):
        with pytest.raises(ValueError):
            device.enable_tracing(capacity=0)
