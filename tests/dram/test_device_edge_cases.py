"""Edge-case device tests: custom data, ECC+TRR together, mapping
corners, time accounting."""

import numpy as np
import pytest

from repro.dram.cell_model import CellPopulation
from repro.dram.device import HBM2Stack, UniformProfileProvider
from repro.dram.geometry import RowAddress
from repro.dram.trr import TrrConfig

VICTIM = RowAddress(0, 0, 0, 5000)


def make_device(**kwargs):
    kwargs.setdefault("profile_provider", UniformProfileProvider(
        CellPopulation(f_weak=0.014, mu_weak=5.0)))
    kwargs.setdefault("retention", None)
    return HBM2Stack(**kwargs)


class TestCustomDataPatterns:
    def test_random_victim_data_still_flips(self, rng):
        """Non-canonical row images classify as 'custom' and use the
        default coupling — hammering still induces flips."""
        device = make_device()
        image = rng.integers(0, 256, 1024).astype(np.uint8)
        device.write_row(VICTIM, image)
        for offset in (-1, 1):
            device.hammer(VICTIM.neighbor(offset), 500_000)
        observed = device.read_row(VICTIM)
        assert not np.array_equal(observed, image)

    def test_custom_pattern_deterministic(self, rng):
        images = rng.integers(0, 256, 1024).astype(np.uint8)
        flips = []
        for __ in range(2):
            device = make_device()
            device.write_row(VICTIM, images)
            for offset in (-1, 1):
                device.hammer(VICTIM.neighbor(offset), 500_000)
            observed = device.read_row(VICTIM)
            flips.append(int(np.unpackbits(observed ^ images).sum()))
        assert flips[0] == flips[1]


class TestEccWithTrr:
    def test_ecc_and_trr_compose(self):
        """Power-up configuration: on-die ECC masks stray single-bit
        flips while TRR prevents accumulation — the stack a real system
        relies on (and the paper disables both)."""
        device = make_device(trr_config=TrrConfig(enabled=True),
                             disable_ecc=False)
        image = np.full(1024, 0x55, dtype=np.uint8)
        device.write_row(VICTIM, image)
        for __ in range(40):
            for offset in (-1, 1):
                device.hammer(VICTIM.neighbor(offset), 800)
            device.refresh(0, 0)
        assert np.array_equal(device.read_row(VICTIM), image)


class TestTimeAccounting:
    def test_hammer_duration_matches_timings(self):
        device = make_device()
        before = device.now_ns
        device.hammer(VICTIM, 1000)
        elapsed = device.now_ns - before
        assert elapsed == pytest.approx(
            1000 * device.timings.act_to_act(device.timings.t_ras))

    def test_rowpress_hammer_slower(self):
        fast = make_device()
        slow = make_device()
        fast.hammer(VICTIM, 100)
        slow.hammer(VICTIM, 100, t_on=3.9e3)
        assert slow.now_ns > 10 * fast.now_ns

    def test_wait_advances_exactly(self):
        device = make_device()
        device.wait(12345.0)
        assert device.now_ns == 12345.0

    def test_negative_wait_rejected(self):
        with pytest.raises(ValueError):
            make_device().wait(-1.0)


class TestInspection:
    def test_inspect_row_has_no_side_effects(self):
        device = make_device()
        image = np.full(1024, 0x55, dtype=np.uint8)
        device.write_row(VICTIM, image)
        for offset in (-1, 1):
            device.hammer(VICTIM.neighbor(offset), 500_000)
        acc_before = device.accumulated_units(VICTIM)
        first = device.inspect_row(VICTIM)
        assert device.accumulated_units(VICTIM) == acc_before
        second = device.inspect_row(VICTIM)
        assert np.array_equal(first, second)
        # The later read returns exactly what inspect previewed.
        assert np.array_equal(device.read_row(VICTIM), first)

    def test_inspect_untouched_row(self):
        device = make_device()
        assert np.all(device.inspect_row(VICTIM) == 0)


class TestHammerEdgeCases:
    def test_zero_count_hammer_is_noop(self):
        device = make_device()
        before = device.now_ns
        device.hammer(VICTIM, 0)
        assert device.now_ns == before
        assert device.accumulated_units(VICTIM.neighbor(1)) == 0.0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            make_device().hammer(VICTIM, -1)

    def test_bank_edge_aggressor(self):
        """Hammering row 0 disturbs only row 1 (and row 2 weakly)."""
        device = make_device()
        edge = RowAddress(0, 0, 0, 0)
        device.hammer(edge, 1000)
        assert device.accumulated_units(RowAddress(0, 0, 0, 1)) > 0

    def test_out_of_range_row_rejected(self):
        with pytest.raises(ValueError):
            make_device().hammer(RowAddress(0, 0, 0, 16384), 10)
