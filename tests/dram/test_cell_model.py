"""Tests for the two-population cell threshold model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.cell_model import (CellPopulation, RowDisturbanceProfile,
                                   expected_hc_first,
                                   order_stats_from_draws,
                                   sample_clustered_positions,
                                   sample_smallest_uniforms, solve_mu_weak)


def make_population(**overrides) -> CellPopulation:
    params = {"f_weak": 0.014, "mu_weak": 5.5}
    params.update(overrides)
    return CellPopulation(**params)


class TestOrderStats:
    @given(st.integers(min_value=1, max_value=300),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=100)
    def test_sorted_and_in_unit_interval(self, n, k):
        k = min(k, n)
        rng = np.random.default_rng(0)
        stats = sample_smallest_uniforms(n, k, rng)
        assert np.all(np.diff(stats) >= 0)
        assert np.all(stats >= 0) and np.all(stats <= 1)

    def test_prefix_consistency(self):
        """First k1 of k2 > k1 order stats are identical given the same
        draw stream — the analytic/exact consistency guarantee."""
        draws = np.random.default_rng(7).random(10)
        full = order_stats_from_draws(100, draws)
        prefix = order_stats_from_draws(100, draws[:4])
        assert np.allclose(full[:4], prefix)

    def test_minimum_distribution_median(self):
        """Median of U_(1) for n draws is 1 - 0.5**(1/n)."""
        n = 64
        rng = np.random.default_rng(3)
        minima = [sample_smallest_uniforms(n, 1, rng)[0]
                  for __ in range(4000)]
        expected = 1.0 - 0.5 ** (1.0 / n)
        assert np.median(minima) == pytest.approx(expected, rel=0.1)

    def test_batch_shape(self):
        draws = np.random.default_rng(1).random((5, 3))
        stats = order_stats_from_draws(50, draws)
        assert stats.shape == (5, 3)
        assert np.all(np.diff(stats, axis=1) >= 0)

    def test_invalid_inputs(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_smallest_uniforms(0, 1, rng)
        with pytest.raises(ValueError):
            sample_smallest_uniforms(5, 6, rng)


class TestCellPopulation:
    def test_ber_monotone_in_hammers(self):
        pop = make_population()
        bers = [pop.ber(h) for h in (1e4, 1e5, 1e6, 1e7, 1e8)]
        assert all(b <= a for b, a in zip(bers, bers[1:]))

    def test_ber_zero_below_everything(self):
        assert make_population().ber(0) == 0.0
        assert make_population().ber(-5) == 0.0

    def test_ber_saturates_at_polarity_cap(self):
        pop = make_population(flippable_strong_fraction=0.5)
        saturated = pop.ber(1e12)
        assert saturated == pytest.approx(
            pop.f_weak + (1 - pop.f_weak) * 0.5, rel=1e-6)

    def test_ber_array_matches_scalar(self):
        pop = make_population()
        hammers = np.array([0.0, 1e5, 5e5, 1e7])
        array = pop.ber_array(hammers)
        scalar = [pop.ber(h) for h in hammers]
        assert np.allclose(array, scalar)

    def test_weak_regime_plateau(self):
        """In the RowHammer regime BER plateaus near f_weak."""
        pop = make_population(mu_strong=9.0)
        assert pop.ber(10 ** 6.8) == pytest.approx(pop.f_weak, rel=0.05)

    def test_hammers_for_ber_inverts_ber(self):
        pop = make_population(mu_strong=12.0)  # isolate the weak term
        target = 0.005
        hammers = pop.hammers_for_ber(target)
        assert pop.ber(hammers) == pytest.approx(target, rel=1e-6)

    def test_hammers_for_ber_rejects_above_plateau(self):
        pop = make_population()
        with pytest.raises(ValueError):
            pop.hammers_for_ber(pop.f_weak * 2)

    def test_weak_cell_count(self):
        assert make_population(f_weak=0.014).weak_cell_count(8192) == 115

    def test_with_coupling_shifts_thresholds(self):
        pop = make_population()
        boosted = pop.with_coupling(2.0)
        # Twice the coupling means the same BER at half the hammers.
        assert boosted.ber(1e5) == pytest.approx(pop.ber(2e5), rel=1e-9)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_population(f_weak=0.0)
        with pytest.raises(ValueError):
            make_population(sigma_weak=-1.0)
        with pytest.raises(ValueError):
            make_population(flippable_strong_fraction=1.5)

    def test_smallest_thresholds_sorted(self):
        pop = make_population()
        rng = np.random.default_rng(0)
        thresholds = pop.sample_smallest_thresholds(8192, 10, rng)
        assert np.all(np.diff(thresholds) >= 0)

    def test_materialize_has_row_bits_entries(self):
        pop = make_population()
        thresholds = pop.materialize_thresholds(
            8192, np.random.default_rng(0))
        assert thresholds.shape == (8192,)

    def test_materialize_weak_count(self):
        # Push the strong population far away so the count is unambiguous.
        pop = make_population(mu_strong=12.0)
        thresholds = pop.materialize_thresholds(
            8192, np.random.default_rng(0))
        weak = np.sum(thresholds < 1.0e8)
        assert weak == pop.weak_cell_count(8192)

    def test_materialize_infinite_for_protected_polarity(self):
        pop = make_population(flippable_strong_fraction=0.5)
        thresholds = pop.materialize_thresholds(
            8192, np.random.default_rng(0))
        infinite_fraction = np.isinf(thresholds).mean()
        assert 0.4 < infinite_fraction < 0.6


class TestRowDisturbanceProfile:
    def make_profile(self, seed=77):
        return RowDisturbanceProfile(make_population(), seed)

    def test_hc_first_deterministic(self):
        profile = self.make_profile()
        assert profile.hc_first() == profile.hc_first()

    def test_hc_first_scales_with_amplification(self):
        profile = self.make_profile()
        base = profile.hc_first()
        amplified = profile.hc_first(amplification=10.0)
        assert amplified == pytest.approx(base / 10.0, rel=1e-9)

    def test_hc_first_floors_at_one(self):
        profile = self.make_profile()
        assert profile.hc_first(amplification=1e12) == 1.0

    def test_hc_nth_prefix_matches_hc_first(self):
        profile = self.make_profile()
        assert profile.hc_nth(10)[0] == pytest.approx(profile.hc_first())

    def test_hc_nth_monotone(self):
        profile = self.make_profile()
        assert np.all(np.diff(profile.hc_nth(10)) >= 0)

    def test_materialize_min_matches_hc_first(self):
        """The exact engine's weakest cell IS the analytic HC_first."""
        profile = self.make_profile()
        thresholds = profile.materialize()
        assert thresholds.min() == pytest.approx(profile.hc_first(),
                                                 rel=1e-9)

    def test_materialize_k_smallest_match_hc_nth(self):
        profile = self.make_profile()
        thresholds = np.sort(profile.materialize())[:10]
        assert np.allclose(thresholds, profile.hc_nth(10))

    def test_sampled_ber_close_to_expected(self):
        profile = self.make_profile()
        expected = profile.expected_ber(5e5)
        sampled = profile.sampled_ber(5e5)
        assert sampled == pytest.approx(expected, abs=0.01)

    def test_different_seeds_differ(self):
        a = RowDisturbanceProfile(make_population(), 1)
        b = RowDisturbanceProfile(make_population(), 2)
        assert a.hc_first() != b.hc_first()


class TestCalibrationHelpers:
    def test_solve_and_expected_are_inverse(self):
        mu = solve_mu_weak(100_000, 0.014, 8192)
        assert expected_hc_first(mu, 0.014, 8192) == pytest.approx(
            100_000, rel=1e-9)

    @given(st.floats(min_value=1e4, max_value=1e6),
           st.floats(min_value=0.002, max_value=0.05))
    @settings(max_examples=50)
    def test_solver_roundtrip_property(self, target, f_weak):
        mu = solve_mu_weak(target, f_weak, 8192)
        assert expected_hc_first(mu, f_weak, 8192) == pytest.approx(
            target, rel=1e-6)

    def test_solver_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            solve_mu_weak(0.0, 0.01, 8192)


class TestClusteredPositions:
    def test_positions_distinct_and_in_range(self):
        rng = np.random.default_rng(5)
        positions = sample_clustered_positions(8192, 200, rng)
        assert positions.size == 200
        assert np.unique(positions).size == 200
        assert positions.min() >= 0 and positions.max() < 8192

    def test_clustering_beats_uniform(self):
        """Gamma-weighted placement concentrates cells into fewer words
        than uniform placement would."""
        rng = np.random.default_rng(5)
        occupied_clustered = []
        occupied_uniform = []
        for __ in range(40):
            clustered = sample_clustered_positions(8192, 80, rng)
            uniform = rng.choice(8192, size=80, replace=False)
            occupied_clustered.append(np.unique(clustered // 64).size)
            occupied_uniform.append(np.unique(uniform // 64).size)
        assert np.mean(occupied_clustered) < 0.7 * np.mean(occupied_uniform)

    def test_full_row_allowed(self):
        rng = np.random.default_rng(0)
        positions = sample_clustered_positions(256, 256, rng)
        assert np.array_equal(np.sort(positions), np.arange(256))

    def test_too_many_cells_rejected(self):
        with pytest.raises(ValueError):
            sample_clustered_positions(64, 65, np.random.default_rng(0))
