"""Equivalence suite: array-form TRR vs the scalar state machine.

``TrrEngine.run_epochs`` must be *bit-identical* to repeating the
scalar ``note_window`` / ``on_refresh`` sequence: same victim-refresh
schedule, same detection log, and the same engine state afterwards
(checked by continuing both engines scalar-ly and comparing).  The
hypothesis properties drive seeded random epoch streams through every
TrrConfig variant the benchmarks exercise.
"""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.trr import TrrConfig, TrrEngine

BANKS = 4
ROWS = 128


def scalar_reference(engine, epoch, repeats):
    """The definitional loop run_epochs must reproduce."""
    events = []
    for offset in range(1, repeats + 1):
        for bank, ordered_counts in epoch.items():
            engine.note_window(bank, ordered_counts)
        victims = engine.on_refresh()
        if victims:
            events.append((offset, victims))
    return events


def engine_state(engine):
    """Observable sampler state (for end-state comparison)."""
    return [(t.cam, sorted(t.cam_members), dict(t.window_counts),
             t.window_total, sorted(t.pending))
            for t in engine._trackers]


configs = st.builds(
    TrrConfig,
    capable_interval=st.sampled_from([1, 2, 3, 5, 9, 17]),
    cam_capacity=st.integers(min_value=1, max_value=6),
    count_rule=st.booleans(),
    first_act_rule=st.booleans(),
)

window = st.lists(
    st.tuples(st.integers(min_value=0, max_value=ROWS - 1),
              st.integers(min_value=1, max_value=12)),
    max_size=5)

epochs = st.dictionaries(
    st.integers(min_value=0, max_value=BANKS - 1), window, max_size=3)

#: Pre-existing activity so the run starts at an arbitrary phase with
#: populated CAM / pending / window state.
prefixes = st.lists(
    st.one_of(st.none(),  # a REF
              st.tuples(st.integers(min_value=0, max_value=BANKS - 1),
                        st.integers(min_value=0, max_value=ROWS - 1),
                        st.integers(min_value=1, max_value=9))),
    max_size=24)


def apply_prefix(engine, prefix):
    for step in prefix:
        if step is None:
            engine.on_refresh()
        else:
            bank, row, count = step
            engine.on_activate(bank, row, count)


@settings(max_examples=200, deadline=None)
@given(config=configs, epoch=epochs, prefix=prefixes,
       repeats=st.integers(min_value=0, max_value=120),
       probe=window)
def test_run_epochs_matches_scalar(config, epoch, prefix, repeats, probe):
    batched = TrrEngine(config, BANKS, ROWS)
    scalar = TrrEngine(config, BANKS, ROWS)
    apply_prefix(batched, prefix)
    apply_prefix(scalar, prefix)

    expected = scalar_reference(scalar, epoch, repeats)
    got = batched.run_epochs(epoch, repeats)

    assert got == expected
    assert batched.ref_count == scalar.ref_count
    assert batched.detection_log == scalar.detection_log
    assert engine_state(batched) == engine_state(scalar)

    # The engines must stay in lockstep afterwards: one more irregular
    # window (different from the epoch) then a full capable period.
    for engine in (batched, scalar):
        engine.note_window(0, probe)
    for __ in range(config.capable_interval + 1):
        assert batched.on_refresh() == scalar.on_refresh()
    assert batched.detection_log == scalar.detection_log


@settings(max_examples=60, deadline=None)
@given(prefix=prefixes, repeats=st.integers(min_value=0, max_value=200))
def test_empty_epoch_fast_forward(prefix, repeats):
    """REF bursts with no interleaved ACTs (the refresh_burst case)."""
    config = TrrConfig()
    batched = TrrEngine(config, BANKS, ROWS)
    scalar = TrrEngine(config, BANKS, ROWS)
    apply_prefix(batched, prefix)
    apply_prefix(scalar, prefix)
    expected = scalar_reference(scalar, {}, repeats)
    assert batched.run_epochs({}, repeats) == expected
    assert batched.ref_count == scalar.ref_count
    assert batched.detection_log == scalar.detection_log
    assert engine_state(batched) == engine_state(scalar)


def test_disabled_engine_is_inert():
    engine = TrrEngine(TrrConfig(enabled=False), BANKS, ROWS)
    assert engine.run_epochs({0: [(5, 3)]}, 40) == []
    assert engine.ref_count == 0
    assert engine.detection_log == []


def test_negative_repeats_rejected():
    engine = TrrEngine(TrrConfig(), BANKS, ROWS)
    with pytest.raises(ValueError):
        engine.run_epochs({}, -1)


def test_long_run_logs_every_capable_ref():
    """Extrapolated capable REFs append (empty) detection entries too."""
    engine = TrrEngine(TrrConfig(), BANKS, ROWS)
    reference = TrrEngine(TrrConfig(), BANKS, ROWS)
    epoch = {1: [(10, 2), (11, 2)]}
    events = engine.run_epochs(epoch, 1700)
    expected = scalar_reference(reference, epoch, 1700)
    assert events == expected
    assert engine.detection_log == reference.detection_log
    assert len(engine.detection_log) == 100  # 1700 // 17


def test_run_epochs_state_snapshot_roundtrip():
    """A deep-copied engine replayed scalar-ly agrees after run_epochs."""
    config = TrrConfig(capable_interval=5, cam_capacity=2)
    engine = TrrEngine(config, BANKS, ROWS)
    engine.on_activate(0, 7, 3)
    engine.on_refresh()
    twin = copy.deepcopy(engine)
    epoch = {0: [(7, 4), (9, 4)], 2: [(40, 1)]}
    assert engine.run_epochs(epoch, 37) == scalar_reference(twin, epoch, 37)
    assert engine_state(engine) == engine_state(twin)
