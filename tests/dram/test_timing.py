"""Tests for HBM2 timing parameters."""

import math

import pytest

from repro.dram.timing import DEFAULT_TIMINGS, TimingParameters


class TestPaperDerivedValues:
    def test_interface_clock_is_600mhz(self):
        assert DEFAULT_TIMINGS.t_ck == pytest.approx(1.0e3 / 600.0)

    def test_minimum_on_time_is_tras_29ns(self):
        assert DEFAULT_TIMINGS.t_ras == 29.0

    def test_trc_is_tras_plus_trp(self):
        t = DEFAULT_TIMINGS
        assert t.t_rc == t.t_ras + t.t_rp

    def test_trefi_is_3_9_us(self):
        assert DEFAULT_TIMINGS.t_refi == 3900.0

    def test_refresh_window_is_32_ms(self):
        assert DEFAULT_TIMINGS.t_refw == 32.0e6

    def test_max_ref_postpone_is_9_trefi(self):
        assert DEFAULT_TIMINGS.max_ref_postpone == pytest.approx(35.1e3)

    def test_activation_budget_is_78(self):
        """Section 7: floor((tREFI - tRFC) / tRC) == 78."""
        assert DEFAULT_TIMINGS.activation_budget == 78

    def test_refs_per_window_is_8205(self):
        """Section 7: the bypass pattern repeats 8205 times per tREFW."""
        assert DEFAULT_TIMINGS.refs_per_window == 8205

    def test_rows_refreshed_per_ref(self):
        assert DEFAULT_TIMINGS.rows_refreshed_per_ref == 2


class TestDurations:
    def test_act_to_act_at_baseline(self):
        t = DEFAULT_TIMINGS
        assert t.act_to_act(t.t_ras) == t.t_rc

    def test_act_to_act_clamps_below_tras(self):
        t = DEFAULT_TIMINGS
        assert t.act_to_act(1.0) == t.t_rc

    def test_act_to_act_with_large_on_time(self):
        t = DEFAULT_TIMINGS
        assert t.act_to_act(3900.0) == 3900.0 + t.t_rp

    def test_hammer_duration_double_sided(self):
        t = DEFAULT_TIMINGS
        assert t.hammer_duration(1000, t.t_ras) == pytest.approx(
            1000 * 2 * t.t_rc)

    def test_hammer_duration_single_sided(self):
        t = DEFAULT_TIMINGS
        assert t.hammer_duration(1000, t.t_ras, sides=1) == pytest.approx(
            1000 * t.t_rc)

    def test_paper_example_1_3ms_for_14531_hammers(self):
        """Obsv. 4: inducing the 14531-hammer bitflip takes ~1.3 ms."""
        duration_ms = DEFAULT_TIMINGS.hammer_duration(
            14531, DEFAULT_TIMINGS.t_ras) / 1.0e6
        assert duration_ms == pytest.approx(1.3, rel=0.01)

    def test_hammers_within_inverts_duration(self):
        t = DEFAULT_TIMINGS
        for count in (1, 77, 14531, 355_000):
            duration = t.hammer_duration(count, t.t_ras)
            assert t.hammers_within(duration, t.t_ras) == count

    def test_hammers_within_refresh_window_at_baseline(self):
        t = DEFAULT_TIMINGS
        budget = t.hammers_within(t.t_refw, t.t_ras)
        assert 350_000 < budget < 360_000

    def test_negative_hammer_count_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_TIMINGS.hammer_duration(-1, 29.0)

    def test_zero_sides_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_TIMINGS.hammer_duration(10, 29.0, sides=0)


class TestQuantization:
    def test_quantize_rounds_up_to_clock_edge(self):
        t = DEFAULT_TIMINGS
        quantized = t.quantize(1.0)
        assert quantized == pytest.approx(t.t_ck)

    def test_quantize_exact_multiple_unchanged(self):
        t = DEFAULT_TIMINGS
        assert t.quantize(10 * t.t_ck) == pytest.approx(10 * t.t_ck)


class TestValidation:
    def test_inconsistent_trc_rejected(self):
        with pytest.raises(ValueError):
            TimingParameters(t_rc=100.0)

    def test_trefi_must_exceed_trfc(self):
        with pytest.raises(ValueError):
            TimingParameters(t_refi=100.0, t_rfc=200.0)

    def test_scaled_copy(self):
        params = DEFAULT_TIMINGS.scaled(t_refw=64.0e6)
        assert params.t_refw == 64.0e6
        assert params.t_refi == DEFAULT_TIMINGS.t_refi
