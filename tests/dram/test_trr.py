"""Tests for the undocumented TRR engine (Section 7's Observations)."""

import pytest

from repro.dram.trr import TrrConfig, TrrEngine


def make_engine(**overrides) -> TrrEngine:
    config = TrrConfig(**overrides)
    return TrrEngine(config, banks=16, rows=16384)


def drain_refs(engine: TrrEngine, count: int):
    """Issue refs, returning the victims of the last one."""
    victims = []
    for __ in range(count):
        victims = engine.on_refresh()
    return victims


class TestCadence:
    def test_every_17th_ref_is_capable(self):
        engine = make_engine()
        assert engine.is_capable_ref(17)
        assert engine.is_capable_ref(34)
        assert not engine.is_capable_ref(16)
        assert not engine.is_capable_ref(18)

    def test_refs_until_capable_counts_down(self):
        engine = make_engine()
        assert engine.refs_until_capable == 17
        engine.on_refresh()
        assert engine.refs_until_capable == 16

    def test_victims_only_on_capable_refs(self):
        engine = make_engine()
        engine.on_activate(0, 100)
        for ref_index in range(1, 17):
            assert engine.on_refresh() == []
        engine.on_activate(0, 100)  # keep something detected
        victims = engine.on_refresh()
        assert victims  # the 17th REF flushes


class TestFirstActRule:
    def test_first_activated_row_detected(self):
        """Obsv. 26: the first row activated after a capable REF."""
        engine = make_engine()
        engine.on_activate(0, 500)
        for row in (600, 700, 800):
            engine.on_activate(0, row)
        victims = drain_refs(engine, 17)
        assert (0, 499) in victims and (0, 501) in victims

    def test_cam_capacity_is_four(self):
        """The 5th distinct row escapes the sampler (Fig. 14's >= 4)."""
        engine = make_engine()
        for row in (10, 20, 30, 40, 50):
            engine.on_activate(0, row)
        victims = drain_refs(engine, 17)
        rows_refreshed = {row for __, row in victims}
        assert {9, 11, 19, 21, 29, 31, 39, 41} <= rows_refreshed
        assert 49 not in rows_refreshed and 51 not in rows_refreshed

    def test_cam_rearms_after_capable_ref(self):
        engine = make_engine()
        for row in (10, 20, 30, 40):
            engine.on_activate(0, row)
        drain_refs(engine, 17)
        engine.on_activate(0, 999)
        victims = drain_refs(engine, 17)
        assert (0, 998) in victims and (0, 1000) in victims

    def test_disabled_first_act_rule(self):
        engine = make_engine(first_act_rule=False, count_rule=False)
        engine.on_activate(0, 100)
        assert drain_refs(engine, 17) == []


class TestCountRule:
    def test_exactly_half_detected(self):
        """Obsv. 27's own example: 5 of 10 activations is detected."""
        engine = make_engine(first_act_rule=False)
        for __ in range(5):
            engine.on_activate(0, 777)
        for row in (1, 2, 3, 4, 5):
            engine.on_activate(0, row)
        victims = drain_refs(engine, 17)
        rows_refreshed = {row for __, row in victims}
        assert {776, 778} <= rows_refreshed

    def test_below_half_not_detected(self):
        engine = make_engine(first_act_rule=False)
        for __ in range(4):
            engine.on_activate(0, 777)
        for row in (1, 2, 3, 4, 5):
            engine.on_activate(0, row)
        victims = drain_refs(engine, 17)
        rows_refreshed = {row for __, row in victims}
        assert 776 not in rows_refreshed and 778 not in rows_refreshed

    def test_pending_accumulates_across_windows(self):
        """A row detected in an early window is refreshed at the next
        capable REF even if never activated again."""
        engine = make_engine(first_act_rule=False)
        for __ in range(3):
            engine.on_activate(0, 42)
        engine.on_refresh()  # window closes, 42 detected (3 of 3)
        victims = drain_refs(engine, 16)
        rows_refreshed = {row for __, row in victims}
        assert {41, 43} <= rows_refreshed

    def test_window_counts_reset_each_ref(self):
        engine = make_engine(first_act_rule=False)
        for __ in range(3):
            engine.on_activate(0, 42)
        drain_refs(engine, 17)  # flushes
        # New period: 42 gets 1 of 10 activations -> below half.
        engine.on_activate(0, 42)
        for row in range(1, 10):
            engine.on_activate(0, row)
        victims = drain_refs(engine, 17)
        rows_refreshed = {row for __, row in victims}
        assert 41 not in rows_refreshed


class TestNeighborRefresh:
    def test_both_neighbors_refreshed(self):
        """Obsv. 25: rows R-1 and R+1 of a detected aggressor R."""
        engine = make_engine()
        engine.on_activate(3, 1000)
        victims = drain_refs(engine, 17)
        assert (3, 999) in victims and (3, 1001) in victims

    def test_bank_edge_clips_victims(self):
        engine = make_engine()
        engine.on_activate(0, 0)
        victims = drain_refs(engine, 17)
        rows_refreshed = [row for __, row in victims]
        assert -1 not in rows_refreshed
        assert 1 in rows_refreshed


class TestPerBankIsolation:
    def test_banks_tracked_independently(self):
        engine = make_engine()
        engine.on_activate(0, 100)
        engine.on_activate(5, 200)
        victims = drain_refs(engine, 17)
        assert (0, 99) in victims and (5, 199) in victims
        assert (0, 199) not in victims


class TestFastPath:
    def test_note_window_equivalent_to_activates(self):
        a = make_engine()
        b = make_engine()
        a.note_window(0, [(10, 3), (20, 5)])
        b.on_activate(0, 10)
        b.on_activate(0, 20)
        b.on_activate(0, 10, count=2)
        b.on_activate(0, 20, count=4)
        assert sorted(drain_refs(a, 17)) == sorted(drain_refs(b, 17))


class TestConfig:
    def test_disabled_engine_inert(self):
        engine = make_engine(enabled=False)
        engine.on_activate(0, 100)
        assert drain_refs(engine, 17) == []

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TrrConfig(capable_interval=0)
        with pytest.raises(ValueError):
            TrrConfig(cam_capacity=0)

    def test_reset(self):
        engine = make_engine()
        engine.on_activate(0, 100)
        drain_refs(engine, 5)
        engine.reset()
        assert engine.ref_count == 0
        assert drain_refs(engine, 17) == []

    def test_detection_log_records_capable_refs(self):
        engine = make_engine()
        engine.on_activate(0, 100)
        drain_refs(engine, 34)
        assert [index for index, __ in engine.detection_log] == [17, 34]
