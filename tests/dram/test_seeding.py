"""Tests for deterministic seeding, including scalar/vector identity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import seeding

_UINT = st.integers(min_value=0, max_value=2 ** 64 - 1)


class TestSplitmix:
    @given(_UINT)
    @settings(max_examples=200)
    def test_scalar_vector_identity(self, value):
        scalar = seeding.splitmix64(value)
        vector = seeding.splitmix64_array(
            np.array([value], dtype=np.uint64))[0]
        assert scalar == int(vector)

    def test_avalanche(self):
        """Single-bit input changes flip roughly half the output bits."""
        a = seeding.splitmix64(0)
        b = seeding.splitmix64(1)
        assert 16 < bin(a ^ b).count("1") < 48

    def test_known_nonzero(self):
        assert seeding.splitmix64(0) != 0


class TestDeriveSeed:
    def test_deterministic(self):
        assert seeding.derive_seed(1, 2, 3) == seeding.derive_seed(1, 2, 3)

    def test_order_sensitive(self):
        assert seeding.derive_seed(1, 2) != seeding.derive_seed(2, 1)

    def test_component_count_sensitive(self):
        assert seeding.derive_seed(1) != seeding.derive_seed(1, 0)

    @given(st.lists(_UINT, min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_always_64_bit(self, components):
        seed = seeding.derive_seed(*components)
        assert 0 <= seed < 2 ** 64


class TestUniforms:
    def test_range(self):
        for i in range(100):
            value = seeding.uniform_for(7, i)
            assert 0.0 <= value < 1.0

    def test_mean_is_half(self):
        values = [seeding.uniform_for(11, i) for i in range(4000)]
        assert abs(np.mean(values) - 0.5) < 0.02

    def test_vector_matches_scalar(self):
        rows = np.arange(50)
        vector = seeding.uniform_array_for((5, 6), rows, (7,))
        scalar = [seeding.uniform_for(5, 6, int(r), 7) for r in rows]
        assert np.allclose(vector, scalar)

    def test_uniforms_from_seeds_matches_scalar(self):
        seeds = np.array([seeding.derive_seed(9, i) for i in range(20)],
                         dtype=np.uint64)
        vector = seeding.uniforms_from_seeds(seeds, (0x0D, 3))
        scalar = [seeding.uniform_for(int(s), 0x0D, 3) for s in seeds]
        assert np.allclose(vector, scalar)


class TestNormals:
    def test_vector_matches_scalar(self):
        rows = np.arange(50)
        vector = seeding.normal_array_for((1, 2), rows)
        scalar = [seeding.normal_for(1, 2, int(r)) for r in rows]
        assert np.allclose(vector, scalar)

    def test_moments(self):
        values = seeding.normal_array_for((42,), np.arange(8000))
        assert abs(values.mean()) < 0.05
        assert abs(values.std() - 1.0) < 0.05

    def test_deterministic(self):
        assert seeding.normal_for(3, 4) == seeding.normal_for(3, 4)


class TestMixedHelpers:
    """The mixed scalar/array mirrors must be *bit-identical* to the
    scalar chains — the vectorized calibration depends on it."""

    def test_seed_array_mixed_all_scalars(self):
        assert int(seeding.seed_array_mixed(1, 2, 3)) \
            == seeding.derive_seed(1, 2, 3)

    def test_seed_array_mixed_multiple_varying(self):
        channels = np.array([0, 3, 7, 2])
        banks = np.array([0, 5, 15, 9])
        rows = np.array([0, 831, 8191, 16383])
        vector = seeding.seed_array_mixed(0xBE, channels, 1, banks, rows)
        scalar = [seeding.derive_seed(0xBE, int(c), 1, int(b), int(r))
                  for c, b, r in zip(channels, banks, rows)]
        assert [int(v) for v in vector] == scalar

    def test_scalar_after_array_component(self):
        rows = np.arange(16)
        vector = seeding.seed_array_mixed(5, rows, 0x55AA)
        scalar = [seeding.derive_seed(5, int(r), 0x55AA) for r in rows]
        assert [int(v) for v in vector] == scalar

    def test_uniform_array_mixed_bit_identical(self):
        channels = np.array([1, 4, 6, 0])
        rows = np.array([10, 20, 30, 40])
        vector = seeding.uniform_array_mixed(9, channels, rows)
        scalar = [seeding.uniform_for(9, int(c), int(r))
                  for c, r in zip(channels, rows)]
        assert vector.tolist() == scalar

    def test_normal_array_mixed_bit_identical(self):
        channels = np.array([1, 4, 6, 0])
        rows = np.array([10, 20, 30, 40])
        vector = seeding.normal_array_mixed(9, channels, rows)
        scalar = [seeding.normal_for(9, int(c), int(r))
                  for c, r in zip(channels, rows)]
        assert vector.tolist() == scalar


class TestGenerator:
    def test_generator_reproducible(self):
        a = seeding.generator_for(1, 2).random(5)
        b = seeding.generator_for(1, 2).random(5)
        assert np.array_equal(a, b)

    def test_generator_distinct_keys(self):
        a = seeding.generator_for(1, 2).random(5)
        b = seeding.generator_for(1, 3).random(5)
        assert not np.array_equal(a, b)
