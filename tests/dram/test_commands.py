"""Tests for the command constructors."""

import numpy as np
import pytest

from repro.dram import commands as cmd
from repro.dram.commands import Command, CommandKind


class TestConstructors:
    def test_act(self):
        command = cmd.act(1, 0, 2, 300, t_on=58.0)
        assert command.kind is CommandKind.ACT
        assert (command.channel, command.pseudo_channel, command.bank,
                command.row) == (1, 0, 2, 300)
        assert command.t_on == 58.0

    def test_pre(self):
        command = cmd.pre(1, 1, 5)
        assert command.kind is CommandKind.PRE
        assert command.bank == 5

    def test_rd(self):
        assert cmd.rd(0, 0, 0, 9).kind is CommandKind.RD

    def test_wr_carries_data(self):
        image = np.full(1024, 0x42, dtype=np.uint8)
        command = cmd.wr(0, 0, 0, 9, image)
        assert command.kind is CommandKind.WR
        assert np.array_equal(command.data, image)

    def test_ref(self):
        command = cmd.ref(3, 1)
        assert command.kind is CommandKind.REF
        assert (command.channel, command.pseudo_channel) == (3, 1)

    def test_hammer(self):
        command = cmd.hammer(0, 0, 0, 9, 5000, 3900.0)
        assert command.kind is CommandKind.HAMMER
        assert command.count == 5000
        assert command.t_on == 3900.0

    def test_wait(self):
        command = cmd.wait(123.0)
        assert command.kind is CommandKind.WAIT
        assert command.duration == 123.0


class TestValidation:
    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Command(CommandKind.HAMMER, count=-1)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Command(CommandKind.WAIT, duration=-1.0)

    def test_is_row_command(self):
        assert cmd.act(0, 0, 0, 1).is_row_command
        assert cmd.hammer(0, 0, 0, 1, 10).is_row_command
        assert not cmd.ref(0, 0).is_row_command
        assert not cmd.wait(1.0).is_row_command
