"""Tests for the mode register file."""

import pytest

from repro.dram.mode_registers import ModeRegisterError, ModeRegisters


class TestEcc:
    def test_powers_up_enabled(self):
        assert ModeRegisters().ecc_enabled

    def test_disable_like_the_paper(self):
        """Section 3.1: ECC is disabled by clearing the MR bit."""
        registers = ModeRegisters()
        registers.set_field(4, "ecc_enable", False)
        assert not registers.ecc_enabled


class TestTrrMode:
    def test_disabled_by_default(self):
        assert not ModeRegisters().trr_mode_enabled

    def test_enter_and_exit(self):
        registers = ModeRegisters()
        registers.enter_trr_mode(target_bank=5)
        assert registers.trr_mode_enabled
        assert registers.trr_mode_bank == 5
        registers.exit_trr_mode()
        assert not registers.trr_mode_enabled

    def test_bank_field_isolated_from_enable(self):
        registers = ModeRegisters()
        registers.enter_trr_mode(target_bank=7)
        registers.exit_trr_mode()
        assert registers.trr_mode_bank == 7

    def test_invalid_bank_rejected(self):
        with pytest.raises(ModeRegisterError):
            ModeRegisters().enter_trr_mode(target_bank=8)


class TestRawAccess:
    def test_write_read_roundtrip(self):
        registers = ModeRegisters()
        registers.write(7, 0xAB)
        assert registers.read(7) == 0xAB

    def test_payload_limited_to_8_bits(self):
        with pytest.raises(ModeRegisterError):
            ModeRegisters().write(0, 0x100)

    def test_unknown_register_rejected(self):
        with pytest.raises(ModeRegisterError):
            ModeRegisters().read(16)

    def test_unknown_field_rejected(self):
        with pytest.raises(ModeRegisterError):
            ModeRegisters().get_field(4, "bogus")

    def test_field_set_clear(self):
        registers = ModeRegisters()
        registers.set_field(4, "dm_enable", True)
        assert registers.get_field(4, "dm_enable")
        registers.set_field(4, "dm_enable", False)
        assert not registers.get_field(4, "dm_enable")
