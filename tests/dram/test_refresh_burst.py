"""``HBM2Stack.refresh_burst`` vs ``count`` sequential ``refresh()``.

The burst is a drop-in replacement on the hot REF catch-up paths, so the
bar is full-state bit-identity: clocks, stats, rolling-refresh pointer
and ref-time books, TRR engine state, and every touched row's physics
(data, accumulator, restore clock, latched flips) — on devices with and
without TRR, across bursts that sweep the rolling pointer over
materialized rows.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.device import HBM2Stack
from repro.dram.geometry import RowAddress
from repro.dram.trr import TrrConfig


def make_pair(trr=False):
    config = TrrConfig(enabled=trr)
    return (HBM2Stack(trr_config=config), HBM2Stack(trr_config=config))


def row_image(device, byte):
    return np.full(device.geometry.row_bytes, byte, dtype=np.uint8)


def apply_ops(device, ops):
    for op in ops:
        kind = op[0]
        if kind == "write":
            __, bank, row, byte = op
            device.write_row(RowAddress(0, 0, bank, row),
                             row_image(device, byte))
        elif kind == "hammer":
            __, bank, row, count = op
            device.hammer(RowAddress(0, 0, bank, row), count)
        elif kind == "wait":
            device.wait(op[1])
        elif kind == "ref":
            device.refresh(0, 0)


def assert_identical(burst, scalar):
    assert burst.now_ns == scalar.now_ns
    assert burst.stats == scalar.stats
    assert burst._ref_pointer == scalar._ref_pointer
    assert burst._pc_ref_time == scalar._pc_ref_time
    for pc_key, engine in scalar._trr.items():
        twin = burst._trr[pc_key]
        assert twin.ref_count == engine.ref_count
        assert twin.detection_log == engine.detection_log
        for mine, theirs in zip(twin._trackers, engine._trackers):
            assert mine.cam == theirs.cam
            assert mine.window_counts == theirs.window_counts
            assert sorted(mine.pending) == sorted(theirs.pending)
    assert set(burst._rows) == set(scalar._rows)
    for bank_key, bank_rows in scalar._rows.items():
        assert set(burst._rows[bank_key]) == set(bank_rows)
        for row, state in bank_rows.items():
            mine = burst._rows[bank_key][row]
            assert np.array_equal(mine.data, state.data), (bank_key, row)
            assert mine.acc_units == state.acc_units, (bank_key, row)
            assert mine.restored_at == state.restored_at, (bank_key, row)
            if state.already_flipped is None:
                assert mine.already_flipped is None \
                    or not mine.already_flipped.any()
            else:
                assert mine.already_flipped is not None
                assert np.array_equal(mine.already_flipped,
                                      state.already_flipped)


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 1),
                  st.integers(0, 90), st.sampled_from([0x55, 0xFF])),
        st.tuples(st.just("hammer"), st.integers(0, 1),
                  st.integers(1, 90), st.integers(1, 60_000)),
        st.tuples(st.just("wait"), st.floats(0.0, 5.0e6)),
        st.tuples(st.just("ref"))),
    max_size=12)


@settings(max_examples=40, deadline=None)
@given(ops=ops_strategy, count=st.integers(0, 80), trr=st.booleans())
def test_burst_matches_scalar_loop(ops, count, trr):
    burst_device, scalar_device = make_pair(trr)
    apply_ops(burst_device, ops)
    apply_ops(scalar_device, ops)
    burst_device.refresh_burst(0, 0, count)
    for __ in range(count):
        scalar_device.refresh(0, 0)
    assert_identical(burst_device, scalar_device)
    # And they stay in lockstep through one more command round.
    for device in (burst_device, scalar_device):
        apply_ops(device, [("hammer", 0, 5, 40_000), ("ref",)])
    assert_identical(burst_device, scalar_device)


def test_burst_sweeps_pointer_over_hammered_rows():
    """Rolling refresh must commit pending flips at exact REF times."""
    burst_device, scalar_device = make_pair(trr=False)
    victim = RowAddress(0, 0, 0, 6)
    for device in (burst_device, scalar_device):
        for row in (5, 6, 7):
            device.write_row(victim.with_row(row), row_image(device, 0x55))
        device.hammer(victim.with_row(5), 120_000)
        device.hammer(victim.with_row(7), 120_000)
    burst_device.refresh_burst(0, 0, 64)
    for __ in range(64):
        scalar_device.refresh(0, 0)
    assert_identical(burst_device, scalar_device)
    assert np.array_equal(burst_device.read_row(victim),
                          scalar_device.read_row(victim))
    assert burst_device.stats.committed_bitflips > 0


def test_burst_with_trr_victims():
    """Capable REFs inside the burst emit the same victim refreshes."""
    burst_device, scalar_device = make_pair(trr=True)
    aggressor = RowAddress(0, 0, 0, 50)
    for device in (burst_device, scalar_device):
        device.write_row(aggressor.with_row(49), row_image(device, 0xFF))
        device.write_row(aggressor.with_row(51), row_image(device, 0xFF))
        device.hammer(aggressor, 30)
    burst_device.refresh_burst(0, 0, 40)
    for __ in range(40):
        scalar_device.refresh(0, 0)
    assert_identical(burst_device, scalar_device)
    assert burst_device.stats.trr_victim_refreshes > 0


def test_burst_respects_tracing_fallback():
    device, = (HBM2Stack(),)
    device.enable_tracing()
    device.refresh_burst(0, 0, 6)
    assert sum(1 for entry in device.trace() if entry.kind == "REF") == 6
    assert device.stats.refs == 6


def test_burst_validates_arguments():
    device = HBM2Stack()
    with pytest.raises(ValueError):
        device.refresh_burst(0, 0, -1)
    with pytest.raises(ValueError):
        device.refresh_burst(7, 3, 1)
