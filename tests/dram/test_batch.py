"""Equivalence suite for the batched row-population execution engine.

The contract under test (see ``repro.dram.batch``): for any victim set,
:class:`RowBatchProfile` returns bit-identical row images, flip masks and
HC_first values to replaying ``initialize_window`` /
``double_sided_hammer`` / ``read_row`` per victim through the scalar
command path.
"""

import numpy as np
import pytest

from repro.bender.host import BenderSession
from repro.bender.routines.hammer import double_sided_hammer
from repro.bender.routines.hcfirst import (search_hc_first,
                                           search_hc_first_rows)
from repro.bender.routines.rowinit import initialize_window
from repro.chips.profiles import make_chip
from repro.core import metrics
from repro.core.patterns import CHECKERED0, ROWSTRIPE1
from repro.dram.batch import (RowBatchProfile, batch_enabled,
                              engine_supported)
from repro.dram.geometry import RowAddress
from repro.faults import FaultPlan, FaultyStack, clear_plan, install_plan

HAMMERS = 600_000


@pytest.fixture(scope="module")
def chip1():
    """A TRR-free chip (the engine rejects Chip 0's TRR device)."""
    return make_chip(1)


@pytest.fixture
def batch_session(chip1):
    device = chip1.make_device()
    return BenderSession(device, mapping=chip1.row_mapping())


def scalar_measure(chip, victims, pattern, count, t_on=None, ecc=False):
    """Reference scalar sequence on a fresh device: init, hammer, read.

    ``make_device`` disables on-die ECC (the methodology observes raw
    flips); ``ecc=True`` re-enables it for the correction tests.
    """
    device = chip.make_device()
    device.mode_registers.set_field(4, "ecc_enable", ecc)
    session = BenderSession(device, mapping=chip.row_mapping())
    images = []
    for victim in victims:
        initialize_window(session, victim, pattern)
        double_sided_hammer(session, victim, count, t_on)
        images.append(session.read_physical_row(victim))
    return images


def mixed_victims(geometry):
    """Victims spanning banks/channels, plus both bank-edge rows."""
    return [
        RowAddress(0, 0, 0, 0),                     # low edge: no row -1
        RowAddress(0, 0, 0, geometry.rows - 1),     # high edge: no row +1
        RowAddress(0, 0, 0, 5000),
        RowAddress(2, 1, 3, 5000),
        RowAddress(5, 0, 15, 831),                  # subarray boundary
        RowAddress(5, 0, 15, 832),
    ]


class TestHammerEquivalence:
    def test_images_match_scalar_path(self, chip1, batch_session):
        victims = mixed_victims(chip1.geometry)
        assert batch_session.batching_active()
        profile = batch_session.profile_rows(victims, CHECKERED0)
        result = profile.hammer(HAMMERS)
        # The comparison must not be vacuous: something has to flip.
        assert result.bitflips.sum() > 0
        expected = scalar_measure(chip1, victims, CHECKERED0, HAMMERS)
        for index, image in enumerate(expected):
            assert np.array_equal(result.images[index], image), \
                f"victim {victims[index]} image diverged"

    def test_bitflip_counts_match_count_bitflips(self, chip1,
                                                 batch_session):
        victims = mixed_victims(chip1.geometry)
        result = batch_session.profile_rows(victims, ROWSTRIPE1) \
            .hammer(HAMMERS)
        expected_row = ROWSTRIPE1.victim_row(chip1.geometry.row_bytes)
        for index, image in enumerate(result.images):
            assert result.bitflips[index] \
                == metrics.count_bitflips(expected_row, image)

    def test_zero_count_hammer(self, chip1, batch_session):
        victims = mixed_victims(chip1.geometry)
        result = batch_session.profile_rows(victims, CHECKERED0).hammer(0)
        expected = scalar_measure(chip1, victims, CHECKERED0, 0)
        for index, image in enumerate(expected):
            assert np.array_equal(result.images[index], image)

    def test_hammer_rows_scalar_fallback_identical(self, chip1,
                                                   monkeypatch):
        """The session wrapper's env-gated fallback renders the same
        images as the batched path."""
        victims = mixed_victims(chip1.geometry)[:3]
        batched = BenderSession(chip1.make_device(),
                                mapping=chip1.row_mapping()) \
            .hammer_rows(victims, CHECKERED0, HAMMERS)
        monkeypatch.setenv("HBMSIM_BATCH", "0")
        assert not batch_enabled()
        scalar = BenderSession(chip1.make_device(),
                               mapping=chip1.row_mapping()) \
            .hammer_rows(victims, CHECKERED0, HAMMERS)
        for batch_image, scalar_image in zip(batched, scalar):
            assert np.array_equal(batch_image, scalar_image)

    def test_extended_t_on_matches_scalar(self, chip1, batch_session):
        """RowPress-style aggressor-on-time amplification agrees."""
        t_on = 500.0
        victims = [RowAddress(0, 0, 0, 5000), RowAddress(1, 0, 2, 7000)]
        result = batch_session.profile_rows(victims, CHECKERED0) \
            .hammer(HAMMERS // 8, t_on)
        expected = scalar_measure(chip1, victims, CHECKERED0,
                                  HAMMERS // 8, t_on=t_on)
        for index, image in enumerate(expected):
            assert np.array_equal(result.images[index], image)


class TestEccEquivalence:
    def test_ecc_on_matches_scalar(self, chip1):
        victims = mixed_victims(chip1.geometry)
        device = chip1.make_device()
        device.mode_registers.set_field(4, "ecc_enable", True)
        session = BenderSession(device, mapping=chip1.row_mapping())
        result = session.profile_rows(victims, CHECKERED0).hammer(HAMMERS)
        expected = scalar_measure(chip1, victims, CHECKERED0, HAMMERS,
                                  ecc=True)
        for index, image in enumerate(expected):
            assert np.array_equal(result.images[index], image)

    def test_ecc_corrects_single_bit_words(self, chip1):
        victims = mixed_victims(chip1.geometry)
        device = chip1.make_device()
        session = BenderSession(device, mapping=chip1.row_mapping())
        device.mode_registers.set_field(4, "ecc_enable", True)
        with_ecc = session.profile_rows(victims, CHECKERED0) \
            .hammer(HAMMERS)
        device.mode_registers.set_field(4, "ecc_enable", False)
        without = session.profile_rows(victims, CHECKERED0) \
            .hammer(HAMMERS)
        # ECC never invents flips and the committed physics is shared.
        assert np.array_equal(with_ecc.committed, without.committed)
        assert (with_ecc.bitflips <= without.bitflips).all()
        assert np.array_equal(without.observed_flips, without.committed)


class TestHcFirstEquivalence:
    def test_vectorized_search_matches_scalar(self, chip1, batch_session):
        victims = [RowAddress(0, 0, 0, 5000), RowAddress(0, 0, 0, 0),
                   RowAddress(3, 1, 7, 2048)]
        batched = search_hc_first_rows(batch_session, victims, CHECKERED0)
        scalar_session = BenderSession(chip1.make_device(),
                                       mapping=chip1.row_mapping())
        for victim, result in zip(victims, batched):
            reference = search_hc_first(scalar_session, victim, CHECKERED0)
            assert result.hc_first == reference.hc_first
            assert result.probes == reference.probes
            assert result.found == reference.found

    def test_budget_exhaustion_matches_scalar(self, chip1, batch_session):
        victims = [RowAddress(0, 0, 0, 5000)]
        batched = search_hc_first_rows(batch_session, victims, CHECKERED0,
                                       max_hammers=1000)
        assert not batched[0].found
        assert batched[0].hc_first is None
        scalar_session = BenderSession(chip1.make_device(),
                                       mapping=chip1.row_mapping())
        reference = search_hc_first(scalar_session, victims[0], CHECKERED0,
                                    max_hammers=1000)
        assert batched[0].probes == reference.probes


class TestFallbackGates:
    def test_trr_device_supported(self, chip0):
        """TRR no longer forces the scalar fallback (PR 5)."""
        device = chip0.make_device()
        assert device.trr_config.enabled
        assert engine_supported(device)
        session = BenderSession(device, mapping=chip0.row_mapping())
        assert session.batching_active()

    def test_trr_mirror_matches_scalar_sampler(self, chip0):
        """The batch measurement leaves the TRR sampler in the exact
        state the scalar command sequence would, so later REFs refresh
        the same victims."""
        victims = [RowAddress(0, 0, 0, 5000), RowAddress(0, 0, 1, 700)]
        batch_device = chip0.make_device()
        session = BenderSession(batch_device, mapping=chip0.row_mapping())
        assert session.batching_active()
        session.hammer_rows(victims, CHECKERED0, 2_000)

        scalar_device = chip0.make_device()
        scalar_session = BenderSession(scalar_device,
                                       mapping=chip0.row_mapping())
        for victim in victims:
            initialize_window(scalar_session, victim, CHECKERED0)
            double_sided_hammer(scalar_session, victim, 2_000)
            scalar_session.read_physical_row(victim)

        for device in (batch_device, scalar_device):
            assert device.trr_config.enabled
        mine = batch_device.trr_engine(0, 0)
        theirs = scalar_device.trr_engine(0, 0)
        for bank in (0, 1):
            assert mine._trackers[bank].cam == theirs._trackers[bank].cam
            assert mine._trackers[bank].window_counts \
                == theirs._trackers[bank].window_counts
            assert mine._trackers[bank].window_total \
                == theirs._trackers[bank].window_total
        # ... and the next capable REFs emit identical victim refreshes.
        for __ in range(17):
            assert mine.on_refresh() == theirs.on_refresh()

    def test_faulty_stack_supported(self, chip1):
        """A FaultyStack over a plain stack batches (PR 6): the engine
        unwraps it and the session classifies fault windows itself."""
        wrapped = FaultyStack(chip1.make_device(), FaultPlan(seed=7))
        assert engine_supported(wrapped)
        profile = RowBatchProfile(wrapped, [RowAddress(0, 0, 0, 100)],
                                  CHECKERED0)
        assert profile.device is wrapped.wrapped

    def test_faulty_subclass_still_rejected(self, chip1):
        """Unwrapping exposes the underlying device to the same
        subclass gate as before."""
        class Oddball(type(chip1.make_device())):
            pass

        device = chip1.make_device()
        odd = Oddball(geometry=device.geometry, timings=device.timings)
        assert not engine_supported(FaultyStack(odd, FaultPlan(seed=7)))

    def test_fault_plan_keeps_session_batching(self, chip1):
        session = BenderSession(chip1.make_device(),
                                mapping=chip1.row_mapping())
        assert session.batching_active()
        install_plan(FaultPlan(seed=7, drop_rate=0.01))
        try:
            faulted = BenderSession(chip1.make_device(),
                                    mapping=chip1.row_mapping())
            assert isinstance(faulted.device, FaultyStack)
            assert faulted.batching_active()
        finally:
            clear_plan()
        assert session.batching_active()

    def test_env_escape_hatch(self, chip1, monkeypatch):
        session = BenderSession(chip1.make_device(),
                                mapping=chip1.row_mapping())
        for value in ("0", "false", "no", "off"):
            monkeypatch.setenv("HBMSIM_BATCH", value)
            assert not batch_enabled()
            assert not session.batching_active()
        monkeypatch.setenv("HBMSIM_BATCH", "1")
        assert batch_enabled()

    def test_env_unrecognized_warns_and_enables(self, chip1, monkeypatch):
        import warnings as warnings_module

        from repro.dram import batch as batch_module

        monkeypatch.setenv("HBMSIM_BATCH", "bogus-value")
        monkeypatch.setattr(batch_module, "_WARNED_VALUES", set())
        with pytest.warns(RuntimeWarning, match="HBMSIM_BATCH"):
            assert batch_enabled()
        # Warned once per distinct value, not per call.
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert batch_enabled()


def _trr_state(session):
    device = session.device
    if isinstance(device, FaultyStack):
        device = device.wrapped
    state = []
    for pc_key, engine in device._trr.items():
        for tracker in engine._trackers:
            state.append((pc_key, tuple(tracker.cam),
                          dict(tracker.window_counts),
                          tracker.window_total))
    return state


class TestSpeculativeEquivalence:
    """search_hc_first_rows under a fault plan == the scalar loop.

    The speculative-replay contract (PR 10): per-row results, the
    injected fault-event log, the final command counter and the TRR
    sampler state are bit-identical to running :func:`search_hc_first`
    per victim on a fresh identically-seeded FaultyStack.
    """

    #: Hot enough that short searches hit dirty windows, read faults
    #: and (with drops) the overlap demotion — not just clean paths.
    PLAN = dict(drop_rate=0.01, act_jitter_rate=0.01, act_jitter_ns=5.0,
                read_flip_rate=0.05, stuck_row_rate=0.05)

    def _faulty_session(self, chip, seed, trr=None):
        stack = FaultyStack(chip.make_device(trr_config=trr),
                            FaultPlan(seed=seed, **self.PLAN))
        return BenderSession(stack, mapping=chip.row_mapping())

    def _assert_equivalent(self, chip, victims, seed, trr=None,
                           **search):
        batch_session = self._faulty_session(chip, seed, trr)
        assert batch_session.batching_active()
        batched = search_hc_first_rows(batch_session, victims,
                                       CHECKERED0, **search)
        scalar_session = self._faulty_session(chip, seed, trr)
        scalar = [search_hc_first(scalar_session, victim, CHECKERED0,
                                  **search)
                  for victim in victims]
        for mine, theirs in zip(batched, scalar):
            assert mine.hc_first == theirs.hc_first
            assert mine.probes == theirs.probes
            assert mine.found == theirs.found
        assert batch_session.device.events == scalar_session.device.events
        assert batch_session.device._counter \
            == scalar_session.device._counter
        assert batch_session.device.schedule_digest() \
            == scalar_session.device.schedule_digest()
        assert _trr_state(batch_session) == _trr_state(scalar_session)

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_disjoint_victims_match_scalar(self, chip1, seed):
        victims = [RowAddress(0, 0, 0, 5000), RowAddress(0, 0, 0, 0),
                   RowAddress(3, 1, 7, 2048)]
        self._assert_equivalent(chip1, victims, seed)

    def test_overlapping_victims_demote_and_match(self, chip1):
        # Rows within 2*radius share window WRs: under a drop-capable
        # plan the earlier victim must replay scalar (stale-read rule).
        victims = [RowAddress(0, 0, 0, 100), RowAddress(0, 0, 0, 104),
                   RowAddress(0, 0, 0, 112)]
        self._assert_equivalent(chip1, victims, seed=7)

    def test_trr_device_matches_scalar(self, chip0):
        victims = [RowAddress(0, 0, 0, 5000), RowAddress(0, 0, 1, 700)]
        self._assert_equivalent(chip0, victims, seed=7,
                                trr=chip0.trr_config())

    def test_budget_exhaustion_matches_scalar(self, chip1):
        victims = [RowAddress(0, 0, 0, 5000), RowAddress(1, 0, 0, 8000)]
        self._assert_equivalent(chip1, victims, seed=7,
                                max_hammers=1000)

    def test_fallback_env_gate_matches_batched(self, chip1, monkeypatch):
        victims = [RowAddress(0, 0, 0, 5000), RowAddress(0, 0, 0, 104)]
        batched = search_hc_first_rows(
            self._faulty_session(chip1, 7), victims, CHECKERED0)
        monkeypatch.setenv("HBMSIM_BATCH", "0")
        scalar = search_hc_first_rows(
            self._faulty_session(chip1, 7), victims, CHECKERED0)
        for mine, theirs in zip(batched, scalar):
            assert mine.hc_first == theirs.hc_first
            assert mine.probes == theirs.probes
