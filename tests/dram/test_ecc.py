"""Tests for the SECDED and Hamming(7,4) codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.ecc import (DecodeStatus, Hamming74Codec, SecdedCodec,
                            classify_flip_count)

_codec = SecdedCodec()

_data_bits = st.lists(st.integers(min_value=0, max_value=1),
                      min_size=64, max_size=64).map(
    lambda bits: np.array(bits, dtype=np.uint8))


class TestSecdedStructure:
    def test_72_64_geometry(self):
        assert _codec.data_bits == 64
        assert _codec.check_bits == 7
        assert _codec.codeword_bits == 72


class TestSecdedRoundtrip:
    @given(_data_bits)
    @settings(max_examples=60)
    def test_clean_roundtrip(self, data):
        decoded, status = _codec.decode(_codec.encode(data))
        assert status is DecodeStatus.OK
        assert np.array_equal(decoded, data)

    @given(_data_bits, st.integers(min_value=0, max_value=71))
    @settings(max_examples=60)
    def test_single_error_corrected(self, data, position):
        corrupted = _codec.encode(data)
        corrupted[position] ^= 1
        decoded, status = _codec.decode(corrupted)
        assert status is DecodeStatus.CORRECTED
        assert np.array_equal(decoded, data)

    @given(_data_bits,
           st.sets(st.integers(min_value=0, max_value=71), min_size=2,
                   max_size=2))
    @settings(max_examples=60)
    def test_double_error_detected(self, data, positions):
        corrupted = _codec.encode(data)
        for position in positions:
            corrupted[position] ^= 1
        __, status = _codec.decode(corrupted)
        assert status is DecodeStatus.DETECTED

    def test_triple_error_can_miscorrect(self):
        """Three flips escape the SECDED guarantee (Section 8.1)."""
        rng = np.random.default_rng(0)
        outcomes = set()
        for __ in range(200):
            data = rng.integers(0, 2, 64).astype(np.uint8)
            positions = rng.choice(72, size=3, replace=False)
            outcomes.add(_codec.evaluate_flips(data, positions))
        assert DecodeStatus.MISCORRECTED in outcomes

    def test_evaluate_flips_clean(self):
        data = np.zeros(64, dtype=np.uint8)
        assert _codec.evaluate_flips(data, np.array([], dtype=int)) \
            is DecodeStatus.OK

    def test_evaluate_flips_out_of_range(self):
        data = np.zeros(64, dtype=np.uint8)
        with pytest.raises(ValueError):
            _codec.evaluate_flips(data, np.array([72]))

    def test_wrong_data_width_rejected(self):
        with pytest.raises(ValueError):
            _codec.encode(np.zeros(63, dtype=np.uint8))
        with pytest.raises(ValueError):
            _codec.decode(np.zeros(71, dtype=np.uint8))


class TestHamming74:
    codec = Hamming74Codec()

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=4,
                    max_size=4))
    @settings(max_examples=32)
    def test_clean_roundtrip(self, bits):
        nibble = np.array(bits, dtype=np.uint8)
        decoded, status = self.codec.decode(self.codec.encode(nibble))
        assert status is DecodeStatus.OK
        assert np.array_equal(decoded, nibble)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=4,
                    max_size=4),
           st.integers(min_value=0, max_value=6))
    @settings(max_examples=60)
    def test_single_error_corrected(self, bits, position):
        nibble = np.array(bits, dtype=np.uint8)
        codeword = self.codec.encode(nibble)
        codeword[position] ^= 1
        decoded, status = self.codec.decode(codeword)
        assert status is DecodeStatus.CORRECTED
        assert np.array_equal(decoded, nibble)

    def test_storage_overhead_is_75_percent(self):
        """Section 8.1: 3 parity bits per 4 data bits."""
        assert self.codec.storage_overhead == 0.75

    def test_words_per_row(self):
        assert self.codec.words_per_row(8192) == 2048

    def test_wrong_widths_rejected(self):
        with pytest.raises(ValueError):
            self.codec.encode(np.zeros(5, dtype=np.uint8))
        with pytest.raises(ValueError):
            self.codec.decode(np.zeros(8, dtype=np.uint8))


class TestClassification:
    @pytest.mark.parametrize("flips,expected", [
        (0, "clean"),
        (1, "correctable"),
        (2, "detectable_uncorrectable"),
        (3, "potentially_undetectable"),
        (16, "potentially_undetectable"),
    ])
    def test_classes(self, flips, expected):
        assert classify_flip_count(flips) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            classify_flip_count(-1)
