"""Line-JSON protocol tests: op dispatch, typed error encoding, and
event streaming — dict-in/dict-out, no stdio involved."""

import asyncio

import pytest

from repro.errors import AdmissionError, CircuitOpenError, OverloadError
from repro.service import ExperimentService, ServiceConfig
from repro.service.protocol import PROTOCOL_SCHEMA, LineProtocol, encode_error

from tests.service.conftest import needs_fork, run_async


class TestErrorEncoding:
    def test_admission_error_fields(self):
        exc = AdmissionError("unknown experiment", field="experiment_id",
                             suggestions=["fig05"])
        error = encode_error(exc)
        assert error["code"] == "admission"
        assert error["field"] == "experiment_id"
        assert error["suggestions"] == ["fig05"]
        assert "retry_after" not in error

    def test_overload_error_fields(self):
        exc = OverloadError("tenant", 8, 8, retry_after=2.5,
                            tenant="ci")
        error = encode_error(exc)
        assert error["code"] == "overload"
        assert error["scope"] == "tenant"
        assert error["tenant"] == "ci"
        assert error["depth"] == 8 and error["limit"] == 8
        assert error["retry_after"] == 2.5

    def test_circuit_open_error_fields(self):
        error = encode_error(CircuitOpenError("fig", 3, retry_after=12.0))
        assert error["code"] == "circuit-open"
        assert error["family"] == "fig"
        assert error["retry_after"] == 12.0

    def test_foreign_exception_still_encodes(self):
        error = encode_error(ValueError("boom"))
        assert error["code"] == "ValueError"
        assert error["message"] == "boom"


@needs_fork
class TestOps:
    def _scenario(self, config=None):
        service = ExperimentService(config or ServiceConfig(slots=1))
        return service, LineProtocol(service)

    def test_submit_wait_status_shutdown(self, chaos_registry,
                                         service_cache):
        async def scenario():
            service, protocol = self._scenario()
            await service.start()
            submitted = await protocol.handle(
                {"op": "submit",
                 "request": {"experiment_id": "svc-ok"}})
            assert submitted["ok"] and submitted["op"] == "submit"
            assert submitted["schema"] == PROTOCOL_SCHEMA
            job_id = submitted["job"]

            waited = await protocol.handle({"op": "wait", "job": job_id})
            assert waited["ok"]
            assert waited["record"]["status"] == "ok"
            assert "error" not in waited

            status = await protocol.handle({"op": "status"})
            assert status["status"]["jobs"] == {"ok": 1}

            done = await protocol.handle({"op": "shutdown"})
            assert done["ok"] and protocol.closing

        run_async(scenario())

    def test_failed_job_wait_carries_typed_error(self, chaos_registry,
                                                 service_cache):
        async def scenario():
            service, protocol = self._scenario(
                ServiceConfig(slots=1, retries=0))
            await service.start()
            try:
                submitted = await protocol.handle(
                    {"op": "submit",
                     "request": {"experiment_id": "svc-bad"}})
                waited = await protocol.handle(
                    {"op": "wait", "job": submitted["job"]})
                assert waited["record"]["status"] == "failed"
                assert waited["error"]["code"] == "service" \
                    or "injected failure" in waited["error"]["message"]
            finally:
                await service.close()

        run_async(scenario())

    def test_admission_rejection_is_a_typed_response(
            self, chaos_registry, service_cache):
        async def scenario():
            service, protocol = self._scenario()
            await service.start()
            try:
                response = await protocol.handle(
                    {"op": "submit",
                     "request": {"experiment_id": "fig5"}})
                assert not response["ok"]
                assert response["error"]["code"] == "admission"
                assert response["error"]["field"] == "experiment_id"
                assert response["error"]["suggestions"]
            finally:
                await service.close()

        run_async(scenario())

    def test_cancel_and_drain(self, chaos_registry, service_cache):
        async def scenario():
            service, protocol = self._scenario()
            await service.start()
            try:
                blocker = await protocol.handle(
                    {"op": "submit",
                     "request": {"experiment_id": "svc-sleep"}})
                queued = await protocol.handle(
                    {"op": "submit",
                     "request": {"experiment_id": "svc-ok"}})
                cancelled = await protocol.handle(
                    {"op": "cancel", "job": blocker["job"]})
                assert cancelled["cancelled"]
                drained = await protocol.handle({"op": "drain"})
                assert drained["ok"]
                by_id = {j["job"]: j for j in drained["jobs"]}
                assert by_id[blocker["job"]]["record"]["status"] \
                    == "cancelled"
                assert by_id[queued["job"]]["record"]["status"] == "ok"
            finally:
                await service.close()

        run_async(scenario())

    def test_malformed_requests_get_protocol_errors(
            self, chaos_registry, service_cache):
        async def scenario():
            service, protocol = self._scenario()
            await service.start()
            try:
                assert not (await protocol.handle("not an object"))["ok"]
                unknown = await protocol.handle({"op": "frobnicate"})
                assert not unknown["ok"]
                assert "valid ops" in unknown["error"]["message"]
                assert not (await protocol.handle({"op": "submit"}))["ok"]
                assert not (await protocol.handle(
                    {"op": "wait", "job": "job-000042"}))["ok"]
                assert not (await protocol.handle(
                    {"op": "cancel", "job": 7}))["ok"]
            finally:
                await service.close()

        run_async(scenario())

    def test_events_stream_lifecycle(self, chaos_registry,
                                     service_cache):
        async def scenario():
            service, protocol = self._scenario()
            await service.start()
            try:
                submitted = await protocol.handle(
                    {"op": "submit",
                     "request": {"experiment_id": "svc-ok"}})
                await protocol.handle({"op": "wait",
                                       "job": submitted["job"]})
                kinds = []
                while not service.events.empty():
                    kinds.append(service.events.get_nowait()["event"])
                assert kinds[0] == "admitted"
                assert "started" in kinds
                assert kinds[-1] == "done"
            finally:
                await service.close()

        run_async(scenario())
