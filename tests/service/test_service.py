"""ExperimentService behavior tests: dispatch, cancellation, overload
shedding, circuit breaking, crash-of-the-service-itself cleanliness.

Every scenario runs on a fresh asyncio loop via ``run_async``; the
chaos experiments come from the forked-worker-visible registry in
``conftest.py``.
"""

import asyncio

import pytest

from repro.errors import (CircuitOpenError, ExperimentError, HbmSimError,
                          OverloadError, WorkerCrashError)
from repro.service import ExperimentService, ServiceConfig

from tests.service.conftest import needs_fork, run_async

pytestmark = needs_fork


async def _started(config: ServiceConfig) -> ExperimentService:
    service = ExperimentService(config)
    await service.start()
    return service


class TestLifecycle:
    def test_submit_requires_start(self, chaos_registry, service_cache):
        service = ExperimentService(ServiceConfig(slots=1))
        with pytest.raises(HbmSimError):
            service.submit({"experiment_id": "svc-ok"})

    def test_ok_and_failed_jobs_resolve(self, chaos_registry,
                                        service_cache):
        async def scenario():
            service = await _started(ServiceConfig(slots=1, retries=0))
            try:
                ok = service.submit({"experiment_id": "svc-ok"})
                bad = service.submit({"experiment_id": "svc-bad"})
                ok_record = await ok.wait()
                bad_record = await bad.wait()
                assert ok_record.status == "ok"
                assert ok.exception is None
                assert bad_record.status == "failed"
                assert isinstance(bad.exception, ExperimentError)
                assert "injected failure" in bad_record.error
            finally:
                await service.close()

        run_async(scenario())

    def test_verify_only_request_never_occupies_a_worker(
            self, chaos_registry, service_cache):
        async def scenario():
            service = await _started(ServiceConfig(slots=1))
            try:
                job = service.submit(
                    {"program": "ACT 0 0 0 100\nPRE 0 0 0"})
                record = await job.wait()
                assert record.status == "verified"
                assert job.executions == 0
            finally:
                await service.close()

        run_async(scenario())

    def test_close_resolves_every_job(self, chaos_registry,
                                      service_cache):
        """No hung awaits: closing mid-flight cancels cleanly."""
        async def scenario():
            service = await _started(ServiceConfig(slots=1))
            running = service.submit({"experiment_id": "svc-sleep"})
            queued = service.submit({"experiment_id": "svc-ok"})
            await asyncio.sleep(0.2)
            await service.close()
            for job in (running, queued):
                record = await asyncio.wait_for(job.wait(), timeout=5.0)
                assert record.status == "cancelled"
                assert isinstance(job.exception, ExperimentError)

        run_async(scenario())


class TestCancellation:
    def test_cancel_queued_job_releases_immediately(
            self, chaos_registry, service_cache):
        async def scenario():
            service = await _started(ServiceConfig(slots=1))
            try:
                blocker = service.submit({"experiment_id": "svc-sleep"})
                queued = service.submit({"experiment_id": "svc-ok"})
                assert queued.state == "queued"
                assert service.cancel(queued.job_id)
                record = await asyncio.wait_for(queued.wait(),
                                                timeout=1.0)
                assert record.status == "cancelled"
                assert queued.executions == 0
                assert service.cancel(blocker.job_id)
            finally:
                await service.close()

        run_async(scenario())

    def test_cancel_running_job_frees_the_slot(self, chaos_registry,
                                               service_cache):
        async def scenario():
            service = await _started(ServiceConfig(slots=1))
            try:
                hung = service.submit({"experiment_id": "svc-sleep"})
                follow = service.submit({"experiment_id": "svc-ok"})
                await asyncio.sleep(0.2)
                assert hung.state == "running"
                assert service.cancel(hung.job_id)
                hung_record = await asyncio.wait_for(hung.wait(),
                                                     timeout=10.0)
                assert hung_record.status == "cancelled"
                # The killed worker's slot is respawned and reused well
                # before svc-sleep's 30s would have elapsed.
                follow_record = await asyncio.wait_for(follow.wait(),
                                                       timeout=15.0)
                assert follow_record.status == "ok"
            finally:
                await service.close()

        run_async(scenario())

    def test_cancel_unknown_or_done_returns_false(self, chaos_registry,
                                                  service_cache):
        async def scenario():
            service = await _started(ServiceConfig(slots=1))
            try:
                job = service.submit({"experiment_id": "svc-ok"})
                await job.wait()
                assert not service.cancel(job.job_id)
                assert not service.cancel("job-999999")
            finally:
                await service.close()

        run_async(scenario())


class TestBackpressureIntegration:
    def test_overload_sheds_with_retry_hint(self, chaos_registry,
                                            service_cache):
        async def scenario():
            config = ServiceConfig(slots=1, per_tenant_depth=1,
                                   nominal_job_seconds=2.0)
            service = await _started(config)
            try:
                service.submit({"experiment_id": "svc-sleep"})
                service.submit({"experiment_id": "svc-ok"})
                with pytest.raises(OverloadError) as excinfo:
                    service.submit({"experiment_id": "svc-ok2"})
                assert excinfo.value.scope == "tenant"
                assert excinfo.value.retry_after >= 1.0
                # Another tenant still gets in.
                service.submit({"experiment_id": "svc-ok2",
                                "tenant": "other"})
            finally:
                await service.close()

        run_async(scenario())


class TestCircuitBreaker:
    def test_worker_crashes_open_the_family_circuit(
            self, chaos_registry, service_cache):
        async def scenario():
            config = ServiceConfig(slots=1, retries=0,
                                   breaker_threshold=2,
                                   breaker_cooldown=60.0,
                                   use_result_cache=False)
            service = await _started(config)
            try:
                for _ in range(2):
                    job = service.submit(
                        {"experiment_id": "svc-crash"})
                    record = await job.wait()
                    assert record.status == "failed"
                    assert isinstance(job.exception, WorkerCrashError)
                with pytest.raises(CircuitOpenError) as excinfo:
                    service.submit({"experiment_id": "svc-crash"})
                assert excinfo.value.retry_after > 0
                # Other families are unaffected.
                ok = service.submit({"experiment_id": "svc-ok"})
                assert (await ok.wait()).status == "ok"
            finally:
                await service.close()

        run_async(scenario())

    def test_half_open_probe_recovers_the_family(self, chaos_registry,
                                                 service_cache):
        async def scenario():
            config = ServiceConfig(slots=1, retries=0,
                                   breaker_threshold=1,
                                   breaker_cooldown=0.2,
                                   use_result_cache=False)
            service = await _started(config)
            try:
                first = service.submit(
                    {"experiment_id": "svc-crash-once"})
                assert (await first.wait()).status == "failed"
                with pytest.raises(CircuitOpenError):
                    service.submit({"experiment_id": "svc-crash-once"})
                await asyncio.sleep(0.3)
                # The cooldown elapsed: this request is the probe, and
                # the marker file makes the retry-side succeed.
                probe = service.submit(
                    {"experiment_id": "svc-crash-once"})
                assert (await probe.wait()).status == "ok"
                again = service.submit(
                    {"experiment_id": "svc-crash-once"})
                assert (await again.wait()).status in ("ok", "cached")
            finally:
                await service.close()

        run_async(scenario())

    def test_ordinary_failures_do_not_trip_the_breaker(
            self, chaos_registry, service_cache):
        async def scenario():
            config = ServiceConfig(slots=1, retries=0,
                                   breaker_threshold=1,
                                   use_result_cache=False)
            service = await _started(config)
            try:
                for _ in range(3):
                    job = service.submit({"experiment_id": "svc-bad"})
                    assert (await job.wait()).status == "failed"
                # svc-bad raises inside the experiment — request-scoped,
                # not infrastructure — so the family stays closed.
                assert service.status()["breakers"]["svc-bad"][
                    "state"] == "closed"
            finally:
                await service.close()

        run_async(scenario())


class TestResultCacheIntegration:
    def test_results_persist_across_service_instances(
            self, chaos_registry, service_cache):
        async def scenario():
            first = await _started(ServiceConfig(slots=1))
            try:
                job = first.submit({"experiment_id": "svc-ok"})
                assert (await job.wait()).status == "ok"
            finally:
                await first.close()
            second = await _started(ServiceConfig(slots=1))
            try:
                repeat = second.submit({"experiment_id": "svc-ok"})
                record = await repeat.wait()
                assert record.status == "cached"
                assert record.result.text == "ran svc-ok @ 1"
            finally:
                await second.close()

        run_async(scenario())

        from tests.service.conftest import executions
        assert executions(chaos_registry / "executions") == 1
