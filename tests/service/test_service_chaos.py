"""Service chaos drill: SIGKILL ``python -m repro.service`` mid-batch,
restart with ``--drain``, and prove the crash-safety contract end to end:

- every admitted request reaches a terminal state across incarnations;
- results are bit-identical to a fault-free run (golden report shas),
  even with ``HBMSIM_FAULTS`` worker chaos layered on top;
- work that completed before the kill is never executed again (the
  journal's started-line audit).

This is the subprocess half of ``test_journal.py``: it exercises the
real CLI, stdio protocol, fsync'd journal, and re-adoption, with the
service process killed the hard way (SIGKILL — no atexit, no flush).
"""

import json
import multiprocessing
import os
import queue
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="service workers require the fork start method")

pytestmark = needs_fork

SRC = str(Path(repro.__file__).resolve().parents[1])

#: Golden report shas (fault-free), shared with
#: tests/core/test_batch_equivalence.py and the CI perf smoke.
GOLDEN = {"fig05": "44546c2cd83c30da", "fig07": "e22a1494c3310f21"}

#: Two distinct keys, each submitted twice (the duplicates coalesce or
#: serve from cache — either way they must not re-execute).
BATCH = [
    {"experiment_id": "fig05", "scale": 0.25, "tenant": "alpha"},
    {"experiment_id": "fig07", "scale": 0.25, "tenant": "beta"},
    {"experiment_id": "fig05", "scale": 0.25, "tenant": "gamma"},
    {"experiment_id": "fig07", "scale": 0.25, "tenant": "alpha"},
]


def _service_env(tmp_path):
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC
    env["HBMSIM_CACHE_DIR"] = str(tmp_path / "cache")
    # Worker chaos: fig07's first attempt dies mid-run; the retried
    # attempt must still produce the golden report.
    env["HBMSIM_FAULTS"] = json.dumps(
        {"seed": 7, "crash_once": ["fig07"]})
    env.pop("HBMSIM_NO_CACHE", None)
    return env


def _drain_stdout(stream, lines):
    for line in stream:
        lines.put(line)
    lines.put(None)


def _journal_events(journal_dir):
    """Parseable journal events, in append order (torn lines skipped
    exactly as ``ServiceJournal.events`` skips them)."""
    events = []
    for line in (journal_dir / "journal.jsonl").read_text().splitlines():
        try:
            payload = json.loads(line)
        except ValueError:
            continue
        if isinstance(payload, dict) and "event" in payload \
                and "job" in payload:
            events.append(payload)
    return events


def _pids_mentioning(token):
    """Live PIDs whose cmdline contains ``token`` (forked pool workers
    keep the service's argv, so the unique journal path finds them)."""
    pids = []
    for pid_dir in Path("/proc").iterdir():
        if not pid_dir.name.isdigit():
            continue
        try:
            cmdline = (pid_dir / "cmdline").read_bytes()
        except OSError:
            continue
        if token.encode() in cmdline:
            pids.append(int(pid_dir.name))
    return pids


def test_sigkill_mid_batch_then_drain_readopts(tmp_path):
    journal_dir = tmp_path / "journal"
    env = _service_env(tmp_path)

    # --- phase 1: serve, submit the batch, SIGKILL after the first
    # terminal event.  One slot serializes the batch, so the moment the
    # first "done" event lands the rest cannot all have finished.
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--slots", "1",
         "--journal-dir", str(journal_dir)],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True, env=env)
    lines = queue.Queue()
    threading.Thread(target=_drain_stdout, args=(proc.stdout, lines),
                     daemon=True).start()
    try:
        for request in BATCH:
            proc.stdin.write(json.dumps(
                {"op": "submit", "request": request}) + "\n")
        proc.stdin.flush()

        deadline = time.monotonic() + 180.0
        saw_done = False
        while time.monotonic() < deadline:
            try:
                line = lines.get(timeout=1.0)
            except queue.Empty:
                continue
            assert line is not None, "service exited before a result"
            payload = json.loads(line)
            assert payload.get("ok", True), payload
            if payload.get("event") == "done":
                saw_done = True
                break
        assert saw_done, "no job finished within the deadline"
    finally:
        proc.kill()  # SIGKILL — no shutdown handshake, no flush
        proc.wait(timeout=30)

    # Orphaned pool workers must reap themselves (they poll for their
    # parent's death — pipe EOF alone is unreliable across forks).
    deadline = time.monotonic() + 30.0
    while _pids_mentioning(str(journal_dir)) \
            and time.monotonic() < deadline:
        time.sleep(0.25)
    assert _pids_mentioning(str(journal_dir)) == []

    pre_kill = _journal_events(journal_dir)
    key_of = {e["job"]: e["key"] for e in pre_kill
              if e["event"] == "admitted"}
    terminal_pre = {e["job"] for e in pre_kill
                    if e["event"] in ("completed", "failed", "cancelled")}
    completed_pre = {e["job"] for e in pre_kill
                     if e["event"] == "completed"}
    open_jobs = set(key_of) - terminal_pre
    assert len(key_of) == len(BATCH)      # every submit was journaled
    assert completed_pre                  # genuinely mid-batch...
    assert open_jobs                      # ...with work still in flight

    # Pre-kill completions already carry the golden shas.
    for event in pre_kill:
        if event["event"] == "completed":
            summary = event["summary"]
            assert summary["sha"] \
                == GOLDEN[summary["record"]["experiment_id"]]
    completed_keys = {key_of[job] for job in completed_pre}

    # --- phase 2: restart with --drain; the journal's open jobs are
    # re-adopted and run to completion (same chaos env).
    drain = subprocess.run(
        [sys.executable, "-m", "repro.service",
         "--journal-dir", str(journal_dir), "--drain"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        env=env, timeout=300)
    assert drain.returncode == 0, drain.stdout
    summary = json.loads(drain.stdout.strip().splitlines()[-1])
    assert summary["ok"] and summary["failed"] == 0
    drained = {job["job"]: job for job in summary["jobs"]}
    assert set(drained) == open_jobs

    # Bit-identical across the kill: every drained job reports the
    # fault-free golden sha for its experiment.
    for job in drained.values():
        assert job["record"]["status"] in ("ok", "retried", "cached")
        assert job["sha"] == GOLDEN[job["record"]["experiment_id"]]

    # --- the zero-duplicate-execution audit.
    full = _journal_events(journal_dir)
    assert full[:len(pre_kill)] == pre_kill   # append-only survived
    post_kill = full[len(pre_kill):]

    # Keys that completed before the kill never start again.
    restarted_keys = {key_of.get(e["job"]) for e in post_kill
                      if e["event"] == "started"}
    assert not restarted_keys & completed_keys

    # No job anywhere has a "started" line after its terminal line.
    terminal_at = {}
    for index, event in enumerate(full):
        if event["event"] in ("completed", "failed", "cancelled"):
            terminal_at.setdefault(event["job"], index)
    for index, event in enumerate(full):
        if event["event"] == "started":
            assert index < terminal_at.get(event["job"], len(full))

    # Every admitted job is terminal, and each key executed at most
    # once per incarnation that touched it.
    started_count = {}
    for event in full:
        if event["event"] == "started":
            key = key_of[event["job"]]
            started_count[key] = started_count.get(key, 0) + 1
    for job_id, key in key_of.items():
        assert job_id in terminal_at
        # 1 normal execution, +1 only if the kill interrupted it.
        assert started_count.get(key, 0) <= 2

    # The second incarnation re-ran at most the interrupted work: the
    # batch had two keys, one finished pre-kill, so at most one key
    # (and at most one execution per job) started post-kill.
    assert len([e for e in post_kill if e["event"] == "started"]) <= 2
