"""Journal tests: durable append/replay, torn-tail tolerance, and
service re-adoption (the crash half is a SIGKILL'd subprocess in
``test_service_chaos.py``; here the "crash" is a journal written by
one service instance and re-adopted by another)."""

import asyncio
import json

import pytest

from repro.service import ExperimentService, ServiceConfig, ServiceJournal

from tests.service.conftest import executions, needs_fork, run_async


class TestJournalUnit:
    def test_replay_folds_lifecycle(self, tmp_path):
        journal = ServiceJournal(tmp_path)
        journal.append("admitted", "job-000001",
                       request={"experiment_id": "fig05"}, key="k1")
        journal.append("started", "job-000001")
        journal.append("started", "job-000001")
        journal.append("completed", "job-000001", summary={"sha": "x"})
        journal.append("admitted", "job-000002",
                       request={"experiment_id": "fig07"}, key="k2")
        journal.close()

        jobs = journal.replay()
        assert jobs["job-000001"]["status"] == "completed"
        assert jobs["job-000001"]["executions"] == 2
        assert jobs["job-000002"]["status"] == "in-flight"
        open_jobs = journal.open_jobs()
        assert [entry["job"] for entry in open_jobs] == ["job-000002"]

    def test_torn_tail_line_is_skipped(self, tmp_path):
        journal = ServiceJournal(tmp_path)
        journal.append("admitted", "job-000001",
                       request={"experiment_id": "fig05"}, key="k1")
        journal.close()
        with journal.path.open("a") as handle:
            handle.write('{"schema": 1, "event": "comple')  # SIGKILL'd
        assert len(journal.events()) == 1
        assert journal.open_jobs()[0]["job"] == "job-000001"

    def test_append_after_torn_tail_does_not_merge(self, tmp_path):
        """A new incarnation's first append must not concatenate onto
        a torn final line — that would lose both events."""
        journal = ServiceJournal(tmp_path)
        journal.append("admitted", "job-000001",
                       request={"experiment_id": "fig05"}, key="k1")
        journal.close()
        with journal.path.open("a") as handle:
            handle.write('{"schema": 1, "event": "star')  # no newline

        restarted = ServiceJournal(tmp_path)
        restarted.append("completed", "job-000001", summary={"sha": "x"})
        restarted.close()
        events = [e["event"] for e in restarted.events()]
        assert events == ["admitted", "completed"]
        assert restarted.replay()["job-000001"]["status"] == "completed"

    def test_missing_journal_is_empty(self, tmp_path):
        journal = ServiceJournal(tmp_path / "fresh")
        assert journal.events() == []
        assert journal.open_jobs() == []
        assert journal.max_sequence() == 0

    def test_max_sequence_continues_across_incarnations(self, tmp_path):
        journal = ServiceJournal(tmp_path)
        journal.append("admitted", "job-000007", request={}, key="k")
        journal.append("admitted", "job-000003", request={}, key="k")
        journal.close()
        assert ServiceJournal(tmp_path).max_sequence() == 7

    def test_events_without_job_field_ignored(self, tmp_path):
        journal = ServiceJournal(tmp_path)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        journal.path.write_text('{"event": "admitted"}\n[1,2]\n')
        assert journal.events() == []


@needs_fork
class TestReadoption:
    def _crash_leaving_journal(self, journal_dir, requests):
        """Simulate a crashed service: journal admissions without
        terminal lines, exactly as a SIGKILL'd instance leaves them."""
        journal = ServiceJournal(journal_dir)
        for n, request in enumerate(requests, start=1):
            journal.append("admitted", f"job-{n:06d}", request=request,
                           key=None)
        journal.close()

    def test_open_jobs_rerun_to_completion(self, chaos_registry,
                                           service_cache, tmp_path):
        journal_dir = tmp_path / "journal"
        self._crash_leaving_journal(journal_dir, [
            {"experiment_id": "svc-ok"},
            {"experiment_id": "svc-ok2"},
        ])

        async def scenario():
            service = ExperimentService(ServiceConfig(
                slots=1, journal_dir=str(journal_dir)))
            await service.start()
            try:
                jobs = await service.drain()
            finally:
                await service.close()
            return jobs

        jobs = run_async(scenario())
        assert sorted(job.job_id for job in jobs) \
            == ["job-000001", "job-000002"]
        assert all(job.record.status == "ok" for job in jobs)
        # The journal now carries terminal lines: nothing re-adopts.
        assert ServiceJournal(journal_dir).open_jobs() == []

    def test_completed_key_readopts_from_cache_without_rerun(
            self, chaos_registry, service_cache, tmp_path):
        """Zero duplicate executions: a job whose execution finished
        before the crash is served from the result cache on restart."""
        journal_dir = tmp_path / "journal"

        async def first_run():
            service = ExperimentService(ServiceConfig(slots=1))
            await service.start()
            try:
                await service.submit({"experiment_id": "svc-ok"}).wait()
            finally:
                await service.close()

        run_async(first_run())
        assert executions(chaos_registry / "executions") == 1

        # The crashed incarnation had admitted the same work but its
        # terminal line never landed.
        self._crash_leaving_journal(journal_dir,
                                    [{"experiment_id": "svc-ok"}])

        async def restart():
            service = ExperimentService(ServiceConfig(
                slots=1, journal_dir=str(journal_dir)))
            await service.start()
            try:
                return await service.drain()
            finally:
                await service.close()

        jobs = run_async(restart())
        assert jobs[0].record.status == "cached"
        assert executions(chaos_registry / "executions") == 1

    def test_identical_readopted_jobs_coalesce(self, chaos_registry,
                                               service_cache, tmp_path):
        journal_dir = tmp_path / "journal"
        self._crash_leaving_journal(
            journal_dir, [{"experiment_id": "svc-ok"}] * 4)

        async def scenario():
            service = ExperimentService(ServiceConfig(
                slots=1, journal_dir=str(journal_dir)))
            await service.start()
            try:
                return await service.drain()
            finally:
                await service.close()

        jobs = run_async(scenario())
        statuses = sorted(job.record.status for job in jobs)
        assert statuses == ["cached", "cached", "cached", "ok"]
        assert executions(chaos_registry / "executions") == 1

    def test_invalid_journaled_request_fails_typed(self, service_cache,
                                                   tmp_path):
        journal_dir = tmp_path / "journal"
        self._crash_leaving_journal(journal_dir,
                                    [{"experiment_id": "no-such"}])

        async def scenario():
            service = ExperimentService(ServiceConfig(
                slots=1, journal_dir=str(journal_dir)))
            await service.start()
            try:
                return await service.drain()
            finally:
                await service.close()

        jobs = run_async(scenario())
        assert jobs == []  # rejected at re-admission, not adopted
        replay = ServiceJournal(journal_dir).replay()
        assert replay["job-000001"]["status"] == "failed"

    def test_new_jobs_continue_the_id_sequence(self, chaos_registry,
                                               service_cache, tmp_path):
        journal_dir = tmp_path / "journal"
        self._crash_leaving_journal(journal_dir,
                                    [{"experiment_id": "svc-ok"}])

        async def scenario():
            service = ExperimentService(ServiceConfig(
                slots=1, journal_dir=str(journal_dir)))
            await service.start()
            try:
                fresh = service.submit({"experiment_id": "svc-ok2"})
                await service.drain()
                return fresh.job_id
            finally:
                await service.close()

        assert run_async(scenario()) == "job-000002"
