"""Shared fixtures for the service-layer tests.

Chaos experiments live at module level so the pool's fork workers
inherit them through the monkeypatched registry, exactly as in
``tests/experiments/test_resilient.py``.
"""

import asyncio
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.experiments import registry
from repro.experiments.base import ExperimentResult

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="service pool requires the fork start method")

MARKER_ENV = "HBMSIM_TEST_MARKER"
COUNTER_ENV = "HBMSIM_TEST_COUNTER"


def count_execution() -> None:
    """Append one byte to the counter file (O_APPEND: atomic across
    forked workers); the file's size is the execution count."""
    path = os.environ.get(COUNTER_ENV)
    if not path:
        return
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT)
    try:
        os.write(fd, b"x")
    finally:
        os.close(fd)


def executions(path) -> int:
    try:
        return os.stat(path).st_size
    except OSError:
        return 0


def _result(experiment_id: str, scale: float) -> ExperimentResult:
    return ExperimentResult(experiment_id=experiment_id,
                            title=experiment_id,
                            text=f"ran {experiment_id} @ {scale:g}")


def _svc_ok(scale: float) -> ExperimentResult:
    count_execution()
    return _result("svc-ok", scale)


def _svc_ok2(scale: float) -> ExperimentResult:
    count_execution()
    return _result("svc-ok2", scale)


def _svc_bad(scale: float) -> ExperimentResult:
    count_execution()
    raise RuntimeError("injected failure")


def _svc_crash(scale: float) -> ExperimentResult:
    """Hard-kill the worker on every attempt (breaker fodder)."""
    count_execution()
    os._exit(97)


def _svc_crash_once(scale: float) -> ExperimentResult:
    """Kill the worker on the first attempt only; retries succeed."""
    count_execution()
    marker = Path(os.environ[MARKER_ENV])
    if not marker.exists():
        marker.write_text("seen")
        os._exit(97)
    return _result("svc-crash-once", scale)


def _svc_sleep(scale: float) -> ExperimentResult:
    import time
    time.sleep(30.0)
    return _result("svc-sleep", scale)


@pytest.fixture()
def chaos_registry(monkeypatch, tmp_path):
    for name, fn in [("svc-ok", _svc_ok), ("svc-ok2", _svc_ok2),
                     ("svc-bad", _svc_bad), ("svc-crash", _svc_crash),
                     ("svc-crash-once", _svc_crash_once),
                     ("svc-sleep", _svc_sleep)]:
        monkeypatch.setitem(registry.EXPERIMENTS, name, fn)
    monkeypatch.setenv(MARKER_ENV, str(tmp_path / "marker"))
    monkeypatch.setenv(COUNTER_ENV, str(tmp_path / "executions"))
    return tmp_path


@pytest.fixture()
def service_cache(tmp_path, monkeypatch):
    """A private result-cache directory per test (the session-scoped
    hermetic cache is shared; coalescing tests need isolation)."""
    target = tmp_path / "svc-cache"
    monkeypatch.setenv("HBMSIM_CACHE_DIR", str(target))
    monkeypatch.delenv("HBMSIM_NO_CACHE", raising=False)
    return target


def run_async(coroutine):
    """Drive one service scenario to completion on a fresh loop."""
    return asyncio.run(coroutine)
