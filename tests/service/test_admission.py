"""Admission-gate tests: every malformed request is rejected with a
typed, field-naming AdmissionError before any worker is involved."""

import pytest

from repro.errors import AdmissionError
from repro.service.admission import MAX_PROGRAM_BYTES, AdmissionGate
from repro.service.requests import DEFAULT_TENANT, ExperimentRequest

GOOD_PROGRAM = """
ACT 0 0 0 100
PRE 0 0 0
"""

# Double activation without an intervening PRE: rule P001, severity
# error — the strict gate must reject it.
BAD_PROGRAM = """
ACT 0 0 0 100
ACT 0 0 0 101
"""


@pytest.fixture
def gate():
    return AdmissionGate()


class TestStructure:
    def test_minimal_request_admits_with_defaults(self, gate):
        request = gate.admit({"experiment_id": "fig05"})
        assert isinstance(request, ExperimentRequest)
        assert request.scale == 1.0
        assert request.tenant == DEFAULT_TENANT
        assert request.fault_plan is None
        assert not request.verify_only

    def test_non_object_payload_rejected(self, gate):
        with pytest.raises(AdmissionError):
            gate.admit(["fig05"])

    def test_unknown_fields_name_the_valid_ones(self, gate):
        with pytest.raises(AdmissionError) as excinfo:
            gate.admit({"experiment_id": "fig05", "sclae": 0.5})
        assert excinfo.value.field == "sclae"
        assert "scale" in str(excinfo.value)  # the valid-field list

    def test_empty_request_rejected(self, gate):
        with pytest.raises(AdmissionError) as excinfo:
            gate.admit({})
        assert excinfo.value.field == "experiment_id"


class TestExperimentId:
    def test_unknown_id_carries_suggestions(self, gate):
        with pytest.raises(AdmissionError) as excinfo:
            gate.admit({"experiment_id": "fig5"})
        assert excinfo.value.field == "experiment_id"
        assert any(s.startswith("fig") for s in excinfo.value.suggestions)

    def test_non_string_id_rejected(self, gate):
        with pytest.raises(AdmissionError):
            gate.admit({"experiment_id": 5})


class TestScale:
    @pytest.mark.parametrize("scale", ["0.5", None, True, float("nan"),
                                       float("inf"), 0, -1, 100.0])
    def test_bad_scales_rejected(self, gate, scale):
        with pytest.raises(AdmissionError) as excinfo:
            gate.admit({"experiment_id": "fig05", "scale": scale})
        assert excinfo.value.field == "scale"

    def test_ceiling_is_configurable(self):
        gate = AdmissionGate(max_scale=0.5)
        with pytest.raises(AdmissionError):
            gate.admit({"experiment_id": "fig05", "scale": 1.0})
        assert gate.admit({"experiment_id": "fig05",
                           "scale": 0.5}).scale == 0.5


class TestTenant:
    def test_tenant_is_stripped(self, gate):
        request = gate.admit({"experiment_id": "fig05",
                              "tenant": "  ci  "})
        assert request.tenant == "ci"

    @pytest.mark.parametrize("tenant", ["", "   ", 7, "x" * 65])
    def test_bad_tenants_rejected(self, gate, tenant):
        with pytest.raises(AdmissionError) as excinfo:
            gate.admit({"experiment_id": "fig05", "tenant": tenant})
        assert excinfo.value.field == "tenant"


class TestFaultPlan:
    def test_valid_plan_admits(self, gate):
        request = gate.admit({"experiment_id": "fig05",
                              "fault_plan": {"seed": 3,
                                             "drop_rate": 0.01}})
        assert request.fault_plan == {"seed": 3, "drop_rate": 0.01}
        assert '"drop_rate": 0.01' in request.plan_spec()

    def test_unknown_plan_field_rejected_with_valid_keys(self, gate):
        with pytest.raises(AdmissionError) as excinfo:
            gate.admit({"experiment_id": "fig05",
                        "fault_plan": {"drop_rat": 0.01}})
        assert excinfo.value.field == "fault_plan"
        assert "drop_rate" in str(excinfo.value)

    def test_bad_plan_shape_rejected(self, gate):
        with pytest.raises(AdmissionError) as excinfo:
            gate.admit({"experiment_id": "fig05",
                        "fault_plan": {"stall_experiments": ["x"]}})
        assert excinfo.value.field == "fault_plan"

    def test_non_object_plan_rejected(self, gate):
        with pytest.raises(AdmissionError):
            gate.admit({"experiment_id": "fig05", "fault_plan": "chaos"})


class TestProgramGate:
    def test_clean_program_admits(self, gate):
        request = gate.admit({"program": GOOD_PROGRAM})
        assert request.verify_only

    def test_program_plus_experiment_is_not_verify_only(self, gate):
        request = gate.admit({"experiment_id": "fig05",
                              "program": GOOD_PROGRAM})
        assert not request.verify_only

    def test_protocol_violation_rejected_with_findings(self, gate):
        with pytest.raises(AdmissionError) as excinfo:
            gate.admit({"program": BAD_PROGRAM})
        assert excinfo.value.field == "program"
        assert excinfo.value.findings
        assert any("P001" in str(f) for f in excinfo.value.findings)

    def test_streaming_gate_stops_at_first_blocking_finding(self, gate):
        # The violation sits before a million-activation hammer; the
        # streaming gate must reject without walking the rest.
        from repro.lint.stream import TimingChecker

        program = BAD_PROGRAM + "LOOP 1000000\n  HAMMER 0 0 1 200 1\n" \
                                "ENDLOOP\n"
        commands = []
        original = TimingChecker.step

        def counting_step(self, command, path):
            commands.append(path)
            original(self, command, path)

        TimingChecker.step = counting_step
        try:
            with pytest.raises(AdmissionError) as excinfo:
                gate.admit({"program": program})
        finally:
            TimingChecker.step = original
        assert excinfo.value.field == "program"
        # Only the two ACTs were walked - never the loop body.
        assert len(commands) == 2

    def test_unassemblable_program_rejected(self, gate):
        with pytest.raises(AdmissionError) as excinfo:
            gate.admit({"program": "FROB 1 2 3"})
        assert excinfo.value.field == "program"

    def test_oversized_program_rejected_unparsed(self, gate):
        huge = "NOP\n" * (MAX_PROGRAM_BYTES // 4 + 1)
        with pytest.raises(AdmissionError) as excinfo:
            gate.admit({"program": huge})
        assert excinfo.value.field == "program"
        assert "bytes" in str(excinfo.value)


class TestCoalescingKey:
    def test_same_request_same_key(self, gate):
        a = gate.admit({"experiment_id": "fig05", "scale": 0.25})
        b = gate.admit({"experiment_id": "fig05", "scale": 0.25,
                        "tenant": "other"})
        # Tenancy routes queues; it must not split the content key.
        assert a.coalescing_key() == b.coalescing_key()

    def test_plan_field_order_does_not_split_key(self, gate):
        a = gate.admit({"experiment_id": "fig05",
                        "fault_plan": {"seed": 1, "drop_rate": 0.1}})
        b = gate.admit({"experiment_id": "fig05",
                        "fault_plan": {"drop_rate": 0.1, "seed": 1}})
        assert a.coalescing_key() == b.coalescing_key()

    @pytest.mark.parametrize("other", [
        {"experiment_id": "fig07"},
        {"experiment_id": "fig05", "scale": 0.5},
        {"experiment_id": "fig05", "shard": "ch0"},
        {"experiment_id": "fig05", "fault_plan": {"seed": 9}},
    ])
    def test_different_work_different_key(self, gate, other):
        base = gate.admit({"experiment_id": "fig05"}).coalescing_key()
        assert gate.admit(other).coalescing_key() != base
