"""Coalescing proof: N concurrent identical requests cost exactly one
execution and return N bit-identical results.

The execution counter is a file appended with O_APPEND from inside the
forked workers (see ``conftest.count_execution``), so it counts *real*
experiment-body executions across processes, not service bookkeeping.
"""

import asyncio
import hashlib
import os

import pytest

from repro.experiments import registry
from repro.service import ExperimentService, ServiceConfig

from tests.service.conftest import (count_execution, executions, needs_fork,
                                    run_async)

pytestmark = needs_fork

# Module level so fork workers inherit it through the patched registry.
_REAL_FIG05 = registry.EXPERIMENTS["fig05"]


def _counted_fig05(scale: float):
    count_execution()
    return _REAL_FIG05(scale)


@pytest.fixture()
def counted_fig05(monkeypatch, tmp_path):
    monkeypatch.setitem(registry.EXPERIMENTS, "fig05", _counted_fig05)
    counter = tmp_path / "fig05-executions"
    monkeypatch.setenv("HBMSIM_TEST_COUNTER", str(counter))
    return counter


def _sha(record) -> str:
    return hashlib.sha256(record.result.text.encode()).hexdigest()[:16]


class TestCoalescingProof:
    def test_16_identical_fig05_requests_run_once(self, counted_fig05,
                                                  service_cache):
        """The acceptance proof: 16 concurrent identical fig05@0.25
        submissions -> one execution, 16 identical reports with the
        repository's golden fig05 sha, 15 cache-hit records."""
        async def scenario():
            service = ExperimentService(ServiceConfig(slots=2))
            await service.start()
            try:
                jobs = [service.submit({"experiment_id": "fig05",
                                        "scale": 0.25,
                                        "tenant": f"t{i % 4}"})
                        for i in range(16)]
                return [await job.wait() for job in jobs]
            finally:
                await service.close()

        records = run_async(scenario())
        assert executions(counted_fig05) == 1
        statuses = sorted(record.status for record in records)
        assert statuses.count("cached") == 15
        assert statuses.count("ok") == 1
        shas = {_sha(record) for record in records}
        assert shas == {"44546c2cd83c30da"}

    def test_followers_share_a_failure_too(self, chaos_registry,
                                           service_cache):
        async def scenario():
            service = ExperimentService(ServiceConfig(
                slots=1, retries=0, use_result_cache=False))
            await service.start()
            try:
                blocker = service.submit({"experiment_id": "svc-sleep"})
                jobs = [service.submit({"experiment_id": "svc-bad"})
                        for _ in range(4)]
                service.cancel(blocker.job_id)
                records = [await job.wait() for job in jobs]
                assert all(r.status == "failed" for r in records)
                assert all(job.exception is not None for job in jobs)
            finally:
                await service.close()

        run_async(scenario())
        assert executions(chaos_registry / "executions") == 1

    def test_cancelled_primary_promotes_a_follower(self, chaos_registry,
                                                   service_cache):
        async def scenario():
            service = ExperimentService(ServiceConfig(slots=1))
            await service.start()
            try:
                blocker = service.submit({"experiment_id": "svc-sleep"})
                primary = service.submit({"experiment_id": "svc-ok"})
                followers = [service.submit({"experiment_id": "svc-ok"})
                             for _ in range(3)]
                assert all(f.coalesced_with == primary.job_id
                           for f in followers)
                assert service.cancel(primary.job_id)
                assert (await primary.wait()).status == "cancelled"
                service.cancel(blocker.job_id)
                records = [await f.wait() for f in followers]
                # The promoted follower executed; the rest coalesced
                # onto it.
                statuses = sorted(r.status for r in records)
                assert statuses == ["cached", "cached", "ok"]
            finally:
                await service.close()

        run_async(scenario())
        assert executions(chaos_registry / "executions") == 1

    def test_different_fault_plans_do_not_coalesce(self, chaos_registry,
                                                   service_cache):
        async def scenario():
            service = ExperimentService(ServiceConfig(slots=1))
            await service.start()
            try:
                plain = service.submit({"experiment_id": "svc-ok"})
                seeded = service.submit({"experiment_id": "svc-ok",
                                         "fault_plan": {"seed": 5}})
                assert seeded.coalesced_with is None
                await plain.wait()
                await seeded.wait()
            finally:
                await service.close()

        run_async(scenario())
        assert executions(chaos_registry / "executions") == 2


class TestPerRequestFaultPlans:
    def test_request_plan_reaches_the_worker(self, chaos_registry,
                                             service_cache, tmp_path):
        """A request-scoped plan crashes the worker for that request
        only; the next (plan-less) request on the same slot is clean."""
        async def scenario():
            service = ExperimentService(ServiceConfig(slots=1,
                                                      retries=0))
            await service.start()
            try:
                chaotic = service.submit({
                    "experiment_id": "svc-ok",
                    "fault_plan": {"crash_once": ["svc-ok"]}})
                record = await chaotic.wait()
                assert record.status == "failed"
                assert "crash" in (record.error or "").lower() \
                    or "exit" in (record.error or "").lower()
                clean = service.submit({"experiment_id": "svc-ok2"})
                assert (await clean.wait()).status == "ok"
            finally:
                await service.close()

        run_async(scenario())

    def test_request_plan_retry_succeeds(self, chaos_registry,
                                         service_cache):
        """crash_once + retries=1: first attempt dies, retry passes —
        the plan is re-installed per attempt deterministically."""
        async def scenario():
            service = ExperimentService(ServiceConfig(slots=1,
                                                      retries=1))
            await service.start()
            try:
                job = service.submit({
                    "experiment_id": "svc-ok",
                    "fault_plan": {"crash_once": ["svc-ok"]}})
                record = await job.wait()
                assert record.status == "retried"
                assert record.attempts == 2
            finally:
                await service.close()

        run_async(scenario())
