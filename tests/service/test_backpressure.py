"""Backpressure and graceful-degradation unit tests: bounded tenant
queues with weighted-fair dequeue, load shedding, and the per-family
circuit breaker state machine."""

import pytest

from repro.errors import CircuitOpenError, OverloadError
from repro.service.breaker import (CLOSED, HALF_OPEN, OPEN, BreakerBoard,
                                   CircuitBreaker, family_of)
from repro.service.queues import QueuePolicy, TenantQueues


class TestQueuePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            QueuePolicy(per_tenant_depth=0)
        with pytest.raises(ValueError):
            QueuePolicy(global_high_water=0)
        with pytest.raises(ValueError):
            QueuePolicy(default_weight=0)
        with pytest.raises(ValueError):
            QueuePolicy(weights={"ci": -1.0})

    def test_weight_lookup(self):
        policy = QueuePolicy(weights={"ci": 2.0}, default_weight=0.5)
        assert policy.weight("ci") == 2.0
        assert policy.weight("adhoc") == 0.5


class TestBounds:
    def test_tenant_bound_sheds_with_hint(self):
        queues = TenantQueues(QueuePolicy(per_tenant_depth=2))
        queues.push("ci", "a")
        queues.push("ci", "b")
        with pytest.raises(OverloadError) as excinfo:
            queues.push("ci", "c", retry_after=7.5)
        error = excinfo.value
        assert error.scope == "tenant"
        assert error.tenant == "ci"
        assert error.depth == 2 and error.limit == 2
        assert error.retry_after == 7.5
        # Another tenant is unaffected by ci's full queue.
        queues.push("dev", "d")

    def test_global_high_water_sheds_everyone(self):
        queues = TenantQueues(QueuePolicy(per_tenant_depth=10,
                                          global_high_water=3))
        for i, tenant in enumerate(["a", "b", "c"]):
            queues.push(tenant, i)
        with pytest.raises(OverloadError) as excinfo:
            queues.push("d", "x")
        assert excinfo.value.scope == "global"

    def test_depth_and_tenants_reporting(self):
        queues = TenantQueues(QueuePolicy())
        queues.push("a", 1)
        queues.push("a", 2)
        queues.push("b", 3)
        assert queues.depth() == 3
        assert queues.depth("a") == 2
        assert queues.depth("nope") == 0
        assert queues.tenants() == {"a": 2, "b": 1}

    def test_remove_releases_the_slot(self):
        queues = TenantQueues(QueuePolicy(per_tenant_depth=1))
        queues.push("a", "job")
        assert queues.remove("a", "job")
        assert not queues.remove("a", "job")
        queues.push("a", "job2")  # slot is free again


class TestWeightedFairness:
    def test_equal_weights_alternate(self):
        queues = TenantQueues(QueuePolicy())
        for i in range(3):
            queues.push("a", f"a{i}")
            queues.push("b", f"b{i}")
        order = [queues.pop()[0] for _ in range(6)]
        assert order.count("a") == 3 and order.count("b") == 3
        # Never two in a row from the same tenant while both have work.
        assert all(x != y for x, y in zip(order, order[1:]))

    def test_weighted_tenant_drains_proportionally(self):
        queues = TenantQueues(QueuePolicy(weights={"heavy": 2.0}))
        for i in range(8):
            queues.push("heavy", f"h{i}")
            queues.push("light", f"l{i}")
        first_six = [queues.pop()[0] for _ in range(6)]
        assert first_six.count("heavy") == 4
        assert first_six.count("light") == 2

    def test_newcomer_cannot_cash_in_idleness(self):
        queues = TenantQueues(QueuePolicy())
        for i in range(4):
            queues.push("old", f"o{i}")
        assert queues.pop()[0] == "old"
        assert queues.pop()[0] == "old"
        # A tenant arriving now starts at the current minimum virtual
        # service, not zero: it must not monopolize the scheduler.
        for i in range(4):
            queues.push("new", f"n{i}")
        order = [queues.pop()[0] for _ in range(4)]
        assert order.count("new") <= 3
        assert "old" in order

    def test_pop_empty_returns_none(self):
        queues = TenantQueues(QueuePolicy())
        assert queues.pop() is None


class TestFamilyOf:
    @pytest.mark.parametrize("experiment_id,family", [
        ("fig05", "fig"), ("fig14", "fig"), ("table2", "table"),
        ("ext-defenses", "ext-defenses"), ("123", "123"),
    ])
    def test_families(self, experiment_id, family):
        assert family_of(experiment_id) == family


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("fig", threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("fig", cooldown=0)

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker("fig", threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.check()
            breaker.record(ok=False)
        assert breaker.state == CLOSED
        breaker.record(ok=False)
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.check()
        assert excinfo.value.family == "fig"
        assert excinfo.value.retry_after == pytest.approx(30.0)

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker("fig", threshold=2, clock=FakeClock())
        breaker.record(ok=False)
        breaker.record(ok=True)
        breaker.record(ok=False)
        assert breaker.state == CLOSED

    def test_cooldown_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker("fig", threshold=1, cooldown=10.0,
                                 clock=clock)
        breaker.record(ok=False)
        assert breaker.state == OPEN
        clock.now += 10.5
        breaker.check()  # this caller becomes the probe
        assert breaker.state == HALF_OPEN
        with pytest.raises(CircuitOpenError):
            breaker.check()  # second request while the probe runs

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker("fig", threshold=1, cooldown=10.0,
                                 clock=clock)
        breaker.record(ok=False)
        clock.now += 11.0
        breaker.check()
        breaker.record(ok=True)
        assert breaker.state == CLOSED
        breaker.check()  # flows freely again

    def test_probe_failure_reopens_for_another_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker("fig", threshold=3, cooldown=10.0,
                                 clock=clock)
        for _ in range(3):
            breaker.record(ok=False)
        clock.now += 11.0
        breaker.check()
        breaker.record(ok=False)  # the probe dies too
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            breaker.check()

    def test_released_probe_frees_the_half_open_slot(self):
        clock = FakeClock()
        breaker = CircuitBreaker("fig", threshold=1, cooldown=10.0,
                                 clock=clock)
        breaker.record(ok=False)
        clock.now += 11.0
        breaker.check()
        breaker.release_probe()
        breaker.check()  # a new probe may now enter


class TestBreakerBoard:
    def test_families_are_independent(self):
        board = BreakerBoard(threshold=1, clock=FakeClock())
        board.record("fig05", ok=False)
        with pytest.raises(CircuitOpenError):
            board.check("fig07")  # same family as fig05
        board.check("table2")  # different family: unaffected

    def test_snapshot(self):
        board = BreakerBoard(threshold=1, clock=FakeClock())
        board.record("fig05", ok=False)
        snapshot = board.snapshot()
        assert snapshot["fig"]["state"] == OPEN
        assert snapshot["fig"]["failures"] == 1
