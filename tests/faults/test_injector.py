"""Tests for the FaultyStack chaos wrapper and its wiring."""

import numpy as np
import pytest

from repro.bender.host import BenderSession
from repro.bender.interpreter import Interpreter
from repro.dram.cell_model import CellPopulation
from repro.dram.device import HBM2Stack, UniformProfileProvider
from repro.dram.geometry import RowAddress
from repro.errors import (HbmSimError, PlatformFaultError,
                          PlatformHangError)
from repro.faults import (FaultPlan, FaultyStack, clear_plan, install_plan,
                          wrap_device)

ROW = RowAddress(0, 0, 0, 100)


def make_device() -> HBM2Stack:
    return HBM2Stack(profile_provider=UniformProfileProvider(
        CellPopulation(f_weak=0.014, mu_weak=5.0)))


def make_faulty(**plan_fields) -> FaultyStack:
    return FaultyStack(make_device(), FaultPlan(**plan_fields))


@pytest.fixture(autouse=True)
def _no_leaked_plan(monkeypatch):
    monkeypatch.delenv("HBMSIM_FAULTS", raising=False)
    clear_plan()
    yield
    clear_plan()


class TestDeterminism:
    PLAN = dict(seed=7, read_flip_rate=0.3, drop_rate=0.1, ghost_rate=0.2,
                act_jitter_rate=0.3, act_jitter_ns=40.0,
                stuck_row_rate=0.3)

    def _drive(self, stack):
        image = np.full(1024, 0x55, dtype=np.uint8)
        reads = []
        for row in range(30):
            address = RowAddress(0, 0, 0, row)
            stack.write_row(address, image)
            reads.append(stack.read_row(address))
        stack.hammer(RowAddress(0, 0, 1, 10), 50)
        stack.refresh(0, 0)
        return reads

    def test_same_seed_same_schedule_and_data(self):
        first = make_faulty(**self.PLAN)
        second = make_faulty(**self.PLAN)
        reads_a = self._drive(first)
        reads_b = self._drive(second)
        assert first.events == second.events
        assert first.schedule_digest() == second.schedule_digest()
        for a, b in zip(reads_a, reads_b):
            assert np.array_equal(a, b)
        assert len(first.events) > 0

    def test_different_seed_different_schedule(self):
        first = make_faulty(**self.PLAN)
        second = make_faulty(**{**self.PLAN, "seed": 8})
        self._drive(first)
        self._drive(second)
        assert first.schedule_digest() != second.schedule_digest()


class TestFaultBehaviours:
    def test_read_flips_are_interface_errors_not_array_errors(self):
        stack = make_faulty(seed=1, read_flip_rate=1.0, read_flip_bits=4)
        image = np.full(1024, 0x55, dtype=np.uint8)
        stack.write_row(ROW, image)
        corrupted = stack.read_row(ROW)
        assert not np.array_equal(corrupted, image)
        # The stored row is pristine: the flip happened on the bus.
        assert np.array_equal(stack.inspect_row(ROW), image)

    def test_stuck_cells_persist_across_reads(self):
        stack = make_faulty(seed=3, stuck_row_rate=1.0,
                            stuck_bits_per_row=8)
        zeros = np.zeros(1024, dtype=np.uint8)
        ones = np.full(1024, 0xFF, dtype=np.uint8)
        stack.write_row(ROW, zeros)
        read_zeros = stack.read_row(ROW)
        stack.write_row(ROW, ones)
        read_ones = stack.read_row(ROW)
        stuck_events = [e for e in stack.events if e.fault == "stuck"]
        assert len(stuck_events) == 2
        assert stuck_events[0].detail == stuck_events[1].detail
        # At least one of the two images shows the pinned bits.
        assert (not np.array_equal(read_zeros, zeros)
                or not np.array_equal(read_ones, ones))

    def test_dropped_write_loses_data(self):
        stack = make_faulty(seed=1, drop_rate=1.0)
        stack.write_row(ROW, np.full(1024, 0xFF, dtype=np.uint8))
        assert not np.any(stack.inspect_row(ROW))

    def test_ghost_refresh_executes_twice(self):
        stack = make_faulty(seed=1, ghost_rate=1.0)
        stack.refresh(0, 0)
        assert stack.stats.refs == 2
        assert [e.fault for e in stack.events] == ["ghost"]

    def test_dropped_wait_freezes_time(self):
        stack = make_faulty(seed=1, drop_rate=1.0)
        stack.wait(1000.0)
        assert stack.now_ns == 0.0

    def test_hang_raises_platform_fault(self):
        stack = make_faulty(seed=1, hang_rate=1.0)
        with pytest.raises(PlatformHangError) as excinfo:
            stack.refresh(0, 0)
        assert isinstance(excinfo.value, PlatformFaultError)
        assert isinstance(excinfo.value, HbmSimError)

    def test_act_jitter_amplifies_hammer_disturbance(self):
        plain = make_device()
        plain.hammer(ROW.neighbor(1), 1000)
        clean_units = plain.accumulated_units(ROW)
        jittered = make_faulty(seed=2, act_jitter_rate=1.0,
                               act_jitter_ns=500.0)
        jittered.hammer(ROW.neighbor(1), 1000)
        assert jittered.accumulated_units(ROW) > clean_units

    def test_fault_free_plan_is_transparent(self):
        device = make_device()
        assert wrap_device(device, None) is device
        assert wrap_device(device, FaultPlan(seed=5)) is device
        # Worker-only knobs must not perturb the device path either.
        assert wrap_device(
            device, FaultPlan(crash_once=("fig05",))) is device

    def test_delegation_exposes_device_surface(self):
        stack = make_faulty(seed=1, read_flip_rate=0.5)
        assert stack.geometry is stack.wrapped.geometry
        assert stack.timings is stack.wrapped.timings
        stack.enable_tracing()
        stack.write_row(ROW, np.zeros(1024, dtype=np.uint8))
        assert stack.trace()  # ring buffer reached through delegation


class TestWiring:
    def test_interpreter_wraps_under_installed_plan(self):
        install_plan(FaultPlan(seed=1, read_flip_rate=0.5))
        interpreter = Interpreter(make_device())
        assert isinstance(interpreter.device, FaultyStack)

    def test_interpreter_unwrapped_without_plan(self):
        device = make_device()
        assert Interpreter(device).device is device

    def test_session_adopts_wrapped_device(self, monkeypatch):
        monkeypatch.setenv("HBMSIM_FAULTS",
                           '{"seed": 2, "drop_rate": 0.1}')
        session = BenderSession(make_device())
        assert isinstance(session.device, FaultyStack)
        assert session.device is session.interpreter.device

    def test_explicit_plan_overrides(self):
        interpreter = Interpreter(
            make_device(), fault_plan=FaultPlan(seed=4, ghost_rate=0.2))
        assert isinstance(interpreter.device, FaultyStack)
        assert interpreter.device.plan.seed == 4

    def test_double_wrap_collapses(self):
        plan = FaultPlan(seed=1, read_flip_rate=0.5)
        inner = make_device()
        once = FaultyStack(inner, plan)
        twice = FaultyStack(once, plan)
        assert twice.wrapped is inner
