"""Property tests for speculative counter replay (PR 10).

Two invariants back the speculative HC_first search:

1. :meth:`FaultPlan.classify_probe_windows` — the vectorized window
   classifier — agrees with a scalar :meth:`FaultyStack._platform` /
   :meth:`FaultyStack._jitter_ns` replay of the same ``WR*w HAMMER*h
   RD`` command windows: same dirty verdicts, same RD counters, for any
   plan and any window layout (including drop/ghost plans — ghosts can
   never fire inside a window, and must not perturb it).

2. The speculative :func:`search_hc_first_rows` lays each row's probe
   path on a virtual counter stream that, after acceptance/replay,
   reproduces the scalar loop's tick sequence exactly — results, fault
   events, final command counter and TRR state all match, for random
   victim sets and plans.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.device import HBM2Stack
from repro.dram.geometry import RowAddress
from repro.faults.injector import FaultyStack
from repro.faults.plan import FaultPlan
from repro.fuzz.search import SearchCase, run_search_case

_rate = st.sampled_from([0.0, 0.05, 0.2, 0.5])
_window = st.tuples(st.integers(min_value=0, max_value=6),
                    st.integers(min_value=0, max_value=3))


def _scalar_window_replay(stack, base, writes, hammers):
    """Replay one probe window through the scalar fault layer.

    Returns ``(dirty, read_index)`` with the same meaning as
    ``classify_probe_windows``: dirty on a stall anywhere, a dropped
    WR, or a jittered HAMMER — read-path faults excluded.
    """
    stack._counter = int(base)
    dirty = False
    for __ in range(writes):
        __, action = stack._platform("WR")
        if action == "drop":
            dirty = True
    for __ in range(hammers):
        index, __ = stack._platform("HAMMER")
        if stack._jitter_ns(index, "HAMMER"):
            dirty = True
    read_index, __ = stack._platform("RD")
    span = range(int(base) + 1, read_index + 1)
    if any(event.fault == "stall" and event.index in span
           for event in stack.events):
        dirty = True
    return dirty, read_index


class TestClassifierAgreesWithScalar:
    @given(seed=st.integers(min_value=0, max_value=2**31),
           drop=_rate, jitter=_rate, stall=_rate, ghost=_rate,
           base=st.integers(min_value=0, max_value=100_000),
           windows=st.lists(_window, min_size=1, max_size=6))
    @settings(max_examples=80, deadline=None)
    def test_dirty_and_read_counters_match(self, seed, drop, jitter,
                                           stall, ghost, base, windows):
        plan = FaultPlan(seed=seed, drop_rate=drop, ghost_rate=ghost,
                         act_jitter_rate=jitter, act_jitter_ns=5.0,
                         stall_rate=stall, stall_seconds=0.0)
        stack = FaultyStack(HBM2Stack(), plan)
        bases, writes, hammers = [], [], []
        cursor = base
        for write_count, hammer_count in windows:
            bases.append(cursor)
            writes.append(write_count)
            hammers.append(hammer_count)
            cursor += write_count + hammer_count + 1
        dirty, read_indices = plan.classify_probe_windows(
            bases, writes, hammers)
        for k in range(len(windows)):
            scalar_dirty, scalar_read = _scalar_window_replay(
                stack, bases[k], writes[k], hammers[k])
            assert bool(dirty[k]) == scalar_dirty, f"window {k}"
            assert int(read_indices[k]) == scalar_read, f"window {k}"

    @given(seed=st.integers(min_value=0, max_value=2**31),
           windows=st.lists(_window, min_size=2, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_windows_classify_independently(self, seed, windows):
        # Virtual streams: a window's verdict depends only on its own
        # (base, shape), never on what else is classified alongside.
        plan = FaultPlan(seed=seed, drop_rate=0.2, act_jitter_rate=0.2,
                         act_jitter_ns=5.0)
        bases = [100 + 40 * k for k in range(len(windows))]
        writes = [w for w, __ in windows]
        hammers = [h for __, h in windows]
        together_dirty, together_reads = plan.classify_probe_windows(
            bases, writes, hammers)
        for k in range(len(windows)):
            alone_dirty, alone_reads = plan.classify_probe_windows(
                [bases[k]], [writes[k]], [hammers[k]])
            assert bool(alone_dirty[0]) == bool(together_dirty[k])
            assert int(alone_reads[0]) == int(together_reads[k])


_victim_rows = st.sampled_from([0, 100, 104, 112, 5000, 16383])


class TestSpeculativeLayoutMatchesScalarTicks:
    @given(seed=st.integers(min_value=0, max_value=1000),
           rows=st.lists(_victim_rows, min_size=1, max_size=3,
                         unique=True),
           drop=st.sampled_from([0.0, 0.01]),
           ghost=st.sampled_from([0.0, 0.05]),
           flip=st.sampled_from([0.0, 0.05]),
           trr=st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_search_rows_equals_scalar_loop(self, seed, rows, drop,
                                            ghost, flip, trr):
        plan = FaultPlan(seed=seed, drop_rate=drop, ghost_rate=ghost,
                        read_flip_rate=flip, act_jitter_rate=0.01,
                        act_jitter_ns=5.0)
        case = SearchCase(seed=seed, index=0,
                          victims=tuple(RowAddress(0, 0, 0, row)
                                        for row in rows),
                          pattern="Checkered0", start=4096,
                          max_hammers=120_000, tolerance=0.01,
                          trr_enabled=trr, fault_plan=plan)
        result = run_search_case(case)
        assert result.ok, result.describe()
