"""Tests for FaultPlan configuration, env parsing, and activation."""

import pytest

from repro.errors import FaultPlanError, HbmSimError
from repro.faults import (FaultPlan, active_plan, clear_plan, install_plan)


@pytest.fixture(autouse=True)
def _no_leaked_plan(monkeypatch):
    monkeypatch.delenv("HBMSIM_FAULTS", raising=False)
    clear_plan()
    yield
    clear_plan()


class TestFaultPlan:
    def test_defaults_are_fault_free(self):
        plan = FaultPlan()
        assert not plan.device_faults_enabled()
        assert not plan.worker_faults_enabled()

    def test_json_roundtrip(self):
        plan = FaultPlan(seed=42, read_flip_rate=0.01, drop_rate=0.002,
                         act_jitter_rate=0.1, act_jitter_ns=25.0,
                         crash_once=("fig05",),
                         stall_experiments={"fig07": 2.5})
        assert FaultPlan.from_json(plan.to_json()) == plan

    @pytest.mark.parametrize("field,value", [
        ("read_flip_rate", 1.5), ("drop_rate", -0.1),
        ("hang_rate", 2.0), ("stuck_row_rate", -1.0),
    ])
    def test_rates_validated(self, field, value):
        with pytest.raises(FaultPlanError):
            FaultPlan(**{field: value})

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json('{"seed": 1, "flux_capacitor": 1}')

    def test_bad_json_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("not json")
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("[1, 2]")

    def test_fault_plan_error_is_hbmsim_error(self):
        with pytest.raises(HbmSimError):
            FaultPlan(read_flip_rate=7.0)

    def test_worker_faults_classification(self):
        assert FaultPlan(crash_once=("fig05",)).worker_faults_enabled()
        assert FaultPlan(
            stall_experiments={"fig07": 1.0}).worker_faults_enabled()
        assert not FaultPlan(
            crash_once=("fig05",)).device_faults_enabled()


class TestActivation:
    def test_no_plan_by_default(self):
        assert active_plan() is None

    def test_env_plan(self, monkeypatch):
        monkeypatch.setenv("HBMSIM_FAULTS",
                           '{"seed": 9, "read_flip_rate": 0.5}')
        plan = active_plan()
        assert plan is not None
        assert plan.seed == 9
        assert plan.read_flip_rate == 0.5

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("HBMSIM_FAULTS", '{"seed": 9}')
        install_plan(FaultPlan(seed=3))
        assert active_plan().seed == 3
        clear_plan()
        assert active_plan().seed == 9

    def test_env_cache_tracks_changes(self, monkeypatch):
        monkeypatch.setenv("HBMSIM_FAULTS", '{"seed": 1}')
        assert active_plan().seed == 1
        monkeypatch.setenv("HBMSIM_FAULTS", '{"seed": 2}')
        assert active_plan().seed == 2
        monkeypatch.delenv("HBMSIM_FAULTS")
        assert active_plan() is None

    def test_install_rejects_non_plan(self):
        with pytest.raises(FaultPlanError):
            install_plan({"seed": 1})
