"""Tests for FaultPlan configuration, env parsing, and activation."""

import pytest

from repro.errors import FaultPlanError, HbmSimError
from repro.faults import (FaultPlan, active_plan, clear_plan, install_plan)


@pytest.fixture(autouse=True)
def _no_leaked_plan(monkeypatch):
    monkeypatch.delenv("HBMSIM_FAULTS", raising=False)
    clear_plan()
    yield
    clear_plan()


class TestFaultPlan:
    def test_defaults_are_fault_free(self):
        plan = FaultPlan()
        assert not plan.device_faults_enabled()
        assert not plan.worker_faults_enabled()

    def test_json_roundtrip(self):
        plan = FaultPlan(seed=42, read_flip_rate=0.01, drop_rate=0.002,
                         act_jitter_rate=0.1, act_jitter_ns=25.0,
                         crash_once=("fig05",),
                         stall_experiments={"fig07": 2.5})
        assert FaultPlan.from_json(plan.to_json()) == plan

    @pytest.mark.parametrize("field,value", [
        ("read_flip_rate", 1.5), ("drop_rate", -0.1),
        ("hang_rate", 2.0), ("stuck_row_rate", -1.0),
    ])
    def test_rates_validated(self, field, value):
        with pytest.raises(FaultPlanError):
            FaultPlan(**{field: value})

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json('{"seed": 1, "flux_capacitor": 1}')

    def test_bad_json_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("not json")
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("[1, 2]")

    def test_fault_plan_error_is_hbmsim_error(self):
        with pytest.raises(HbmSimError):
            FaultPlan(read_flip_rate=7.0)

    def test_worker_faults_classification(self):
        assert FaultPlan(crash_once=("fig05",)).worker_faults_enabled()
        assert FaultPlan(
            stall_experiments={"fig07": 1.0}).worker_faults_enabled()
        assert not FaultPlan(
            crash_once=("fig05",)).device_faults_enabled()


class TestActivation:
    def test_no_plan_by_default(self):
        assert active_plan() is None

    def test_env_plan(self, monkeypatch):
        monkeypatch.setenv("HBMSIM_FAULTS",
                           '{"seed": 9, "read_flip_rate": 0.5}')
        plan = active_plan()
        assert plan is not None
        assert plan.seed == 9
        assert plan.read_flip_rate == 0.5

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("HBMSIM_FAULTS", '{"seed": 9}')
        install_plan(FaultPlan(seed=3))
        assert active_plan().seed == 3
        clear_plan()
        assert active_plan().seed == 9

    def test_env_cache_tracks_changes(self, monkeypatch):
        monkeypatch.setenv("HBMSIM_FAULTS", '{"seed": 1}')
        assert active_plan().seed == 1
        monkeypatch.setenv("HBMSIM_FAULTS", '{"seed": 2}')
        assert active_plan().seed == 2
        monkeypatch.delenv("HBMSIM_FAULTS")
        assert active_plan() is None

    def test_install_rejects_non_plan(self):
        with pytest.raises(FaultPlanError):
            install_plan({"seed": 1})


class TestVectorizedSamplers:
    """The array samplers must reproduce the scalar draws bit-for-bit:
    the compiled executor classifies thousands of future command slots
    with them and any divergence silently changes the fault schedule."""

    PLAN = FaultPlan(seed=1234, drop_rate=0.05, ghost_rate=0.03,
                     act_jitter_rate=0.1, act_jitter_ns=6.0,
                     read_flip_rate=0.2, read_flip_bits=2,
                     stuck_row_rate=0.15, stall_rate=0.04,
                     hang_rate=0.02)

    def test_rate_masks_match_scalar_draws(self):
        import numpy as np

        from repro.faults.plan import (TAG_DROP, TAG_GHOST, TAG_HANG,
                                       TAG_RDFLIP, TAG_STALL)

        plan = self.PLAN
        indices = np.arange(1, 4001, dtype=np.int64)
        for mask_name, tag, rate in (
                ("stall_mask", TAG_STALL, plan.stall_rate),
                ("hang_mask", TAG_HANG, plan.hang_rate),
                ("drop_mask", TAG_DROP, plan.drop_rate),
                ("ghost_mask", TAG_GHOST, plan.ghost_rate),
                ("draw_bitflips_array", TAG_RDFLIP, plan.read_flip_rate)):
            mask = getattr(plan, mask_name)(indices)
            scalar = [plan.sampler_hits(int(i), tag, rate)
                      for i in indices]
            assert mask.tolist() == scalar, mask_name

    def test_zero_rate_masks_are_all_false(self):
        import numpy as np

        plan = FaultPlan(seed=9)
        indices = np.arange(1, 101, dtype=np.int64)
        assert not plan.stall_mask(indices).any()
        assert not plan.drop_mask(indices).any()
        hits, magnitudes = plan.draw_jitter_array(indices)
        assert not hits.any() and not magnitudes.any()

    def test_jitter_array_matches_scalar_jitter(self):
        import numpy as np

        from repro.dram.seeding import uniform_for
        from repro.faults.plan import TAG_JITTER

        plan = self.PLAN
        indices = np.arange(1, 2001, dtype=np.int64)
        hits, magnitudes = plan.draw_jitter_array(indices)
        for position, index in enumerate(indices):
            draw = uniform_for(plan.seed, TAG_JITTER, int(index))
            expected_hit = draw < plan.act_jitter_rate
            assert bool(hits[position]) == expected_hit
            if expected_hit:
                fraction = uniform_for(plan.seed, TAG_JITTER,
                                       int(index), 1)
                assert magnitudes[position] \
                    == plan.act_jitter_ns * fraction
            else:
                assert magnitudes[position] == 0.0

    def test_stuck_row_mask_matches_scalar_chain(self):
        import numpy as np

        from repro.dram.seeding import uniform_for
        from repro.faults.plan import TAG_STUCK

        plan = self.PLAN
        channels = np.repeat(np.arange(4), 25)
        pcs = np.tile(np.repeat(np.arange(2), 5), 10)
        banks = np.tile(np.arange(5), 20)
        rows = np.arange(100) * 37 % 1000
        mask = plan.stuck_row_mask(channels, pcs, banks, rows)
        for k in range(100):
            draw = uniform_for(plan.seed, TAG_STUCK, int(channels[k]),
                               int(pcs[k]), int(banks[k]), int(rows[k]))
            assert bool(mask[k]) == (draw < plan.stuck_row_rate)


class TestParseDiagnostics:
    """Satellite: parse failures must name the offending key path and
    the valid keys — HBMSIM_FAULTS typos should explain themselves."""

    def test_unknown_field_lists_valid_keys(self):
        with pytest.raises(FaultPlanError) as excinfo:
            FaultPlan.from_dict({"drop_rat": 0.01})
        message = str(excinfo.value)
        assert "drop_rat" in message
        assert "valid fields" in message
        assert "drop_rate" in message and "crash_once" in message

    def test_non_numeric_rate_names_the_field(self):
        with pytest.raises(FaultPlanError) as excinfo:
            FaultPlan.from_dict({"drop_rate": "high"})
        assert "drop_rate" in str(excinfo.value)
        assert "'high'" in str(excinfo.value)

    @pytest.mark.parametrize("value", [True, 1.5, "7"])
    def test_integral_fields_reject_non_integers(self, value):
        with pytest.raises(FaultPlanError) as excinfo:
            FaultPlan.from_dict({"seed": value})
        assert "seed" in str(excinfo.value)

    def test_bool_is_not_a_rate(self):
        with pytest.raises(FaultPlanError) as excinfo:
            FaultPlan.from_dict({"stall_rate": True})
        assert "stall_rate" in str(excinfo.value)

    @pytest.mark.parametrize("value", ["fig05", {"fig05": 1}, 3])
    def test_crash_once_must_be_a_list_of_ids(self, value):
        # A plain string used to silently become a tuple of characters.
        with pytest.raises(FaultPlanError) as excinfo:
            FaultPlan.from_dict({"crash_once": value})
        assert "crash_once" in str(excinfo.value)

    def test_crash_once_element_path_in_message(self):
        with pytest.raises(FaultPlanError) as excinfo:
            FaultPlan.from_dict({"crash_once": ["fig05", 7]})
        assert "crash_once[1]" in str(excinfo.value)

    @pytest.mark.parametrize("value", [["x"], "fig05: 1", 3])
    def test_stall_experiments_must_be_a_mapping(self, value):
        # A list used to escape as a bare ValueError from dict().
        with pytest.raises(FaultPlanError) as excinfo:
            FaultPlan.from_dict({"stall_experiments": value})
        assert "stall_experiments" in str(excinfo.value)

    def test_stall_experiments_value_path_in_message(self):
        with pytest.raises(FaultPlanError) as excinfo:
            FaultPlan.from_dict(
                {"stall_experiments": {"fig05": "long"}})
        assert "stall_experiments.fig05" in str(excinfo.value)
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"stall_experiments": {"fig05": -1}})

    def test_from_json_wraps_everything_as_fault_plan_error(self):
        for text in ('{"stall_experiments": ["x"]}',
                     '{"crash_once": "fig05"}',
                     '{"seed": 1.5}', '"just a string"'):
            with pytest.raises(FaultPlanError):
                FaultPlan.from_json(text)

    def test_valid_plan_still_parses(self):
        plan = FaultPlan.from_dict({
            "seed": 9, "drop_rate": 0.5,
            "crash_once": ["fig05"],
            "stall_experiments": {"fig07": 1.5}})
        assert plan.seed == 9
        assert plan.crash_once == ("fig05",)
        assert plan.stall_experiments == {"fig07": 1.5}
