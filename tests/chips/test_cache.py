"""Tests for the cross-process calibration cache (bit-identity)."""

import json

import pytest

from repro.chips import cache
from repro.chips.profiles import CHIP_SPECS, ChipProfile
from repro.dram.geometry import DEFAULT_GEOMETRY

SPEC = CHIP_SPECS[1]
GEOMETRY = DEFAULT_GEOMETRY


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """An isolated, empty cache directory for one test."""
    target = tmp_path / "hbmsim-cache"
    monkeypatch.setenv("HBMSIM_CACHE_DIR", str(target))
    monkeypatch.delenv("HBMSIM_NO_CACHE", raising=False)
    return target


class TestResolution:
    def test_env_override(self, cache_dir):
        assert cache.cache_dir() == cache_dir

    def test_xdg_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv("HBMSIM_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert cache.cache_dir() == tmp_path / "hbmsim"

    def test_home_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv("HBMSIM_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        monkeypatch.setenv("HOME", str(tmp_path))
        assert cache.cache_dir() == tmp_path / ".cache" / "hbmsim"

    @pytest.mark.parametrize("value", ["1", "true", "yes"])
    def test_disable_env(self, cache_dir, monkeypatch, value):
        monkeypatch.setenv("HBMSIM_NO_CACHE", value)
        assert not cache.cache_enabled()
        assert cache.load_base_f_weak(SPEC, GEOMETRY) is None
        assert not cache.store_base_f_weak(SPEC, GEOMETRY, 0.5)


class TestRoundtrip:
    def test_store_then_load_bit_identical(self, cache_dir):
        # A value with a full 53-bit mantissa must round-trip exactly.
        value = 0.018926721607334364
        assert cache.store_base_f_weak(SPEC, GEOMETRY, value)
        loaded = cache.load_base_f_weak(SPEC, GEOMETRY)
        assert loaded == value
        assert loaded.hex() == value.hex()

    def test_miss_on_empty_cache(self, cache_dir):
        assert cache.load_base_f_weak(SPEC, GEOMETRY) is None

    def test_corrupt_entry_is_a_miss(self, cache_dir):
        cache.store_base_f_weak(SPEC, GEOMETRY, 0.25)
        entry = next(cache_dir.glob("fweak-*.json"))
        entry.write_text("{not json")
        assert cache.load_base_f_weak(SPEC, GEOMETRY) is None

    def test_entry_payload_is_self_describing(self, cache_dir):
        cache.store_base_f_weak(SPEC, GEOMETRY, 0.25)
        payload = json.loads(next(cache_dir.glob("fweak-*.json"))
                             .read_text())
        assert payload["chip"] == SPEC.label
        assert payload["fingerprint"]["spec"]["seed"] == SPEC.seed

    def test_unwritable_directory_returns_false(self, tmp_path,
                                                monkeypatch):
        blocker = tmp_path / "file"
        blocker.write_text("")
        monkeypatch.setenv("HBMSIM_CACHE_DIR", str(blocker / "sub"))
        assert not cache.store_base_f_weak(SPEC, GEOMETRY, 0.25)


class TestInvalidation:
    def test_key_differs_per_spec(self):
        keys = {cache.cache_key(spec, GEOMETRY) for spec in CHIP_SPECS}
        assert len(keys) == len(CHIP_SPECS)

    def test_key_tracks_calibration_version(self, monkeypatch):
        from repro.chips import profiles

        before = cache.cache_key(SPEC, GEOMETRY)
        monkeypatch.setattr(profiles, "CALIBRATION_VERSION",
                            profiles.CALIBRATION_VERSION + 1)
        assert cache.cache_key(SPEC, GEOMETRY) != before


class TestProfileIntegration:
    def test_cached_profile_bit_identical_to_fresh(self, cache_dir):
        cold = ChipProfile(SPEC)          # calibrates, then stores
        warm = ChipProfile(SPEC)          # must hit the cache
        fresh = ChipProfile(SPEC, use_cache=False)
        assert cold.base_f_weak == warm.base_f_weak == fresh.base_f_weak
        assert list(cache_dir.glob("fweak-*.json"))

    def test_use_cache_false_does_not_write(self, cache_dir):
        ChipProfile(SPEC, use_cache=False)
        assert not cache_dir.exists() \
            or not list(cache_dir.glob("fweak-*.json"))

    def test_poisoned_entry_detected_as_different_value(self, cache_dir):
        """The cache is trusted for speed; this documents that a cached
        value is used verbatim — which is why the key covers every input
        of the calibration."""
        fresh = ChipProfile(SPEC, use_cache=False)
        cache.store_base_f_weak(SPEC, GEOMETRY, 0.5)
        poisoned = ChipProfile(SPEC)
        assert poisoned.base_f_weak == 0.5
        assert fresh.base_f_weak != 0.5
