"""Concurrent-access robustness for the calibration cache (satellite:
a corrupt or mid-write entry must read as a miss, never crash)."""

import json
import multiprocessing

import pytest

from repro.chips import cache
from repro.chips.profiles import CHIP_SPECS
from repro.dram.geometry import DEFAULT_GEOMETRY

SPEC = CHIP_SPECS[1]
GEOMETRY = DEFAULT_GEOMETRY

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="concurrent writers use the fork start method")


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    target = tmp_path / "hbmsim-cache"
    monkeypatch.setenv("HBMSIM_CACHE_DIR", str(target))
    monkeypatch.delenv("HBMSIM_NO_CACHE", raising=False)
    return target


def _entry_path():
    return cache._entry_path(cache.cache_key(SPEC, GEOMETRY))


class TestCorruptEntries:
    @pytest.mark.parametrize("payload", [
        "",                      # zero-length: writer crashed pre-flush
        "{\"base_f_weak",        # truncated mid-write
        "not json at all",
        "[1, 2, 3]",             # wrong shape
        "{\"base_f_weak_hex\": 12}",  # wrong type
    ])
    def test_corrupt_entry_reads_as_miss(self, cache_dir, payload):
        cache_dir.mkdir(parents=True)
        _entry_path().write_text(payload)
        assert cache.load_base_f_weak(SPEC, GEOMETRY) is None

    def test_store_recovers_corrupt_entry(self, cache_dir):
        cache_dir.mkdir(parents=True)
        _entry_path().write_text("garbage")
        assert cache.store_base_f_weak(SPEC, GEOMETRY, 0.0145)
        assert cache.load_base_f_weak(SPEC, GEOMETRY) == 0.0145


def _writer_loop(value: float, iterations: int) -> None:
    for _ in range(iterations):
        assert cache.store_base_f_weak(SPEC, GEOMETRY, value)


@needs_fork
def test_reads_under_concurrent_writer_never_crash(cache_dir):
    """Atomic-rename stores mean a reader sees either a complete old
    value, a complete new value, or a miss — never an exception."""
    context = multiprocessing.get_context("fork")
    writer = context.Process(target=_writer_loop, args=(0.0145, 300))
    writer.start()
    try:
        observed = set()
        for _ in range(2000):
            observed.add(cache.load_base_f_weak(SPEC, GEOMETRY))
    finally:
        writer.join(timeout=60)
    assert writer.exitcode == 0
    assert observed <= {None, 0.0145}
    assert 0.0145 in observed
    # No stray temp files leak into the cache directory.
    leftovers = [p for p in cache_dir.iterdir()
                 if p.suffix == ".tmp"]
    assert leftovers == []


# ----------------------------------------------------------------------
# Whole-experiment result cache (service-layer coalescing substrate)
# ----------------------------------------------------------------------

def _sample_result(text: str = "report"):
    from repro.experiments.base import ExperimentResult
    return ExperimentResult(experiment_id="fig05", title="fig05",
                            text=text, data={"hc_first": [1, 2, 3]})


def _result_writer_loop(key: str, iterations: int) -> None:
    result = _sample_result()
    for _ in range(iterations):
        assert cache.store_experiment_result(key, result)


class TestExperimentResultCache:
    def test_roundtrip_preserves_the_result(self, cache_dir):
        key = cache.experiment_key("fig05", 0.25)
        assert cache.load_experiment_result(key) is None
        stored = _sample_result()
        assert cache.store_experiment_result(key, stored)
        loaded = cache.load_experiment_result(key)
        assert loaded.text == stored.text
        assert loaded.data == stored.data

    def test_key_covers_every_run_input(self, cache_dir):
        base = cache.experiment_key("fig05", 0.25)
        assert cache.experiment_key("fig05", 0.25) == base
        assert cache.experiment_key("fig07", 0.25) != base
        assert cache.experiment_key("fig05", 0.5) != base
        assert cache.experiment_key("fig05", 0.25,
                                    {"shard": "ch0"}) != base

    @pytest.mark.parametrize("payload", [
        b"", b"\x80\x04garbage", b"not a pickle at all"])
    def test_corrupt_result_reads_as_miss(self, cache_dir, payload):
        key = cache.experiment_key("fig05", 0.25)
        cache_dir.mkdir(parents=True, exist_ok=True)
        cache._result_path(key).write_bytes(payload)
        assert cache.load_experiment_result(key) is None
        # And store recovers the slot.
        assert cache.store_experiment_result(key, _sample_result())
        assert cache.load_experiment_result(key) is not None

    def test_wrong_object_type_reads_as_miss(self, cache_dir):
        import pickle
        key = cache.experiment_key("fig05", 0.25)
        cache_dir.mkdir(parents=True, exist_ok=True)
        cache._result_path(key).write_bytes(
            pickle.dumps({"not": "a result"}))
        assert cache.load_experiment_result(key) is None

    def test_disabled_cache_stores_and_loads_nothing(self, cache_dir,
                                                     monkeypatch):
        monkeypatch.setenv("HBMSIM_NO_CACHE", "1")
        key = cache.experiment_key("fig05", 0.25)
        assert not cache.store_experiment_result(key, _sample_result())
        assert cache.load_experiment_result(key) is None

    @needs_fork
    def test_reads_under_concurrent_result_writer_never_crash(
            self, cache_dir):
        """The coalescing cache's concurrency contract: a reader sees
        a complete result or a miss, never a torn pickle."""
        key = cache.experiment_key("fig05", 0.25)
        context = multiprocessing.get_context("fork")
        writer = context.Process(target=_result_writer_loop,
                                 args=(key, 200))
        writer.start()
        try:
            outcomes = set()
            for _ in range(1000):
                loaded = cache.load_experiment_result(key)
                outcomes.add(None if loaded is None else loaded.text)
        finally:
            writer.join(timeout=60)
        assert writer.exitcode == 0
        assert outcomes <= {None, "report"}
        assert "report" in outcomes
        leftovers = [p for p in cache_dir.iterdir()
                     if p.suffix == ".tmp"]
        assert leftovers == []
