"""Concurrent-access robustness for the calibration cache (satellite:
a corrupt or mid-write entry must read as a miss, never crash)."""

import json
import multiprocessing

import pytest

from repro.chips import cache
from repro.chips.profiles import CHIP_SPECS
from repro.dram.geometry import DEFAULT_GEOMETRY

SPEC = CHIP_SPECS[1]
GEOMETRY = DEFAULT_GEOMETRY

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="concurrent writers use the fork start method")


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    target = tmp_path / "hbmsim-cache"
    monkeypatch.setenv("HBMSIM_CACHE_DIR", str(target))
    monkeypatch.delenv("HBMSIM_NO_CACHE", raising=False)
    return target


def _entry_path():
    return cache._entry_path(cache.cache_key(SPEC, GEOMETRY))


class TestCorruptEntries:
    @pytest.mark.parametrize("payload", [
        "",                      # zero-length: writer crashed pre-flush
        "{\"base_f_weak",        # truncated mid-write
        "not json at all",
        "[1, 2, 3]",             # wrong shape
        "{\"base_f_weak_hex\": 12}",  # wrong type
    ])
    def test_corrupt_entry_reads_as_miss(self, cache_dir, payload):
        cache_dir.mkdir(parents=True)
        _entry_path().write_text(payload)
        assert cache.load_base_f_weak(SPEC, GEOMETRY) is None

    def test_store_recovers_corrupt_entry(self, cache_dir):
        cache_dir.mkdir(parents=True)
        _entry_path().write_text("garbage")
        assert cache.store_base_f_weak(SPEC, GEOMETRY, 0.0145)
        assert cache.load_base_f_weak(SPEC, GEOMETRY) == 0.0145


def _writer_loop(value: float, iterations: int) -> None:
    for _ in range(iterations):
        assert cache.store_base_f_weak(SPEC, GEOMETRY, value)


@needs_fork
def test_reads_under_concurrent_writer_never_crash(cache_dir):
    """Atomic-rename stores mean a reader sees either a complete old
    value, a complete new value, or a miss — never an exception."""
    context = multiprocessing.get_context("fork")
    writer = context.Process(target=_writer_loop, args=(0.0145, 300))
    writer.start()
    try:
        observed = set()
        for _ in range(2000):
            observed.add(cache.load_base_f_weak(SPEC, GEOMETRY))
    finally:
        writer.join(timeout=60)
    assert writer.exitcode == 0
    assert observed <= {None, 0.0145}
    assert 0.0145 in observed
    # No stray temp files leak into the cache directory.
    leftovers = [p for p in cache_dir.iterdir()
                 if p.suffix == ".tmp"]
    assert leftovers == []
