"""Tests for the calibrated chip profiles."""

import numpy as np
import pytest

from repro.chips.profiles import (CHIP_SPECS, all_chips, chip_labels,
                                  make_chip)
from repro.dram.geometry import RowAddress


class TestTable3:
    def test_six_chips(self):
        assert len(CHIP_SPECS) == 6

    def test_chip0_on_bittware(self):
        assert chip_labels()["Chip 0"] == "Bittware XUPVVH"

    def test_chips_1_to_5_on_alveo(self):
        labels = chip_labels()
        for index in range(1, 6):
            assert labels[f"Chip {index}"] == "AMD Xilinx Alveo U50"

    def test_only_chip0_has_trr(self):
        assert CHIP_SPECS[0].has_undocumented_trr
        assert not any(spec.has_undocumented_trr
                       for spec in CHIP_SPECS[1:])

    def test_only_chip0_temperature_controlled(self):
        assert CHIP_SPECS[0].temperature_controlled
        assert CHIP_SPECS[0].nominal_temperature_c == 82.0
        assert not any(spec.temperature_controlled
                       for spec in CHIP_SPECS[1:])

    def test_make_chip_cached(self):
        assert make_chip(0) is make_chip(0)

    def test_bad_index_rejected(self):
        with pytest.raises(ValueError):
            make_chip(6)


class TestCalibration:
    def test_base_f_weak_reasonable(self, chips):
        for chip in chips:
            assert 0.002 < chip.base_f_weak < 0.06

    def test_chip5_least_vulnerable_by_f_weak(self, chips):
        """Chip 5 has the smallest weak-cell fraction (lowest mean BER)."""
        assert chips[5].base_f_weak == min(c.base_f_weak for c in chips)
        assert chips[0].base_f_weak > chips[5].base_f_weak * 1.4

    def test_mean_ber_hits_target(self, chip0):
        """The Monte-Carlo refinement lands the chip mean on spec."""
        from repro.chips.vectorized import population_grid

        rng = np.random.default_rng(0)
        bers = []
        for channel in range(8):
            rows = rng.integers(0, 16384, 60)
            bank = int(rng.integers(0, 16))
            grid = population_grid(chip0, channel, 0, bank,
                                   np.sort(rows), "Checkered0")
            bers.append(grid.ber(512_000))
        measured = float(np.concatenate(bers).mean())
        assert measured == pytest.approx(chip0.spec.mean_ber_target,
                                         rel=0.15)


class TestSpatialFactors:
    def test_channel_factors_mean_one(self, chip0):
        factors = [chip0.channel_ber_factor(ch) for ch in range(8)]
        assert np.mean(factors) == pytest.approx(1.0, rel=0.05)

    def test_chip0_ch7_over_ch3_near_paper(self, chip0):
        """Obsv. 8: CH7 has ~1.99x the mean BER of CH3 in Chip 0.  The
        raw factor ratio is larger because the per-row BER cap compresses
        the worst channel's realized mean (the fig06 experiment lands the
        measured ratio near 1.9)."""
        ratio = chip0.channel_ber_factor(7) / chip0.channel_ber_factor(3)
        assert 1.9 < ratio < 3.2

    def test_die_pairs_share_factors(self, chip0):
        """Paired channels differ only by small intra-pair jitter, far
        less than the up-to-2x spread across dies."""
        for a, b in ((0, 7), (1, 6), (2, 5), (3, 4)):
            ratio = chip0.channel_ber_factor(a) / chip0.channel_ber_factor(b)
            assert 0.75 < ratio < 1.33

    def test_channel_hc_anticorrelates_with_ber(self, chip0):
        """Obsv. 12: vulnerable channels have smaller HC_first."""
        bers = [chip0.channel_ber_factor(ch) for ch in range(8)]
        hcs = [chip0.channel_hc_factor(ch) for ch in range(8)]
        correlation = np.corrcoef(bers, hcs)[0, 1]
        assert correlation < -0.8

    def test_resilient_subarrays(self, chip0):
        layout = chip0.geometry.subarrays
        for subarray in (layout.middle_subarray, layout.last_subarray):
            ber, hc = chip0.subarray_factors(subarray)
            assert ber == pytest.approx(0.30)
            assert hc == pytest.approx(1.30)

    def test_normal_subarrays_near_one(self, chip0):
        layout = chip0.geometry.subarrays
        resilient = {layout.middle_subarray, layout.last_subarray}
        for subarray in range(layout.count):
            if subarray in resilient:
                continue
            ber, __ = chip0.subarray_factors(subarray)
            assert 0.6 < ber < 1.6

    def test_row_position_peaks_mid_subarray(self, chip0):
        """Obsv. 14: BER higher mid-subarray, lower at the edges."""
        mid = chip0.row_position_ber_factor(416, 832)
        edge = chip0.row_position_ber_factor(0, 832)
        assert mid > edge
        assert mid == pytest.approx(1.25, rel=0.01)
        assert edge < 0.8

    def test_row_position_rejects_bad_offset(self, chip0):
        with pytest.raises(ValueError):
            chip0.row_position_ber_factor(832, 832)

    def test_bank_groups_bimodal(self, chip0):
        groups = [chip0.bank_group(ch, pc, bank)
                  for ch, pc, bank in chip0.geometry.iter_banks()]
        counts = np.bincount(groups, minlength=2)
        assert counts[0] > 60 and counts[1] > 60

    def test_bank_factors_follow_group(self, chip0):
        ber, sigma = chip0.bank_factors(0, 0, 0)
        assert (ber, sigma) in ((1.18, 0.14), (0.78, 0.34))

    def test_pattern_factors_checkered_strongest(self, chip0):
        checkered, __ = chip0.pattern_factors("Checkered0", 0)
        rowstripe, __ = chip0.pattern_factors("Rowstripe0", 0)
        assert checkered > rowstripe

    def test_pattern_polarity_differentiates_rowstripes(self, chip0):
        """Obsv. 13: Rowstripe0 and Rowstripe1 differ per channel."""
        ratios = []
        for channel in range(8):
            __, hc0 = chip0.pattern_factors("Rowstripe0", channel)
            __, hc1 = chip0.pattern_factors("Rowstripe1", channel)
            ratios.append(hc0 / hc1)
        assert max(ratios) > 1.05 or min(ratios) < 0.95


class TestCellPopulations:
    def test_deterministic(self, chip0, sample_address):
        a = chip0.cell_population(sample_address, "Checkered0")
        b = chip0.cell_population(sample_address, "Checkered0")
        assert a == b

    def test_pattern_changes_population(self, chip0, sample_address):
        a = chip0.cell_population(sample_address, "Checkered0")
        b = chip0.cell_population(sample_address, "Rowstripe0")
        assert a != b

    def test_rows_differ(self, chip0):
        a = chip0.cell_population(RowAddress(0, 0, 0, 100), "Checkered0")
        b = chip0.cell_population(RowAddress(0, 0, 0, 101), "Checkered0")
        assert a != b

    def test_f_weak_within_bounds(self, chip0):
        rng = np.random.default_rng(1)
        cap = 2.4 * chip0.base_f_weak
        for __ in range(50):
            address = RowAddress(int(rng.integers(0, 8)),
                                 int(rng.integers(0, 2)),
                                 int(rng.integers(0, 16)),
                                 int(rng.integers(0, 16384)))
            population = chip0.cell_population(address, "Checkered0")
            assert 0.002 <= population.f_weak <= cap + 1e-12

    def test_profile_seed_unique_per_row(self, chip0):
        seeds = {chip0.profile(RowAddress(0, 0, 0, row), "Checkered0").seed
                 for row in range(100)}
        assert len(seeds) == 100


class TestDeviceConstruction:
    def test_make_device_installs_provider(self, chip0):
        device = chip0.make_device()
        assert device.profile_provider is chip0

    def test_make_device_trr_only_chip0(self, chip0, chip5):
        assert chip0.make_device().trr_config.enabled
        assert not chip5.make_device().trr_config.enabled

    def test_make_device_mapping_family(self, chip0):
        device = chip0.make_device()
        assert device.row_mapping.name == chip0.spec.mapping_family

    def test_make_device_without_mapping(self, chip0):
        device = chip0.make_device(with_mapping=False)
        assert device.row_mapping.name == "IdentityMapping"
