"""Tests for the vectorized population grids (scalar/vector identity)."""

import numpy as np
import pytest

from repro.chips.vectorized import population_grid
from repro.dram.geometry import RowAddress

ROWS = np.array([0, 1, 100, 831, 832, 4096, 8191, 8192, 12000, 16383])


class TestScalarVectorIdentity:
    @pytest.mark.parametrize("pattern", ["Checkered0", "Rowstripe1"])
    def test_population_parameters_bit_identical(self, chip0, pattern):
        grid = population_grid(chip0, 7, 1, 3, ROWS, pattern)
        for i, row in enumerate(ROWS):
            address = RowAddress(7, 1, 3, int(row))
            population = chip0.cell_population(address, pattern)
            assert population.f_weak == pytest.approx(
                grid.f_weak[i], abs=1e-14)
            assert population.mu_weak == pytest.approx(
                grid.mu_weak[i], abs=1e-12)
            assert population.sigma_weak == pytest.approx(
                grid.sigma_weak[i], abs=1e-14)
            assert population.mu_strong == pytest.approx(
                grid.mu_strong[i], abs=1e-12)
            assert population.flippable_strong_fraction == pytest.approx(
                grid.flippable[i], abs=1e-14)

    def test_profile_seeds_identical(self, chip0):
        grid = population_grid(chip0, 2, 0, 5, ROWS, "Checkered0")
        for i, row in enumerate(ROWS):
            profile = chip0.profile(RowAddress(2, 0, 5, int(row)),
                                    "Checkered0")
            assert profile.seed == int(grid.profile_seeds[i])

    def test_hc_first_identical(self, chip0):
        grid = population_grid(chip0, 2, 0, 5, ROWS, "Checkered0")
        vector = grid.hc_first()
        for i, row in enumerate(ROWS):
            profile = chip0.profile(RowAddress(2, 0, 5, int(row)),
                                    "Checkered0")
            assert vector[i] == pytest.approx(profile.hc_first(),
                                              rel=1e-9)

    def test_hc_nth_identical(self, chip0):
        grid = population_grid(chip0, 2, 0, 5, ROWS[:4], "Checkered0")
        matrix = grid.hc_nth(10)
        for i, row in enumerate(ROWS[:4]):
            profile = chip0.profile(RowAddress(2, 0, 5, int(row)),
                                    "Checkered0")
            assert np.allclose(matrix[i], profile.hc_nth(10))

    def test_ber_matches_population(self, chip0):
        grid = population_grid(chip0, 2, 0, 5, ROWS, "Checkered0")
        vector = grid.ber(512_000)
        for i, row in enumerate(ROWS):
            population = chip0.cell_population(
                RowAddress(2, 0, 5, int(row)), "Checkered0")
            assert vector[i] == pytest.approx(population.ber(512_000),
                                              rel=1e-9)


class TestGridBehaviour:
    def test_len(self, chip0):
        grid = population_grid(chip0, 0, 0, 0, ROWS, "Checkered0")
        assert len(grid) == ROWS.size

    def test_ber_monotone_in_hammers(self, chip0):
        grid = population_grid(chip0, 0, 0, 0, ROWS, "Checkered0")
        low = grid.ber(1e5)
        high = grid.ber(1e6)
        assert np.all(high >= low)

    def test_sampled_ber_close_to_expected(self, chip0, rng):
        rows = np.arange(0, 16384, 64)
        grid = population_grid(chip0, 0, 0, 0, rows, "Checkered0")
        expected = grid.ber(512_000).mean()
        sampled = grid.sampled_ber(512_000, rng).mean()
        assert sampled == pytest.approx(expected, rel=0.1)

    def test_hc_first_amplification(self, chip0):
        grid = population_grid(chip0, 0, 0, 0, ROWS, "Checkered0")
        base = grid.hc_first()
        amplified = grid.hc_first(amplification=55.09)
        assert np.allclose(amplified, np.maximum(1.0, base / 55.09))

    def test_hc_nth_monotone_per_row(self, chip0):
        grid = population_grid(chip0, 0, 0, 0, ROWS, "Checkered0")
        matrix = grid.hc_nth(10)
        assert np.all(np.diff(matrix, axis=1) >= 0)

    def test_out_of_range_rows_rejected(self, chip0):
        with pytest.raises(ValueError):
            population_grid(chip0, 0, 0, 0, np.array([16384]),
                            "Checkered0")

    def test_bad_bank_rejected(self, chip0):
        with pytest.raises(ValueError):
            population_grid(chip0, 0, 0, 16, ROWS, "Checkered0")
