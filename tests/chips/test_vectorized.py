"""Tests for the vectorized population grids (scalar/vector identity)."""

import numpy as np
import pytest

from repro.chips.profiles import CHIP_SPECS, ChipProfile
from repro.chips.vectorized import population_batch, population_grid
from repro.dram.geometry import RowAddress

ROWS = np.array([0, 1, 100, 831, 832, 4096, 8191, 8192, 12000, 16383])


class TestScalarVectorIdentity:
    @pytest.mark.parametrize("pattern", ["Checkered0", "Rowstripe1"])
    def test_population_parameters_bit_identical(self, chip0, pattern):
        grid = population_grid(chip0, 7, 1, 3, ROWS, pattern)
        for i, row in enumerate(ROWS):
            address = RowAddress(7, 1, 3, int(row))
            population = chip0.cell_population(address, pattern)
            assert population.f_weak == pytest.approx(
                grid.f_weak[i], abs=1e-14)
            assert population.mu_weak == pytest.approx(
                grid.mu_weak[i], abs=1e-12)
            assert population.sigma_weak == pytest.approx(
                grid.sigma_weak[i], abs=1e-14)
            assert population.mu_strong == pytest.approx(
                grid.mu_strong[i], abs=1e-12)
            assert population.flippable_strong_fraction == pytest.approx(
                grid.flippable[i], abs=1e-14)

    def test_profile_seeds_identical(self, chip0):
        grid = population_grid(chip0, 2, 0, 5, ROWS, "Checkered0")
        for i, row in enumerate(ROWS):
            profile = chip0.profile(RowAddress(2, 0, 5, int(row)),
                                    "Checkered0")
            assert profile.seed == int(grid.profile_seeds[i])

    def test_hc_first_identical(self, chip0):
        grid = population_grid(chip0, 2, 0, 5, ROWS, "Checkered0")
        vector = grid.hc_first()
        for i, row in enumerate(ROWS):
            profile = chip0.profile(RowAddress(2, 0, 5, int(row)),
                                    "Checkered0")
            assert vector[i] == pytest.approx(profile.hc_first(),
                                              rel=1e-9)

    def test_hc_nth_identical(self, chip0):
        grid = population_grid(chip0, 2, 0, 5, ROWS[:4], "Checkered0")
        matrix = grid.hc_nth(10)
        for i, row in enumerate(ROWS[:4]):
            profile = chip0.profile(RowAddress(2, 0, 5, int(row)),
                                    "Checkered0")
            assert np.allclose(matrix[i], profile.hc_nth(10))

    def test_ber_matches_population(self, chip0):
        grid = population_grid(chip0, 2, 0, 5, ROWS, "Checkered0")
        vector = grid.ber(512_000)
        for i, row in enumerate(ROWS):
            population = chip0.cell_population(
                RowAddress(2, 0, 5, int(row)), "Checkered0")
            assert vector[i] == pytest.approx(population.ber(512_000),
                                              rel=1e-9)


class TestBatchBitIdentity:
    """population_batch must equal per-address cell_population *exactly*
    (not approximately): the vectorized calibration relies on it."""

    def test_parameters_bit_identical(self, chip0):
        channels = np.array([0, 3, 7, 2, 5, 1])
        pcs = np.array([0, 1, 1, 0, 1, 0])
        banks = np.array([0, 5, 15, 9, 3, 12])
        rows = np.array([0, 831, 832, 8191, 12000, 16383])
        batch = population_batch(chip0, channels, pcs, banks, rows,
                                 "Checkered0")
        for i in range(rows.size):
            address = RowAddress(int(channels[i]), int(pcs[i]),
                                 int(banks[i]), int(rows[i]))
            population = chip0.cell_population(address, "Checkered0")
            assert population.f_weak == batch.f_weak[i]
            assert population.mu_weak == batch.mu_weak[i]
            assert population.sigma_weak == batch.sigma_weak[i]
            assert population.mu_strong == batch.mu_strong[i]
            assert population.flippable_strong_fraction \
                == batch.flippable[i]
            assert population.weak_cell_count(
                chip0.geometry.row_bits) == batch.n_weak[i]

    def test_ber_bit_identical(self, chip0):
        channels = np.array([1, 4, 6])
        batch = population_batch(chip0, channels, 0, 7, 5000,
                                 "Rowstripe1")
        for i, channel in enumerate(channels):
            population = chip0.cell_population(
                RowAddress(int(channel), 0, 7, 5000), "Rowstripe1")
            assert population.ber(512_000.0) == batch.ber(512_000.0)[i]

    def test_broadcasting(self, chip0):
        batch = population_batch(chip0, 0, 0, 0, ROWS, "Checkered0")
        assert batch.f_weak.shape == ROWS.shape

    def test_out_of_range_rejected(self, chip0):
        with pytest.raises(ValueError):
            population_batch(chip0, np.array([8]), 0, 0, 0, "Checkered0")


class TestRefineEquivalence:
    """The vectorized calibration must land on the scalar loop's fixed
    point bit-for-bit (ISSUE equivalence invariant)."""

    def test_vectorized_refine_matches_scalar(self):
        spec = CHIP_SPECS[2]
        vectorized = ChipProfile(spec, use_cache=False)
        scalar = ChipProfile(spec, use_cache=False)
        scalar.base_f_weak = scalar._calibrate_f_weak()
        scalar._refine_f_weak(vectorized=False)
        assert vectorized.base_f_weak == scalar.base_f_weak


class TestGridBehaviour:
    def test_len(self, chip0):
        grid = population_grid(chip0, 0, 0, 0, ROWS, "Checkered0")
        assert len(grid) == ROWS.size

    def test_ber_monotone_in_hammers(self, chip0):
        grid = population_grid(chip0, 0, 0, 0, ROWS, "Checkered0")
        low = grid.ber(1e5)
        high = grid.ber(1e6)
        assert np.all(high >= low)

    def test_sampled_ber_close_to_expected(self, chip0, rng):
        rows = np.arange(0, 16384, 64)
        grid = population_grid(chip0, 0, 0, 0, rows, "Checkered0")
        expected = grid.ber(512_000).mean()
        sampled = grid.sampled_ber(512_000, rng).mean()
        assert sampled == pytest.approx(expected, rel=0.1)

    def test_hc_first_amplification(self, chip0):
        grid = population_grid(chip0, 0, 0, 0, ROWS, "Checkered0")
        base = grid.hc_first()
        amplified = grid.hc_first(amplification=55.09)
        assert np.allclose(amplified, np.maximum(1.0, base / 55.09))

    def test_hc_nth_monotone_per_row(self, chip0):
        grid = population_grid(chip0, 0, 0, 0, ROWS, "Checkered0")
        matrix = grid.hc_nth(10)
        assert np.all(np.diff(matrix, axis=1) >= 0)

    def test_out_of_range_rows_rejected(self, chip0):
        with pytest.raises(ValueError):
            population_grid(chip0, 0, 0, 0, np.array([16384]),
                            "Checkered0")

    def test_bad_bank_rejected(self, chip0):
        with pytest.raises(ValueError):
            population_grid(chip0, 0, 0, 16, ROWS, "Checkered0")
