"""Tests for the thermal rig (plant, controller, Fig. 3 traces)."""

import numpy as np
import pytest

from repro.thermal.controller import TemperatureController
from repro.thermal.plant import ThermalPlant
from repro.thermal.trace import (all_traces, chip_temperature_trace)


class TestPlant:
    def test_idle_equilibrium(self):
        plant = ThermalPlant()
        for __ in range(600):
            plant.step(5.0)
        assert plant.temperature_c == pytest.approx(
            plant.ambient_c + plant.activity_rise_c, abs=0.5)

    def test_heater_raises_temperature(self):
        plant = ThermalPlant()
        for __ in range(600):
            plant.step(5.0, heater=1.0)
        assert plant.temperature_c > 90.0

    def test_fan_pulls_toward_ambient(self):
        hot = ThermalPlant()
        hot.temperature_c = 80.0
        hot.step(30.0, fan=1.0)
        cool = ThermalPlant()
        cool.temperature_c = 80.0
        cool.step(30.0)
        assert hot.temperature_c < cool.temperature_c

    def test_actuator_bounds(self):
        with pytest.raises(ValueError):
            ThermalPlant().step(1.0, heater=1.5)
        with pytest.raises(ValueError):
            ThermalPlant().step(-1.0)

    def test_sensor_quantized(self):
        plant = ThermalPlant()
        reading = plant.sensor_reading(np.random.default_rng(0))
        assert (reading * 4) == int(reading * 4)


class TestController:
    def test_reaches_82c_setpoint(self):
        controller = TemperatureController(ThermalPlant(), target_c=82.0)
        controller.run(3600.0)
        assert controller.settled(tolerance_c=1.5)

    def test_holds_setpoint(self):
        controller = TemperatureController(ThermalPlant(), target_c=82.0)
        controller.run(1800.0)
        trace = controller.run(3600.0)
        assert trace.mean() == pytest.approx(82.0, abs=0.75)
        assert trace.std() < 1.0

    def test_history_records_samples(self):
        controller = TemperatureController(ThermalPlant(), target_c=82.0)
        controller.run(100.0)
        assert len(controller.history) == 20


class TestTraces:
    def test_chip0_controlled_at_82(self):
        trace = chip_temperature_trace(0, duration_s=7200.0)
        assert trace.controlled
        assert trace.mean_c == pytest.approx(82.0, abs=1.0)
        assert trace.peak_to_peak_c < 4.0

    def test_uncontrolled_chips_stable(self):
        for index in range(1, 6):
            trace = chip_temperature_trace(index, duration_s=7200.0)
            assert not trace.controlled
            assert trace.peak_to_peak_c < 4.0  # "stable" (Fig. 3)
            assert trace.mean_c == pytest.approx(trace.target_c, abs=1.5)

    def test_five_second_sampling(self):
        trace = chip_temperature_trace(1, duration_s=600.0)
        assert trace.times_s[1] - trace.times_s[0] == 5.0
        assert trace.temperatures_c.size == 120

    def test_all_traces_cover_table3(self):
        traces = all_traces(duration_s=600.0)
        assert set(traces) == {f"Chip {i}" for i in range(6)}

    def test_traces_deterministic(self):
        a = chip_temperature_trace(2, duration_s=600.0)
        b = chip_temperature_trace(2, duration_s=600.0)
        assert np.array_equal(a.temperatures_c, b.temperatures_c)
