"""Tests for the interpreter and host session."""

import numpy as np
import pytest

from repro.bender.host import BenderSession, RefreshWindowExceeded
from repro.bender.program import TestProgram
from repro.dram.geometry import RowAddress

ADDR = RowAddress(0, 0, 0, 100)


class TestInterpreter:
    def test_collects_tagged_reads(self, plain_session):
        program = TestProgram("p")
        program.write_row(ADDR, np.full(1024, 0xAA, dtype=np.uint8))
        program.read_row(ADDR, "victim")
        result = plain_session.run(program)
        assert np.array_equal(result.read("victim"),
                              np.full(1024, 0xAA, dtype=np.uint8))

    def test_repeated_tag_collects_all(self, plain_session):
        program = TestProgram("p")
        program.write_row(ADDR, np.zeros(1024, dtype=np.uint8))
        with program.loop(3) as body:
            body.read_row(ADDR, "r")
        result = plain_session.run(program)
        assert len(result.read_all("r")) == 3
        with pytest.raises(KeyError):
            result.read("r")  # ambiguous: 3 results

    def test_unknown_tag_raises(self, plain_session):
        result = plain_session.run(TestProgram("empty"))
        with pytest.raises(KeyError):
            result.read_all("nope")

    def test_statistics(self, plain_session):
        program = TestProgram("p")
        program.write_row(ADDR, np.zeros(1024, dtype=np.uint8))
        program.read_row(ADDR, "r")
        result = plain_session.run(program)
        assert result.commands_executed == 2
        assert result.elapsed_ns > 0


class TestRefreshWindowGuard:
    def test_within_window_passes(self, plain_session):
        plain_session.begin_refresh_window()
        plain_session.device.wait(10.0e6)
        plain_session.assert_within_refresh_window()

    def test_exceeding_window_raises(self, plain_session):
        plain_session.begin_refresh_window()
        plain_session.device.wait(33.0e6)
        with pytest.raises(RefreshWindowExceeded):
            plain_session.assert_within_refresh_window()

    def test_unstarted_window_raises(self, plain_session):
        with pytest.raises(RuntimeError):
            plain_session.assert_within_refresh_window()


class TestMappingHelpers:
    def test_aggressors_of_uses_physical_adjacency(self, session, chip0):
        mapping = chip0.row_mapping()
        victim_physical = RowAddress(0, 0, 0, 5000)
        aggressors = session.aggressors_of(victim_physical)
        physical_rows = sorted(mapping.to_physical(a.row)
                               for a in aggressors)
        assert physical_rows == [4999, 5001]

    def test_bank_edge_victim_has_one_aggressor(self, session):
        assert len(session.aggressors_of(RowAddress(0, 0, 0, 0))) == 1

    def test_missing_mapping_raises(self, plain_device):
        session = BenderSession(plain_device)
        with pytest.raises(RuntimeError):
            session.aggressors_of(ADDR)

    def test_physical_roundtrip(self, session):
        physical = RowAddress(0, 0, 0, 5001)
        logical = session.logical_of_physical(physical)
        assert session.physical_of_logical(logical) == physical

    def test_physical_row_io(self, session):
        physical = RowAddress(0, 0, 0, 5000)
        image = np.full(1024, 0x5A, dtype=np.uint8)
        session.write_physical_row(physical, image)
        assert np.array_equal(session.read_physical_row(physical), image)
