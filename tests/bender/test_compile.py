"""Suite for the test-program compiler (``repro.bender.compile``).

Contract under test: for ANY program — loop-structured or not — and any
fault plan, ``PlanExecutor`` produces results bit-identical to the
scalar ``Interpreter``: tagged reads flip-for-flip, device clock and
statistics, rolling-refresh state, per-row cell state, the TRR
sampler's internals, and the fault injector's event schedule, command
counter and future sampler draws.  The scalar interpreter is the
oracle; the compiler only changes *how fast* the answer arrives.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bender.compile import (MAX_DIRTY_FRACTION, MIN_EPOCH_REPEATS,
                                  EpochSegment, PlanExecutor,
                                  ScalarSegment, compile_program,
                                  dirty_window_mask)
from repro.bender.host import BenderSession
from repro.bender.interpreter import Interpreter
from repro.bender.program import TestProgram
from repro.chips.profiles import make_chip
from repro.core.patterns import ALL_PATTERNS, CHECKERED0
from repro.dram.device import HBM2Stack
from repro.dram.geometry import RowAddress
from repro.dram.trr import TrrConfig
from repro.faults import FaultPlan, clear_plan, install_plan
from repro.faults.injector import FaultyStack

ROW_BYTES = HBM2Stack().geometry.row_bytes


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def snapshot(device, result, stack=None):
    """Everything the two engines must agree on, hashable-comparable."""
    snap = {
        "elapsed": result.elapsed_ns,
        "executed": result.commands_executed,
        "reads": {tag: [image.tobytes() for image in images]
                  for tag, images in result.reads.items()},
        "now": device.now_ns,
        "stats": vars(device.stats).copy(),
        "pointer": dict(device._ref_pointer),
        "ref_times": {key: dict(times)
                      for key, times in device._pc_ref_time.items()},
        "rows": {},
        "trr": [],
    }
    for bank_key, rows in device._rows.items():
        for row, state in rows.items():
            snap["rows"][(bank_key, row)] = (
                state.data.tobytes(), state.acc_units, state.restored_at,
                None if state.already_flipped is None
                else state.already_flipped.tobytes())
    for pc_key, engine in device._trr.items():
        for tracker in engine._trackers:
            snap["trr"].append((pc_key, tuple(tracker.cam),
                                dict(tracker.window_counts),
                                tracker.window_total))
    if stack is not None:
        snap["events"] = [(e.index, e.fault, e.command, e.detail)
                          for e in stack.events]
        snap["digest"] = stack.schedule_digest()
        snap["counter"] = stack._counter
    return snap


def run_both(program, plan, trr_enabled=True, retention=True):
    """Run on fresh devices through both engines; return snapshots."""
    def make():
        kwargs = {} if retention else {"retention": None}
        return HBM2Stack(trr_config=TrrConfig(enabled=trr_enabled),
                         **kwargs)

    scalar_device = make()
    interpreter = Interpreter(scalar_device, fault_plan=plan)
    batch_device = make()
    executor = PlanExecutor(batch_device, fault_plan=plan)
    try:
        scalar_result = interpreter.run(program)
        scalar_error = None
    except Exception as exc:  # noqa: BLE001 — error parity is the test
        scalar_result, scalar_error = None, (type(exc).__name__, str(exc))
    try:
        batch_result = executor.run(program)
        batch_error = None
    except Exception as exc:  # noqa: BLE001
        batch_result, batch_error = None, (type(exc).__name__, str(exc))
    assert scalar_error == batch_error
    if scalar_error is not None:
        return None, None
    wrapped = isinstance(interpreter.device, FaultyStack)
    assert wrapped == isinstance(executor.device, FaultyStack)
    return (snapshot(scalar_device, scalar_result,
                     interpreter.device if wrapped else None),
            snapshot(batch_device, batch_result,
                     executor.device if wrapped else None))


def assert_identical(scalar_snap, batch_snap):
    if scalar_snap is None:
        return
    for key in scalar_snap:
        assert scalar_snap[key] == batch_snap[key], f"diverged on {key}"


def reference_program():
    """Two epoch loops (one with REF), scalar pro/epilogue, reads."""
    program = TestProgram(name="reference")
    agg_lo = RowAddress(0, 0, 0, 100)
    agg_hi = RowAddress(0, 0, 0, 102)
    victim = RowAddress(0, 0, 0, 101)
    other = RowAddress(0, 0, 1, 500)
    image = np.zeros(ROW_BYTES, dtype=np.uint8)
    program.write_row(victim, image)
    program.write_row(other, image)
    with program.loop(200) as body:
        body.hammer(agg_lo, 30, t_on=40.0)
        body.hammer(agg_hi, 30)
        body.hammer(other, 7)
        body.refresh(0, 0)
        body.wait(120.0)
    with program.loop(50) as body:
        body.hammer(agg_lo, 12)
        body.hammer(agg_hi, 12)
    program.refresh(0, 0)
    program.read_row(victim, tag="victim")
    program.read_row(other, tag="other")
    return program


# ----------------------------------------------------------------------
# Lowering rules
# ----------------------------------------------------------------------


class TestCompileProgram:
    def test_reference_program_segmentation(self):
        segments = compile_program(reference_program())
        kinds = [type(segment) for segment in segments]
        assert kinds == [ScalarSegment, EpochSegment, EpochSegment,
                         ScalarSegment]
        assert segments[1].has_ref and segments[1].repeats == 200
        assert not segments[2].has_ref and segments[2].repeats == 50

    def test_short_loops_stay_scalar(self):
        program = TestProgram(name="short")
        with program.loop(MIN_EPOCH_REPEATS - 1) as body:
            body.hammer(RowAddress(0, 0, 0, 10), 5)
        (segment,) = compile_program(program)
        assert isinstance(segment, ScalarSegment)

    def test_nested_loops_stay_scalar(self):
        program = TestProgram(name="nested")
        with program.loop(100) as outer:
            with outer.loop(10) as inner:
                inner.hammer(RowAddress(0, 0, 0, 10), 5)
        (segment,) = compile_program(program)
        assert isinstance(segment, ScalarSegment)

    def test_hammer_after_ref_stays_scalar(self):
        program = TestProgram(name="post-ref")
        with program.loop(100) as body:
            body.refresh(0, 0)
            body.hammer(RowAddress(0, 0, 0, 10), 5)
        (segment,) = compile_program(program)
        assert isinstance(segment, ScalarSegment)

    def test_two_refs_stay_scalar(self):
        program = TestProgram(name="two-refs")
        with program.loop(100) as body:
            body.refresh(0, 0)
            body.refresh(0, 0)
        (segment,) = compile_program(program)
        assert isinstance(segment, ScalarSegment)

    def test_mixed_pseudo_channels_stay_scalar(self):
        program = TestProgram(name="mixed-pc")
        with program.loop(100) as body:
            body.hammer(RowAddress(0, 0, 0, 10), 5)
            body.hammer(RowAddress(0, 1, 0, 10), 5)
        (segment,) = compile_program(program)
        assert isinstance(segment, ScalarSegment)

    def test_act_pre_loops_stay_scalar(self):
        """ACT/PRE bodies never lower: float summation order differs
        from the closed-form count * act_to_act used for HAMMER."""
        program = TestProgram(name="act-pre")
        address = RowAddress(0, 0, 0, 10)
        with program.loop(100) as body:
            body.activate(address)
            body.precharge(address)
        (segment,) = compile_program(program)
        assert isinstance(segment, ScalarSegment)

    def test_wait_only_loop_stays_scalar(self):
        program = TestProgram(name="waits")
        with program.loop(100) as body:
            body.wait(50.0)
        (segment,) = compile_program(program)
        assert isinstance(segment, ScalarSegment)

    def test_ref_only_loop_lowers(self):
        """issue_refs-style REF loops become one epoch segment."""
        program = TestProgram(name="refs")
        with program.loop(68) as body:
            body.refresh(0, 0)
        (segment,) = compile_program(program)
        assert isinstance(segment, EpochSegment)
        assert segment.has_ref and segment.repeats == 68


# ----------------------------------------------------------------------
# Deterministic differentials
# ----------------------------------------------------------------------


CHAOS_PLAN = FaultPlan(seed=7, drop_rate=0.01, ghost_rate=0.01,
                       act_jitter_rate=0.01, act_jitter_ns=5.0,
                       read_flip_rate=0.5, read_flip_bits=3,
                       stuck_row_rate=0.05)


class TestPlanExecutorDifferential:
    def test_fault_free_bit_identical(self):
        assert_identical(*run_both(reference_program(), None))

    def test_chaos_plan_bit_identical(self):
        assert_identical(*run_both(reference_program(), CHAOS_PLAN))

    def test_trr_disabled_bit_identical(self):
        assert_identical(*run_both(reference_program(), CHAOS_PLAN,
                                   trr_enabled=False))

    def test_retention_windows_bit_identical(self):
        """Long waits between epochs exercise the retention physics in
        the replay's sweep commits."""
        program = TestProgram(name="retention")
        victim = RowAddress(0, 0, 0, 40)
        program.write_row(victim, np.zeros(ROW_BYTES, dtype=np.uint8))
        program.wait(1.0e9)
        with program.loop(120) as body:
            body.refresh(0, 0)
        program.wait(1.0e9)
        with program.loop(20) as body:
            body.hammer(RowAddress(0, 0, 0, 41), 40)
            body.refresh(0, 0)
        program.read_row(victim, tag="victim")
        assert_identical(*run_both(program, None))

    def test_heavy_chaos_falls_back_whole_segment(self):
        """Above MAX_DIRTY_FRACTION the segment replays per-command —
        and is still bit-identical."""
        plan = FaultPlan(seed=3, drop_rate=0.5, ghost_rate=0.2)
        mask = dirty_window_mask(plan, 0,
                                 compile_program(reference_program())[1].body,
                                 200)
        assert mask.mean() > MAX_DIRTY_FRACTION
        assert_identical(*run_both(reference_program(), plan))

    def test_future_sampler_draws_agree(self):
        """After a run both engines leave the injector at the same
        counter, so every *future* fault draw matches too."""
        scalar_snap, batch_snap = run_both(reference_program(),
                                           CHAOS_PLAN)
        assert scalar_snap["counter"] == batch_snap["counter"]
        indices = np.arange(scalar_snap["counter"] + 1,
                            scalar_snap["counter"] + 2049)
        for mask in ("drop_mask", "ghost_mask", "draw_bitflips_array"):
            assert np.array_equal(getattr(CHAOS_PLAN, mask)(indices),
                                  getattr(CHAOS_PLAN, mask)(indices))

    def test_hang_error_parity(self):
        """A hang raised mid-segment leaves both engines equally dead."""
        plan = FaultPlan(seed=11, hang_rate=0.02)
        scalar_snap, batch_snap = run_both(reference_program(), plan)
        # run_both asserted matching error types; nothing else to check
        # when both raised (snapshots are None).
        assert (scalar_snap is None) == (batch_snap is None)


# ----------------------------------------------------------------------
# Property-based differential (satellite: hypothesis suite)
# ----------------------------------------------------------------------


def programs(draw):
    program = TestProgram(name="hypothesis")
    image = np.zeros(ROW_BYTES, dtype=np.uint8)
    rows = draw(st.lists(st.integers(5, 900), min_size=3, max_size=4,
                         unique=True))
    for row in rows[:2]:
        program.write_row(RowAddress(0, 0, draw(st.integers(0, 1)), row),
                          image)
    for __ in range(draw(st.integers(1, 2))):
        count = draw(st.sampled_from([1, 3, 6, 25, 300]))
        with program.loop(count) as body:
            for __ in range(draw(st.integers(0, 2))):
                body.hammer(
                    RowAddress(0, 0, draw(st.integers(0, 1)),
                               draw(st.sampled_from(rows))),
                    draw(st.sampled_from([0, 1, 8, 40])),
                    t_on=draw(st.sampled_from([None, 35.0, 60.0])))
            if draw(st.booleans()):
                body.refresh(0, 0)
            if draw(st.booleans()):
                body.wait(draw(st.sampled_from([0.0, 55.5, 4000.0])))
        if draw(st.booleans()):
            program.hammer(RowAddress(0, 0, 0,
                                      draw(st.sampled_from(rows))), 5)
        if draw(st.booleans()):
            program.wait(1.0e6)
    program.refresh(0, 0)
    for index, row in enumerate(rows[:2]):
        program.read_row(RowAddress(0, 0, 0, row), tag=f"t{index}")
    return program


def plans(draw):
    if draw(st.booleans()):
        return None
    return FaultPlan(
        seed=draw(st.integers(0, 1 << 16)),
        drop_rate=draw(st.sampled_from([0.0, 0.002, 0.05])),
        ghost_rate=draw(st.sampled_from([0.0, 0.002, 0.05])),
        act_jitter_rate=draw(st.sampled_from([0.0, 0.01, 0.2])),
        act_jitter_ns=draw(st.sampled_from([0.0, 4.0])),
        read_flip_rate=draw(st.sampled_from([0.0, 0.5])),
        read_flip_bits=3,
        stuck_row_rate=draw(st.sampled_from([0.0, 0.1])),
    )


@given(data=st.data())
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_programs_bit_identical(data):
    program = programs(data.draw)
    plan = plans(data.draw)
    trr_enabled = data.draw(st.booleans())
    retention = data.draw(st.booleans())
    assert_identical(*run_both(program, plan, trr_enabled=trr_enabled,
                               retention=retention))


# ----------------------------------------------------------------------
# Session-level hybrid hammer_rows under a fault plan
# ----------------------------------------------------------------------


@pytest.fixture
def chaos_chip():
    return make_chip(1)


def hammer_rows_both(chip, plan, victims, pattern, count, t_on,
                     monkeypatch):
    """hammer_rows through both engines under an installed plan."""
    outcomes = []
    install_plan(plan)
    try:
        for flag in ("0", "1"):
            monkeypatch.setenv("HBMSIM_BATCH", flag)
            session = BenderSession(chip.make_device(),
                                    mapping=chip.row_mapping())
            assert isinstance(session.device, FaultyStack)
            images = session.hammer_rows(victims, pattern, count, t_on)
            stack = session.device
            outcomes.append({
                "images": [image.tobytes() for image in images],
                "events": [(e.index, e.fault, e.command, e.detail)
                           for e in stack.events],
                "digest": stack.schedule_digest(),
                "counter": stack._counter,
            })
    finally:
        clear_plan()
        monkeypatch.setenv("HBMSIM_BATCH", "1")
    return outcomes


class TestHammerRowsHybrid:
    def test_fault_plan_hammer_rows_bit_identical(self, chaos_chip,
                                                  monkeypatch):
        plan = FaultPlan(seed=21, drop_rate=0.02, act_jitter_rate=0.02,
                         act_jitter_ns=4.0, read_flip_rate=0.3,
                         read_flip_bits=2, stuck_row_rate=0.2)
        rows = chaos_chip.geometry.rows
        victims = [RowAddress(0, 0, 0, 3000 + 20 * k) for k in range(6)]
        victims += [RowAddress(0, 0, 1, 3005), RowAddress(0, 0, 0, 0),
                    RowAddress(0, 0, 0, rows - 1)]
        scalar, batched = hammer_rows_both(
            chaos_chip, plan, victims, CHECKERED0, 60_000, None,
            monkeypatch)
        assert scalar == batched

    def test_overlapping_drop_demotion(self, chaos_chip, monkeypatch):
        """Adjacent victims around a dropped window-init WR still match
        scalar: the engine demotes the stale-content neighbors."""
        plan = FaultPlan(seed=5, drop_rate=0.08)
        victims = [RowAddress(0, 0, 0, 4000 + 3 * k) for k in range(8)]
        scalar, batched = hammer_rows_both(
            chaos_chip, plan, victims, ALL_PATTERNS[1], 50_000, 40.0,
            monkeypatch)
        assert scalar == batched
