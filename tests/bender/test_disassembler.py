"""Round-trip tests for the assembler/disassembler pair."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bender.assembler import assemble, disassemble
from repro.bender.program import Loop, TestProgram
from repro.dram import commands as cmd
from repro.dram.geometry import RowAddress


def commands_equal(a, b) -> bool:
    if a.kind is not b.kind:
        return False
    fields = ("channel", "pseudo_channel", "bank", "row", "count",
              "t_on", "duration")
    for field in fields:
        if getattr(a, field) != getattr(b, field):
            return False
    if (a.data is None) != (b.data is None):
        return False
    if a.data is not None and not np.array_equal(a.data, b.data):
        return False
    return getattr(a, "tag", None) == getattr(b, "tag", None)


class TestDisassemble:
    def test_simple_program(self):
        program = TestProgram()
        program.append(cmd.act(0, 1, 2, 300))
        program.append(cmd.pre(0, 1, 2))
        text = disassemble(program)
        assert "ACT 0 1 2 300" in text
        assert "PRE 0 1 2" in text

    def test_loop_indentation(self):
        program = TestProgram()
        with program.loop(4) as body:
            body.refresh(0, 0)
        text = disassemble(program)
        assert text.splitlines() == ["LOOP 4", "  REF 0 0", "ENDLOOP"]

    def test_non_uniform_wr_rejected(self):
        program = TestProgram()
        data = np.zeros(1024, dtype=np.uint8)
        data[0] = 1
        program.write_row(RowAddress(0, 0, 0, 5), data)
        with pytest.raises(ValueError):
            disassemble(program)

    def test_empty_program(self):
        assert disassemble(TestProgram()) == ""


_address = st.tuples(st.integers(0, 7), st.integers(0, 1),
                     st.integers(0, 15), st.integers(0, 16383))


@st.composite
def _instruction(draw):
    kind = draw(st.sampled_from(
        ["ACT", "PRE", "REF", "WAIT", "WR", "RD", "RDTAG", "HAMMER",
         "NOP"]))
    ch, pc, bank, row = draw(_address)
    if kind == "ACT":
        return cmd.act(ch, pc, bank, row)
    if kind == "PRE":
        return cmd.pre(ch, pc, bank)
    if kind == "REF":
        return cmd.ref(ch, pc)
    if kind == "WAIT":
        return cmd.wait(float(draw(st.integers(0, 10 ** 7))))
    if kind == "WR":
        fill = draw(st.integers(0, 255))
        return cmd.wr(ch, pc, bank, row,
                      np.full(1024, fill, dtype=np.uint8))
    if kind == "RD":
        return cmd.rd(ch, pc, bank, row)
    if kind == "RDTAG":
        from repro.bender.program import tagged_read

        tag = draw(st.text(alphabet="abcxyz_0123456789", min_size=1,
                           max_size=8))
        return tagged_read(RowAddress(ch, pc, bank, row), tag)
    if kind == "HAMMER":
        count = draw(st.integers(1, 10 ** 6))
        t_on = draw(st.one_of(st.none(),
                              st.integers(29, 10 ** 5).map(float)))
        return cmd.hammer(ch, pc, bank, row, count, t_on)
    return cmd.Command(cmd.CommandKind.NOP)


@st.composite
def _program(draw):
    program = TestProgram()
    for __ in range(draw(st.integers(0, 6))):
        if draw(st.booleans()):
            loop = Loop(draw(st.integers(0, 5)))
            for __ in range(draw(st.integers(1, 3))):
                loop.body.append(draw(_instruction()))
            program.append(loop)
        else:
            program.append(draw(_instruction()))
    return program


class TestRoundTrip:
    @given(_program())
    @settings(max_examples=60, deadline=None)
    def test_assemble_disassemble_identity(self, program):
        text = disassemble(program)
        rebuilt = assemble(text)
        original = list(program.flatten())
        recovered = list(rebuilt.flatten())
        assert len(original) == len(recovered)
        for a, b in zip(original, recovered):
            assert commands_equal(a, b), (a, b)
