"""Tests for the SoftBender assembly language."""

import numpy as np
import pytest

from repro.bender.assembler import AssemblyError, assemble
from repro.dram.commands import CommandKind


class TestBasics:
    def test_empty_program(self):
        assert list(assemble("").flatten()) == []

    def test_comments_and_blank_lines(self):
        program = assemble("""
        ; full-line comment
        # another
        NOP   ; trailing comment
        """)
        kinds = [c.kind for c in program.flatten()]
        assert kinds == [CommandKind.NOP]

    def test_each_mnemonic(self):
        program = assemble("""
        ACT 0 1 2 300
        PRE 0 1 2
        REF 0 1
        WAIT 3900
        WR 0 1 2 300 0xAA
        RD 0 1 2 300
        HAMMER 0 1 2 299 1000 58.0
        """)
        kinds = [c.kind for c in program.flatten()]
        assert kinds == [CommandKind.ACT, CommandKind.PRE,
                         CommandKind.REF, CommandKind.WAIT,
                         CommandKind.WR, CommandKind.RD,
                         CommandKind.HAMMER]

    def test_wr_fill_byte(self):
        program = assemble("WR 0 0 0 5 0x5A")
        command = next(program.flatten())
        assert np.all(command.data == 0x5A)

    def test_hex_and_decimal_operands(self):
        program = assemble("ACT 0 0 0x0F 0x1000")
        command = next(program.flatten())
        assert command.bank == 15
        assert command.row == 4096

    def test_tagged_read(self):
        from repro.bender.program import ReadRequest

        program = assemble("RD 0 0 0 100 tag=victim")
        command = next(program.flatten())
        assert isinstance(command, ReadRequest)
        assert command.tag == "victim"

    def test_hammer_on_time_optional(self):
        program = assemble("HAMMER 0 0 0 10 500")
        command = next(program.flatten())
        assert command.count == 500
        assert command.t_on is None


class TestLoops:
    def test_loop_expansion(self):
        program = assemble("""
        LOOP 3
          REF 0 0
        ENDLOOP
        """)
        assert program.static_command_count() == 3

    def test_nested_loops(self):
        program = assemble("""
        LOOP 2
          LOOP 5
            NOP
          ENDLOOP
          WAIT 1
        ENDLOOP
        """)
        assert program.static_command_count() == 2 * (5 + 1)

    def test_unclosed_loop_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("LOOP 3\nNOP\n")

    def test_stray_endloop_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("ENDLOOP")


class TestErrors:
    @pytest.mark.parametrize("source", [
        "BOGUS 1 2 3",
        "ACT 0 0 0",            # missing row
        "WR 0 0 0 5 0x100",     # fill byte too large
        "WAIT -5",
        "LOOP -1",
        "RD 0 0 0 5 victim",    # tag without tag=
        "RD 0 0 0 5 tag=",      # empty tag
        "ACT 0 0 0 banana",
    ])
    def test_rejected(self, source):
        with pytest.raises(AssemblyError):
            assemble(source)

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble("NOP\nNOP\nBOGUS")
        assert excinfo.value.line_number == 3


class TestEndToEnd:
    def test_assembled_hammer_test_runs(self, plain_session):
        """A full characterization written in assembly flips bits."""
        source = """
        ; double-sided hammer on victim 5000
        WR 0 0 0 5000 0x55
        WR 0 0 0 4999 0xAA
        WR 0 0 0 5001 0xAA
        LOOP 50
          HAMMER 0 0 0 4999 8000
          HAMMER 0 0 0 5001 8000
        ENDLOOP
        RD 0 0 0 5000 tag=victim
        """
        result = plain_session.run(assemble(source))
        observed = result.read("victim")
        expected = np.full(1024, 0x55, dtype=np.uint8)
        assert not np.array_equal(observed, expected)
