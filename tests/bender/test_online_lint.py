"""Suite for online protocol checking (``Interpreter.run_checked``).

Contract under test: with the streaming checker riding the interpreter,
error-severity findings and device ``TimingError``s agree command for
command — including on fault-plan-mutated streams, where the checker
judges the stream the device actually saw (drops removed, ghosts
doubled, clock pinned to the device).  ``HBMSIM_LINT=online`` routes
``run()`` through the checked path.
"""

import numpy as np
import pytest

from repro.bender.interpreter import Interpreter
from repro.bender.program import TestProgram
from repro.dram.device import HBM2Stack
from repro.dram.geometry import RowAddress
from repro.errors import TimingError
from repro.faults.plan import FaultPlan

ROW = RowAddress(0, 0, 0, 100)
OTHER = RowAddress(0, 0, 0, 101)


def conflict_program():
    program = TestProgram("conflict")
    program.activate(ROW)
    program.activate(OTHER)  # P001 -> device TimingError
    return program


def clean_program():
    program = TestProgram("clean")
    program.activate(ROW)
    program.precharge(ROW)
    program.hammer(OTHER, 5)
    program.refresh(0, 0)
    return program


class TestRunChecked:
    def test_clean_program_yields_no_findings(self):
        interpreter = Interpreter(HBM2Stack())
        emitted = []
        result, findings = interpreter.run_checked(
            clean_program(), on_finding=emitted.append)
        assert findings == [] and emitted == []
        assert result.commands_executed == 4

    def test_result_matches_plain_run(self):
        program = clean_program()
        program.read_row(ROW, tag="t")
        checked, findings = Interpreter(HBM2Stack()).run_checked(
            program, on_finding=lambda f: None)
        plain = Interpreter(HBM2Stack()).run(program)
        assert findings == []
        assert checked.commands_executed == plain.commands_executed
        assert checked.elapsed_ns == plain.elapsed_ns
        assert checked.read("t").tobytes() == plain.read("t").tobytes()

    def test_timing_error_is_predicted_then_reraised(self):
        interpreter = Interpreter(HBM2Stack())
        emitted = []
        with pytest.raises(TimingError):
            interpreter.run_checked(conflict_program(),
                                    on_finding=emitted.append)
        assert [f.rule for f in emitted if f.severity == "error"] \
            == ["P001"]

    def test_default_sink_prints_warn_format(self, capsys):
        interpreter = Interpreter(HBM2Stack())
        with pytest.raises(TimingError):
            interpreter.run_checked(conflict_program())
        err = capsys.readouterr().err
        assert "HBMSIM_LINT:" in err and "P001" in err

    def test_dropped_commands_never_reach_the_checker(self):
        # drop_rate=1.0 loses every droppable command: both ACTs are
        # dropped, the device never raises, and the checker - judging
        # the mutated stream - reports nothing either.
        plan = FaultPlan(seed=3, drop_rate=1.0)
        interpreter = Interpreter(HBM2Stack(), fault_plan=plan)
        result, findings = interpreter.run_checked(
            conflict_program(), on_finding=lambda f: None)
        assert findings == []
        assert result.commands_executed == 2

    def test_clock_pinned_to_device_under_jitter(self):
        plan = FaultPlan(seed=5, act_jitter_rate=1.0, act_jitter_ns=7.0)
        device = HBM2Stack()
        interpreter = Interpreter(device, fault_plan=plan)
        program = TestProgram("jitter")
        program.activate(ROW)
        program.precharge(ROW)
        __, findings = interpreter.run_checked(program,
                                               on_finding=lambda f: None)
        assert findings == []

    def test_ghosted_ref_checked_twice(self):
        # ghost_rate=1.0 re-executes every PRE/REF; the checker must
        # count both REFs or its refresh bookkeeping drifts from the
        # device's.
        from repro.lint.stream import TimingChecker

        plan = FaultPlan(seed=11, ghost_rate=1.0)
        interpreter = Interpreter(HBM2Stack(), fault_plan=plan)
        program = TestProgram("ghost")
        program.refresh(0, 0)
        counted = []
        original = TimingChecker.step

        def counting_step(self, command, path):
            counted.append(command.kind.value)
            original(self, command, path)

        TimingChecker.step = counting_step
        try:
            interpreter.run_checked(program, on_finding=lambda f: None)
        finally:
            TimingChecker.step = original
        assert counted.count("REF") == 2


class TestOnlineEnvMode:
    def test_run_dispatches_to_checked_path(self, monkeypatch, capsys):
        monkeypatch.setenv("HBMSIM_LINT", "online")
        interpreter = Interpreter(HBM2Stack())
        with pytest.raises(TimingError):
            interpreter.run(conflict_program())
        err = capsys.readouterr().err
        assert "P001" in err

    def test_clean_run_unchanged_under_online(self, monkeypatch):
        program = clean_program()
        program.read_row(ROW, tag="t")
        monkeypatch.delenv("HBMSIM_LINT", raising=False)
        plain = Interpreter(HBM2Stack()).run(program)
        monkeypatch.setenv("HBMSIM_LINT", "online")
        online = Interpreter(HBM2Stack()).run(program)
        assert online.elapsed_ns == plain.elapsed_ns
        assert online.read("t").tobytes() == plain.read("t").tobytes()

    def test_executor_degrades_online_to_static_warn(self, monkeypatch,
                                                     capsys):
        # The compiled engine has no per-command dispatch; under
        # `online` its pre-execution gate verifies statically and
        # prints, like warn - but still executes.
        from repro.bender.compile import PlanExecutor

        monkeypatch.setenv("HBMSIM_LINT", "online")
        executor = PlanExecutor(HBM2Stack())
        with pytest.raises(TimingError):
            executor.run(conflict_program())
        assert "P001" in capsys.readouterr().err
