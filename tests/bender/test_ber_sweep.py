"""Tests for the BER S-curve routine."""

import numpy as np
import pytest

from repro.bender.routines.ber_sweep import (BerCurve, geometric_counts,
                                             measure_ber_curve)
from repro.core.patterns import CHECKERED0
from repro.dram.geometry import RowAddress

VICTIM = RowAddress(0, 0, 0, 5000)


class TestGeometricCounts:
    def test_endpoints_and_monotonicity(self):
        counts = geometric_counts(10_000, 1_000_000, 5)
        assert counts[0] == 10_000
        assert counts[-1] == 1_000_000
        assert list(counts) == sorted(counts)

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            geometric_counts(100, 50)
        with pytest.raises(ValueError):
            geometric_counts(100, 200, points=1)


class TestCurve:
    @pytest.fixture(scope="class")
    def curve(self, chip0_class):
        from repro.bender.host import BenderSession

        session = BenderSession(chip0_class.make_device(),
                                mapping=chip0_class.row_mapping())
        return measure_ber_curve(session, VICTIM, CHECKERED0,
                                 geometric_counts(32_000, 1_024_000, 6))

    @pytest.fixture(scope="class")
    def chip0_class(self):
        from repro.chips.profiles import make_chip

        return make_chip(0)

    def test_monotone_nondecreasing(self, curve):
        assert all(b >= a for a, b in zip(curve.bers, curve.bers[1:]))

    def test_onset_brackets_hc_first(self, curve, chip0_class):
        hc_first = chip0_class.profile(VICTIM, "Checkered0").hc_first()
        onset = curve.onset
        assert onset is not None
        assert onset >= hc_first * 0.9
        # The previous swept point (if any) must sit below HC_first.
        index = curve.hammer_counts.index(onset)
        if index > 0:
            assert curve.hammer_counts[index - 1] < hc_first

    def test_matches_analytic_cdf(self, curve, chip0_class):
        """The exact-device S-curve follows the mixture CDF."""
        population = chip0_class.cell_population(VICTIM, "Checkered0")
        for count, measured in zip(curve.hammer_counts, curve.bers):
            expected = population.ber(count)
            assert measured == pytest.approx(expected, abs=0.01)

    def test_interpolation(self, curve):
        mid = (curve.hammer_counts[2] + curve.hammer_counts[3]) / 2
        value = curve.interpolate(mid)
        assert curve.bers[2] <= value <= curve.bers[3]

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            BerCurve(VICTIM, "Checkered0", (1, 2), (0.1,))
