"""Tests for the SoftBender program DSL."""

import numpy as np
import pytest

from repro.bender.program import (Loop, ReadRequest, TestProgram,
                                  tagged_read)
from repro.dram.commands import CommandKind
from repro.dram.geometry import RowAddress

ADDR = RowAddress(0, 0, 0, 100)
OTHER = RowAddress(0, 0, 0, 102)


class TestBuilder:
    def test_write_read_pair(self):
        program = TestProgram()
        program.write_row(ADDR, np.zeros(1024, dtype=np.uint8))
        program.read_row(ADDR, "victim")
        kinds = [c.kind for c in program.flatten()]
        assert kinds == [CommandKind.WR, CommandKind.RD]

    def test_tagged_read_carries_tag(self):
        read = tagged_read(ADDR, "abc")
        assert isinstance(read, ReadRequest)
        assert read.tag == "abc"
        assert read.row == 100

    def test_hammer(self):
        program = TestProgram().hammer(ADDR, 1000, t_on=58.0)
        command = next(program.flatten())
        assert command.kind is CommandKind.HAMMER
        assert command.count == 1000
        assert command.t_on == 58.0

    def test_activate_precharge(self):
        program = TestProgram().activate(ADDR).precharge(ADDR)
        kinds = [c.kind for c in program.flatten()]
        assert kinds == [CommandKind.ACT, CommandKind.PRE]

    def test_refresh_and_wait(self):
        program = TestProgram().refresh(1, 0).wait(500.0)
        commands = list(program.flatten())
        assert commands[0].kind is CommandKind.REF
        assert commands[0].channel == 1
        assert commands[1].kind is CommandKind.WAIT
        assert commands[1].duration == 500.0


class TestDoubleSided:
    def test_counts_per_side(self):
        program = TestProgram()
        program.hammer_double_sided(ADDR, OTHER, 1000)
        per_row = {}
        for command in program.flatten():
            per_row[command.row] = per_row.get(command.row, 0) \
                + command.count
        assert per_row == {100: 1000, 102: 1000}

    def test_interleave_chunks(self):
        program = TestProgram()
        program.hammer_double_sided(ADDR, OTHER, 1000, interleave=100)
        commands = list(program.flatten())
        assert len(commands) == 20  # 10 chunks x 2 sides
        rows = [c.row for c in commands[:4]]
        assert rows == [100, 102, 100, 102]

    def test_tail_chunk(self):
        program = TestProgram()
        program.hammer_double_sided(ADDR, OTHER, 1050, interleave=100)
        total = sum(c.count for c in program.flatten())
        assert total == 2100

    def test_zero_count_is_noop(self):
        program = TestProgram()
        program.hammer_double_sided(ADDR, OTHER, 0)
        assert list(program.flatten()) == []

    def test_invalid_interleave(self):
        with pytest.raises(ValueError):
            TestProgram().hammer_double_sided(ADDR, OTHER, 10, interleave=0)


class TestLoops:
    def test_loop_unrolls(self):
        program = TestProgram()
        with program.loop(3) as body:
            body.refresh(0, 0)
        kinds = [c.kind for c in program.flatten()]
        assert kinds == [CommandKind.REF] * 3

    def test_nested_loops(self):
        program = TestProgram()
        with program.loop(2) as outer:
            with outer.loop(3) as inner:
                inner.wait(1.0)
        assert program.static_command_count() == 6

    def test_loop_aborted_on_exception(self):
        program = TestProgram()
        with pytest.raises(RuntimeError):
            with program.loop(5) as body:
                body.wait(1.0)
                raise RuntimeError("boom")
        assert program.instructions == []

    def test_negative_loop_count_rejected(self):
        with pytest.raises(ValueError):
            Loop(-1)

    def test_static_count_with_hammer(self):
        program = TestProgram().hammer(ADDR, 1_000_000)
        assert program.static_command_count() == 1  # fused
