"""Tests for the SoftBender test routines."""

import numpy as np
import pytest

from repro.bender.routines import (find_boundaries, identify_mapping,
                                   initialize_window, measure_hc_nth,
                                   measure_row_ber, observe_adjacency,
                                   profile_row_retention, rows_are_coupled,
                                   search_hc_first, window_rows)
from repro.bender.routines.retention_profile import find_side_channel_rows
from repro.core.patterns import CHECKERED0, ROWSTRIPE1
from repro.dram.geometry import RowAddress

VICTIM = RowAddress(0, 0, 0, 5000)


class TestRowInit:
    def test_window_rows_span_radius(self, session):
        rows = window_rows(session, VICTIM)
        assert [r.row for r in rows] == list(range(4992, 5009))

    def test_window_clipped_at_bank_edge(self, session):
        rows = window_rows(session, RowAddress(0, 0, 0, 2))
        assert [r.row for r in rows] == list(range(0, 11))

    def test_initialize_window_writes_pattern(self, session):
        initialize_window(session, VICTIM, CHECKERED0)
        victim_data = session.read_physical_row(VICTIM)
        aggressor_data = session.read_physical_row(VICTIM.neighbor(1))
        far_data = session.read_physical_row(VICTIM.neighbor(3))
        assert np.all(victim_data == 0x55)
        assert np.all(aggressor_data == 0xAA)
        assert np.all(far_data == 0x55)


class TestBerRoutine:
    def test_measure_ber_agrees_with_analytic(self, session, chip0):
        result = measure_row_ber(session, VICTIM, CHECKERED0,
                                 hammer_count=512_000)
        profile = chip0.profile(VICTIM, "Checkered0")
        assert result.ber == pytest.approx(
            profile.expected_ber(512_000), abs=0.006)

    def test_flip_positions_count_matches(self, session):
        result = measure_row_ber(session, VICTIM, CHECKERED0,
                                 hammer_count=512_000)
        assert result.flip_positions.size == result.bitflips
        assert result.total_bits == 8192

    def test_zero_hammers_zero_flips(self, session):
        result = measure_row_ber(session, VICTIM, CHECKERED0,
                                 hammer_count=0)
        assert result.bitflips == 0


class TestHcFirstRoutine:
    def test_search_matches_analytic(self, session, chip0):
        result = search_hc_first(session, VICTIM, CHECKERED0)
        profile = chip0.profile(VICTIM, "Checkered0")
        assert result.found
        assert result.hc_first == pytest.approx(profile.hc_first(),
                                                rel=0.02)

    def test_search_exhausts_budget_gracefully(self, session):
        result = search_hc_first(session, VICTIM, CHECKERED0,
                                 max_hammers=1000)
        assert not result.found
        assert result.hc_first is None

    def test_hc_nth_monotone_and_matches_first(self, session, chip0):
        result = measure_hc_nth(session, VICTIM, CHECKERED0, n=5)
        assert result is not None
        assert all(b >= a for a, b in zip(result.hc_nth, result.hc_nth[1:]))
        profile = chip0.profile(VICTIM, "Checkered0")
        expected = profile.hc_nth(5)
        assert result.hc_nth[0] == pytest.approx(expected[0], rel=0.02)
        assert result.hc_nth[4] == pytest.approx(expected[4], rel=0.03)

    def test_hc_nth_normalized(self, session):
        result = measure_hc_nth(session, VICTIM, CHECKERED0, n=3)
        normalized = result.normalized()
        assert normalized[0] == 1.0
        assert normalized[-1] >= 1.0


class TestRetentionRoutine:
    def test_profile_matches_model(self, session, chip0):
        address = RowAddress(0, 0, 0, 3050)
        profile = profile_row_retention(session, address, max_steps=48)
        truth = chip0.retention.row_retention_ns(address)
        if profile.found:
            assert profile.retention_ns >= truth
            assert profile.retention_ns - truth < 64.0e6

    def test_side_channel_rows_share_time(self, session):
        candidates = [RowAddress(0, 0, 0, row)
                      for row in range(3000, 3120)]
        group = find_side_channel_rows(session, candidates, group_size=2)
        assert len(group) == 2
        assert group[0].retention_ns == group[1].retention_ns


class TestMappingReveng:
    def test_observe_adjacency_finds_neighbors(self, session, chip0):
        mapping = chip0.row_mapping()
        logical = 2048
        observation = observe_adjacency(session, 0, 0, 0, logical)
        predicted = set(mapping.physical_neighbors(logical))
        assert observation.flipped_logical
        assert observation.flipped_logical <= predicted

    def test_identify_recovers_family(self, chip0, chip4):
        for chip in (chip0, chip4):
            session_device = chip.make_device()
            from repro.bender.host import BenderSession

            session = BenderSession(session_device)
            mapping = identify_mapping(
                session, probe_rows=tuple(range(2048, 2072)))
            assert mapping.name == chip.spec.mapping_family


class TestSubarrayReveng:
    def test_coupled_within_subarray(self, session):
        assert rows_are_coupled(session, 0, 0, 0, 500)

    def test_uncoupled_at_boundary(self, session):
        # Rows 831 | 832 straddle the first subarray boundary.
        assert not rows_are_coupled(session, 0, 0, 0, 831)

    def test_find_boundaries_in_range(self, session, chip0):
        report = find_boundaries(session, row_range=range(800, 900))
        assert 832 in report.boundaries

    def test_recovered_sizes(self, chip0):
        """Scanning the first three subarrays recovers 832/832/768."""
        from repro.bender.host import BenderSession

        session = BenderSession(chip0.make_device(),
                                mapping=chip0.row_mapping())
        report = find_boundaries(session, row_range=range(0, 2440))
        assert report.boundaries[:4] == (0, 832, 1664, 2432)
        assert report.sizes[:3] == (832, 832, 768)
