"""Shared fixtures.

Chip profiles are expensive to construct (their calibration runs a
Monte-Carlo refinement), so they are session-scoped; devices and sessions
are function-scoped because they carry mutable state.
"""

import os

import numpy as np
import pytest

from repro.bender.host import BenderSession
from repro.chips.profiles import ChipProfile, all_chips, make_chip
from repro.dram.cell_model import CellPopulation
from repro.dram.device import HBM2Stack, UniformProfileProvider
from repro.dram.geometry import RowAddress


@pytest.fixture(scope="session", autouse=True)
def _hermetic_calibration_cache(tmp_path_factory):
    """Point the calibration cache at a per-session directory.

    Tests must neither read stale entries from nor write into the
    user's real ``~/.cache/hbmsim``; within the session the cache still
    works normally (and speeds up subprocess-based tests).
    """
    cache_dir = tmp_path_factory.mktemp("hbmsim-cache")
    previous = os.environ.get("HBMSIM_CACHE_DIR")
    os.environ["HBMSIM_CACHE_DIR"] = str(cache_dir)
    yield
    if previous is None:
        os.environ.pop("HBMSIM_CACHE_DIR", None)
    else:
        os.environ["HBMSIM_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def chip0() -> ChipProfile:
    """Chip 0: the TRR-equipped, temperature-controlled chip."""
    return make_chip(0)


@pytest.fixture(scope="session")
def chip4() -> ChipProfile:
    """Chip 4: the chip with the largest channel spread (Fig. 15's chip)."""
    return make_chip(4)


@pytest.fixture(scope="session")
def chip5() -> ChipProfile:
    """Chip 5: the least RowHammer-vulnerable chip by mean BER."""
    return make_chip(5)


@pytest.fixture(scope="session")
def chips():
    """All six calibrated chips."""
    return all_chips()


@pytest.fixture
def device(chip0) -> HBM2Stack:
    """A fresh Chip 0 device (TRR enabled, mapping installed)."""
    return chip0.make_device()


@pytest.fixture
def session(chip0, device) -> BenderSession:
    """A host session on Chip 0 with ground-truth mapping injected."""
    return BenderSession(device, mapping=chip0.row_mapping())


@pytest.fixture
def plain_device() -> HBM2Stack:
    """A device with uniform cell population, identity mapping, no TRR."""
    return HBM2Stack(profile_provider=UniformProfileProvider(
        CellPopulation(f_weak=0.014, mu_weak=5.0)))


@pytest.fixture
def plain_session(plain_device) -> BenderSession:
    """Session on the uniform device (mapping = identity)."""
    from repro.dram.row_mapping import IdentityMapping

    return BenderSession(plain_device,
                         mapping=IdentityMapping(
                             plain_device.geometry.rows))


@pytest.fixture
def sample_address() -> RowAddress:
    """A mid-bank row address away from resilient subarrays."""
    return RowAddress(channel=2, pseudo_channel=0, bank=3, row=5000)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for test-local randomness."""
    return np.random.default_rng(12345)
