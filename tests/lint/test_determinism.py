"""Determinism-linter tests: per-rule fixtures, allowlists, baseline
machinery, and the repo-wide cleanliness gate."""

from pathlib import Path

import pytest

from repro.lint.baseline import (Baseline, BaselineError, Suppression,
                                 load_baseline)
from repro.lint.determinism import lint_source, lint_tree
from repro.lint.findings import Finding

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _rules(findings):
    return sorted({f.rule for f in findings})


# -- D101: ambient RNG ---------------------------------------------------


def test_d101_numpy_global_state():
    source = "import numpy as np\nx = np.random.rand(3)\n"
    assert _rules(lint_source(source, "src/repro/foo.py")) == ["D101"]


def test_d101_numpy_aliased_module():
    source = "import numpy.random as npr\nx = npr.randint(0, 4)\n"
    assert _rules(lint_source(source, "src/repro/foo.py")) == ["D101"]


def test_d101_stdlib_random():
    source = "import random\nx = random.random()\n"
    assert _rules(lint_source(source, "src/repro/foo.py")) == ["D101"]


def test_d101_from_import_binds_global_state():
    source = "from numpy.random import randint\n"
    assert _rules(lint_source(source, "src/repro/foo.py")) == ["D101"]


def test_d101_seeded_constructors_allowed():
    source = (
        "import random\n"
        "import numpy as np\n"
        "from numpy.random import default_rng, Philox\n"
        "a = np.random.default_rng(7)\n"
        "b = np.random.Generator(np.random.PCG64(1))\n"
        "c = random.Random(3)\n"
        "d = default_rng(9)\n"
    )
    assert lint_source(source, "src/repro/foo.py") == []


# -- D102: wall clock ----------------------------------------------------


def test_d102_time_time():
    source = "import time\nt = time.time()\n"
    assert _rules(lint_source(source, "src/repro/foo.py")) == ["D102"]


def test_d102_datetime_now():
    source = "import datetime\nt = datetime.datetime.now()\n"
    assert _rules(lint_source(source, "src/repro/foo.py")) == ["D102"]


def test_d102_allowed_in_bench_modules():
    source = "import time\nt = time.time()\n"
    for allowed in ("src/repro/perf.py",
                    "src/repro/experiments/bench.py",
                    "src/repro/experiments/perf_gate.py"):
        assert lint_source(source, allowed) == []


def test_d102_perf_counter_allowed_anywhere():
    source = "import time\nt = time.perf_counter()\n"
    assert lint_source(source, "src/repro/foo.py") == []


# -- D103 / D104 ---------------------------------------------------------


def test_d103_mutable_defaults():
    source = "def f(x=[]):\n    return x\n"
    assert _rules(lint_source(source, "src/repro/foo.py")) == ["D103"]
    source = "g = lambda acc=dict(): acc\n"
    assert _rules(lint_source(source, "src/repro/foo.py")) == ["D103"]


def test_d103_immutable_defaults_allowed():
    source = "def f(x=None, y=(), z=0, w=frozenset()):\n    return x\n"
    assert lint_source(source, "src/repro/foo.py") == []


def test_d104_bare_except():
    source = "try:\n    pass\nexcept:\n    pass\n"
    assert _rules(lint_source(source, "src/repro/foo.py")) == ["D104"]
    typed = "try:\n    pass\nexcept ValueError:\n    pass\n"
    assert lint_source(typed, "src/repro/foo.py") == []


# -- D105: env reads -----------------------------------------------------


def test_d105_environ_and_getenv():
    source = "import os\na = os.environ.get('X')\nb = os.getenv('Y')\n"
    findings = lint_source(source, "src/repro/foo.py")
    assert _rules(findings) == ["D105"] and len(findings) == 2


def test_d105_allowed_in_entry_points():
    source = "import os\na = os.environ.get('X')\n"
    assert lint_source(source, "src/repro/experiments/__main__.py") == []


# -- D100: parse errors --------------------------------------------------


def test_d100_unparseable_module():
    assert _rules(lint_source("def f(:\n", "src/repro/foo.py")) == ["D100"]


# -- baseline machinery --------------------------------------------------


def _finding(rule="D105", location="src/repro/chips/cache.py:49"):
    return Finding(rule=rule, severity="error", message="m",
                   location=location)


def test_suppression_matches_line_agnostically():
    suppression = Suppression("D105", "repro/chips/cache.py")
    assert suppression.matches(_finding(location="src/repro/chips/cache.py:49"))
    assert suppression.matches(_finding(location="src/repro/chips/cache.py:54"))
    assert not suppression.matches(_finding(rule="D101"))
    assert not suppression.matches(
        _finding(location="src/repro/faults/plan.py:10"))


def test_baseline_apply_and_unused():
    used_s = Suppression("D105", "repro/chips/cache.py")
    rotten = Suppression("D105", "repro/never/there.py")
    baseline = Baseline([used_s, rotten])
    surviving, used = baseline.apply([_finding(), _finding(rule="D101")])
    assert [f.rule for f in surviving] == ["D101"]
    assert used == [used_s]
    assert baseline.unused(used) == [rotten]


def test_load_baseline_missing_file_is_empty(tmp_path):
    baseline = load_baseline(tmp_path / "absent.json")
    assert baseline.suppressions == []


def test_load_baseline_rejects_malformed(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(bad)
    bad.write_text('{"suppressions": [{"rule": "D105"}]}',
                   encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(bad)


def test_packaged_baseline_loads_and_is_all_reviewed():
    baseline = load_baseline()
    assert baseline.suppressions, "packaged baseline must not be empty"
    for suppression in baseline.suppressions:
        assert suppression.reason, \
            f"{suppression.location}: baseline entries need a reason"


# -- the repository itself lints clean -----------------------------------


def test_repo_tree_clean_under_baseline():
    findings = lint_tree([REPO_SRC])
    surviving, used = load_baseline().apply(findings)
    assert surviving == [], "\n".join(f.render() for f in surviving)
    # Every packaged suppression must still be earning its keep.
    assert load_baseline().unused(used) == []
