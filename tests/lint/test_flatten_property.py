"""Property test: three independent command-count accountings agree.

``TestProgram.static_command_count()`` (arithmetic over the instruction
tree), ``flatten()`` (actual unrolling), and the protocol verifier's
``commands_checked`` (symbolic walk with loop extrapolation) must be
bit-equal on arbitrarily nested loop programs — including zero-count
loops and loops long enough to trigger the verifier's steady-state
extrapolation path.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bender.program import Loop, TestProgram
from repro.dram import commands as cmd
from repro.lint.protocol import verify_program


def _leaf(code: int):
    """Map a small int to a concrete command (deterministic)."""
    if code == 0:
        return cmd.act(0, 0, 0, 100)
    if code == 1:
        return cmd.pre(0, 0, 0)
    if code == 2:
        return cmd.hammer(0, 0, 0, 100, 3)
    if code == 3:
        return cmd.wait(50.0)
    return cmd.Command(cmd.CommandKind.NOP)


_leaves = st.integers(min_value=0, max_value=4).map(_leaf)

# Nested instruction trees: leaves are commands, inner nodes are loops
# with counts spanning zero, small, and extrapolation-triggering sizes.
_instructions = st.recursive(
    _leaves,
    lambda children: st.builds(
        Loop,
        st.sampled_from([0, 1, 2, 3, 7, 5000, 100_000]),
        st.lists(children, min_size=1, max_size=4)),
    max_leaves=12)


@settings(max_examples=120, deadline=None)
@given(st.lists(_instructions, min_size=0, max_size=6))
def test_count_flatten_and_verifier_agree(instructions):
    program = TestProgram("prop")
    program.extend(instructions)
    static = program.static_command_count()
    report = verify_program(program)
    assert report.commands_checked == static
    # Only unroll for real when it is tractable; the verifier has no
    # such escape hatch, which is the point of the comparison.
    if static <= 50_000:
        assert len(list(program.flatten())) == static


def test_deep_nesting_exact():
    inner = Loop(3, [cmd.act(0, 0, 0, 100), cmd.pre(0, 0, 0)])
    middle = Loop(4, [inner, cmd.wait(10.0)])
    outer = Loop(5, [middle, cmd.Command(cmd.CommandKind.NOP)])
    program = TestProgram("deep")
    program.append(outer)
    expected = 5 * (4 * (3 * 2 + 1) + 1)
    assert program.static_command_count() == expected
    assert len(list(program.flatten())) == expected
    assert verify_program(program).commands_checked == expected


def test_zero_count_loop_contributes_nothing():
    program = TestProgram("zero")
    program.append(Loop(0, [cmd.act(0, 0, 0, 100)]))
    program.append(cmd.Command(cmd.CommandKind.NOP))
    assert program.static_command_count() == 1
    assert len(list(program.flatten())) == 1
    assert verify_program(program).commands_checked == 1
