"""Suite for the streaming checker (``repro.lint.stream``).

Contract under test: the offline batch verifier is *provably* a driver
over the streaming :class:`TimingChecker` — feeding a program's
instructions one at a time through a :class:`StreamingVerifier` (loop
extrapolation included) yields findings, command count and symbolic
clock bit-equal to :func:`verify_program`, for arbitrary
loop-structured programs.  Plus the streaming-specific surface: per-
command findings from :meth:`check`, idempotent :meth:`finish`,
:meth:`sync_clock`, and auto-refresh mode.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bender.program import Loop, TestProgram
from repro.dram import commands as cmd
from repro.dram.geometry import RowAddress
from repro.dram.timing import DEFAULT_TIMINGS
from repro.lint.protocol import verify_program
from repro.lint.stream import (StreamingVerifier, TimingChecker,
                               refreshed_pcs_of, static_count)

ROW_BYTES = 64  # lint never touches WR payloads; keep arrays tiny


# ----------------------------------------------------------------------
# Program strategy: loop-structured, conflict-prone
# ----------------------------------------------------------------------


def _commands():
    rows = st.sampled_from([100, 101, 200])
    banks = st.integers(0, 1)
    return st.one_of(
        st.builds(cmd.act, st.just(0), st.just(0), banks, rows),
        st.builds(cmd.pre, st.just(0), st.just(0), banks),
        st.builds(cmd.rd, st.just(0), st.just(0), banks, rows),
        st.builds(lambda b, r, f: cmd.wr(
            0, 0, b, r, np.full(ROW_BYTES, f, dtype=np.uint8)),
            banks, rows, st.integers(0, 255)),
        st.builds(cmd.hammer, st.just(0), st.just(0), banks, rows,
                  st.integers(0, 120),
                  st.one_of(st.none(), st.floats(10.0, 80.0))),
        st.builds(cmd.wait, st.floats(1.0, 4000.0)),
        st.builds(cmd.ref, st.just(0), st.just(0)),
    )


def _instructions(depth=2):
    base = _commands()
    if depth == 0:
        return base
    return st.one_of(
        base,
        st.builds(Loop, st.integers(0, 2500),
                  st.lists(_instructions(depth - 1), min_size=1,
                           max_size=4)))


def _programs():
    return st.lists(_instructions(), min_size=0, max_size=8).map(
        _to_program)


def _to_program(instructions):
    program = TestProgram("stream-prop")
    program.instructions = list(instructions)
    return program


# ----------------------------------------------------------------------
# Batch == incremental streaming (the tentpole equivalence)
# ----------------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(_programs())
def test_incremental_feed_bit_equal_to_batch_verifier(program):
    batch = verify_program(program)
    verifier = StreamingVerifier(
        program.name,
        refreshed_pcs=refreshed_pcs_of(program.instructions))
    streamed = []
    for index, instruction in enumerate(program.instructions):
        streamed.extend(verifier.feed(instruction, str(index)))
    streamed.extend(verifier.finish())
    assert streamed == batch.findings
    assert verifier.checker.commands == batch.commands_checked
    assert verifier.checker.clock == batch.elapsed_ns


@settings(max_examples=150, deadline=None)
@given(_programs())
def test_extrapolated_command_count_matches_static(program):
    report = verify_program(program)
    assert report.commands_checked == program.static_command_count()


@settings(max_examples=60, deadline=None)
@given(_programs())
def test_flattened_stream_agrees_on_error_rules(program):
    """A fully flattened walk trips the same device-raising rules.

    Paths (and so dedup granularity, P004 segment boundaries) differ
    between the extrapolated and the flattened walk, but the *error*
    rules — the ones predicting a device ``TimingError`` — depend only
    on row-buffer state, which extrapolation preserves exactly.
    """
    batch = verify_program(program)
    checker = TimingChecker(
        program.name,
        refreshed_pcs=refreshed_pcs_of(program.instructions))
    for command in program.flatten():
        checker.check(command)
    checker.finish()
    batch_errors = {f.rule for f in batch.findings
                    if f.severity == "error"}
    flat_errors = {f.rule for f in checker.findings
                   if f.severity == "error"}
    assert batch_errors == flat_errors


# ----------------------------------------------------------------------
# Streaming surface
# ----------------------------------------------------------------------


class TestTimingChecker:
    def test_check_returns_only_new_findings(self):
        checker = TimingChecker("t")
        assert checker.check(cmd.act(0, 0, 0, 100)) == []
        findings = checker.check(cmd.act(0, 0, 0, 101))
        assert [f.rule for f in findings] == ["P001"]
        # the cumulative list keeps everything
        assert [f.rule for f in checker.findings] == ["P001"]

    def test_default_paths_are_command_indices(self):
        checker = TimingChecker("t")
        checker.check(cmd.act(0, 0, 0, 100))
        findings = checker.check(cmd.act(0, 0, 0, 101))
        assert findings[0].location == "t@1"

    def test_finish_is_idempotent(self):
        checker = TimingChecker("t", refreshed_pcs={(0, 0)})
        checker.check(cmd.ref(0, 0))
        checker.sync_clock(50 * DEFAULT_TIMINGS.t_refi)
        first = checker.finish()
        assert [f.rule for f in first] == ["P006"]
        assert checker.finish() == []
        assert [f.rule for f in checker.findings] == ["P006"]

    def test_sync_clock_overrides_symbolic_time(self):
        checker = TimingChecker("t")
        checker.check(cmd.wait(100.0))
        assert checker.clock == 100.0
        checker.sync_clock(250.0)
        assert checker.clock == 250.0

    def test_auto_refresh_joins_at_first_ref(self):
        checker = TimingChecker("t")  # refreshed_pcs=None -> auto
        assert checker.refreshed_pcs == set()
        budget = DEFAULT_TIMINGS.activation_budget
        # Pre-REF activations are not charged against the budget.
        checker.check(cmd.hammer(0, 0, 0, 100, budget + 10))
        assert [f.rule for f in checker.findings] == []
        checker.check(cmd.ref(0, 0))
        assert checker.refreshed_pcs == {(0, 0)}
        checker.check(cmd.hammer(0, 0, 0, 100, budget + 10))
        assert [f.rule for f in checker.findings] == ["P004"]

    def test_precomputed_refresh_charges_from_first_command(self):
        budget = DEFAULT_TIMINGS.activation_budget
        checker = TimingChecker("t", refreshed_pcs={(0, 0)})
        checker.check(cmd.hammer(0, 0, 0, 100, budget + 10))
        assert [f.rule for f in checker.findings] == ["P004"]


class TestStaticCount:
    def test_matches_program_static_command_count(self):
        program = TestProgram("t")
        with program.loop(7) as body:
            body.hammer(RowAddress(0, 0, 0, 100), 3)
            body.refresh(0, 0)
        program.wait(10.0)
        assert static_count(program.instructions) \
            == program.static_command_count()
