"""CLI and interpreter-gate tests: exit codes, .sbp verification, and
the ``HBMSIM_LINT`` pre-execution gate."""

from pathlib import Path

import pytest

from repro.bender.interpreter import Interpreter
from repro.bender.program import TestProgram
from repro.dram.device import HBM2Stack
from repro.dram.geometry import RowAddress
from repro.errors import HbmSimError, LintError
from repro.lint.__main__ import main
from repro.lint.config import LintMode, lint_mode

FIXTURES = Path(__file__).resolve().parent / "fixtures"


# -- exit codes ----------------------------------------------------------


def test_clean_sbp_exits_zero(capsys):
    assert main([str(FIXTURES / "clean.sbp")]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


@pytest.mark.parametrize("fixture,rule", [
    ("double_act.sbp", "P001"),
    ("budget_overflow.sbp", "P004"),
    ("late_ref.sbp", "P005"),
])
def test_violating_sbp_exits_nonzero_with_rule_id(capsys, fixture, rule):
    assert main([str(FIXTURES / fixture)]) == 1
    out = capsys.readouterr().out
    assert rule in out
    # Each fixture is built to trip exactly one rule.
    for other in ("P001", "P002", "P003", "P004", "P005", "P006"):
        if other != rule:
            assert other not in out


def test_missing_path_is_usage_error(capsys):
    assert main(["/no/such/path.sbp"]) == 2


def test_no_arguments_is_usage_error(capsys):
    assert main([]) == 2


def test_unassemblable_sbp_is_usage_error(tmp_path, capsys):
    bad = tmp_path / "bad.sbp"
    bad.write_text("FROB 1 2 3\n", encoding="utf-8")
    assert main([str(bad)]) == 2
    assert "bad.sbp" in capsys.readouterr().err


def test_rules_listing(capsys):
    assert main(["--rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("P001", "P006", "D101", "D105"):
        assert rule in out


def test_malformed_baseline_is_usage_error(tmp_path, capsys):
    bad = tmp_path / "baseline.json"
    bad.write_text("{oops", encoding="utf-8")
    source = tmp_path / "mod.py"
    source.write_text("x = 1\n", encoding="utf-8")
    assert main([str(source), "--baseline", str(bad)]) == 2


def test_python_tree_linting(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import numpy as np\nx = np.random.rand()\n",
                     encoding="utf-8")
    assert main([str(dirty)]) == 1
    assert "D101" in capsys.readouterr().out
    clean = tmp_path / "clean.py"
    clean.write_text("import numpy as np\nr = np.random.default_rng(0)\n",
                     encoding="utf-8")
    assert main([str(clean)]) == 0


def test_json_output(tmp_path, capsys):
    import json

    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n", encoding="utf-8")
    assert main([str(dirty), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"][0]["rule"] == "D102"


def test_repo_sources_exit_zero():
    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    assert main([str(src)]) == 0


# -- output formats ------------------------------------------------------


def test_format_json_is_byte_identical_to_json_flag(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n", encoding="utf-8")
    assert main([str(dirty), "--json"]) == 1
    via_alias = capsys.readouterr().out
    assert main([str(dirty), "--format=json"]) == 1
    via_format = capsys.readouterr().out
    assert via_alias == via_format


def test_json_conflicts_with_other_format(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([str(FIXTURES / "clean.sbp"), "--json", "--format=sarif"])
    assert excinfo.value.code == 2


def test_sarif_output(capsys):
    import json

    assert main([str(FIXTURES / "double_act.sbp"),
                 "--format=sarif", "--no-baseline"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.lint"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {"P001", "P006", "D101", "D105"} <= rule_ids
    result = run["results"][0]
    assert result["ruleId"] == "P001"
    assert result["level"] == "error"
    assert result["locations"][0]["logicalLocations"][0][
        "fullyQualifiedName"].startswith("double_act.sbp@")


def test_sarif_source_locations_carry_line_numbers(tmp_path, capsys):
    import json

    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n", encoding="utf-8")
    assert main([str(dirty), "--format=sarif"]) == 1
    payload = json.loads(capsys.readouterr().out)
    location = payload["runs"][0]["results"][0]["locations"][0]
    physical = location["physicalLocation"]
    assert physical["artifactLocation"]["uri"].endswith("dirty.py")
    assert physical["region"]["startLine"] == 2


def test_sarif_severity_mapping(capsys):
    import json

    assert main([str(FIXTURES / "budget_overflow.sbp"),
                 "--format=sarif", "--no-baseline"]) == 1
    payload = json.loads(capsys.readouterr().out)
    levels = {r["ruleId"]: r["level"]
              for r in payload["runs"][0]["results"]}
    assert levels["P004"] == "warning"  # protocol -> warning


# -- baseline rot gate ---------------------------------------------------


def _rotted_baseline(tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        '{"version": 1, "suppressions": ['
        '{"rule": "P001", "location": "nonexistent.sbp",'
        ' "reason": "rotted"}]}\n', encoding="utf-8")
    return baseline


def test_fail_unused_exits_one_on_rotted_baseline(tmp_path, capsys):
    baseline = _rotted_baseline(tmp_path)
    assert main([str(FIXTURES / "clean.sbp"),
                 "--baseline", str(baseline)]) == 0  # note only
    assert main([str(FIXTURES / "clean.sbp"),
                 "--baseline", str(baseline), "--fail-unused"]) == 1
    assert "unused baseline suppression" in capsys.readouterr().err


def test_prune_rewrites_baseline(tmp_path, capsys):
    import json

    baseline = _rotted_baseline(tmp_path)
    assert main([str(FIXTURES / "clean.sbp"),
                 "--baseline", str(baseline), "--prune"]) == 0
    payload = json.loads(baseline.read_text(encoding="utf-8"))
    assert payload == {"version": 1, "suppressions": []}
    # pruned baseline now passes the rot gate
    assert main([str(FIXTURES / "clean.sbp"),
                 "--baseline", str(baseline), "--fail-unused"]) == 0


def test_prune_keeps_used_suppressions(tmp_path, capsys):
    import json

    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "version": 1,
        "suppressions": [
            {"rule": "P001", "location": "double_act.sbp@1",
             "reason": "kept"},
            {"rule": "P002", "location": "nonexistent.sbp",
             "reason": "rotted"},
        ]}), encoding="utf-8")
    assert main([str(FIXTURES / "double_act.sbp"),
                 "--baseline", str(baseline), "--prune"]) == 0
    payload = json.loads(baseline.read_text(encoding="utf-8"))
    assert [s["rule"] for s in payload["suppressions"]] == ["P001"]


def test_packaged_baseline_has_no_rot():
    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    assert main([str(src), "--routines", "--fail-unused"]) == 0


# -- HBMSIM_LINT interpreter gate ----------------------------------------


def _violating_program():
    program = TestProgram("gate_bad")
    row = RowAddress(0, 0, 0, 100)
    program.activate(row)
    program.activate(row.with_row(101))
    return program


def test_lint_mode_parsing(monkeypatch):
    # Unrecognized values (warn-once fallback) are covered in
    # tests/lint/test_config.py.
    for raw, expected in [("", LintMode.OFF), ("off", LintMode.OFF),
                          ("0", LintMode.OFF), ("warn", LintMode.WARN),
                          ("1", LintMode.WARN),
                          ("strict", LintMode.STRICT),
                          ("online", LintMode.ONLINE)]:
        monkeypatch.setenv("HBMSIM_LINT", raw)
        assert lint_mode() is expected
    monkeypatch.delenv("HBMSIM_LINT")
    assert lint_mode() is LintMode.OFF


def test_strict_gate_raises_before_execution(monkeypatch):
    monkeypatch.setenv("HBMSIM_LINT", "strict")
    device = HBM2Stack()
    with pytest.raises(LintError) as excinfo:
        Interpreter(device).run(_violating_program())
    assert excinfo.value.findings[0].rule == "P001"
    assert isinstance(excinfo.value, HbmSimError)
    # Strict mode must fire *before* the first command touches the
    # device: no time passed, no ACT was issued.
    assert device.now_ns == 0.0
    assert device.stats.acts == 0


def test_warn_gate_prints_and_executes(monkeypatch, capsys):
    monkeypatch.setenv("HBMSIM_LINT", "warn")
    program = TestProgram("gate_ok")
    program.hammer(RowAddress(0, 0, 0, 100), 10, t_on=5.0)  # P003
    result = Interpreter(HBM2Stack()).run(program)
    assert result.commands_executed == 1
    assert "P003" in capsys.readouterr().err


def test_off_gate_is_default_noop(monkeypatch, capsys):
    monkeypatch.delenv("HBMSIM_LINT", raising=False)
    program = TestProgram("gate_quiet")
    program.hammer(RowAddress(0, 0, 0, 100), 10, t_on=5.0)
    Interpreter(HBM2Stack()).run(program)
    assert capsys.readouterr().err == ""
