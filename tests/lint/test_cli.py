"""CLI and interpreter-gate tests: exit codes, .sbp verification, and
the ``HBMSIM_LINT`` pre-execution gate."""

from pathlib import Path

import pytest

from repro.bender.interpreter import Interpreter
from repro.bender.program import TestProgram
from repro.dram.device import HBM2Stack
from repro.dram.geometry import RowAddress
from repro.errors import HbmSimError, LintError
from repro.lint.__main__ import main
from repro.lint.config import LintMode, lint_mode

FIXTURES = Path(__file__).resolve().parent / "fixtures"


# -- exit codes ----------------------------------------------------------


def test_clean_sbp_exits_zero(capsys):
    assert main([str(FIXTURES / "clean.sbp")]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


@pytest.mark.parametrize("fixture,rule", [
    ("double_act.sbp", "P001"),
    ("budget_overflow.sbp", "P004"),
    ("late_ref.sbp", "P005"),
])
def test_violating_sbp_exits_nonzero_with_rule_id(capsys, fixture, rule):
    assert main([str(FIXTURES / fixture)]) == 1
    out = capsys.readouterr().out
    assert rule in out
    # Each fixture is built to trip exactly one rule.
    for other in ("P001", "P002", "P003", "P004", "P005", "P006"):
        if other != rule:
            assert other not in out


def test_missing_path_is_usage_error(capsys):
    assert main(["/no/such/path.sbp"]) == 2


def test_no_arguments_is_usage_error(capsys):
    assert main([]) == 2


def test_unassemblable_sbp_is_usage_error(tmp_path, capsys):
    bad = tmp_path / "bad.sbp"
    bad.write_text("FROB 1 2 3\n", encoding="utf-8")
    assert main([str(bad)]) == 2
    assert "bad.sbp" in capsys.readouterr().err


def test_rules_listing(capsys):
    assert main(["--rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("P001", "P006", "D101", "D105"):
        assert rule in out


def test_malformed_baseline_is_usage_error(tmp_path, capsys):
    bad = tmp_path / "baseline.json"
    bad.write_text("{oops", encoding="utf-8")
    source = tmp_path / "mod.py"
    source.write_text("x = 1\n", encoding="utf-8")
    assert main([str(source), "--baseline", str(bad)]) == 2


def test_python_tree_linting(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import numpy as np\nx = np.random.rand()\n",
                     encoding="utf-8")
    assert main([str(dirty)]) == 1
    assert "D101" in capsys.readouterr().out
    clean = tmp_path / "clean.py"
    clean.write_text("import numpy as np\nr = np.random.default_rng(0)\n",
                     encoding="utf-8")
    assert main([str(clean)]) == 0


def test_json_output(tmp_path, capsys):
    import json

    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n", encoding="utf-8")
    assert main([str(dirty), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"][0]["rule"] == "D102"


def test_repo_sources_exit_zero():
    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    assert main([str(src)]) == 0


# -- HBMSIM_LINT interpreter gate ----------------------------------------


def _violating_program():
    program = TestProgram("gate_bad")
    row = RowAddress(0, 0, 0, 100)
    program.activate(row)
    program.activate(row.with_row(101))
    return program


def test_lint_mode_parsing(monkeypatch):
    for raw, expected in [("", LintMode.OFF), ("off", LintMode.OFF),
                          ("0", LintMode.OFF), ("warn", LintMode.WARN),
                          ("1", LintMode.WARN),
                          ("strict", LintMode.STRICT),
                          ("bogus", LintMode.WARN)]:
        monkeypatch.setenv("HBMSIM_LINT", raw)
        assert lint_mode() is expected
    monkeypatch.delenv("HBMSIM_LINT")
    assert lint_mode() is LintMode.OFF


def test_strict_gate_raises_before_execution(monkeypatch):
    monkeypatch.setenv("HBMSIM_LINT", "strict")
    device = HBM2Stack()
    with pytest.raises(LintError) as excinfo:
        Interpreter(device).run(_violating_program())
    assert excinfo.value.findings[0].rule == "P001"
    assert isinstance(excinfo.value, HbmSimError)
    # Strict mode must fire *before* the first command touches the
    # device: no time passed, no ACT was issued.
    assert device.now_ns == 0.0
    assert device.stats.acts == 0


def test_warn_gate_prints_and_executes(monkeypatch, capsys):
    monkeypatch.setenv("HBMSIM_LINT", "warn")
    program = TestProgram("gate_ok")
    program.hammer(RowAddress(0, 0, 0, 100), 10, t_on=5.0)  # P003
    result = Interpreter(HBM2Stack()).run(program)
    assert result.commands_executed == 1
    assert "P003" in capsys.readouterr().err


def test_off_gate_is_default_noop(monkeypatch, capsys):
    monkeypatch.delenv("HBMSIM_LINT", raising=False)
    program = TestProgram("gate_quiet")
    program.hammer(RowAddress(0, 0, 0, 100), 10, t_on=5.0)
    Interpreter(HBM2Stack()).run(program)
    assert capsys.readouterr().err == ""
