"""Protocol-verifier tests: rule triggers, exemptions, and the
agreement property (error-severity findings <=> interpreter
``TimingError``)."""

import numpy as np
import pytest

from repro.bender.interpreter import Interpreter
from repro.bender.program import Loop, TestProgram
from repro.dram import commands as cmd
from repro.dram.device import HBM2Stack
from repro.dram.geometry import RowAddress
from repro.dram.timing import DEFAULT_TIMINGS
from repro.errors import TimingError
from repro.lint.protocol import verify_program, verify_programs

ROW = RowAddress(0, 0, 0, 100)


def _rules(report):
    return sorted({f.rule for f in report.findings})


# -- individual rule triggers -------------------------------------------


def test_p001_double_act():
    program = TestProgram("double_act")
    program.activate(ROW)
    program.activate(ROW.with_row(101))
    report = verify_program(program)
    assert _rules(report) == ["P001"]
    assert report.errors and report.errors[0].rule == "P001"


def test_p001_hammer_on_open_bank():
    program = TestProgram("hammer_open")
    program.activate(ROW)
    program.hammer(ROW.with_row(101), 10)
    assert _rules(verify_program(program)) == ["P001"]


def test_p002_read_conflicting_row():
    program = TestProgram("rw_conflict")
    program.activate(ROW)
    program.read_row(ROW.with_row(101), "victim")
    assert _rules(verify_program(program)) == ["P002"]


def test_p003_short_on_time_is_warning_only():
    program = TestProgram("short_t_on")
    program.hammer(ROW, 10, t_on=10.0)  # below tRAS = 29 ns
    report = verify_program(program)
    assert _rules(report) == ["P003"]
    assert not report.errors  # the platform stretches it; no raise


def test_p004_activation_budget():
    program = TestProgram("budget")
    program.refresh(0, 0)
    program.hammer(ROW, DEFAULT_TIMINGS.activation_budget + 22)
    program.refresh(0, 0)
    report = verify_program(program)
    assert _rules(report) == ["P004"]
    assert "budget" in report.by_rule("P004")[0].message


def test_p005_postponed_ref():
    program = TestProgram("late_ref")
    program.refresh(0, 0)
    program.wait(DEFAULT_TIMINGS.t_refi
                 + DEFAULT_TIMINGS.max_ref_postpone + 1000.0)
    program.refresh(0, 0)
    assert _rules(verify_program(program)) == ["P005"]


def test_p006_underprovisioned_refresh():
    program = TestProgram("starved")
    program.refresh(0, 0)
    program.wait(100 * DEFAULT_TIMINGS.t_refi)
    assert _rules(verify_program(program)) == ["P006"]


# -- exemptions and edge semantics --------------------------------------


def test_refresh_disabled_program_exempt_from_budget():
    # The paper's methodology (Section 3.1): no REF at all means the
    # refresh rules do not apply, however many activations occur.
    program = TestProgram("refresh_disabled")
    program.hammer(ROW, 1_000_000)
    assert verify_program(program).ok


def test_budget_scoped_to_refreshed_pseudo_channel():
    # REFs on pseudo channel (0, 0) must not make banks of the
    # never-refreshed (0, 1) subject to the budget.
    # 500 acts: well over the 78-act budget, but short enough (22.5 us)
    # not to postpone pc (0, 0)'s next REF beyond the 39 us limit.
    other = RowAddress(0, 1, 0, 100)
    program = TestProgram("pc_scope")
    program.refresh(0, 0)
    program.hammer(other, 500)
    program.refresh(0, 0)
    assert verify_program(program).ok


def test_hammer_zero_count_is_noop_even_on_open_bank():
    # The device returns before any check when count == 0.
    program = TestProgram("zero_hammer")
    program.activate(ROW)
    program.hammer(ROW.with_row(101), 0)
    assert verify_program(program).ok


def test_noop_pre_is_legal():
    program = TestProgram("noop_pre")
    program.precharge(ROW)
    program.precharge(ROW)
    assert verify_program(program).ok


def test_act_pre_cycle_clean():
    program = TestProgram("act_pre")
    program.activate(ROW)
    program.precharge(ROW)
    program.activate(ROW.with_row(101))
    program.precharge(ROW)
    assert verify_program(program).ok


def test_finding_carries_instruction_path():
    program = TestProgram("located")
    with program.loop(3) as body:
        body.activate(ROW)  # opens; second iteration hits open bank
    report = verify_program(program)
    finding = report.by_rule("P001")[0]
    assert finding.location.startswith("located@0.")
    assert finding.command_index is not None


# -- loop extrapolation --------------------------------------------------


def test_loop_extrapolation_matches_static_count():
    program = TestProgram("big")
    body = [cmd.hammer(0, 0, 0, 4999, 32), cmd.hammer(0, 0, 0, 5001, 32)]
    program.append(Loop(1_000_000, body))
    report = verify_program(program)
    assert report.commands_checked == program.static_command_count()
    expected = 2_000_000 * 32 * DEFAULT_TIMINGS.act_to_act(
        DEFAULT_TIMINGS.t_ras)
    assert report.elapsed_ns == pytest.approx(expected, rel=1.0e-9)


def test_loop_extrapolation_still_catches_budget():
    # The violation only materializes after extrapolating a long loop:
    # each iteration adds acts to a refresh-managed bank without a REF.
    program = TestProgram("slow_burn")
    program.refresh(0, 0)
    program.append(Loop(100_000, [cmd.act(0, 0, 0, 100),
                                  cmd.pre(0, 0, 0)]))
    program.refresh(0, 0)
    report = verify_program(program)
    assert "P004" in _rules(report)
    assert report.commands_checked == program.static_command_count()


def test_nested_loop_command_count():
    program = TestProgram("nested")
    inner = Loop(7, [cmd.act(0, 0, 0, 100), cmd.pre(0, 0, 0)])
    program.append(Loop(5_000, [inner, cmd.wait(100.0)]))
    report = verify_program(program)
    assert report.commands_checked == program.static_command_count() \
        == 5_000 * (7 * 2 + 1)


# -- the real workload lints clean --------------------------------------


@pytest.fixture(scope="module")
def routine_corpus():
    from repro.lint.corpus import (capture_attack_programs,
                                   capture_compiled_programs,
                                   capture_routine_programs)

    return capture_routine_programs(hammer_count=2_000) \
        + capture_attack_programs() + capture_compiled_programs()


def test_every_routine_program_verifies_clean(routine_corpus):
    assert routine_corpus
    for report in verify_programs(routine_corpus):
        assert report.ok, report.render()


def test_corpus_epoch_loops_actually_lower(routine_corpus):
    """The epoch-shaped corpus cases must compile to EpochSegments —
    otherwise the verifier only ever blesses the scalar residue."""
    from repro.bender.compile import EpochSegment, compile_program

    by_name = {program.name: program for program in routine_corpus}
    for name in ("epoch_loop_corpus", "ref_burst_corpus"):
        segments = compile_program(by_name[name])
        assert any(isinstance(s, EpochSegment) for s in segments), name


# -- agreement with the interpreter -------------------------------------


def _random_program(rng, geometry, index):
    """A short random command stream over two banks of one channel."""
    program = TestProgram(f"fuzz{index}")
    rows = [100, 101, 200]
    for __ in range(int(rng.integers(4, 14))):
        bank = int(rng.integers(0, 2))
        row = rows[int(rng.integers(0, len(rows)))]
        address = RowAddress(0, 0, bank, row)
        choice = int(rng.integers(0, 7))
        if choice == 0:
            program.activate(address)
        elif choice == 1:
            program.precharge(address)
        elif choice == 2:
            program.read_row(address, f"t{index}")
        elif choice == 3:
            data = np.full(geometry.row_bytes,
                           int(rng.integers(0, 256)), dtype=np.uint8)
            program.append(cmd.wr(0, 0, bank, row, data))
        elif choice == 4:
            program.hammer(address, int(rng.integers(0, 5)))
        elif choice == 5:
            program.wait(float(rng.integers(10, 500)))
        else:
            program.refresh(0, 0)
    return program


def test_verifier_agrees_with_interpreter_on_sampled_corpus():
    rng = np.random.default_rng(0x11DE)
    geometry = HBM2Stack().geometry
    disagreements = []
    saw_error, saw_clean = 0, 0
    for index in range(60):
        program = _random_program(rng, geometry, index)
        report = verify_program(program)
        interpreter = Interpreter(HBM2Stack())
        raised = False
        result = None
        try:
            result = interpreter.run(program)
        except TimingError:
            raised = True
        predicted = bool(report.errors)
        if predicted != raised:
            disagreements.append((program.name, _rules(report), raised))
        if raised:
            saw_error += 1
        else:
            saw_clean += 1
            # On clean executions the symbolic clock mirrors the
            # device clock (same accounting, different engine).
            assert result.elapsed_ns == pytest.approx(
                report.elapsed_ns, rel=1.0e-9, abs=1.0e-6)
    assert not disagreements, disagreements
    # The corpus must exercise both verdicts to mean anything.
    assert saw_error > 5 and saw_clean > 5
