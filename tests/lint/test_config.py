"""Suite for ``HBMSIM_LINT`` strict parsing (``repro.lint.config``).

Contract under test: recognized values map to their modes; an
unrecognized value warns once per process per value (``RuntimeWarning``)
and falls back to ``warn`` — a misspelled opt-in surfaces findings
instead of silently disabling the gate.
"""

import warnings

import pytest

import repro.lint.config as config
from repro.lint.config import LintMode, lint_mode


@pytest.fixture(autouse=True)
def _reset_warned_values():
    saved = set(config._WARNED_VALUES)
    config._WARNED_VALUES.clear()
    yield
    config._WARNED_VALUES.clear()
    config._WARNED_VALUES.update(saved)


@pytest.mark.parametrize("raw,expected", [
    ("", LintMode.OFF),
    ("0", LintMode.OFF),
    ("off", LintMode.OFF),
    ("no", LintMode.OFF),
    ("none", LintMode.OFF),
    ("OFF", LintMode.OFF),
    ("warn", LintMode.WARN),
    ("warning", LintMode.WARN),
    ("1", LintMode.WARN),
    ("strict", LintMode.STRICT),
    ("Strict", LintMode.STRICT),
    ("online", LintMode.ONLINE),
    ("ONLINE", LintMode.ONLINE),
    ("  strict  ", LintMode.STRICT),
])
def test_recognized_values(monkeypatch, raw, expected):
    monkeypatch.setenv("HBMSIM_LINT", raw)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # recognized values never warn
        assert lint_mode() is expected


def test_unset_is_off(monkeypatch):
    monkeypatch.delenv("HBMSIM_LINT", raising=False)
    assert lint_mode() is LintMode.OFF


def test_unrecognized_value_warns_and_falls_back_to_warn(monkeypatch):
    monkeypatch.setenv("HBMSIM_LINT", "bogus")
    with pytest.warns(RuntimeWarning, match="unrecognized HBMSIM_LINT"):
        assert lint_mode() is LintMode.WARN


def test_unrecognized_value_warns_once_per_value(monkeypatch):
    monkeypatch.setenv("HBMSIM_LINT", "bogus")
    with pytest.warns(RuntimeWarning):
        lint_mode()
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # second read: no second warning
        assert lint_mode() is LintMode.WARN
    # a *different* unrecognized value warns again
    monkeypatch.setenv("HBMSIM_LINT", "other")
    with pytest.warns(RuntimeWarning):
        assert lint_mode() is LintMode.WARN


def test_warning_names_the_accepted_values(monkeypatch):
    monkeypatch.setenv("HBMSIM_LINT", "enable")
    with pytest.warns(RuntimeWarning,
                      match="off/warn/strict/online"):
        lint_mode()
