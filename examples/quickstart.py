#!/usr/bin/env python3
"""Quickstart: hammer one HBM2 row and measure its vulnerability.

Builds the simulated Chip 0 (the Bittware XUPVVH stack of Table 3), opens
a SoftBender host session, and reproduces the paper's two per-row metrics
on a single victim row:

- BER: double-sided hammer at the standard test count, count the flipped
  bits in the sandwiched victim (Section 3.1),
- HC_first: binary-search the minimum hammer count inducing the first
  bitflip.

Run:  python examples/quickstart.py
"""

from repro.bender.host import BenderSession
from repro.bender.routines import measure_row_ber, search_hc_first
from repro.chips.profiles import make_chip
from repro.core.patterns import ALL_PATTERNS, CHECKERED0
from repro.dram.geometry import RowAddress


def main() -> None:
    chip = make_chip(0)
    device = chip.make_device()
    # Real attackers must reverse-engineer the logical-to-physical row
    # mapping first (see examples/reverse_engineering.py); here we inject
    # the ground truth to keep the quickstart short.
    session = BenderSession(device, mapping=chip.row_mapping())

    victim = RowAddress(channel=7, pseudo_channel=0, bank=0, row=5000)
    print(f"Chip:   {chip.label} ({chip.spec.board})")
    print(f"Victim: channel {victim.channel}, bank {victim.bank}, "
          f"physical row {victim.row}")

    result = measure_row_ber(session, victim, CHECKERED0)
    print(f"\nDouble-sided hammer, {result.hammer_count:,} activations "
          f"per aggressor ({CHECKERED0.name}):")
    print(f"  bitflips: {result.bitflips} / {result.total_bits} bits "
          f"(BER {100 * result.ber:.2f}%)")

    print("\nHC_first per data pattern (Table 1):")
    for pattern in ALL_PATTERNS:
        search = search_hc_first(session, victim, pattern)
        value = f"{search.hc_first:,}" if search.found else "not found"
        print(f"  {pattern.name:<11} {value:>10}  "
              f"({search.probes} probe hammers)")

    elapsed_ms = device.now_ns / 1.0e6
    print(f"\nSimulated wall-clock spent on the device: "
          f"{elapsed_ms:.1f} ms across {device.stats.acts:,} activations")


if __name__ == "__main__":
    main()
