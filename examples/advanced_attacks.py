#!/usr/bin/env python3
"""Advanced attack patterns beyond the paper's bypass (Section 8.1).

Three attacker techniques built on the characterization results:

1. **Templating** — scan the most vulnerable channel first for bitflips
   that land on exploit-grade bit positions (page-table-entry PPN bits),
2. **Many-sided hammering** — overflow the 4-entry TRR sampler with
   sacrificial aggressor pairs instead of dedicated dummy rows,
3. **HalfDouble** — recruit the TRR defense's own victim refreshes as
   near-aggressor activations for a distance-2 attack.

Run:  python examples/advanced_attacks.py
"""

from repro.attacks import (TemplatingCampaign, half_double_disturbance,
                           run_many_sided)
from repro.chips.profiles import make_chip
from repro.dram.geometry import RowAddress


def main() -> None:
    chip = make_chip(0)

    print("1. Templating for exploit-grade bitflips "
          "(PTE template: PPN bits, every 16th word)")
    campaign = TemplatingCampaign(chip)
    order = campaign.best_channel_first()
    rows = range(4096, 4176)
    best = campaign.scan_channel(order[0], rows)
    worst = campaign.scan_channel(order[-1], rows)
    print(f"   channel scan order by vulnerability: {order}")
    print(f"   CH{order[0]} (best):  {len(best.exploitable)}/"
          f"{best.rows_scanned} rows exploitable "
          f"({best.simulated_seconds:.2f} simulated s)")
    print(f"   CH{order[-1]} (worst): {len(worst.exploitable)}/"
          f"{worst.rows_scanned} rows exploitable")
    if best.exploitable:
        row, bits = best.exploitable[0]
        print(f"   e.g. physical row {row} flips usable bits "
              f"{bits[:4].tolist()} ...")

    print("\n2. Many-sided hammering (no dedicated dummies)")
    result = run_many_sided(chip, victim_rows=[5000, 5008, 5016])
    print(f"   3 double-sided pairs; front pairs 1 ACT each "
          f"(sampler bait), target pair "
          f"{result.target_acts_per_aggressor} ACTs per side")
    for row, flips in result.flips.items():
        role = "target " if row == 5016 else "bait   "
        print(f"   {role} victim {row}: {flips} bitflips")

    print("\n3. HalfDouble: the defense hammers for us")
    hd = half_double_disturbance(chip, RowAddress(0, 0, 0, 5200))
    print(f"   far aggressors at distance 2, "
          f"{hd.far_acts_per_window} ACTs/window, {hd.windows} windows")
    print(f"   victim disturbance with TRR:    "
          f"{hd.units_with_trr:.1f} units")
    print(f"   victim disturbance without TRR: "
          f"{hd.units_without_trr:.1f} units")
    print(f"   -> the TRR mechanism amplified the attack "
          f"{hd.amplification:.2f}x via {hd.trr_victim_refreshes} "
          "victim refreshes")


if __name__ == "__main__":
    main()
