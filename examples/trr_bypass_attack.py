#!/usr/bin/env python3
"""Defeating the undocumented TRR defense (Section 7, end to end).

Three acts, all command-accurate against the simulated Chip 0:

1. **Probe** the black-box chip with the U-TRR retention side channel to
   discover the TRR cadence (every 17th REF is TRR-capable).
2. **Naive attack**: plain double-sided RowHammer with a REF every tREFI
   — the TRR sampler catches the aggressors and preventively refreshes
   the victim; zero bitflips.
3. **Bypass attack**: occupy the sampler with 4 dummy rows first, keep
   the aggressors below half the 78-activation budget, repeat for two
   refresh windows — bitflips appear (Takeaway 9).

Run:  python examples/trr_bypass_attack.py
"""

from repro.bender.host import BenderSession
from repro.chips.profiles import make_chip
from repro.core.patterns import CHECKERED0
from repro.core.trr_bypass import AttackConfig, run_attack_exact
from repro.core.trr_probe import TrrProbe
from repro.dram.geometry import RowAddress


def fresh_session(chip):
    return BenderSession(chip.make_device(), mapping=chip.row_mapping())


def main() -> None:
    chip = make_chip(0)
    victim = RowAddress(channel=0, pseudo_channel=0, bank=0, row=6000)

    print("Act 1: probing the TRR mechanism via the retention side "
          "channel ...")
    probe = TrrProbe(fresh_session(chip))
    site = probe.find_probe_site()
    cadence, phase = probe.discover_cadence(site)
    print(f"  side-channel rows {site.victims[0].row}/"
          f"{site.victims[1].row} (retention "
          f"{site.retention_ns / 1e6:.0f} ms)")
    print(f"  -> every {cadence}th REF performs a TRR victim refresh "
          "(paper Obsv. 24: 17)")

    budget = AttackConfig(4, 34).budget
    print(f"\nActivation budget per tREFI window: {budget} (paper: 78)")

    print("\nAct 2: naive double-sided attack (REF every tREFI) ...")
    naive_session = fresh_session(chip)
    naive_flips = run_attack_exact(
        naive_session, victim,
        AttackConfig(dummy_rows=0, aggressor_acts=34), CHECKERED0)
    refreshes = naive_session.device.stats.trr_victim_refreshes
    print(f"  bitflips: {naive_flips}  (TRR performed {refreshes:,} "
          "victim refreshes — the defense wins)")

    print("\nAct 3: bypass with dummy rows (two refresh windows, "
          "16,410 REF-paced rounds) ...")
    for dummies in (3, 4, 8):
        config = AttackConfig(dummy_rows=dummies, aggressor_acts=34)
        flips = run_attack_exact(fresh_session(chip), victim, config,
                                 CHECKERED0)
        verdict = "BYPASSED" if flips else "blocked"
        print(f"  {dummies} dummies x {config.dummy_acts_each} ACTs "
              f"+ 2 aggressors x 34 ACTs -> {flips:4d} bitflips "
              f"[{verdict}]")
    print("\nTakeaway 9: at least 4 dummy rows blind the sampler; the "
          "count comparator never fires because 2 x 34 stays below half "
          "the window's activations.")


if __name__ == "__main__":
    main()
