#!/usr/bin/env python3
"""RowPress: trading activations for on-time (Section 6).

Sweeps the aggressor-row on-time t_AggON on one victim row of every chip
and reports how many activations the first bitflip needs — from ~10^5 at
the minimal tRAS down to a single activation when the row stays open for
16 ms (half a refresh window).  Ends with a command-accurate
demonstration: two ACT/WAIT/PRE cycles at 16 ms flip bits that 10,000
conventional hammers cannot.

Run:  python examples/rowpress_sweep.py
"""

import numpy as np

from repro.analysis.reporting import render_table
from repro.bender.host import BenderSession
from repro.bender.routines import initialize_window
from repro.chips.profiles import all_chips, make_chip
from repro.core import metrics
from repro.core.patterns import CHECKERED0
from repro.core.rowpress import ROWPRESS_HCFIRST_T_ONS
from repro.dram.geometry import RowAddress


def label(t_on: float) -> str:
    if t_on < 1000:
        return f"{t_on:.0f} ns"
    if t_on < 1.0e6:
        return f"{t_on / 1000:.1f} us"
    return f"{t_on / 1.0e6:.0f} ms"


def main() -> None:
    victim_row = 4100
    rows = []
    for chip in all_chips():
        profile = chip.profile(RowAddress(0, 0, 0, victim_row),
                               "Checkered0")
        cells = [chip.label]
        for t_on in ROWPRESS_HCFIRST_T_ONS:
            amplification = chip.disturbance.amplification(t_on)
            cells.append(f"{profile.hc_first(amplification):,.0f}")
        rows.append(cells)
    print(render_table(
        ["Chip"] + [label(t) for t in ROWPRESS_HCFIRST_T_ONS], rows,
        title=f"HC_first of row {victim_row} vs aggressor on-time "
              "(Checkered0)"))

    print("\nCommand-accurate demonstration on Chip 0:")
    chip = make_chip(0)
    session = BenderSession(chip.make_device(),
                            mapping=chip.row_mapping())
    victim = RowAddress(0, 0, 0, victim_row)
    aggressors = session.aggressors_of(victim)
    expected = CHECKERED0.victim_row()

    initialize_window(session, victim, CHECKERED0)
    for aggressor in aggressors:
        session.device.hammer(aggressor, 10_000)  # conventional hammering
    flips = metrics.count_bitflips(expected,
                                   session.read_physical_row(victim))
    print(f"  10,000 conventional hammers per side: {flips} bitflips")

    initialize_window(session, victim, CHECKERED0)
    for aggressor in aggressors:
        session.device.activate(aggressor)
        session.device.wait(16.0e6)               # keep the row open 16 ms
        session.device.precharge(aggressor.channel,
                                 aggressor.pseudo_channel,
                                 aggressor.bank)
    flips = metrics.count_bitflips(expected,
                                   session.read_physical_row(victim))
    print(f"  2 activations held open for 16 ms:   {flips} bitflips")
    print("\nTakeaway 7: keeping the aggressor open amplifies read "
          "disturbance by orders of magnitude (222.57x at 35.1 us); at "
          "16 ms a single activation per side suffices.")


if __name__ == "__main__":
    main()
