#!/usr/bin/env python3
"""Defense evaluation: what should an HBM2 memory controller deploy?

Section 8.2 concludes that memory-controller designers cannot rely on
the bypassable in-DRAM TRR.  This example evaluates four controller-side
defenses against two attacks (a maximum-rate double-sided burst and a
RowPress burst), then demonstrates the vulnerability-aware variant the
paper proposes: per-subarray thresholds that spend preventive refreshes
only where the silicon is weak.

Run:  python examples/defense_matrix.py
"""

from repro.analysis.reporting import render_table
from repro.chips.profiles import make_chip
from repro.defenses import (BlockHammer, Graphene, HeterogeneousGraphene,
                            Para, RowPressAwarePara, evaluate,
                            para_probability_for, pick_vulnerable_victim)


def main() -> None:
    chip = make_chip(0)
    victim = pick_vulnerable_victim(chip)
    hc_first = chip.profile(victim, "Checkered0").hc_first()
    print(f"Chip: {chip.label}; templated victim: physical row "
          f"{victim.row} (HC_first {hc_first:,.0f})\n")

    p = para_probability_for(14_000)
    factories = {
        "none": lambda: None,
        "PARA": lambda: Para(probability=p,
                             believed_mapping=chip.row_mapping()),
        "RowPress-aware PARA": lambda: RowPressAwarePara(
            probability=p, believed_mapping=chip.row_mapping()),
        "Graphene": lambda: Graphene(
            threshold=3500, believed_mapping=chip.row_mapping()),
        "BlockHammer": lambda: BlockHammer(
            believed_mapping=chip.row_mapping()),
    }
    rows = []
    for name, factory in factories.items():
        reports = evaluate(chip, factory, name, victim)
        ds = reports["double_sided_burst"]
        rp = reports["rowpress_burst"]
        rows.append([
            name,
            "blocked" if ds.protected else f"{ds.bitflips} flips",
            "blocked" if rp.protected else f"{rp.bitflips} flips",
            f"{100 * ds.refresh_overhead:.2f}%",
            f"{ds.throttle_delay_ms:.0f} ms",
        ])
    print(render_table(
        ["Defense", "Double-sided 450K", "RowPress 4K @ 35.1us",
         "Refresh overhead", "Throttle delay"],
        rows, title="Attack x defense matrix (live refresh, TRR off)"))

    print("\nVulnerability-aware thresholds (Section 8.2, implication 1):")
    hetero = HeterogeneousGraphene(chip,
                                   believed_mapping=chip.row_mapping(),
                                   rows_per_subarray=8)
    uniform = hetero.uniform_equivalent_threshold()
    print(f"  uniform (worst-case) threshold: {uniform}")
    print(f"  mean per-subarray threshold:    "
          f"{hetero.mean_threshold():.0f} "
          f"({hetero.mean_threshold() / uniform:.2f}x headroom -> "
          "fewer preventive refreshes on resilient subarrays)")
    print("\nTakeaways: every controller-side defense stops conventional "
          "hammering, but only on-time-aware sampling stops RowPress; "
          "counters beat probabilistic sampling on overhead; profiling "
          "the chip's heterogeneity converts directly into saved "
          "refreshes.")


if __name__ == "__main__":
    main()
