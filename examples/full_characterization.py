#!/usr/bin/env python3
"""Full per-chip characterization campaign.

Runs the one-call campaign API against every chip in Table 3 and prints
each report: channel ranking, the chip's weakest row, subarray
resilience, and RowPress sensitivity — the practical summary a system
integrator (or attacker) extracts from the paper's methodology.

Run:  python examples/full_characterization.py
"""

from repro.chips.profiles import all_chips
from repro.core.campaign import characterize_chip


def main() -> None:
    for chip in all_chips():
        report = characterize_chip(chip, scale=0.03)
        print(report.render())
        worst = report.most_vulnerable_channel
        safest = report.safest_channel
        print(f"-> allocate security-critical pages away from "
              f"CH{worst}; CH{safest} is "
              f"{report.channels[worst][0] / report.channels[safest][0]:.2f}x "
              "more resilient\n")


if __name__ == "__main__":
    main()
