#!/usr/bin/env python3
"""Reverse engineering a black-box HBM2 chip (Section 3.1 + footnote 3).

Starting with no knowledge of the chip's internals, recover:

1. the **logical-to-physical row mapping** — hammer single logical rows
   hard and observe which logical neighbors flip (their physical
   adjacency betrays the vendor's scramble),
2. the **subarray boundaries** — a single-sided hammer at a subarray edge
   disturbs only one neighbor, exposing the sense-amplifier stripes (the
   paper finds 832- and 768-row subarrays this way).

Run:  python examples/reverse_engineering.py
"""

from repro.bender.host import BenderSession
from repro.bender.routines import find_boundaries, identify_mapping
from repro.chips.profiles import make_chip


def main() -> None:
    chip = make_chip(2)  # a chip with a non-identity mapping
    session = BenderSession(chip.make_device())  # no mapping injected!

    print("Step 1: identifying the logical-to-physical row mapping ...")
    mapping = identify_mapping(session,
                               probe_rows=tuple(range(2048, 2072)))
    truth = chip.spec.mapping_family
    print(f"  recovered family: {mapping.name}")
    print(f"  ground truth:     {truth}  "
          f"({'MATCH' if mapping.name == truth else 'MISMATCH'})")
    session.use_mapping(mapping)
    sample = 2049
    print(f"  e.g. logical row {sample} sits at physical row "
          f"{mapping.to_physical(sample)}; its physical neighbors are "
          f"logical rows {mapping.physical_neighbors(sample)}")

    print("\nStep 2: locating subarray boundaries in rows 0..2500 ...")
    report = find_boundaries(session, row_range=range(0, 2500))
    print(f"  boundaries found at rows: {report.boundaries}")
    print(f"  recovered subarray sizes: {report.sizes}")
    truth_sizes = chip.geometry.subarrays.sizes[:len(report.sizes)]
    print(f"  ground truth sizes:       {tuple(truth_sizes)}")
    print("\nThe paper's finding: subarrays of 832 and 768 rows; "
          "disturbance never crosses a boundary, which both these "
          "procedures exploit.")


if __name__ == "__main__":
    main()
