"""Setup shim: enables `pip install -e . --no-use-pep517` in offline
environments without the `wheel` package (configuration in pyproject.toml)."""
from setuptools import setup

setup()
