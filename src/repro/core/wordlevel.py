"""Section 8: word-level bitflip distribution and ECC implications.

Fig. 15 counts, over all ~18M non-overlapping 64-bit words of Chip 4, how
many words contain exactly one, exactly two, and more than two RowHammer
bitflips per data pattern.  The security argument: SECDED(72,64) corrects
one and detects two flips per word, so the observed abundance of >2-flip
words (974,935 for Checkered0) means widely deployed ECC cannot contain
RowHammer in HBM2; a Hamming(7,4)-per-nibble code could, but at 75%
storage overhead.

Bitflips cluster within words (most words with at least one flip have
more than one), which the cell model reproduces via Gamma-weighted word
occupancy (:func:`repro.dram.cell_model.sample_clustered_positions`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chips.profiles import ChipProfile
from repro.core import analytic, metrics
from repro.core.patterns import ALL_PATTERNS
from repro.dram.cell_model import WORD_BITS, WORD_CLUSTER_ALPHA
from repro.dram.ecc import DecodeStatus, SecdedCodec, classify_flip_count


@dataclass
class WordLevelStudy:
    """Fig. 15 histogram plus ECC outcome counts."""

    chip_label: str
    hammer_count: int
    total_words: int
    #: pattern -> {1: words with exactly 1 flip, 2: exactly 2, 3: > 2}.
    histogram: Dict[str, Dict[int, int]] = field(default_factory=dict)
    #: pattern -> maximum flips observed in any single word.
    max_flips: Dict[str, int] = field(default_factory=dict)

    def words_beyond_secded(self, pattern: str) -> int:
        """Words with more than two bitflips (undetectable by SECDED)."""
        return self.histogram[pattern][3]

    def multi_flip_fraction(self, pattern: str) -> float:
        """Fraction of flipped words with more than one flip.

        The paper observes most words with at least one bitflip have more
        than one (Section 8.1).
        """
        h = self.histogram[pattern]
        flipped = h[1] + h[2] + h[3]
        if flipped == 0:
            return 0.0
        return (h[2] + h[3]) / flipped

    def secded_classes(self, pattern: str) -> Dict[str, int]:
        """Counts per SECDED guarantee class."""
        h = self.histogram[pattern]
        return {
            "correctable": h[1],
            "detectable_uncorrectable": h[2],
            "potentially_undetectable": h[3],
        }


def _distribute_flips(flips_per_row: np.ndarray, words_per_row: int,
                      rng: np.random.Generator,
                      alpha: float = WORD_CLUSTER_ALPHA) -> Dict[int, int]:
    """Histogram of per-word flip counts given per-row flip totals.

    Uses the same Gamma-weighted clustering as the device's materialized
    cell positions, so the analytic histogram matches exact readouts.
    """
    histogram: Dict[int, int] = {}
    for flips in flips_per_row:
        if flips <= 0:
            continue
        weights = rng.gamma(alpha, size=words_per_row)
        total = weights.sum()
        if total <= 0:
            weights = np.full(words_per_row, 1.0 / words_per_row)
        else:
            weights = weights / total
        counts = rng.multinomial(int(flips), weights)
        counts = np.minimum(counts, WORD_BITS)
        for value in counts[counts > 0]:
            histogram[int(value)] = histogram.get(int(value), 0) + 1
    return histogram


def word_level_study(chip: ChipProfile,
                     rows_per_channel: int = 16384,
                     hammer_count: int = metrics.BER_TEST_HAMMERS,
                     patterns: Optional[Sequence[str]] = None,
                     bank: int = 0, pseudo_channel: int = 0,
                     seed: int = 37) -> WordLevelStudy:
    """Run the Fig. 15 study on one chip (Chip 4 in the paper)."""
    if patterns is None:
        patterns = [p.name for p in ALL_PATTERNS]
    geometry = chip.geometry
    words_per_row = geometry.row_bits // WORD_BITS
    rng = np.random.default_rng(seed + chip.spec.index)
    rows = analytic.stratified_rows(geometry.rows, rows_per_channel)
    total_words = int(rows.size * geometry.channels * words_per_row)
    study = WordLevelStudy(chip.label, hammer_count, total_words)
    for pattern in patterns:
        buckets = {1: 0, 2: 0, 3: 0}
        max_flips = 0
        for channel in range(geometry.channels):
            grid = analytic.population_grid(chip, channel, pseudo_channel,
                                            bank, rows, pattern)
            eff = analytic.effective_hammers(chip, hammer_count)
            ber = grid.ber(eff)
            flips = rng.binomial(geometry.row_bits, ber)
            histogram = _distribute_flips(flips, words_per_row, rng)
            for count, words in histogram.items():
                max_flips = max(max_flips, count)
                if count == 1:
                    buckets[1] += words
                elif count == 2:
                    buckets[2] += words
                else:
                    buckets[3] += words
        study.histogram[pattern] = buckets
        study.max_flips[pattern] = max_flips
    return study


@dataclass(frozen=True)
class SecdedOutcomes:
    """Exact SECDED decode outcomes over sampled flipped words."""

    sampled_words: int
    ok: int
    corrected: int
    detected: int
    miscorrected: int

    @property
    def silent_failure_fraction(self) -> float:
        """Fraction of sampled flipped words that decode wrongly but look
        fine to the system (the dangerous case)."""
        if self.sampled_words == 0:
            return 0.0
        return self.miscorrected / self.sampled_words


def secded_outcomes(study: WordLevelStudy, pattern: str,
                    sample_size: int = 400,
                    seed: int = 41) -> SecdedOutcomes:
    """Decode a sample of flipped words through a real SECDED codec.

    Draws words according to the study's flip-count histogram, applies
    that many random flips to encoded 64-bit words, and tallies what the
    decoder actually does — corroborating the classify-by-count argument
    with bit-exact behaviour.
    """
    codec = SecdedCodec()
    histogram = study.histogram[pattern]
    counts = []
    weights = []
    for bucket, words in histogram.items():
        if words > 0:
            counts.append(bucket if bucket < 3 else 3)
            weights.append(words)
    if not counts:
        return SecdedOutcomes(0, 0, 0, 0, 0)
    weights = np.asarray(weights, dtype=float)
    weights /= weights.sum()
    rng = np.random.default_rng(seed)
    tallies = {status: 0 for status in DecodeStatus}
    for __ in range(sample_size):
        bucket = int(rng.choice(counts, p=weights))
        flips = bucket if bucket < 3 else int(rng.integers(3, 7))
        data = rng.integers(0, 2, codec.data_bits).astype(np.uint8)
        positions = rng.choice(codec.codeword_bits, size=flips,
                               replace=False)
        outcome = codec.evaluate_flips(data, positions)
        tallies[outcome] += 1
    return SecdedOutcomes(
        sampled_words=sample_size,
        ok=tallies[DecodeStatus.OK],
        corrected=tallies[DecodeStatus.CORRECTED],
        detected=tallies[DecodeStatus.DETECTED],
        miscorrected=tallies[DecodeStatus.MISCORRECTED],
    )
