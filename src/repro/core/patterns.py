"""Data patterns used in the experiments (Table 1).

Four patterns are used throughout the paper, widely adopted in memory
reliability testing:

============= ========== ============ ==============
Row            Rowstripe0 Rowstripe1   Checkered0/1
============= ========== ============ ==============
Victim (V)     0x00       0xFF         0x55 / 0xAA
Aggr. (V +- 1) 0xFF       0x00         0xAA / 0x55
V +- [2:8]     0x00       0xFF         0x55 / 0xAA
============= ========== ============ ==============

For each DRAM row, the **worst-case data pattern (WCDP)** is the pattern
with the smallest HC_first, ties broken by the largest BER at a hammer
count of 256K (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from repro.core.metrics import WCDP_TIE_BREAK_HAMMERS

__all__ = [
    "DataPattern", "ROWSTRIPE0", "ROWSTRIPE1", "CHECKERED0", "CHECKERED1",
    "ALL_PATTERNS", "PATTERNS_BY_NAME", "WCDP_TIE_BREAK_HAMMERS",
    "pattern_by_name", "select_wcdp",
]


@dataclass(frozen=True)
class DataPattern:
    """One victim/aggressor data-pattern assignment."""

    name: str
    victim_byte: int
    aggressor_byte: int
    far_byte: int  # rows at V +- [2:8]

    def __post_init__(self) -> None:
        for byte in (self.victim_byte, self.aggressor_byte, self.far_byte):
            if not 0 <= byte <= 0xFF:
                raise ValueError("pattern bytes must fit in 8 bits")

    def victim_row(self, row_bytes: int = 1024) -> np.ndarray:
        """Row image for the victim row."""
        return np.full(row_bytes, self.victim_byte, dtype=np.uint8)

    def aggressor_row(self, row_bytes: int = 1024) -> np.ndarray:
        """Row image for the two adjacent aggressor rows."""
        return np.full(row_bytes, self.aggressor_byte, dtype=np.uint8)

    def far_row(self, row_bytes: int = 1024) -> np.ndarray:
        """Row image for rows at distance 2..8 from the victim."""
        return np.full(row_bytes, self.far_byte, dtype=np.uint8)

    def row_image(self, distance: int, row_bytes: int = 1024) -> np.ndarray:
        """Row image for a row ``distance`` away from the victim."""
        magnitude = abs(distance)
        if magnitude == 0:
            return self.victim_row(row_bytes)
        if magnitude == 1:
            return self.aggressor_row(row_bytes)
        if magnitude <= 8:
            return self.far_row(row_bytes)
        raise ValueError("pattern defined only for distances within 8 rows")

    @property
    def is_checkered(self) -> bool:
        """Whether the victim byte alternates bits (0x55/0xAA)."""
        return self.victim_byte in (0x55, 0xAA)

    @property
    def victim_polarity(self) -> int:
        """Dominant victim bit value: 1 for 0xFF/0xAA, 0 for 0x00/0x55.

        Used by the chip profiles to model per-channel true-/anti-cell
        composition (Rowstripe0 vs Rowstripe1 HC_first asymmetry,
        Observation 13).
        """
        return 1 if self.victim_byte in (0xFF, 0xAA) else 0


ROWSTRIPE0 = DataPattern("Rowstripe0", 0x00, 0xFF, 0x00)
ROWSTRIPE1 = DataPattern("Rowstripe1", 0xFF, 0x00, 0xFF)
CHECKERED0 = DataPattern("Checkered0", 0x55, 0xAA, 0x55)
CHECKERED1 = DataPattern("Checkered1", 0xAA, 0x55, 0xAA)

#: Table 1 order.
ALL_PATTERNS: Tuple[DataPattern, ...] = (
    ROWSTRIPE0, ROWSTRIPE1, CHECKERED0, CHECKERED1)

PATTERNS_BY_NAME: Dict[str, DataPattern] = {
    pattern.name: pattern for pattern in ALL_PATTERNS}

def pattern_by_name(name: str) -> DataPattern:
    """Look up one of the four canonical patterns by name."""
    if name not in PATTERNS_BY_NAME:
        raise ValueError(
            f"unknown pattern {name!r}; expected one of "
            f"{sorted(PATTERNS_BY_NAME)}")
    return PATTERNS_BY_NAME[name]


def select_wcdp(hc_firsts: Dict[str, float],
                bers_at_tiebreak: Dict[str, float]) -> str:
    """Select the worst-case data pattern for one row.

    ``hc_firsts`` maps pattern name to the row's HC_first under that
    pattern; ``bers_at_tiebreak`` maps pattern name to the BER at the 256K
    tie-break hammer count.  Returns the WCDP name per Section 3.1: the
    smallest HC_first, ties broken by the largest BER.
    """
    if not hc_firsts:
        raise ValueError("hc_firsts must not be empty")
    minimum = min(hc_firsts.values())
    tied = [name for name, value in hc_firsts.items() if value == minimum]
    if len(tied) == 1:
        return tied[0]
    missing = [name for name in tied if name not in bers_at_tiebreak]
    if missing:
        raise ValueError(f"tie-break BER missing for patterns {missing}")
    return max(tied, key=lambda name: bers_at_tiebreak[name])
