"""Read-disturbance vulnerability metrics (Section 3.1).

The paper measures RowHammer/RowPress vulnerability with two metrics:

- **BER** — the fraction of DRAM cells in a victim row that experience a
  bitflip at a fixed hammer count.  The exact hammer count of the BER
  experiments is not stated in the paper; we adopt 512K per-side
  activations (``BER_TEST_HAMMERS``), which is consistent with all of the
  paper's joint statistics (mean BER ~1% with HC_first medians ~100K), and
  document the choice in EXPERIMENTS.md.
- **HC_first** — the minimum hammer count necessary to cause the first
  RowHammer bitflip in a row.  Section 5 generalizes this to ``HC_nth``
  for the first ten bitflips.

This module also provides the bitflip-counting helpers shared by the test
routines and the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

#: Per-side hammer count used by the BER experiments (see module docstring).
BER_TEST_HAMMERS = 512_000

#: Per-side hammer count used for the RowPress BER sweep (Fig. 12).
ROWPRESS_BER_HAMMERS = 150_000

#: Hammer count for the WCDP tie-break (Section 3.1).
WCDP_TIE_BREAK_HAMMERS = 256_000


def count_bitflips(expected: np.ndarray, observed: np.ndarray) -> int:
    """Number of flipped bits between two row images."""
    expected = np.asarray(expected, dtype=np.uint8)
    observed = np.asarray(observed, dtype=np.uint8)
    if expected.shape != observed.shape:
        raise ValueError("row images must have identical shapes")
    diff = np.bitwise_xor(expected, observed)
    return int(np.unpackbits(diff).sum())


def bitflip_positions(expected: np.ndarray,
                      observed: np.ndarray) -> np.ndarray:
    """Bit positions (MSB-first per byte) that differ between row images."""
    expected = np.asarray(expected, dtype=np.uint8)
    observed = np.asarray(observed, dtype=np.uint8)
    if expected.shape != observed.shape:
        raise ValueError("row images must have identical shapes")
    diff = np.unpackbits(np.bitwise_xor(expected, observed))
    return np.flatnonzero(diff)


def ber(expected: np.ndarray, observed: np.ndarray) -> float:
    """Bit error rate between two row images (fraction in [0, 1])."""
    total_bits = np.asarray(expected).size * 8
    if total_bits == 0:
        raise ValueError("row images must not be empty")
    return count_bitflips(expected, observed) / total_bits


@dataclass(frozen=True)
class RowMeasurement:
    """One row's measured vulnerability under one data pattern."""

    chip: int
    channel: int
    pseudo_channel: int
    bank: int
    row: int
    pattern: str
    ber: float
    hc_first: float

    @property
    def bitflips(self) -> int:
        """Flipped-bit count in an 8192-bit row at the measured BER."""
        return int(round(self.ber * 8192))


def summarize_bers(values) -> Dict[str, float]:
    """Mean/min/max/std summary of a BER collection (fractions)."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarize an empty collection")
    return {
        "mean": float(array.mean()),
        "min": float(array.min()),
        "max": float(array.max()),
        "std": float(array.std()),
        "count": int(array.size),
    }


def coefficient_of_variation(values) -> float:
    """Standard deviation normalized to the mean (Fig. 9's x-axis)."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot compute CV of an empty collection")
    mean = array.mean()
    if mean == 0:
        raise ValueError("CV undefined for zero-mean data")
    return float(array.std() / mean)
