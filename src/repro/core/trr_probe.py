"""Section 7: uncovering the undocumented in-DRAM TRR mechanism.

Implements the U-TRR methodology against the (black-box) device: use rows
with known retention times as a **side channel** to observe whether the
DRAM internally refreshed them.

One probe cycle around a suspected TRR event:

1. initialize the side-channel rows (the two neighbors of a chosen
   aggressor row) and wait half their retention time,
2. perform a crafted activation sequence (the hypothesis under test),
3. issue REF command(s),
4. wait the second half of the retention time and read the side-channel
   rows: retention bitflips appear *only if* the TRR mechanism did not
   refresh them (Section 7, Methodology).

The probes below rediscover, from behaviour alone, the paper's
Observations 24-27: the 17-REF TRR cadence, both-neighbor victim refresh,
first-activation sampling, and the half-of-total activation-count rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bender.host import BenderSession
from repro.bender.program import TestProgram
from repro.bender.routines.retention_profile import (RETENTION_STEP_NS,
                                                     profile_row_retention)
from repro.core import metrics
from repro.dram.geometry import RowAddress

#: Side-channel rows must retain data for more than half their profiled
#: retention time (so a mid-point refresh hides the bitflips): profiled
#: times of at least three 64 ms steps guarantee it.
MIN_SIDE_CHANNEL_RETENTION_NS = 3 * RETENTION_STEP_NS


@dataclass(frozen=True)
class ProbeSite:
    """An aggressor row whose two neighbors form a usable side channel."""

    aggressor: RowAddress
    victims: Tuple[RowAddress, RowAddress]
    #: Shared profiled retention time of the two victims (ns).
    retention_ns: float


@dataclass
class TrrFindings:
    """What the probe uncovered about the proprietary TRR mechanism."""

    cadence: Optional[int] = None
    refreshes_both_neighbors: Optional[bool] = None
    first_activation_detected: Optional[bool] = None
    cam_escape_dummies: Optional[int] = None
    count_rule_at_half: Optional[bool] = None
    count_rule_below_half: Optional[bool] = None
    #: Host REF count modulo cadence at which capable REFs occur.
    phase: Optional[int] = None


class TrrProbe:
    """U-TRR-style prober for one bank of a (black-box) device."""

    def __init__(self, session: BenderSession, channel: int = 0,
                 pseudo_channel: int = 0, bank: int = 0) -> None:
        self.session = session
        self.channel = channel
        self.pseudo_channel = pseudo_channel
        self.bank = bank
        #: REF commands issued by this host since power-up (the host can
        #: always count its own commands; the DRAM internals stay hidden).
        self.refs_issued = 0

    # -- primitives -------------------------------------------------------

    def _fill(self) -> np.ndarray:
        geometry = self.session.device.geometry
        return np.full(geometry.row_bytes, 0xFF, dtype=np.uint8)

    def _addr(self, physical_row: int) -> RowAddress:
        return RowAddress(self.channel, self.pseudo_channel, self.bank,
                          physical_row)

    def issue_refs(self, count: int) -> None:
        """Issue ``count`` REF commands, tracking the host-side counter.

        Built as one REF loop so the compiled executor lowers it to a
        single epoch segment (the batched equivalent of the old
        ``refresh_burst`` shortcut) while still ticking the fault
        injector's command counter when a plan is active; the
        ``HBMSIM_BATCH=0`` escape hatch restores the scalar interpreter.
        """
        if count <= 0:
            return
        program = TestProgram("refs")
        with program.loop(count) as body:
            body.refresh(self.channel, self.pseudo_channel)
        self.session.run(program)
        self.refs_issued += count

    def _activate_once(self, physical_row: int, count: int = 1) -> None:
        logical = self.session.logical_of_physical(self._addr(physical_row))
        program = TestProgram(f"acts@{physical_row}")
        for __ in range(count):
            program.activate(logical)
            program.precharge(logical)
        self.session.run(program)

    # -- site discovery ----------------------------------------------------

    def find_probe_site(self, start_row: int = 3000,
                        max_candidates: int = 200) -> ProbeSite:
        """Find an aggressor whose neighbors share a long retention time.

        Mirrors the paper's first analysis step: profile rows at 64 ms
        granularity and pick ones with identical (and sufficiently long)
        retention times.
        """
        geometry = self.session.device.geometry
        for aggressor_row in range(start_row, start_row + max_candidates):
            if aggressor_row + 1 >= geometry.rows or aggressor_row < 1:
                continue
            victims = (aggressor_row - 1, aggressor_row + 1)
            profiles = [
                profile_row_retention(self.session, self._addr(row),
                                      max_steps=24)
                for row in victims]
            times = [p.retention_ns for p in profiles]
            if any(t is None for t in times):
                continue
            if times[0] != times[1]:
                continue
            if times[0] < MIN_SIDE_CHANNEL_RETENTION_NS:
                continue
            return ProbeSite(
                aggressor=self._addr(aggressor_row),
                victims=(self._addr(victims[0]), self._addr(victims[1])),
                retention_ns=float(times[0]),
            )
        raise LookupError("no usable side-channel row pair found")

    # -- one probe cycle ----------------------------------------------------

    def cycle(self, site: ProbeSite,
              window_acts: Sequence[Tuple[int, int]],
              refs_before_acts: int = 0,
              refs_after_acts: int = 1) -> Tuple[bool, bool]:
        """One side-channel cycle; returns per-victim ``refreshed`` flags.

        ``window_acts`` lists ``(physical_row, activation_count)`` issued
        in first-activation order in the REF window immediately preceding
        the last REF.  ``refs_before_acts`` padding REFs run after the
        first half-wait (aligning the window inside the TRR period).
        """
        fill = self._fill()
        for victim in site.victims:
            self.session.write_physical_row(victim, fill)
        half = site.retention_ns / 2.0
        self.session.device.wait(half)
        if refs_before_acts:
            self.issue_refs(refs_before_acts)
        for row, count in window_acts:
            self._activate_once(row, count)
        if refs_after_acts:
            self.issue_refs(refs_after_acts)
        self.session.device.wait(half)
        refreshed = []
        for victim in site.victims:
            observed = self.session.read_physical_row(victim)
            flips = metrics.count_bitflips(fill, observed)
            refreshed.append(flips == 0)
        return refreshed[0], refreshed[1]

    # -- discovery procedures -----------------------------------------------

    def discover_cadence(self, site: ProbeSite,
                         max_period: int = 40) -> Tuple[int, int]:
        """Obsv. 24: find which REFs can perform a TRR victim refresh.

        Runs consecutive probe cycles, each hammering the aggressor just
        enough to satisfy the (as yet unknown) detector, and records after
        which host REF indices the victims came back refreshed.  The gap
        between positives is the TRR cadence.
        """
        positives: List[int] = []
        for __ in range(2 * max_period + 2):
            # Two aggressor ACTs out of four window activations (the two
            # victim writes count too) satisfy a half-of-total detector.
            refreshed = self.cycle(site, [(site.aggressor.row, 2)])
            if all(refreshed):
                positives.append(self.refs_issued)
            if len(positives) >= 2:
                break
        if len(positives) < 2:
            raise LookupError(
                "no TRR victim refreshes observed; mechanism absent?")
        cadence = positives[1] - positives[0]
        phase = positives[0] % cadence
        return cadence, phase

    def align_to_capable_boundary(self, cadence: int, phase: int) -> None:
        """Pad REFs so the *next* REF block ends on a TRR-capable REF."""
        remainder = (self.refs_issued - phase) % cadence
        if remainder:
            self.issue_refs(cadence - remainder)

    def _span_cycle(self, site: ProbeSite, cadence: int, phase: int,
                    window_acts: Sequence[Tuple[int, int]]
                    ) -> Tuple[bool, bool]:
        """Probe one full TRR period with acts in its final REF window."""
        self.align_to_capable_boundary(cadence, phase)
        return self.cycle(site, window_acts,
                          refs_before_acts=cadence - 1, refs_after_acts=1)

    def verify_first_act_rule(self, site: ProbeSite, cadence: int,
                              phase: int,
                              dummy_base: Optional[int] = None
                              ) -> Tuple[bool, int]:
        """Obsv. 26 and the CAM capacity behind the >= 4 dummy requirement.

        Positive: the aggressor is activated *first* in the window (one
        activation, below any count threshold) followed by dummy noise —
        the victims must come back refreshed.  Then dummies are prepended
        one by one until the aggressor escapes the sampler; the escape
        count exposes the sampler capacity (4 in the tested chip, matching
        Fig. 14's >= 4 dummy-row requirement).
        """
        geometry = self.session.device.geometry
        if dummy_base is None:
            dummy_base = min(site.aggressor.row + 600,
                             geometry.rows - 40)
        first = self._span_cycle(
            site, cadence, phase,
            [(site.aggressor.row, 1)]
            + [(dummy_base + 8 * i, 9) for i in range(2)])
        first_detected = all(first)
        escape_dummies = 0
        # The two victim-row writes at cycle start already occupy sampler
        # slots; prepending dummies measures the *remaining* capacity.
        for dummies in range(1, 7):
            refreshed = self._span_cycle(
                site, cadence, phase,
                [(dummy_base + 8 * i, 2) for i in range(dummies)]
                + [(site.aggressor.row, 1)])
            if not any(refreshed):
                escape_dummies = dummies
                break
        return first_detected, escape_dummies

    def verify_count_rule(self, site: ProbeSite, cadence: int,
                          phase: int,
                          dummy_base: Optional[int] = None
                          ) -> Tuple[bool, bool]:
        """Obsv. 27: activation-count comparator at half the window total.

        Both probes hide the aggressor from the first-activation sampler
        behind four dummies; the first gives the aggressor exactly half of
        the window's activations (detected), the second slightly less
        (not detected).
        """
        geometry = self.session.device.geometry
        if dummy_base is None:
            dummy_base = min(site.aggressor.row + 600,
                             geometry.rows - 40)
        dummies = [(dummy_base + 8 * i, 1) for i in range(4)]
        # Final-window totals: 4 dummy ACTs + the aggressor's m ACTs.
        # m = 4 gives exactly half the total of 8 (the paper's 5-of-10
        # example shows exactly-half is detected); m = 3 of 7 is below.
        at_half = self._span_cycle(
            site, cadence, phase, dummies + [(site.aggressor.row, 4)])
        below_half = self._span_cycle(
            site, cadence, phase, dummies + [(site.aggressor.row, 3)])
        return all(at_half), any(below_half)

    def uncover(self) -> TrrFindings:
        """Run the full Section 7 analysis; returns every finding."""
        findings = TrrFindings()
        site = self.find_probe_site()
        cadence, phase = self.discover_cadence(site)
        findings.cadence = cadence
        findings.phase = phase
        refreshed = self._span_cycle(site, cadence, phase,
                                     [(site.aggressor.row, 8)])
        findings.refreshes_both_neighbors = all(refreshed)
        first_detected, escape = self.verify_first_act_rule(
            site, cadence, phase)
        findings.first_activation_detected = first_detected
        findings.cam_escape_dummies = escape
        at_half, below_half = self.verify_count_rule(site, cadence, phase)
        findings.count_rule_at_half = at_half
        findings.count_rule_below_half = below_half
        return findings
