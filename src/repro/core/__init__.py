"""Characterization core: the paper's analyses (Sections 4-8).

Only the dependency-free modules (:mod:`repro.core.metrics`,
:mod:`repro.core.patterns`) load eagerly; the study modules pull in the
calibrated chip population (which itself needs the metrics constants), so
they resolve lazily via PEP 562 to keep the import graph acyclic.
"""

import importlib
from typing import TYPE_CHECKING

from repro.core import metrics
from repro.core.metrics import (BER_TEST_HAMMERS, ROWPRESS_BER_HAMMERS,
                                WCDP_TIE_BREAK_HAMMERS, RowMeasurement,
                                ber, bitflip_positions, count_bitflips)
from repro.core.patterns import (ALL_PATTERNS, CHECKERED0, CHECKERED1,
                                 PATTERNS_BY_NAME, ROWSTRIPE0, ROWSTRIPE1,
                                 DataPattern, pattern_by_name, select_wcdp)

#: Lazily resolved attribute -> (module, attribute or None for module).
_LAZY = {
    "analytic": ("repro.core.analytic", None),
    "campaign": ("repro.core.campaign", None),
    "ChipCharacterizationReport": ("repro.core.campaign",
                                   "ChipCharacterizationReport"),
    "characterize_chip": ("repro.core.campaign", "characterize_chip"),
    "spatial": ("repro.core.spatial", None),
    "hcnth": ("repro.core.hcnth", None),
    "rowpress": ("repro.core.rowpress", None),
    "trr_probe": ("repro.core.trr_probe", None),
    "trr_bypass": ("repro.core.trr_bypass", None),
    "wordlevel": ("repro.core.wordlevel", None),
    "BankVariationStudy": ("repro.core.spatial", "BankVariationStudy"),
    "ChannelStudy": ("repro.core.spatial", "ChannelStudy"),
    "ChipBerStudy": ("repro.core.spatial", "ChipBerStudy"),
    "ChipHcFirstStudy": ("repro.core.spatial", "ChipHcFirstStudy"),
    "DistributionSummary": ("repro.core.spatial", "DistributionSummary"),
    "RowProfileStudy": ("repro.core.spatial", "RowProfileStudy"),
    "bank_variation_study": ("repro.core.spatial",
                             "bank_variation_study"),
    "channel_ber_study": ("repro.core.spatial", "channel_ber_study"),
    "channel_hcfirst_study": ("repro.core.spatial",
                              "channel_hcfirst_study"),
    "chip_ber_study": ("repro.core.spatial", "chip_ber_study"),
    "chip_hcfirst_study": ("repro.core.spatial", "chip_hcfirst_study"),
    "die_pairs": ("repro.core.spatial", "die_pairs"),
    "row_ber_profile": ("repro.core.spatial", "row_ber_profile"),
    "HcNthStudy": ("repro.core.hcnth", "HcNthStudy"),
    "RowHcNth": ("repro.core.hcnth", "RowHcNth"),
    "hcnth_study": ("repro.core.hcnth", "hcnth_study"),
    "most_vulnerable_channels": ("repro.core.hcnth",
                                 "most_vulnerable_channels"),
    "ROWPRESS_BER_T_ONS": ("repro.core.rowpress", "ROWPRESS_BER_T_ONS"),
    "ROWPRESS_HCFIRST_T_ONS": ("repro.core.rowpress",
                               "ROWPRESS_HCFIRST_T_ONS"),
    "RowPressBerStudy": ("repro.core.rowpress", "RowPressBerStudy"),
    "RowPressHcFirstStudy": ("repro.core.rowpress",
                             "RowPressHcFirstStudy"),
    "measure_scrubbed_row_ber": ("repro.core.rowpress",
                                 "measure_scrubbed_row_ber"),
    "rowpress_ber_study": ("repro.core.rowpress", "rowpress_ber_study"),
    "rowpress_hcfirst_study": ("repro.core.rowpress",
                               "rowpress_hcfirst_study"),
    "ProbeSite": ("repro.core.trr_probe", "ProbeSite"),
    "TrrFindings": ("repro.core.trr_probe", "TrrFindings"),
    "TrrProbe": ("repro.core.trr_probe", "TrrProbe"),
    "AttackConfig": ("repro.core.trr_bypass", "AttackConfig"),
    "BypassStudy": ("repro.core.trr_bypass", "BypassStudy"),
    "bypass_study": ("repro.core.trr_bypass", "bypass_study"),
    "run_attack_exact": ("repro.core.trr_bypass", "run_attack_exact"),
    "run_attack_epochs": ("repro.core.trr_bypass", "run_attack_epochs"),
    "run_attack": ("repro.core.trr_bypass", "run_attack"),
    "SecdedOutcomes": ("repro.core.wordlevel", "SecdedOutcomes"),
    "WordLevelStudy": ("repro.core.wordlevel", "WordLevelStudy"),
    "secded_outcomes": ("repro.core.wordlevel", "secded_outcomes"),
    "word_level_study": ("repro.core.wordlevel", "word_level_study"),
}

__all__ = [
    "metrics",
    "ALL_PATTERNS", "CHECKERED0", "CHECKERED1", "ROWSTRIPE0", "ROWSTRIPE1",
    "PATTERNS_BY_NAME", "DataPattern", "pattern_by_name", "select_wcdp",
    "BER_TEST_HAMMERS", "ROWPRESS_BER_HAMMERS", "WCDP_TIE_BREAK_HAMMERS",
    "RowMeasurement", "ber", "bitflip_positions", "count_bitflips",
] + sorted(_LAZY)


def __getattr__(name: str):
    if name not in _LAZY:
        raise AttributeError(f"module {__name__!r} has no attribute "
                             f"{name!r}")
    module_name, attribute = _LAZY[name]
    module = importlib.import_module(module_name)
    value = module if attribute is None else getattr(module, attribute)
    globals()[name] = value
    return value


if TYPE_CHECKING:  # pragma: no cover - import-time typing aid only
    from repro.core import (analytic, hcnth, rowpress, spatial, trr_bypass,
                            trr_probe, wordlevel)
