"""Analytic measurement engine.

Large-population experiments (Figs. 4-13) evaluate BER and HC_first over
up to hundreds of thousands of (row, pattern) combinations.  Driving the
command-level device for each would be faithful but wasteful: the device
itself computes flips from the same closed-form cell populations.  This
module evaluates those quantities directly from a chip profile via the
vectorized grids — bit-consistent with the device engine (tests assert
it) — and owns the mapping from experiment parameters (hammer count,
t_AggON, sidedness) to effective disturbance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from collections import OrderedDict

from repro.chips.profiles import ChipProfile
from repro.chips.vectorized import (PopulationBatch, PopulationGrid,
                                    population_batch, population_combos,
                                    population_grid)
from repro.core import metrics
from repro.core.patterns import ALL_PATTERNS
from repro.dram.cells import (allocate_cells, cells_chunk_elems,
                              chunk_combo_blocks)
from repro.dram.geometry import RowAddress

#: One (channel, pseudo_channel, bank) coordinate of a study sweep.
Combo = Tuple[int, int, int]


def effective_hammers(chip: ChipProfile, hammer_count: float,
                      t_on: Optional[float] = None,
                      sides: int = 2) -> float:
    """Effective baseline units of a hammer test (per-side count)."""
    baseline = chip.disturbance.min_t_on
    return chip.disturbance.effective_hammers(
        hammer_count, baseline if t_on is None else t_on, sides=sides)


def amplification(chip: ChipProfile, t_on: Optional[float]) -> float:
    """RowPress amplification at ``t_on`` (1.0 at the tRAS baseline)."""
    if t_on is None:
        return 1.0
    return chip.disturbance.amplification(t_on)


@dataclass
class GridMeasurement:
    """BER and HC_first arrays for one (bank, pattern) row population."""

    chip: ChipProfile
    grid: PopulationGrid
    hammer_count: int
    t_on: Optional[float]

    @property
    def rows(self) -> np.ndarray:
        """Row indices measured."""
        return self.grid.rows

    def ber(self, sampled: bool = True,
            rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Per-row BER at the configured hammer count and on-time."""
        eff = effective_hammers(self.chip, self.hammer_count, self.t_on)
        if sampled:
            return self.grid.sampled_ber(eff, rng)
        return self.grid.ber(eff)

    def hc_first(self) -> np.ndarray:
        """Per-row HC_first at the configured on-time."""
        return self.grid.hc_first(amplification(self.chip, self.t_on))

    def hc_nth(self, n: int) -> np.ndarray:
        """Per-row hammer counts of the first ``n`` bitflips."""
        return self.grid.hc_nth(n, amplification(self.chip, self.t_on))


def measure(chip: ChipProfile, channel: int, pseudo_channel: int, bank: int,
            rows: np.ndarray, pattern: str,
            hammer_count: int = metrics.BER_TEST_HAMMERS,
            t_on: Optional[float] = None) -> GridMeasurement:
    """Analytic measurement of a row population in one bank."""
    grid = population_grid(chip, channel, pseudo_channel, bank,
                           np.asarray(rows), pattern)
    return GridMeasurement(chip, grid, hammer_count, t_on)


def wcdp_hc_first(chip: ChipProfile, channel: int, pseudo_channel: int,
                  bank: int, rows: np.ndarray,
                  t_on: Optional[float] = None) -> Dict[str, np.ndarray]:
    """Per-row HC_first for every pattern plus the WCDP minimum.

    Returns a dict with one entry per pattern name plus ``"WCDP"``
    (the per-row minimum across patterns; Section 3.1).
    """
    rows = np.asarray(rows)
    amp = amplification(chip, t_on)
    per_pattern = {}
    for pattern in ALL_PATTERNS:
        grid = population_grid(chip, channel, pseudo_channel, bank, rows,
                               pattern.name)
        per_pattern[pattern.name] = grid.hc_first(amp)
    stacked = np.stack(list(per_pattern.values()))
    per_pattern["WCDP"] = stacked.min(axis=0)
    return per_pattern


def wcdp_ber(chip: ChipProfile, channel: int, pseudo_channel: int,
             bank: int, rows: np.ndarray,
             hammer_count: int = metrics.BER_TEST_HAMMERS,
             t_on: Optional[float] = None,
             sampled: bool = True,
             rng: Optional[np.random.Generator] = None
             ) -> Dict[str, np.ndarray]:
    """Per-row BER for every pattern plus the worst-case (WCDP) BER.

    The WCDP of a row is the pattern with the smallest HC_first (tie-
    broken by BER; Section 3.1); its BER is reported per row.
    """
    rows = np.asarray(rows)
    hc = wcdp_hc_first(chip, channel, pseudo_channel, bank, rows, t_on)
    bers = {}
    for pattern in ALL_PATTERNS:
        grid = population_grid(chip, channel, pseudo_channel, bank, rows,
                               pattern.name)
        m = GridMeasurement(chip, grid, hammer_count, t_on)
        bers[pattern.name] = m.ber(sampled=sampled, rng=rng)
    names = [pattern.name for pattern in ALL_PATTERNS]
    hc_matrix = np.stack([hc[name] for name in names])
    ber_matrix = np.stack([bers[name] for name in names])
    wcdp_index = np.argmin(hc_matrix, axis=0)
    bers["WCDP"] = ber_matrix[wcdp_index, np.arange(rows.size)]
    return bers


#: Memo of recent combo batches.  The WCDP helpers evaluate HC_first and
#: BER over the *same* combos x rows cross-product, one batch per
#: pattern; caching the immutable batches halves the kernel work of a
#: combined study.  Bounded FIFO — a handful of (combos, rows, pattern)
#: keys covers every repeated lookup within one experiment — and, like
#: the base cache in :mod:`repro.chips.vectorized`, bounded in total
#: retained *elements* by a multiple of the ``HBMSIM_CELLS_CHUNK``
#: working-set target, so chunk-streamed sweeps never pin whole-device
#: populations in the memo.
_COMBO_CACHE: "OrderedDict[tuple, PopulationBatch]" = OrderedDict()
_COMBO_CACHE_LIMIT = 12
_COMBO_CACHE_CHUNKS = 16


def _trim_combo_cache() -> None:
    """Evict oldest batches beyond the entry and element budgets."""
    budget = _COMBO_CACHE_CHUNKS * cells_chunk_elems()
    while len(_COMBO_CACHE) > _COMBO_CACHE_LIMIT or (
            len(_COMBO_CACHE) > 1
            and sum(len(batch) for batch in _COMBO_CACHE.values())
            > budget):
        _COMBO_CACHE.popitem(last=False)


def combo_population(chip: ChipProfile, combos: Sequence[Combo],
                     rows: np.ndarray, pattern: str) -> PopulationBatch:
    """One population batch covering ``combos`` x ``rows``.

    The batch is laid out rows-fastest — element ``c * len(rows) + r`` is
    row ``rows[r]`` of ``combos[c]`` — so reshaping any per-element
    result to ``(len(combos), len(rows))`` recovers one
    :func:`population_grid` result per combo, bit-identically (the
    batched and grid kernels share ``_population_arrays``).  Results are
    memoized (treat the returned batch as read-only).
    """
    rows = np.asarray(rows, dtype=np.int64)
    key = (chip.spec.index, chip.spec.seed, tuple(combos),
           rows.tobytes(), pattern)
    batch = _COMBO_CACHE.get(key)
    if batch is not None:
        _COMBO_CACHE.move_to_end(key)
        return batch
    batch = population_combos(
        chip,
        [channel for channel, __, __ in combos],
        [pseudo_channel for __, pseudo_channel, __ in combos],
        [bank for __, __, bank in combos],
        rows, pattern)
    _COMBO_CACHE[key] = batch
    _trim_combo_cache()
    return batch


def _combo_chunks(n_combos: int, rows_size: int) -> List[Tuple[int, int]]:
    """Whole-combo chunk ranges under the working-set bound."""
    return chunk_combo_blocks(n_combos, max(1, rows_size),
                              cells_chunk_elems())


def combo_ber_matrix(chip: ChipProfile, combos: Sequence[Combo],
                     rows: np.ndarray, pattern: str,
                     effective_hammers: float) -> np.ndarray:
    """Closed-form BER over ``combos`` x ``rows`` as a ``(C, R)`` matrix.

    The single-pattern analogue of :func:`wcdp_ber_multi`'s probability
    assembly (the Fig. 9 bank sweep's shape): chunk-streamed under the
    ``HBMSIM_CELLS_CHUNK`` working-set bound, bit-identical to one
    all-at-once :func:`combo_population` evaluation at any chunk size.
    """
    rows = np.asarray(rows, dtype=np.int64)
    shape = (len(combos), rows.size)
    chunks = _combo_chunks(len(combos), rows.size)
    if len(chunks) <= 1:
        batch = combo_population(chip, combos, rows, pattern)
        return batch.ber(effective_hammers).reshape(shape)
    matrix = allocate_cells(shape, float)
    for start, stop in chunks:
        batch = combo_population(chip, list(combos[start:stop]), rows,
                                 pattern)
        matrix[start:stop] = batch.ber(effective_hammers).reshape(
            stop - start, rows.size)
    return matrix


def combo_first_seeds(chip: ChipProfile, combos: Sequence[Combo],
                      rows: np.ndarray, pattern: str) -> np.ndarray:
    """Each combo's first-row profile seed as a ``(C,)`` uint64 array.

    ``first_seeds[c]`` equals ``population_grid(chip, *combos[c], rows,
    pattern).profile_seeds.reshape(-1)[0]`` — the seed
    :meth:`~repro.chips.vectorized._PopulationMeasurements.sampled_ber`
    derives its default generator from — so batched samplers can
    replicate per-grid unit-local noise without building the grids.
    Chunk-streamed under the ``HBMSIM_CELLS_CHUNK`` working-set bound.
    """
    rows = np.asarray(rows, dtype=np.int64)
    seeds = np.empty(len(combos), dtype=np.uint64)
    for start, stop in _combo_chunks(len(combos), rows.size):
        batch = combo_population(chip, list(combos[start:stop]), rows,
                                 pattern)
        seeds[start:stop] = batch.profile_seeds.reshape(
            stop - start, rows.size)[:, 0]
    return seeds


def wcdp_hc_first_multi(chip: ChipProfile, combos: Sequence[Combo],
                        rows: np.ndarray,
                        t_on: Optional[float] = None
                        ) -> Dict[str, np.ndarray]:
    """Batched :func:`wcdp_hc_first` over many (ch, pc, bank) combos.

    Returns pattern name (plus ``"WCDP"``) -> ``(len(combos),
    len(rows))`` arrays; row ``c`` equals ``wcdp_hc_first(chip,
    *combos[c], rows, t_on)`` bit-for-bit.

    Populations above the ``HBMSIM_CELLS_CHUNK`` working-set bound are
    evaluated in whole-combo chunks — every kernel is elementwise with
    per-combo seed-chain prefixes, so a chunk is the same bits as the
    matching slice of an all-at-once batch (asserted in
    ``tests/core/test_chunked_population.py``); only the assembled
    output arrays (placed by :func:`repro.dram.cells.allocate_cells`,
    optionally memory-mapped) span the full population.
    """
    rows = np.asarray(rows)
    amp = amplification(chip, t_on)
    shape = (len(combos), rows.size)
    chunks = _combo_chunks(len(combos), rows.size)
    if len(chunks) <= 1:
        # One chunk: the historical all-at-once path, byte-for-byte.
        per_pattern = {}
        for pattern in ALL_PATTERNS:
            batch = combo_population(chip, combos, rows, pattern.name)
            per_pattern[pattern.name] = batch.hc_first(amp).reshape(shape)
        stacked = np.stack(list(per_pattern.values()))
        per_pattern["WCDP"] = stacked.min(axis=0)
        return per_pattern
    per_pattern = {pattern.name: allocate_cells(shape, float)
                   for pattern in ALL_PATTERNS}
    wcdp = allocate_cells(shape, float)
    for start, stop in chunks:
        chunk_combos = list(combos[start:stop])
        running: Optional[np.ndarray] = None
        for pattern in ALL_PATTERNS:
            batch = combo_population(chip, chunk_combos, rows,
                                     pattern.name)
            hc = batch.hc_first(amp).reshape(stop - start, rows.size)
            per_pattern[pattern.name][start:stop] = hc
            if running is None:
                running = hc
            else:
                # Pairwise minimum equals the stacked min reduction
                # exactly (float min is associative and lossless).
                running = np.minimum(running, hc)
        wcdp[start:stop] = running
    per_pattern["WCDP"] = wcdp
    return per_pattern


def wcdp_ber_multi(chip: ChipProfile, combos: Sequence[Combo],
                   rows: np.ndarray,
                   hammer_count: int = metrics.BER_TEST_HAMMERS,
                   t_on: Optional[float] = None,
                   sampled: bool = True,
                   rng: Optional[np.random.Generator] = None
                   ) -> Dict[str, np.ndarray]:
    """Batched :func:`wcdp_ber` over many (ch, pc, bank) combos.

    Returns pattern name (plus ``"WCDP"``) -> ``(len(combos),
    len(rows))`` arrays equal to per-combo :func:`wcdp_ber` calls.  The
    closed-form probabilities are computed in one batch per pattern; the
    binomial sampling then consumes ``rng`` in the exact scalar order
    (combo-major, pattern-minor) so shared-generator studies draw the
    same variates as the per-combo loop.
    """
    rows = np.asarray(rows)
    shape = (len(combos), rows.size)
    eff = effective_hammers(chip, hammer_count, t_on)
    names = [pattern.name for pattern in ALL_PATTERNS]
    chunks = _combo_chunks(len(combos), rows.size)
    if len(chunks) <= 1:
        # One chunk: the historical all-at-once path, byte-for-byte.
        hc = wcdp_hc_first_multi(chip, combos, rows, t_on)
        probabilities = {}
        seeds = {}
        for name in names:
            batch = combo_population(chip, combos, rows, name)
            probabilities[name] = batch.ber(eff).reshape(shape)
            seeds[name] = batch.profile_seeds.reshape(shape)
        first_seeds = {name: seeds[name][:, 0] for name in names}
        hc_matrix = np.stack([hc[name] for name in names])
        wcdp_index = np.argmin(hc_matrix, axis=0)
    else:
        # Streamed: per chunk, evaluate HC_first (for the WCDP argmin)
        # and the closed-form probabilities; only the assembled outputs
        # span the full population.  The binomial sampling below still
        # consumes ``rng`` combo-major / pattern-minor over the fully
        # assembled arrays — the exact scalar draw order.
        amp = amplification(chip, t_on)
        probabilities = {name: allocate_cells(shape, float)
                         for name in names}
        first_seeds = {name: np.empty(len(combos), dtype=np.uint64)
                       for name in names}
        wcdp_index = np.empty(shape, dtype=np.int64)
        for start, stop in chunks:
            chunk_combos = list(combos[start:stop])
            cshape = (stop - start, rows.size)
            hc_chunk = []
            for name in names:
                batch = combo_population(chip, chunk_combos, rows, name)
                hc_chunk.append(batch.hc_first(amp).reshape(cshape))
                probabilities[name][start:stop] = \
                    batch.ber(eff).reshape(cshape)
                first_seeds[name][start:stop] = \
                    batch.profile_seeds.reshape(cshape)[:, 0]
            wcdp_index[start:stop] = np.argmin(np.stack(hc_chunk),
                                               axis=0)
    bers: Dict[str, np.ndarray] = {}
    if not sampled:
        bers.update(probabilities)
    else:
        sampled_values = {name: np.empty(shape) for name in names}
        for index in range(len(combos)):
            for name in names:
                # rng=None replays the scalar per-grid default: a fresh
                # generator seeded from the grid's first profile seed.
                generator = rng if rng is not None else \
                    np.random.default_rng(
                        int(first_seeds[name][index]) & 0x7FFFFFFF)
                sampled_values[name][index] = generator.binomial(
                    8192, probabilities[name][index]) / 8192.0
        bers.update(sampled_values)
    # Gather the WCDP pattern's BER per element without stacking the
    # full (patterns, combos, rows) cube: selection by argmin index is
    # the same values as the fancy-indexed stack, element for element.
    wcdp = np.empty(shape)
    for position, name in enumerate(names):
        mask = wcdp_index == position
        wcdp[mask] = bers[name][mask]
    bers["WCDP"] = wcdp
    return bers


def sample_rows(total_rows: int, count: int,
                rng: np.random.Generator) -> np.ndarray:
    """Uniform row sample without replacement, sorted."""
    if count >= total_rows:
        return np.arange(total_rows)
    return np.sort(rng.choice(total_rows, size=count, replace=False))


def stratified_rows(total_rows: int, count: int) -> np.ndarray:
    """Deterministic evenly spaced row sample (for scaled experiments)."""
    if count >= total_rows:
        return np.arange(total_rows)
    return np.unique(np.linspace(0, total_rows - 1, count).astype(int))


def segment_rows(total_rows: int, segment: str, count: int) -> np.ndarray:
    """First / middle / last ``count`` rows of a bank (Table 2 usage)."""
    if segment == "first":
        return np.arange(0, min(count, total_rows))
    if segment == "middle":
        start = max(0, total_rows // 2 - count // 2)
        return np.arange(start, min(start + count, total_rows))
    if segment == "last":
        return np.arange(max(0, total_rows - count), total_rows)
    raise ValueError(f"unknown segment {segment!r}")
