"""Section 6: RowHammer and RowPress sensitivity to aggressor-row on-time.

Two studies:

- **Fig. 12** — BER at a fixed hammer count of 150K while sweeping
  ``t_AggON`` from the minimal tRAS (29 ns) through 58/87/116 ns up to
  tREFI (3.9 us) and 9*tREFI (35.1 us), over the first/middle/last 128
  rows of one bank in all 8 channels (Checkered0).
- **Fig. 13** — HC_first while sweeping ``t_AggON`` over
  {tRAS, tREFI, 9*tREFI, 16 ms} for 384 rows in 3 channels, keeping only
  rows whose first bitflip is observable within one 32 ms refresh window
  at every tested on-time (the paper's grey row-count boxes).

Experiments whose duration exceeds the refresh window must remove
retention-induced bitflips; ``measure_scrubbed_row_ber`` implements the
paper's footnote-6 methodology on the exact device engine (profile the
row's retention failures at the same elapsed time, 5 repetitions, and
subtract them from the observed flips).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bender.host import BenderSession
from repro.bender.routines.ber_test import RowBerResult, measure_row_ber
from repro.bender.routines.rowinit import initialize_window
from repro.chips.profiles import ChipProfile
from repro.core import analytic, metrics
from repro.dram.batch import batch_enabled
from repro.dram.geometry import RowAddress
from repro.dram.timing import DEFAULT_TIMINGS

#: Fig. 12's swept on-times (ns): four "RowHammer-like" and two large.
ROWPRESS_BER_T_ONS: Tuple[float, ...] = (29.0, 58.0, 87.0, 116.0,
                                         3.9e3, 35.1e3)

#: Fig. 13's swept on-times (ns): tRAS, tREFI, 9*tREFI, half tREFW.
ROWPRESS_HCFIRST_T_ONS: Tuple[float, ...] = (29.0, 3.9e3, 35.1e3, 16.0e6)


@dataclass
class RowPressBerStudy:
    """Fig. 12 results."""

    hammer_count: int
    pattern: str
    t_ons: Tuple[float, ...]
    #: chip label -> t_on -> channel -> mean BER (fraction).
    channel_means: Dict[str, Dict[float, Dict[int, float]]]
    #: Same structure with closed-form (noise-free) means, used for the
    #: channel-rank consistency check (Obsv. 22).
    expected_means: Dict[str, Dict[float, Dict[int, float]]] = None

    def mean_at(self, t_on: float) -> float:
        """Average BER across every channel of every chip (Obsv. 21)."""
        values = [mean
                  for by_t in self.channel_means.values()
                  for channel_means in [by_t[t_on]]
                  for mean in channel_means.values()]
        return float(np.mean(values))

    def series(self) -> List[Tuple[float, float]]:
        """The paper's 0.08 .. 50.35 (%) series as (t_on, mean BER)."""
        return [(t_on, self.mean_at(t_on)) for t_on in self.t_ons]

    def expected_mean_at(self, t_on: float) -> float:
        """Noise-free mean BER (for ratio statistics on tiny values)."""
        source = self.expected_means or self.channel_means
        values = [mean
                  for by_t in source.values()
                  for mean in by_t[t_on].values()]
        return float(np.mean(values))

    def channel_rank_stability(self, chip_label: str) -> float:
        """Obsv. 22: rank correlation of channel BER at min vs large t_on.

        Uses the closed-form channel means when available — the sampled
        means carry row-subsampling noise that swamps the tiny channel
        spread of near-homogeneous chips.
        """
        source = self.expected_means or self.channel_means
        by_t = source[chip_label]
        first = by_t[self.t_ons[0]]
        last = by_t[self.t_ons[-2]] if len(self.t_ons) > 1 else first
        channels = sorted(first)
        rank_a = np.argsort(np.argsort([first[c] for c in channels]))
        rank_b = np.argsort(np.argsort([last[c] for c in channels]))
        a = rank_a - rank_a.mean()
        b = rank_b - rank_b.mean()
        return float((a * b).sum() / np.sqrt((a * a).sum()
                                             * (b * b).sum()))


def rowpress_ber_study(chips: Sequence[ChipProfile],
                       t_ons: Sequence[float] = ROWPRESS_BER_T_ONS,
                       rows_per_segment: int = 128,
                       hammer_count: int = metrics.ROWPRESS_BER_HAMMERS,
                       pattern: str = "Checkered0",
                       bank: int = 0, pseudo_channel: int = 0,
                       channel_range: Optional[Tuple[int, int]] = None
                       ) -> RowPressBerStudy:
    """Run the Fig. 12 study.

    Sampling noise is unit-local per (channel, t_on) — each draw comes
    from a fresh generator seeded by the channel population's first
    profile seed, exactly the scalar ``sampled_ber(eff, None)`` default
    — so a ``channel_range`` slice measures exactly the matching
    channels of the full study (the shard-parallel Fig. 12 contract).
    """
    channel_means: Dict[str, Dict[float, Dict[int, float]]] = {}
    expected_means: Dict[str, Dict[float, Dict[int, float]]] = {}
    for chip in chips:
        rows = np.concatenate([
            analytic.segment_rows(chip.geometry.rows, segment,
                                  rows_per_segment)
            for segment in ("first", "middle", "last")])
        by_t: Dict[float, Dict[int, float]] = {t: {} for t in t_ons}
        expected_by_t: Dict[float, Dict[int, float]] = {
            t: {} for t in t_ons}
        channels = list(range(chip.geometry.channels))
        if channel_range is not None:
            start, stop = channel_range
            if not 0 <= start <= stop <= len(channels):
                raise ValueError(f"channel range {channel_range} outside "
                                 f"[0, {len(channels)}]")
            channels = channels[start:stop]
        if batch_enabled() and channels:
            combos = [(channel, pseudo_channel, bank)
                      for channel in channels]
            batch = analytic.combo_population(chip, combos, rows, pattern)
            first_seeds = batch.profile_seeds.reshape(
                len(channels), rows.size)[:, 0]
            for t_on in t_ons:
                eff = analytic.effective_hammers(chip, hammer_count, t_on)
                probabilities = batch.ber(eff).reshape(len(channels),
                                                       rows.size)
                for index, channel in enumerate(channels):
                    rng = np.random.default_rng(
                        int(first_seeds[index]) & 0x7FFFFFFF)
                    by_t[t_on][channel] = float((rng.binomial(
                        8192, probabilities[index]) / 8192.0).mean())
                    expected_by_t[t_on][channel] = float(
                        probabilities[index].mean())
        else:
            grids = {
                channel: analytic.population_grid(
                    chip, channel, pseudo_channel, bank, rows, pattern)
                for channel in channels}
            for t_on in t_ons:
                eff = analytic.effective_hammers(chip, hammer_count, t_on)
                by_t[t_on] = {
                    channel: float(grid.sampled_ber(eff, None).mean())
                    for channel, grid in grids.items()}
                expected_by_t[t_on] = {
                    channel: float(grid.ber(eff).mean())
                    for channel, grid in grids.items()}
        channel_means[chip.label] = by_t
        expected_means[chip.label] = expected_by_t
    return RowPressBerStudy(hammer_count, pattern, tuple(t_ons),
                            channel_means, expected_means)


@dataclass
class RowPressHcFirstStudy:
    """Fig. 13 results."""

    pattern: str
    t_ons: Tuple[float, ...]
    #: chip label -> t_on -> HC_first array over the *included* rows.
    hc_by_chip: Dict[str, Dict[float, np.ndarray]]
    #: chip label -> number of rows shown (the grey boxes).
    included_rows: Dict[str, int]

    def mean_at(self, t_on: float) -> float:
        """Mean HC_first across all chips at one on-time (Obsv. 23)."""
        values = np.concatenate([by_t[t_on]
                                 for by_t in self.hc_by_chip.values()])
        return float(values.mean())

    def min_at(self, t_on: float) -> float:
        """Minimum HC_first across all chips at one on-time."""
        values = np.concatenate([by_t[t_on]
                                 for by_t in self.hc_by_chip.values()])
        return float(values.min())

    def reduction_factor(self, t_on: float) -> float:
        """Mean HC_first reduction vs the tRAS baseline (222.57x at
        35.1 us in the paper)."""
        return self.mean_at(self.t_ons[0]) / self.mean_at(t_on)


def rowpress_hcfirst_study(chips: Sequence[ChipProfile],
                           t_ons: Sequence[float] = ROWPRESS_HCFIRST_T_ONS,
                           rows_per_channel: int = 384,
                           channels: Tuple[int, ...] = (0, 1, 2),
                           pattern: str = "Checkered0",
                           bank: int = 0, pseudo_channel: int = 0,
                           channel_range: Optional[Tuple[int, int]] = None
                           ) -> RowPressHcFirstStudy:
    """Run the Fig. 13 study.

    A row is included only when, at *every* tested on-time, its first
    bitflip can be induced within the 32 ms refresh window (HC_first times
    the double-sided cycle time fits in tREFW).  The sweep is rng-free
    and per-channel, so a ``channel_range`` slice of ``channels``
    measures exactly the matching block of the full study's arrays.
    """
    if channel_range is not None:
        start, stop = channel_range
        if not 0 <= start <= stop <= len(channels):
            raise ValueError(f"channel range {channel_range} outside "
                             f"[0, {len(channels)}]")
        channels = channels[start:stop]
    hc_by_chip: Dict[str, Dict[float, np.ndarray]] = {}
    included: Dict[str, int] = {}
    use_batch = batch_enabled() and bool(channels)
    for chip in chips:
        rows = analytic.stratified_rows(chip.geometry.rows,
                                        rows_per_channel)
        timings = DEFAULT_TIMINGS
        per_t: Dict[float, List[np.ndarray]] = {t: [] for t in t_ons}
        keep_masks = []
        # amplification_array is element-wise identical to the scalar
        # method, so both paths may share the one vectorized call.
        amplifications = dict(zip(
            t_ons, chip.disturbance.amplification_array(list(t_ons))))
        if use_batch:
            combos = [(channel, pseudo_channel, bank)
                      for channel in channels]
            batch = analytic.combo_population(chip, combos, rows, pattern)
            hc_matrix = {
                t: batch.hc_first(amplifications[t]).reshape(
                    len(channels), rows.size)
                for t in t_ons}
        for index, channel in enumerate(channels):
            if use_batch:
                hc_per_t = {t: hc_matrix[t][index] for t in t_ons}
            else:
                grid = analytic.population_grid(chip, channel,
                                                pseudo_channel, bank,
                                                rows, pattern)
                hc_per_t = {t: grid.hc_first(amplifications[t])
                            for t in t_ons}
            mask = np.ones(rows.size, dtype=bool)
            for t in t_ons:
                # At t_AggON = 16 ms each aggressor fits exactly once in
                # tREFW (the paper's construction); the floor-and-clamp
                # keeps that single-activation budget despite the tRP
                # overhead.
                budget = max(1, timings.hammers_within(timings.t_refw, t))
                mask &= hc_per_t[t] <= budget
            keep_masks.append(mask)
            for t in t_ons:
                per_t[t].append(hc_per_t[t][mask])
        hc_by_chip[chip.label] = {
            t: np.concatenate(values) if values else np.empty(0)
            for t, values in per_t.items()}
        included[chip.label] = int(sum(mask.sum() for mask in keep_masks))
    return RowPressHcFirstStudy(pattern, tuple(t_ons), hc_by_chip, included)


@dataclass(frozen=True)
class ScrubbedBerResult:
    """Footnote-6 methodology outcome for one row on the exact device."""

    raw: RowBerResult
    retention_positions: np.ndarray
    scrubbed_bitflips: int

    @property
    def scrubbed_ber(self) -> float:
        """Read-disturbance-only BER after retention scrubbing."""
        return self.scrubbed_bitflips / self.raw.total_bits


def measure_scrubbed_row_ber(session: BenderSession,
                             victim_physical: RowAddress,
                             pattern, hammer_count: int, t_on: float,
                             repetitions: int = 5) -> ScrubbedBerResult:
    """Device-exact Fig. 12 measurement with retention scrubbing.

    Profiles the victim's retention failures at the experiment's elapsed
    time (``repetitions`` times, union of failing cells — a cell counts as
    a retention failure if it fails in *any* repetition) and removes them
    from the hammer run's observed flips.
    """
    timings = session.device.timings
    duration = timings.hammer_duration(hammer_count, t_on)
    geometry = session.device.geometry
    retention_positions: Set[int] = set()
    for __ in range(repetitions):
        initialize_window(session, victim_physical, pattern)
        session.device.wait(duration)
        observed = session.read_physical_row(victim_physical)
        expected = pattern.victim_row(geometry.row_bytes)
        positions = metrics.bitflip_positions(expected, observed)
        retention_positions.update(int(p) for p in positions)
    raw = measure_row_ber(session, victim_physical, pattern, hammer_count,
                          t_on)
    scrubbed = [p for p in raw.flip_positions
                if int(p) not in retention_positions]
    return ScrubbedBerResult(
        raw=raw,
        retention_positions=np.array(sorted(retention_positions),
                                     dtype=int),
        scrubbed_bitflips=len(scrubbed),
    )
