"""Section 5: hammer count to induce the first 10 bitflips in a row.

The paper measures, for 1152 rows (32 rows from each of the beginning,
middle, and end of one bank in the two most vulnerable channels of every
chip), the hammer counts ``HC_first .. HC_tenth`` at which the 1st..10th
bitflip appears, and studies

- the distribution of ``HC_nth`` normalized to ``HC_first`` (Fig. 10), and
- the *additional* hammers ``HC_tenth - HC_first`` as a function of
  ``HC_first`` (Fig. 11), which correlates negatively: rows that flip late
  need proportionally fewer extra hammers for the next nine bitflips
  (Obsv. 20, Pearson -0.34 .. -0.45 across chips).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chips.profiles import ChipProfile
from repro.core import analytic
from repro.core.patterns import ALL_PATTERNS
from repro.analysis.fits import pearson_correlation, polynomial_fit
from repro.dram.batch import batch_enabled

#: Paper population: 32 rows per segment, 3 segments, 2 channels per chip.
ROWS_PER_SEGMENT = 32
SEGMENTS = ("first", "middle", "last")


def most_vulnerable_channels(chip: ChipProfile, count: int = 2,
                             probe_rows: int = 256) -> List[int]:
    """Channels with the smallest minimum HC_first (the paper's choice)."""
    minima = {}
    rows = analytic.stratified_rows(chip.geometry.rows, probe_rows)
    if batch_enabled():
        combos = [(channel, 0, 0)
                  for channel in range(chip.geometry.channels)]
        wcdp = analytic.wcdp_hc_first_multi(chip, combos, rows)["WCDP"]
        for channel in range(chip.geometry.channels):
            minima[channel] = float(wcdp[channel].min())
    else:
        for channel in range(chip.geometry.channels):
            hc = analytic.wcdp_hc_first(chip, channel, 0, 0, rows)["WCDP"]
            minima[channel] = float(hc.min())
    ordered = sorted(minima, key=minima.get)
    return ordered[:count]


@dataclass
class RowHcNth:
    """HC_1..HC_n measurements of one row under one pattern."""

    chip_label: str
    channel: int
    row: int
    pattern: str
    hc_nth: np.ndarray

    @property
    def hc_first(self) -> float:
        return float(self.hc_nth[0])

    @property
    def normalized(self) -> np.ndarray:
        """HC_nth / HC_first (Fig. 10 y-axis)."""
        return self.hc_nth / self.hc_nth[0]

    @property
    def additional_to_last(self) -> float:
        """HC_nth[-1] - HC_first (Fig. 11 y-axis)."""
        return float(self.hc_nth[-1] - self.hc_nth[0])


@dataclass
class HcNthStudy:
    """Sections 5's full measurement set."""

    n: int
    measurements: List[RowHcNth] = field(default_factory=list)

    def normalized_matrix(self, pattern: Optional[str] = None) -> np.ndarray:
        """(rows, n) matrix of normalized hammer counts."""
        rows = [m.normalized for m in self.measurements
                if pattern is None or m.pattern == pattern]
        if not rows:
            raise ValueError("no measurements match the filter")
        return np.stack(rows)

    def mean_normalized(self, pattern: Optional[str] = None) -> np.ndarray:
        """Mean normalized HC_nth per bitflip index (Obsv. 18 examples)."""
        return self.normalized_matrix(pattern).mean(axis=0)

    def normalized_range(self, pattern: Optional[str] = None
                         ) -> Tuple[float, float]:
        """(min, max) of the last normalized hammer count (Obsv. 18)."""
        last = self.normalized_matrix(pattern)[:, -1]
        return float(last.min()), float(last.max())

    def pattern_effect(self) -> Dict[str, float]:
        """Mean normalized HC_nth[last] per pattern (Obsv. 19)."""
        return {p.name: float(self.normalized_matrix(p.name)[:, -1].mean())
                for p in ALL_PATTERNS}

    def chip_correlations(self, pattern: Optional[str] = "Checkered0"
                          ) -> Dict[str, float]:
        """Fig. 11: Pearson(HC_first, additional) per chip (Obsv. 20).

        Computed on one data pattern by default: pooling patterns mixes
        per-pattern threshold scales into the scatter, which would
        measure pattern spread rather than the row-level effect.
        """
        by_chip: Dict[str, List[RowHcNth]] = {}
        for m in self.measurements:
            if pattern is None or m.pattern == pattern:
                by_chip.setdefault(m.chip_label, []).append(m)
        correlations = {}
        for label, rows in by_chip.items():
            hc1 = np.array([m.hc_first for m in rows])
            add = np.array([m.additional_to_last for m in rows])
            correlations[label] = pearson_correlation(hc1, add)
        return correlations

    def chip_fit(self, chip_label: str, degree: int = 2,
                 pattern: Optional[str] = None) -> np.ndarray:
        """Fig. 11's orange curve: polynomial fit of additional vs HC1."""
        rows = [m for m in self.measurements
                if m.chip_label == chip_label
                and (pattern is None or m.pattern == pattern)]
        hc1 = np.array([m.hc_first for m in rows])
        add = np.array([m.additional_to_last for m in rows])
        return polynomial_fit(hc1, add, degree)


def hcnth_study(chips: Sequence[ChipProfile], n: int = 10,
                rows_per_segment: int = ROWS_PER_SEGMENT,
                patterns: Optional[Sequence[str]] = None,
                bank: int = 0, pseudo_channel: int = 0) -> HcNthStudy:
    """Run the Section 5 study over the paper's row population."""
    if patterns is None:
        patterns = [p.name for p in ALL_PATTERNS]
    use_batch = batch_enabled()
    study = HcNthStudy(n)
    for chip in chips:
        channels = most_vulnerable_channels(chip)
        rows = np.concatenate([
            analytic.segment_rows(chip.geometry.rows, segment,
                                  rows_per_segment)
            for segment in SEGMENTS])
        if use_batch:
            # One batch per pattern over both channels; hc_nth has no
            # shared RNG, so compute-then-emit keeps the scalar
            # measurement order without replaying its loop structure.
            combos = [(channel, pseudo_channel, bank)
                      for channel in channels]
            by_pattern = {}
            for pattern in patterns:
                batch = analytic.combo_population(chip, combos, rows,
                                                  pattern)
                by_pattern[pattern] = batch.hc_nth(n).reshape(
                    len(channels), rows.size, n)
            for index, channel in enumerate(channels):
                for pattern in patterns:
                    hc = by_pattern[pattern][index]
                    for i, row in enumerate(rows):
                        study.measurements.append(RowHcNth(
                            chip_label=chip.label, channel=channel,
                            row=int(row), pattern=pattern, hc_nth=hc[i]))
            continue
        for channel in channels:
            for pattern in patterns:
                grid = analytic.population_grid(
                    chip, channel, pseudo_channel, bank, rows, pattern)
                hc = grid.hc_nth(n)
                for i, row in enumerate(rows):
                    study.measurements.append(RowHcNth(
                        chip_label=chip.label, channel=channel,
                        row=int(row), pattern=pattern, hc_nth=hc[i]))
    return study
