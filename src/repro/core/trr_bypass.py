"""Section 7: the specialized access pattern that bypasses the TRR defense.

The attack fully utilizes the activation budget between two REF commands,
``floor((tREFI - tRFC) / tRC) == 78``: it first activates ``d`` dummy rows
(to occupy the TRR sampler) and then performs a double-sided RowHammer
with ``a`` activations per aggressor, keeping ``2a`` at or below half the
budget so the activation-count comparator never fires.  The pattern
repeats ``8205 * 2`` times (two 32 ms refresh windows) with a REF issued
every tREFI, obeying all manufacturer timings (Fig. 14).

Key reproduced results: at least 4 dummy rows are needed; the number of
dummies beyond that barely matters; and the bit error rate grows steeply
with the aggressor activation count (2.79x / 6.72x / 10.28x going from 18
to 24 / 30 / 34 in the paper).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bender.host import BenderSession
from repro.bender.program import TestProgram
from repro.bender.routines.rowinit import PATTERN_RADIUS, initialize_window
from repro.chips.profiles import ChipProfile
from repro.core import analytic, metrics
from repro.core.patterns import CHECKERED0, DataPattern
from repro.dram.batch import EpochPlan
from repro.dram.device import ROW_IO_NS, classify_victim_pattern
from repro.dram.geometry import RowAddress
from repro.dram.timing import DEFAULT_TIMINGS, TimingParameters


@dataclass(frozen=True)
class AttackConfig:
    """One Fig. 14 attack configuration."""

    dummy_rows: int
    aggressor_acts: int
    timings: TimingParameters = DEFAULT_TIMINGS
    #: Number of tREFI windows the pattern repeats (2 * 8205 by default).
    windows: Optional[int] = None

    def __post_init__(self) -> None:
        if self.dummy_rows < 0:
            raise ValueError("dummy_rows must be non-negative")
        if self.aggressor_acts < 1:
            raise ValueError("aggressor_acts must be at least 1")
        budget = self.timings.activation_budget
        if 2 * self.aggressor_acts > budget:
            raise ValueError("aggressor activations exceed the budget")
        if self.dummy_rows and self.dummy_acts_each < 1:
            raise ValueError(
                "budget leaves no activations for the dummy rows")

    @property
    def budget(self) -> int:
        """Total ACT budget per tREFI window (78)."""
        return self.timings.activation_budget

    @property
    def dummy_acts_each(self) -> int:
        """Activations per dummy row: floor((78 - 2a) / d) (Section 7)."""
        if self.dummy_rows == 0:
            return 0
        return (self.budget - 2 * self.aggressor_acts) // self.dummy_rows

    @property
    def total_windows(self) -> int:
        """Windows executed: approximately two refresh windows."""
        if self.windows is not None:
            return self.windows
        return 2 * self.timings.refs_per_window

    @property
    def count_rule_safe(self) -> bool:
        """Whether the aggressors stay below the count comparator."""
        used = 2 * self.aggressor_acts \
            + self.dummy_rows * self.dummy_acts_each
        return 2 * self.aggressor_acts < used


def dummy_rows_for(victim_physical: RowAddress, config: AttackConfig,
                   total_rows: int, spacing: int = 16) -> List[int]:
    """Physical dummy rows: far from the victim, mutually non-adjacent."""
    base = victim_physical.row + 512
    rows = []
    for i in range(config.dummy_rows):
        row = (base + i * spacing) % total_rows
        if abs(row - victim_physical.row) <= 2:
            row = (row + 8) % total_rows
        rows.append(row)
    return rows


def run_attack_exact(session: BenderSession,
                     victim_physical: RowAddress,
                     config: AttackConfig,
                     pattern: DataPattern = CHECKERED0) -> int:
    """Execute the attack command-accurately against one victim row.

    Issues a REF every tREFI (obeying manufacturer timings) and returns
    the number of bitflips in the victim after ``config.total_windows``
    windows.  This is the ground-truth path: the TRR engine sees every
    activation in order.  The program is loop-structured — one tREFI
    window as the loop body — so the session's compiled executor lowers
    it to an epoch segment instead of dispatching ``total_windows *
    (d + 2 + 1)`` commands through Python (``HBMSIM_BATCH=0`` still
    unrolls it scalar, bit-identically).
    """
    device = session.device
    geometry = device.geometry
    timings = config.timings
    initialize_window(session, victim_physical, pattern)
    aggressors = session.aggressors_of(victim_physical)
    if len(aggressors) != 2:
        raise ValueError("victim must have two in-bank neighbors")
    dummies = [
        session.logical_of_physical(victim_physical.with_row(row))
        for row in dummy_rows_for(victim_physical, config, geometry.rows)]
    program = TestProgram(
        f"bypass[d={config.dummy_rows},a={config.aggressor_acts}]")
    window_time = (config.dummy_rows * config.dummy_acts_each
                   + 2 * config.aggressor_acts) * timings.t_rc \
        + timings.t_rfc
    pad = max(0.0, timings.t_refi - window_time)
    with program.loop(config.total_windows) as window:
        for dummy in dummies:
            window.hammer(dummy, config.dummy_acts_each)
        window.hammer(aggressors[0], config.aggressor_acts)
        window.hammer(aggressors[1], config.aggressor_acts)
        window.refresh(victim_physical.channel,
                       victim_physical.pseudo_channel)
        if pad:
            window.wait(pad)
    session.run(program)
    observed = session.read_physical_row(victim_physical)
    expected = pattern.victim_row(geometry.row_bytes)
    return metrics.count_bitflips(expected, observed)


def run_attack_epochs(session: BenderSession,
                      victim_physical: RowAddress,
                      config: AttackConfig,
                      pattern: DataPattern = CHECKERED0) -> int:
    """Epoch-level replay of :func:`run_attack_exact`.

    Lowers the per-window hammer schedule into one :class:`EpochPlan`,
    obtains the full victim-refresh schedule from the array-form TRR
    step (:meth:`~repro.dram.trr.TrrEngine.run_epochs` on a sampler
    clone), and replays only the events that touch the victim row:
    per-window aggressor disturbance, TRR victim refreshes within blast
    radius, rolling-refresh sweeps, and the final read's commit — with
    the exact float-accumulation order of the command engine, so the
    returned bitflip count is bit-identical to the scalar path.

    Like the batch engine, this is a *measurement surface*: it reads the
    device's clock, rolling-refresh pointer and TRR sampler but mutates
    none of them.  Use a fresh session per attack configuration (the
    experiments do) — back-to-back attacks on one session would see the
    scalar path's state evolution, which this replay does not apply.
    """
    device = session.device
    geometry = device.geometry
    timings = config.timings
    layout = geometry.subarrays
    model = device.disturbance
    victim = victim_physical.validate(geometry)
    if len(session.aggressors_of(victim)) != 2:
        raise ValueError("victim must have two in-bank neighbors")
    dummies = dummy_rows_for(victim, config, geometry.rows)

    temp = device.temperature_disturbance_factor()
    blast = model.blast_radius
    t_ras = timings.t_ras
    retention = device.retention
    accel = device.retention_acceleration()

    expected = np.asarray(pattern.victim_row(geometry.row_bytes),
                          dtype=np.uint8)
    profile = device.profile_provider.profile(
        victim, classify_victim_pattern(expected))
    population = profile.population
    strong_floor = 10.0 ** (population.mu_strong
                            - 3.0 * population.sigma_strong)
    min_threshold = min(float(profile.hc_first()), strong_floor)
    thresholds: Optional[np.ndarray] = None
    floor = retention.row_retention_ns(victim) \
        if retention is not None else None

    # -- window init: replay the command clock and the victim's state --
    now = device.now_ns
    acc = 0.0
    restored_at = now
    ref_time = device.last_rolling_refresh_ns(victim)
    t_rcd_io = timings.t_rcd + ROW_IO_NS
    low_row = max(0, victim.row - PATTERN_RADIUS)
    high_row = min(geometry.rows - 1, victim.row + PATTERN_RADIUS)
    init_rows = list(range(low_row, high_row + 1))
    past_victim = False
    for row in init_rows:
        open_since = now
        if row == victim.row:
            # The victim's own write replaces its state mid-window.
            restored_at = now
            acc = 0.0
            past_victim = True
        now += t_rcd_io
        t_on = now - open_since
        if t_on < t_ras:
            now = open_since + t_ras
            t_on = t_ras
        distance = abs(row - victim.row)
        if past_victim and 1 <= distance <= blast \
                and layout.same_subarray(row, victim.row):
            units = (1 * temp) * model.units_per_activation(t_on, distance)
            if units > 0:
                acc += units
        now += timings.t_rp

    # -- TRR victim-refresh schedule from the array-form sampler step --
    engine = copy.deepcopy(
        device.trr_engine(victim.channel, victim.pseudo_channel))
    engine.note_window(victim.bank, [(row, 1) for row in init_rows])
    plan = EpochPlan.single_bank(
        victim.bank,
        [(dummy, config.dummy_acts_each) for dummy in dummies]
        + [(victim.row - 1, config.aggressor_acts),
           (victim.row + 1, config.aggressor_acts)])
    total_windows = config.total_windows
    schedule = dict(engine.run_epochs(plan.as_trr_epoch(), total_windows))

    # -- per-window increments (same float expressions as the device) --
    entry_durations = plan.entry_durations(timings)
    entry_units = []
    for row, count in zip(plan.rows.tolist(), plan.counts.tolist()):
        distance = abs(row - victim.row)
        units = 0.0
        if 1 <= distance <= blast \
                and layout.same_subarray(row, victim.row):
            units = (count * temp) \
                * model.units_per_activation(t_ras, distance)
        entry_units.append(units if units > 0 else 0.0)
    trr_disturb = {
        distance: (1 * temp) * model.units_per_activation(t_ras, distance)
        for distance in range(1, blast + 1)}
    window_time = (config.dummy_rows * config.dummy_acts_each
                   + 2 * config.aggressor_acts) * timings.t_rc \
        + timings.t_rfc
    pad = max(0.0, timings.t_refi - window_time)

    # -- rolling-refresh sweeps of the victim within the run --
    pointer = device.rolling_refresh_pointer(victim.channel,
                                             victim.pseudo_channel)
    per_ref = timings.rows_refreshed_per_ref
    sweeps = set()
    slot = (victim.row - pointer) % geometry.rows
    while slot < total_windows * per_ref:
        sweeps.add(slot // per_ref + 1)
        slot += geometry.rows

    already: Optional[np.ndarray] = None

    def commit(time: float) -> None:
        """Mirror ``_commit`` / ``_pending_flip_bits`` for the victim."""
        nonlocal acc, restored_at, already, thresholds
        parts: List[np.ndarray] = []
        if acc > 0 and acc >= min_threshold:
            if thresholds is None:
                thresholds = profile.materialize()
            parts.append(np.flatnonzero(thresholds <= acc))
        if retention is not None:
            elapsed = time - max(restored_at, ref_time)
            if elapsed > 0:
                effective = elapsed * accel
                if floor is not None and effective >= floor:
                    parts.append(retention.failing_bits(victim, effective))
        if parts:
            candidates = np.unique(
                np.concatenate(parts)).astype(np.int64)
            if already is not None:
                candidates = candidates[~already[candidates]]
            if candidates.size:
                if already is None:
                    already = np.zeros(geometry.row_bits, dtype=bool)
                already[candidates] = True
        acc = 0.0
        restored_at = time

    for window in range(1, total_windows + 1):
        for units, duration in zip(entry_units, entry_durations):
            if units > 0:
                acc += units
            now += duration
        victims = schedule.get(window)
        if victims:
            for bank, row in victims:
                if bank != victim.bank:
                    continue
                if row == victim.row:
                    commit(now)
                    continue
                distance = abs(row - victim.row)
                if 1 <= distance <= blast \
                        and layout.same_subarray(row, victim.row):
                    units = trr_disturb[distance]
                    if units > 0:
                        acc += units
        if window in sweeps:
            ref_time = now
            commit(now)
        now += timings.t_rfc
        if pad:
            now += pad

    commit(now)  # the final read's activation
    if already is None:
        return 0
    flips = int(already.sum())
    if device.mode_registers.ecc_enabled and flips:
        per_word = already.reshape(-1, 64).sum(axis=1)
        flips -= int(np.count_nonzero(per_word == 1))
    return flips


def run_attack(session: BenderSession,
               victim_physical: RowAddress,
               config: AttackConfig,
               pattern: DataPattern = CHECKERED0) -> int:
    """Execute the bypass attack on the fastest bit-identical path.

    Uses the victim-only epoch-level replay when the session may batch
    and no fault plan wraps the device (the replay is a measurement
    surface — it cannot tick the fault layer's command counter).  Under
    a fault plan or ``HBMSIM_BATCH=0`` it runs the command-accurate
    :func:`run_attack_exact`; its loop-structured program compiles to
    epoch segments on the batched executor, so even chaos-mode runs skip
    per-command dispatch on fault-free windows.  All paths return the
    same bitflip count; only the exact path mutates the device, so
    callers comparing engines must use fresh sessions.
    """
    from repro.faults.injector import FaultyStack

    if session.batching_active() \
            and not isinstance(session.device, FaultyStack):
        return run_attack_epochs(session, victim_physical, config, pattern)
    return run_attack_exact(session, victim_physical, config, pattern)


def attack_effective_hammers(chip: ChipProfile, config: AttackConfig,
                             bypassed: bool) -> float:
    """Effective hammer units a victim accumulates between refreshes.

    When the attack bypasses TRR, the victim is refreshed only by the
    rolling periodic refresh (once per tREFW), accumulating
    ``aggressor_acts`` units per window for a full window's worth of
    tREFI periods.  When TRR detects the aggressors, the victims are
    preventively refreshed every ``cadence`` REFs instead.
    """
    refs_per_window = config.timings.refs_per_window
    if bypassed:
        return float(config.aggressor_acts * refs_per_window)
    cadence = 17
    return float(config.aggressor_acts * cadence)


@dataclass
class BypassStudy:
    """Fig. 14: BER distributions per (dummy count, aggressor acts)."""

    chip_label: str
    pattern: str
    #: (dummies, acts) -> per-row BER array across the tested bank rows.
    distributions: Dict[Tuple[int, int], np.ndarray] = field(
        default_factory=dict)

    def mean_ber(self, dummies: int, acts: int) -> float:
        """Mean BER of one configuration."""
        return float(self.distributions[(dummies, acts)].mean())

    def acts_scaling(self, dummies: int,
                     base_acts: int = 18) -> Dict[int, float]:
        """Mean-BER ratio vs the base aggressor count (2.79x/6.72x/10.28x
        in the paper for 24/30/34 with 8 dummies)."""
        base = self.mean_ber(dummies, base_acts)
        return {
            acts: (self.mean_ber(dummies, acts) / base if base > 0
                   else float("inf"))
            for d, acts in self.distributions if d == dummies}

    def dummy_sensitivity(self, acts: int, min_dummies: int = 4) -> float:
        """Max - min mean BER across *bypassing* dummy counts at fixed
        acts (0.003 between 4 and 7 dummies at 34 acts in the paper)."""
        means = [self.mean_ber(d, a)
                 for (d, a) in self.distributions
                 if a == acts and d >= min_dummies]
        if not means:
            raise ValueError("no configurations match the filter")
        return max(means) - min(means)


def bypass_study(chip: ChipProfile,
                 dummy_counts: Sequence[int] = (4, 5, 6, 7, 8),
                 aggressor_acts: Sequence[int] = (18, 24, 30, 34),
                 rows: Optional[np.ndarray] = None,
                 channel: int = 0, pseudo_channel: int = 0, bank: int = 0,
                 pattern: DataPattern = CHECKERED0,
                 trr_escape_dummies: int = 4,
                 seed: int = 31) -> BypassStudy:
    """Analytic Fig. 14 study over a bank's victim rows.

    Configurations with fewer than ``trr_escape_dummies`` dummy rows fail
    to bypass the sampler (the aggressors are detected and their victims
    preventively refreshed); at or above it, the attack succeeds.  The
    per-victim BER follows from the effective hammers accumulated between
    refreshes of that victim.
    """
    rng = np.random.default_rng(seed + chip.spec.index)
    if rows is None:
        rows = analytic.stratified_rows(chip.geometry.rows, 2048)
    study = BypassStudy(chip.label, pattern.name)
    grid = analytic.population_grid(chip, channel, pseudo_channel, bank,
                                    np.asarray(rows), pattern.name)
    for dummies in dummy_counts:
        for acts in aggressor_acts:
            config = AttackConfig(dummy_rows=dummies, aggressor_acts=acts)
            bypassed = (dummies >= trr_escape_dummies
                        and config.count_rule_safe)
            eff = attack_effective_hammers(chip, config, bypassed)
            study.distributions[(dummies, acts)] = grid.sampled_ber(
                eff, rng)
    return study
