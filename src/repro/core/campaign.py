"""High-level characterization campaign: one call, one chip report.

``characterize_chip`` runs the paper's core per-chip analyses (BER and
HC_first distributions, channel ranking, subarray resilience, RowPress
sensitivity) at a configurable scale and bundles them into a single
report — the entry point a downstream user wants before deciding, e.g.,
which channels to avoid for security-critical allocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.reporting import percent, render_table
from repro.chips.profiles import ChipProfile
from repro.core import analytic, metrics
from repro.core.rowpress import ROWPRESS_HCFIRST_T_ONS
from repro.core.spatial import (channel_ber_study, channel_hcfirst_study,
                                row_ber_profile)
from repro.experiments.base import scaled


@dataclass
class ChipCharacterizationReport:
    """Everything a user needs to know about one chip's vulnerability."""

    chip_label: str
    scale: float
    #: channel -> (mean WCDP BER, min WCDP HC_first).
    channels: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    #: Channels ordered worst-first by mean BER.
    channel_ranking: List[int] = field(default_factory=list)
    #: (resilient subarray mean BER) / (normal subarray mean BER).
    subarray_resilience: float = 1.0
    #: t_AggON (ns) -> mean HC_first over sampled rows.
    rowpress_hc: Dict[float, float] = field(default_factory=dict)
    chip_mean_ber: float = 0.0
    chip_min_hc_first: float = 0.0

    @property
    def most_vulnerable_channel(self) -> int:
        return self.channel_ranking[0]

    @property
    def safest_channel(self) -> int:
        return self.channel_ranking[-1]

    def render(self) -> str:
        """Plain-text report."""
        rows = [[f"CH{channel}", percent(ber), f"{hc:,.0f}"]
                for channel, (ber, hc) in sorted(self.channels.items())]
        text = render_table(
            ["Channel", "Mean WCDP BER", "Min WCDP HC_first"], rows,
            title=f"{self.chip_label} characterization "
                  f"(scale {self.scale})")
        lines = [
            text,
            "",
            f"Chip mean WCDP BER: {percent(self.chip_mean_ber)}; "
            f"min HC_first: {self.chip_min_hc_first:,.0f}",
            f"Channel ranking (worst first): "
            f"{['CH%d' % c for c in self.channel_ranking]}",
            f"Resilient subarrays at "
            f"{self.subarray_resilience:.2f}x the normal BER",
            "RowPress HC_first: " + ", ".join(
                f"{t / 1000:.1f}us -> {hc:,.0f}"
                for t, hc in self.rowpress_hc.items()),
        ]
        return "\n".join(lines)


def characterize_chip(chip: ChipProfile,
                      scale: float = 0.05) -> ChipCharacterizationReport:
    """Run the per-chip characterization campaign."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    report = ChipCharacterizationReport(chip.label, scale)
    rows_per_channel = scaled(16384, scale, 64)
    ber_study = channel_ber_study(chip,
                                  rows_per_channel=rows_per_channel,
                                  sampled=False)
    hc_study = channel_hcfirst_study(
        chip, rows_per_bank=scaled(3072, scale, 64), banks=(0,),
        pseudo_channels=(0,))
    for channel in range(chip.geometry.channels):
        mean_ber = ber_study.summaries["WCDP"][channel].mean
        min_hc = hc_study.summaries["WCDP"][channel].minimum
        report.channels[channel] = (mean_ber, min_hc)
    report.channel_ranking = sorted(
        report.channels, key=lambda c: report.channels[c][0],
        reverse=True)
    report.chip_mean_ber = float(np.mean(
        [ber for ber, __ in report.channels.values()]))
    report.chip_min_hc_first = float(min(
        hc for __, hc in report.channels.values()))
    # Measure subarray resilience on the most vulnerable channel, where
    # the weak-population contrast is not masked by CDF saturation
    # differences (same choice Fig. 8 makes by showing CH0/CH7).
    profile = row_ber_profile(chip, channels=(report.channel_ranking[0],),
                              row_stride=max(1, int(round(1 / scale))))
    channel = profile.channels[0]
    means = profile.subarray_means(channel)
    layout = chip.geometry.subarrays
    resilient = {layout.middle_subarray, layout.last_subarray}
    resilient_mean = np.mean([means[i] for i in resilient])
    normal_mean = np.mean([m for i, m in enumerate(means)
                           if i not in resilient])
    report.subarray_resilience = float(resilient_mean / normal_mean)
    rows = analytic.stratified_rows(chip.geometry.rows,
                                    scaled(384, scale, 32))
    grid = analytic.population_grid(chip, 0, 0, 0, rows, "Checkered0")
    for t_on in ROWPRESS_HCFIRST_T_ONS:
        amplification = chip.disturbance.amplification(t_on)
        report.rowpress_hc[t_on] = float(
            grid.hc_first(amplification).mean())
    return report
