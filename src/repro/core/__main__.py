"""CLI: per-chip characterization campaign.

Usage::

    python -m repro.core [--chip N | --all] [--scale S] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.chips.profiles import all_chips, make_chip
from repro.core.campaign import characterize_chip


def _report_dict(report) -> dict:
    return {
        "chip": report.chip_label,
        "scale": report.scale,
        "chip_mean_ber": report.chip_mean_ber,
        "chip_min_hc_first": report.chip_min_hc_first,
        "channel_ranking": report.channel_ranking,
        "channels": {
            str(channel): {"mean_wcdp_ber": ber,
                           "min_wcdp_hc_first": hc}
            for channel, (ber, hc) in report.channels.items()},
        "subarray_resilience": report.subarray_resilience,
        "rowpress_hc_first": {f"{t:g}": hc
                              for t, hc in report.rowpress_hc.items()},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.core",
        description="Characterize simulated HBM2 chips.")
    parser.add_argument("--chip", type=int, default=None,
                        help="chip index 0..5 (default: all)")
    parser.add_argument("--scale", type=float, default=0.03,
                        help="population scale (default 0.03)")
    parser.add_argument("--json", default=None,
                        help="also write reports as JSON to this path")
    args = parser.parse_args(argv)
    chips = [make_chip(args.chip)] if args.chip is not None \
        else list(all_chips())
    reports = [characterize_chip(chip, scale=args.scale)
               for chip in chips]
    for report in reports:
        print(report.render())
        print()
    if args.json:
        with open(args.json, "w") as handle:
            json.dump([_report_dict(report) for report in reports],
                      handle, indent=2)
        print(f"JSON written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
