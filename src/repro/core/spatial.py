"""Section 4: spatial variation of RowHammer across the HBM2 hierarchy.

Implements the four analyses of the paper's Section 4 against the chip
population:

- across chips (Fig. 4 BER, Fig. 5 HC_first),
- across channels (Fig. 6 BER, Fig. 7 HC_first),
- across rows within a bank, exposing the subarray structure (Fig. 8),
- across banks and pseudo channels (Fig. 9).

Tested populations follow Table 2; every study takes explicit population
sizes so benchmarks can run scaled-down versions of the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chips.profiles import ChipProfile
from repro.core import analytic, metrics
from repro.core.patterns import ALL_PATTERNS
from repro.dram.batch import batch_enabled

#: Pattern columns reported by the figures (Table 1 order plus WCDP).
PATTERN_COLUMNS = tuple(p.name for p in ALL_PATTERNS) + ("WCDP",)


def spatial_units(channels: int,
                  pseudo_channels: Sequence[int]) -> List[Tuple[int, int]]:
    """The (channel, pseudo channel) sweep units, in combo-major order.

    The HC_first studies cross these units with their bank tuple to get
    the combo list (channel-major, pseudo-channel-mid, bank-minor), so
    a *contiguous range of units* is a contiguous block of combos — the
    property the shard-parallel experiment path relies on to merge
    per-shard arrays by plain concatenation.
    """
    return [(channel, pc) for channel in range(channels)
            for pc in pseudo_channels]


def unit_combos(units: Sequence[Tuple[int, int]],
                banks: Sequence[int]) -> List[Tuple[int, int, int]]:
    """Cross sweep units with the bank tuple (bank-minor combo order)."""
    return [(channel, pc, bank) for channel, pc in units
            for bank in banks]


@dataclass(frozen=True)
class DistributionSummary:
    """Summary statistics of a BER or HC_first distribution."""

    mean: float
    median: float
    minimum: float
    maximum: float
    std: float
    count: int

    @classmethod
    def of(cls, values: np.ndarray) -> "DistributionSummary":
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            raise ValueError("cannot summarize an empty distribution")
        return cls(
            mean=float(values.mean()),
            median=float(np.median(values)),
            minimum=float(values.min()),
            maximum=float(values.max()),
            std=float(values.std()),
            count=int(values.size),
        )


# ----------------------------------------------------------------------
# Across chips (Figs. 4 and 5)
# ----------------------------------------------------------------------

@dataclass
class ChipBerStudy:
    """Fig. 4: BER distribution across rows, per chip and pattern."""

    hammer_count: int
    #: chip label -> pattern -> distribution across tested rows.
    summaries: Dict[str, Dict[str, DistributionSummary]]

    def chip_mean(self, label: str, pattern: str = "WCDP") -> float:
        """Chip-level mean BER for one pattern."""
        return self.summaries[label][pattern].mean

    def mean_spread(self, pattern: str = "Checkered0") -> float:
        """Obsv. 11's chip-level spread: max - min of chip mean BER."""
        means = [by_pattern[pattern].mean
                 for by_pattern in self.summaries.values()]
        return max(means) - min(means)


def chip_ber_flats(chips: Sequence[ChipProfile],
                   rows_per_channel: int = 16384,
                   hammer_count: int = metrics.BER_TEST_HAMMERS,
                   bank: int = 0, pseudo_channel: int = 0,
                   sampled: bool = True,
                   unit_range: Optional[Tuple[int, int]] = None
                   ) -> Dict[str, Dict[str, np.ndarray]]:
    """Chip label -> pattern -> flat channel-major BER over a unit range.

    The BER row sweeps (Figs. 4 and 6) decompose into one unit per
    channel.  Sampling is *unit-local* — each (channel, pattern) grid
    draws its binomial noise from a generator seeded by its own first
    profile seed (``rng=None`` down the stack) — so a unit's values do
    not depend on which other units share the call.  Concatenating the
    flats of consecutive unit ranges therefore reproduces the
    whole-sweep flat bit-for-bit, on either engine — the contract of the
    shard-parallel experiment path.
    """
    use_batch = batch_enabled()
    flats: Dict[str, Dict[str, np.ndarray]] = {}
    for chip in chips:
        channels = list(range(chip.geometry.channels))
        if unit_range is not None:
            start, stop = unit_range
            if not 0 <= start <= stop <= len(channels):
                raise ValueError(
                    f"unit range {unit_range} outside [0, {len(channels)}]")
            channels = channels[start:stop]
        if not channels:
            flats[chip.label] = {name: np.empty(0)
                                 for name in PATTERN_COLUMNS}
            continue
        rows = analytic.stratified_rows(chip.geometry.rows,
                                        rows_per_channel)
        if use_batch:
            combos = [(channel, pseudo_channel, bank)
                      for channel in channels]
            bers = analytic.wcdp_ber_multi(chip, combos, rows,
                                           hammer_count, rng=None,
                                           sampled=sampled)
            flats[chip.label] = {
                name: np.asarray(bers[name]).reshape(-1)
                for name in PATTERN_COLUMNS}
        else:
            per_pattern: Dict[str, List[np.ndarray]] = {
                name: [] for name in PATTERN_COLUMNS}
            for channel in channels:
                bers = analytic.wcdp_ber(chip, channel, pseudo_channel,
                                         bank, rows, hammer_count,
                                         rng=None, sampled=sampled)
                for name in PATTERN_COLUMNS:
                    per_pattern[name].append(bers[name])
            flats[chip.label] = {
                name: np.concatenate(values)
                for name, values in per_pattern.items()}
    return flats


def chip_ber_study(chips: Sequence[ChipProfile],
                   rows_per_channel: int = 16384,
                   hammer_count: int = metrics.BER_TEST_HAMMERS,
                   bank: int = 0, pseudo_channel: int = 0,
                   sampled: bool = True) -> ChipBerStudy:
    """Run the Fig. 4 study (Table 2: all rows, 1 bank, 1 PC, 8 channels).

    ``sampled=False`` removes the finite-row binomial noise — useful for
    spread statistics at reduced population scales.  Sampling noise is
    unit-local per channel (see :func:`chip_ber_flats`).
    """
    flats = chip_ber_flats(chips, rows_per_channel, hammer_count, bank,
                           pseudo_channel, sampled)
    return ChipBerStudy(hammer_count, {
        label: {name: DistributionSummary.of(flat[name])
                for name in PATTERN_COLUMNS}
        for label, flat in flats.items()})


@dataclass
class ChipHcFirstStudy:
    """Fig. 5: HC_first distribution across rows, per chip and pattern."""

    summaries: Dict[str, Dict[str, DistributionSummary]]

    def chip_minimum(self, label: str, pattern: str = "WCDP") -> float:
        """The chip's minimum HC_first (Obsv. 4/5)."""
        return self.summaries[label][pattern].minimum

    def minimum_spread(self, pattern: str = "WCDP") -> float:
        """Takeaway 2: spread of minimum HC_first across chips."""
        minima = [by_pattern[pattern].minimum
                  for by_pattern in self.summaries.values()]
        return max(minima) - min(minima)


def hcfirst_flat(chip: ChipProfile, rows_per_bank: int,
                 banks: Tuple[int, ...],
                 pseudo_channels: Tuple[int, ...],
                 unit_range: Optional[Tuple[int, int]] = None
                 ) -> Dict[str, np.ndarray]:
    """Per-pattern HC_first over a (channel, pseudo channel) unit range.

    Returns pattern name (plus ``"WCDP"``) -> one flat combo-major
    array of ``len(combos) * rows`` values, where the combos cross the
    selected units (all of them when ``unit_range`` is ``None``) with
    ``banks``.  The flat layout is the contract of the shard-parallel
    experiment path: concatenating the flats of consecutive unit ranges
    reproduces the whole-sweep flat bit-for-bit, on either engine.
    """
    rows = analytic.stratified_rows(chip.geometry.rows, rows_per_bank)
    units = spatial_units(chip.geometry.channels, pseudo_channels)
    if unit_range is not None:
        start, stop = unit_range
        if not 0 <= start < stop <= len(units):
            raise ValueError(
                f"unit range {unit_range} outside [0, {len(units)})")
        units = units[start:stop]
    combos = unit_combos(units, banks)
    if batch_enabled():
        hc = analytic.wcdp_hc_first_multi(chip, combos, rows)
        return {name: np.asarray(hc[name]).reshape(-1)
                for name in PATTERN_COLUMNS}
    collected: Dict[str, List[np.ndarray]] = {
        name: [] for name in PATTERN_COLUMNS}
    for channel, pc, bank in combos:
        hc = analytic.wcdp_hc_first(chip, channel, pc, bank, rows)
        for name in PATTERN_COLUMNS:
            collected[name].append(hc[name])
    return {name: np.concatenate(values)
            for name, values in collected.items()}


def chip_hcfirst_study(chips: Sequence[ChipProfile],
                       rows_per_bank: int = 3072,
                       banks: Tuple[int, ...] = (0, 5, 11),
                       pseudo_channels: Tuple[int, ...] = (0, 1)
                       ) -> ChipHcFirstStudy:
    """Run the Fig. 5 study (Table 2: 3072 rows x 3 banks x 2 PCs x 8 ch)."""
    summaries: Dict[str, Dict[str, DistributionSummary]] = {}
    for chip in chips:
        flat = hcfirst_flat(chip, rows_per_bank, banks, pseudo_channels)
        summaries[chip.label] = {
            name: DistributionSummary.of(flat[name])
            for name in PATTERN_COLUMNS}
    return ChipHcFirstStudy(summaries)


# ----------------------------------------------------------------------
# Across channels (Figs. 6 and 7)
# ----------------------------------------------------------------------

@dataclass
class ChannelStudy:
    """Figs. 6/7: per-channel distributions for one chip."""

    chip_label: str
    metric: str  # "ber" or "hc_first"
    #: pattern -> channel -> distribution summary.
    summaries: Dict[str, Dict[int, DistributionSummary]]

    def channel_means(self, pattern: str = "WCDP") -> Dict[int, float]:
        """Channel -> mean of the metric."""
        return {channel: summary.mean
                for channel, summary in self.summaries[pattern].items()}

    def extreme_ratio(self, pattern: str = "WCDP") -> float:
        """Highest / lowest channel mean (Obsv. 8: 1.99x in Chip 0)."""
        means = list(self.channel_means(pattern).values())
        return max(means) / min(means)

    def mean_spread(self, pattern: str = "Checkered0") -> float:
        """Max - min channel mean (Obsv. 11's channel-level spread)."""
        means = list(self.channel_means(pattern).values())
        return max(means) - min(means)


def channel_ber_study(chip: ChipProfile, rows_per_channel: int = 16384,
                      hammer_count: int = metrics.BER_TEST_HAMMERS,
                      bank: int = 0, pseudo_channel: int = 0,
                      sampled: bool = True) -> ChannelStudy:
    """Run the Fig. 6 study for one chip (see ``chip_ber_study`` for
    the ``sampled`` flag; sampling noise is unit-local per channel)."""
    flats = chip_ber_flats([chip], rows_per_channel, hammer_count, bank,
                           pseudo_channel, sampled)
    return ChannelStudy(chip.label, "ber", channel_ber_summaries(
        flats[chip.label], chip.geometry.channels))


def channel_ber_summaries(flat: Dict[str, np.ndarray], channels: int
                          ) -> Dict[str, Dict[int, DistributionSummary]]:
    """Per-channel summaries from one chip's channel-major BER flat."""
    summaries: Dict[str, Dict[int, DistributionSummary]] = {
        name: {} for name in PATTERN_COLUMNS}
    for name in PATTERN_COLUMNS:
        matrix = np.asarray(flat[name]).reshape(channels, -1)
        for channel in range(channels):
            summaries[name][channel] = DistributionSummary.of(
                matrix[channel])
    return summaries


def channel_summaries_from_flat(flat: Dict[str, np.ndarray],
                                rows_size: int,
                                banks: Tuple[int, ...],
                                pseudo_channels: Tuple[int, ...],
                                unit_range: Optional[Tuple[int, int]]
                                = None, channels: int = 8
                                ) -> Dict[str, Dict[
                                    int, DistributionSummary]]:
    """Per-channel distribution summaries from a combo-major flat.

    Units are channel-major, so each channel's measurements occupy one
    contiguous run of the flat; grouping by the unit list handles
    partial unit ranges (shard slices that split a channel's pseudo
    channels) with the same arithmetic as the full sweep — for the full
    range this reproduces the historical per-channel slab reshape,
    value for value.
    """
    units = spatial_units(channels, pseudo_channels)
    if unit_range is not None:
        units = units[unit_range[0]:unit_range[1]]
    block = len(banks) * rows_size
    summaries: Dict[str, Dict[int, DistributionSummary]] = {
        name: {} for name in PATTERN_COLUMNS}
    for name in PATTERN_COLUMNS:
        values = flat[name]
        cursor = 0
        spans: Dict[int, List[np.ndarray]] = {}
        for channel, __ in units:
            spans.setdefault(channel, []).append(
                values[cursor:cursor + block])
            cursor += block
        for channel, pieces in spans.items():
            merged = pieces[0] if len(pieces) == 1 \
                else np.concatenate(pieces)
            summaries[name][channel] = DistributionSummary.of(merged)
    return summaries


def channel_hcfirst_study(chip: ChipProfile, rows_per_bank: int = 3072,
                          banks: Tuple[int, ...] = (0, 5, 11),
                          pseudo_channels: Tuple[int, ...] = (0, 1)
                          ) -> ChannelStudy:
    """Run the Fig. 7 study for one chip."""
    rows = analytic.stratified_rows(chip.geometry.rows, rows_per_bank)
    flat = hcfirst_flat(chip, rows_per_bank, banks, pseudo_channels)
    summaries = channel_summaries_from_flat(
        flat, rows.size, banks, pseudo_channels,
        channels=chip.geometry.channels)
    return ChannelStudy(chip.label, "hc_first", summaries)


def die_pairs(chip: ChipProfile) -> List[Tuple[int, int]]:
    """Channel pairs sharing a die (Obsv. 8's groups of two)."""
    by_die: Dict[int, List[int]] = {}
    for channel in range(chip.geometry.channels):
        by_die.setdefault(chip.geometry.die_of_channel(channel),
                          []).append(channel)
    return [tuple(channels) for channels in by_die.values()]


# ----------------------------------------------------------------------
# Across rows in a bank (Fig. 8)
# ----------------------------------------------------------------------

@dataclass
class RowProfileStudy:
    """Fig. 8: WCDP BER for every row of a bank in several channels."""

    chip_label: str
    channels: Tuple[int, ...]
    rows: np.ndarray
    #: channel -> per-row BER array (aligned with ``rows``).
    ber_by_channel: Dict[int, np.ndarray]
    #: Ground-truth subarray boundaries (for plot shading / validation).
    subarray_boundaries: Tuple[int, ...]

    def subarray_means(self, channel: int) -> List[float]:
        """Mean BER of each fully covered subarray."""
        ber = self.ber_by_channel[channel]
        means = []
        bounds = self.subarray_boundaries
        for start, end in zip(bounds, bounds[1:]):
            mask = (self.rows >= start) & (self.rows < end)
            if mask.any():
                means.append(float(ber[mask].mean()))
        return means


def row_ber_profile(chip: ChipProfile,
                    channels: Tuple[int, ...] = (0, 3, 7),
                    bank: int = 0, pseudo_channel: int = 0,
                    row_stride: int = 1,
                    hammer_count: int = metrics.BER_TEST_HAMMERS
                    ) -> RowProfileStudy:
    """Run the Fig. 8 study: per-row WCDP BER across a bank.

    Sampling noise is unit-local per channel, so a channel's profile is
    the same whether measured alone or alongside the others — the
    property the shard-parallel Fig. 8 path relies on.
    """
    rows = np.arange(0, chip.geometry.rows, row_stride)
    ber_by_channel = {}
    if batch_enabled() and channels:
        combos = [(channel, pseudo_channel, bank) for channel in channels]
        bers = analytic.wcdp_ber_multi(chip, combos, rows, hammer_count,
                                       rng=None)
        for index, channel in enumerate(channels):
            ber_by_channel[channel] = bers["WCDP"][index]
    else:
        for channel in channels:
            bers = analytic.wcdp_ber(chip, channel, pseudo_channel, bank,
                                     rows, hammer_count, rng=None)
            ber_by_channel[channel] = bers["WCDP"]
    return RowProfileStudy(
        chip_label=chip.label,
        channels=tuple(channels),
        rows=rows,
        ber_by_channel=ber_by_channel,
        subarray_boundaries=chip.geometry.subarrays.boundaries,
    )


# ----------------------------------------------------------------------
# Across banks and pseudo channels (Fig. 9)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BankPoint:
    """One marker of Fig. 9: a bank's mean BER and CV across its rows."""

    channel: int
    pseudo_channel: int
    bank: int
    mean_ber: float
    cv: float


@dataclass
class BankVariationStudy:
    """Fig. 9: BER variation across the 256 banks of one chip."""

    chip_label: str
    points: List[BankPoint] = field(default_factory=list)

    def cluster_split(self) -> Tuple[List[BankPoint], List[BankPoint]]:
        """Split the bimodal cloud at the median CV (Obsv. 16)."""
        cvs = sorted(point.cv for point in self.points)
        threshold = cvs[len(cvs) // 2]
        low = [p for p in self.points if p.cv <= threshold]
        high = [p for p in self.points if p.cv > threshold]
        return low, high

    def channel_spread(self) -> float:
        """Max - min of per-channel mean BER (Obsv. 17)."""
        by_channel: Dict[int, List[float]] = {}
        for point in self.points:
            by_channel.setdefault(point.channel, []).append(point.mean_ber)
        means = [float(np.mean(v)) for v in by_channel.values()]
        return max(means) - min(means)

    def intra_channel_spread(self, channel: int) -> float:
        """Max - min mean BER across banks within one channel."""
        values = [p.mean_ber for p in self.points if p.channel == channel]
        return max(values) - min(values)


def bank_variation_study(chip: ChipProfile, rows_per_segment: int = 100,
                         pattern: str = "Checkered0",
                         hammer_count: int = metrics.BER_TEST_HAMMERS,
                         combo_range: Optional[Tuple[int, int]] = None
                         ) -> BankVariationStudy:
    """Run the Fig. 9 study (first/middle/last 100 rows of all 256 banks).

    Sampling noise is unit-local per (channel, PC, bank) combo — each
    combo draws from a generator seeded by its own first profile seed —
    so a ``combo_range`` slice measures exactly the matching slice of
    the full study's points (the shard-parallel Fig. 9 contract).
    """
    geometry = chip.geometry
    rows = np.concatenate([
        analytic.segment_rows(geometry.rows, "first", rows_per_segment),
        analytic.segment_rows(geometry.rows, "middle", rows_per_segment),
        analytic.segment_rows(geometry.rows, "last", rows_per_segment),
    ])
    study = BankVariationStudy(chip.label)
    eff = analytic.effective_hammers(chip, hammer_count)
    combos = list(geometry.iter_banks())
    if combo_range is not None:
        start, stop = combo_range
        if not 0 <= start <= stop <= len(combos):
            raise ValueError(
                f"combo range {combo_range} outside [0, {len(combos)}]")
        combos = combos[start:stop]
    if not combos:
        return study
    if batch_enabled():
        # Chunk-streamed: the 256-bank cross is the largest single
        # population of the suite and must not materialize whole-device.
        probabilities = analytic.combo_ber_matrix(chip, combos, rows,
                                                  pattern, eff)
        first_seeds = analytic.combo_first_seeds(chip, combos, rows,
                                                 pattern)
    else:
        probabilities = first_seeds = None
    for index, (channel, pc, bank) in enumerate(combos):
        if probabilities is not None:
            # Same generator the scalar grid path seeds below.
            rng = np.random.default_rng(
                int(first_seeds[index]) & 0x7FFFFFFF)
            ber = rng.binomial(8192, probabilities[index]) / 8192.0
        else:
            grid = analytic.population_grid(chip, channel, pc, bank, rows,
                                            pattern)
            ber = grid.sampled_ber(eff, None)
        mean = float(ber.mean())
        cv = float(ber.std() / mean) if mean > 0 else 0.0
        study.points.append(BankPoint(channel, pc, bank, mean, cv))
    return study
