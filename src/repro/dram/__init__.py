"""HBM2 DRAM device substrate.

This package models an HBM2 stack at the level the paper's experiments
observe it: geometry (channels, pseudo channels, banks, subarrays, rows),
JESD235-style command timings, a command-execution engine with read
disturbance and retention fault physics, logical-to-physical row mapping,
on-die ECC codecs, and the undocumented in-DRAM TRR defense reverse
engineered in Section 7 of the paper.
"""

from repro.dram.geometry import (
    HBM2Geometry,
    RowAddress,
    SubarrayLayout,
    DEFAULT_GEOMETRY,
)
from repro.dram.timing import TimingParameters, DEFAULT_TIMINGS
from repro.errors import TimingError
from repro.dram.commands import Command, CommandKind
from repro.dram.cell_model import (
    CellPopulation,
    RowDisturbanceProfile,
    sample_smallest_uniforms,
)
from repro.dram.disturbance import DisturbanceModel
from repro.dram.retention import RetentionModel
from repro.dram.row_mapping import (
    RowMapping,
    IdentityMapping,
    XorScrambleMapping,
    MirrorOddMapping,
)
from repro.dram.trr import TrrEngine, TrrConfig
from repro.dram.mode_registers import ModeRegisters
from repro.dram.ecc import SecdedCodec, Hamming74Codec
from repro.dram.device import HBM2Stack, BankState

__all__ = [
    "HBM2Geometry",
    "RowAddress",
    "SubarrayLayout",
    "DEFAULT_GEOMETRY",
    "TimingParameters",
    "TimingError",
    "DEFAULT_TIMINGS",
    "Command",
    "CommandKind",
    "CellPopulation",
    "RowDisturbanceProfile",
    "sample_smallest_uniforms",
    "DisturbanceModel",
    "RetentionModel",
    "RowMapping",
    "IdentityMapping",
    "XorScrambleMapping",
    "MirrorOddMapping",
    "TrrEngine",
    "TrrConfig",
    "ModeRegisters",
    "SecdedCodec",
    "Hamming74Codec",
    "HBM2Stack",
    "BankState",
]
