"""HBM2 mode registers.

The paper manipulates two mode-register-controlled features (Section 3.1):

- **on-die ECC** is disabled by clearing the corresponding MR bit, so raw
  bitflips are observable,
- the **documented TRR Mode** (JESD235) is explicitly *not* entered; the
  undocumented TRR the paper uncovers operates regardless.

We model the small MR subset the experiments touch, with JESD235-style
field packing so programs can exercise realistic MR writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


class ModeRegisterError(Exception):
    """Illegal mode-register access."""


#: MR index -> (field name -> bit position) for the modelled subset.
_FIELDS: Dict[int, Dict[str, int]] = {
    # MR4 hosts ECC and parity controls in JESD235.
    4: {"ecc_enable": 0, "dm_enable": 1, "parity_enable": 2},
    # MR3 hosts bank-group / TRR-adjacent controls; we model TRR Mode here.
    3: {"trr_mode_enable": 0, "trr_mode_ban": 4},
}

#: TRR Mode target bank occupies MR3 bits [3:1].
_TRR_BANK_SHIFT = 1
_TRR_BANK_MASK = 0b111


@dataclass
class ModeRegisters:
    """Register file with the subset of MRs the experiments exercise."""

    registers: Dict[int, int] = field(
        default_factory=lambda: {index: 0 for index in range(16)})

    def __post_init__(self) -> None:
        # Chips power up with on-die ECC enabled; tests must disable it.
        self.set_field(4, "ecc_enable", True)

    def write(self, index: int, value: int) -> None:
        """Raw MR write (8-bit payload)."""
        self._check_index(index)
        if not 0 <= value <= 0xFF:
            raise ModeRegisterError("mode register payload must be 8 bits")
        self.registers[index] = value

    def read(self, index: int) -> int:
        """Raw MR read."""
        self._check_index(index)
        return self.registers[index]

    def set_field(self, index: int, name: str, value: bool) -> None:
        """Set a named single-bit field."""
        bit = self._field_bit(index, name)
        if value:
            self.registers[index] |= (1 << bit)
        else:
            self.registers[index] &= ~(1 << bit)

    def get_field(self, index: int, name: str) -> bool:
        """Read a named single-bit field."""
        bit = self._field_bit(index, name)
        return bool(self.registers[index] & (1 << bit))

    @property
    def ecc_enabled(self) -> bool:
        """Whether on-die ECC is active (tests clear this; Section 3.1)."""
        return self.get_field(4, "ecc_enable")

    @property
    def trr_mode_enabled(self) -> bool:
        """Whether the *documented* JESD235 TRR Mode is entered."""
        return self.get_field(3, "trr_mode_enable")

    def enter_trr_mode(self, target_bank: int) -> None:
        """Enter documented TRR Mode against ``target_bank``."""
        if not 0 <= target_bank <= _TRR_BANK_MASK:
            raise ModeRegisterError("TRR Mode bank must fit in 3 bits")
        value = self.registers[3]
        value &= ~(_TRR_BANK_MASK << _TRR_BANK_SHIFT)
        value |= target_bank << _TRR_BANK_SHIFT
        self.registers[3] = value
        self.set_field(3, "trr_mode_enable", True)

    def exit_trr_mode(self) -> None:
        """Leave documented TRR Mode."""
        self.set_field(3, "trr_mode_enable", False)

    @property
    def trr_mode_bank(self) -> int:
        """Bank targeted by documented TRR Mode."""
        return (self.registers[3] >> _TRR_BANK_SHIFT) & _TRR_BANK_MASK

    @staticmethod
    def _check_index(index: int) -> None:
        if not 0 <= index < 16:
            raise ModeRegisterError(f"mode register {index} does not exist")

    @staticmethod
    def _field_bit(index: int, name: str) -> int:
        fields = _FIELDS.get(index)
        if fields is None or name not in fields:
            raise ModeRegisterError(
                f"mode register {index} has no field {name!r}")
        return fields[name]
