"""Data-retention fault model.

Two of the paper's methodologies depend on retention behaviour:

- Section 6 (footnote 6): long-``t_AggON`` experiments exceed the 32 ms
  refresh window, so retention-induced bitflips must be profiled and
  *scrubbed* out of the observed flips.
- Section 7: the U-TRR methodology uses rows with known retention times as
  a **side channel** — a side-channel row initialized and left unrefreshed
  for its retention time ``T`` shows bitflips *unless* the in-DRAM TRR
  mechanism refreshed it in between.

The model assigns each row a weakest-cell retention time drawn from a
log-normal distribution (floored just above the guaranteed 32 ms window)
plus a small ladder of progressively leakier cells, all deterministic in
the row coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.dram.geometry import RowAddress
from repro.dram.seeding import generator_for

#: Nanoseconds per millisecond, for readability.
_MS = 1.0e6

#: Manufacturer-guaranteed retention: no failures within the refresh window.
GUARANTEED_RETENTION_NS = 32.0 * _MS


@dataclass(frozen=True)
class RetentionModel:
    """Per-row retention-time distribution for one chip.

    ``median_ns`` and ``sigma_log10`` shape the weakest-cell retention time
    across rows; U-TRR-style profiling at 64 ms granularity finds a usable
    population of side-channel rows (retention in the hundreds of ms) for
    any reasonable parameterization.
    """

    #: Median weakest-cell retention time across rows (ns).
    median_ns: float = 1.2e9
    #: log10 spread of weakest-cell retention across rows.
    sigma_log10: float = 0.45
    #: Number of leaky cells modelled per row (the retention "ladder").
    ladder_size: int = 64
    #: Mean log10 spacing between successive ladder cells.
    ladder_spacing: float = 0.25
    #: Seed namespace separating retention draws from threshold draws.
    seed: int = 0x52455445

    def _rng(self, address: RowAddress) -> np.random.Generator:
        return generator_for(self.seed, address.channel,
                             address.pseudo_channel, address.bank,
                             address.row)

    def row_retention_ns(self, address: RowAddress) -> float:
        """Weakest-cell retention time of the row (ns), floored at 33 ms."""
        rng = self._rng(address)
        draw = self.median_ns * 10.0 ** rng.normal(0.0, self.sigma_log10)
        return max(draw, GUARANTEED_RETENTION_NS * 1.03125)

    def cell_ladder(self, address: RowAddress) -> Tuple[np.ndarray,
                                                        np.ndarray]:
        """Retention times and bit positions of the row's leaky cells.

        Returns ``(times_ns, bit_positions)`` sorted by increasing
        retention time; ``times_ns[0]`` equals :meth:`row_retention_ns`.
        """
        rng = self._rng(address)
        base = self.median_ns * 10.0 ** rng.normal(0.0, self.sigma_log10)
        base = max(base, GUARANTEED_RETENTION_NS * 1.03125)
        spacings = rng.exponential(self.ladder_spacing,
                                   size=self.ladder_size - 1)
        times = base * 10.0 ** np.concatenate(([0.0], np.cumsum(spacings)))
        positions = rng.choice(8192, size=self.ladder_size, replace=False)
        return times, positions

    def failing_bits(self, address: RowAddress,
                     elapsed_ns: float) -> np.ndarray:
        """Bit positions that lose data after ``elapsed_ns`` unrefreshed."""
        if elapsed_ns < 0:
            raise ValueError("elapsed_ns must be non-negative")
        times, positions = self.cell_ladder(address)
        return positions[times <= elapsed_ns]

    def failure_count(self, address: RowAddress, elapsed_ns: float) -> int:
        """Number of retention bitflips after ``elapsed_ns`` unrefreshed."""
        return int(self.failing_bits(address, elapsed_ns).size)

    def has_failed(self, address: RowAddress, elapsed_ns: float) -> bool:
        """Whether the row shows at least one retention bitflip."""
        return elapsed_ns >= self.row_retention_ns(address)

    def profile_retention_ns(self, address: RowAddress,
                             step_ns: float = 64.0 * _MS,
                             max_steps: int = 256) -> float:
        """Measure row retention the way U-TRR does.

        Starting at ``step_ns`` (64 ms) and incrementing by ``step_ns``,
        return the first tested time at which the row exhibits a bitflip.
        Returns ``inf`` if no failure occurs within ``max_steps`` steps.
        """
        true_time = self.row_retention_ns(address)
        for step in range(1, max_steps + 1):
            tested = step * step_ns
            if tested >= true_time:
                return tested
        return float("inf")


#: Default retention model; chips may override the median/spread.
DEFAULT_RETENTION = RetentionModel()
