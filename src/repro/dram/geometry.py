"""HBM2 stack geometry and addressing.

All tested HBM2 chips in the paper share the same organization (Section 3):

- stack density of 4 GiB,
- 8 channels (paired two-per-die across four 3D-stacked DRAM dies),
- 2 pseudo channels per channel,
- 16 banks per pseudo channel,
- 16384 rows per bank,
- 1 KiB (8192 bits) of storage per row.

Banks are partitioned into subarrays of either 832 or 768 rows (Section 4.2,
footnote 3).  The paper reports that the *middle* and the *last* subarray of
a bank contain 832 rows and are significantly more RowHammer resilient than
the others (Observation 15); the canonical layout below satisfies both
constraints while summing to exactly 16384 rows.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

#: Canonical subarray sizes for one bank: sixteen 832-row and four 768-row
#: subarrays (16 * 832 + 4 * 768 == 16384).  Row 8192 starts subarray 10
#: (the "middle" subarray) and the last subarray holds 832 rows, matching
#: Observation 15.
DEFAULT_SUBARRAY_SIZES: Tuple[int, ...] = (
    832, 832, 768, 832, 832, 768, 832, 832, 832, 832,
    832, 832, 768, 832, 832, 768, 832, 832, 832, 832,
)


@dataclass(frozen=True)
class SubarrayLayout:
    """Partition of a bank's rows into subarrays.

    The layout is the ground truth that the reverse-engineering routine in
    :mod:`repro.bender.routines.subarray_reveng` rediscovers via single-sided
    RowHammer (an aggressor at a subarray edge only disturbs the one victim
    that shares its subarray).
    """

    sizes: Tuple[int, ...] = DEFAULT_SUBARRAY_SIZES

    def __post_init__(self) -> None:
        if any(size <= 0 for size in self.sizes):
            raise ValueError("subarray sizes must be positive")

    @property
    def rows(self) -> int:
        """Total number of rows covered by the layout."""
        return sum(self.sizes)

    @property
    def count(self) -> int:
        """Number of subarrays in the bank."""
        return len(self.sizes)

    @property
    def boundaries(self) -> Tuple[int, ...]:
        """Starting row of each subarray, plus the end sentinel."""
        starts = [0]
        for size in self.sizes:
            starts.append(starts[-1] + size)
        return tuple(starts)

    def subarray_of(self, row: int) -> int:
        """Return the subarray index containing ``row``."""
        self._check_row(row)
        offset = 0
        for index, size in enumerate(self.sizes):
            offset += size
            if row < offset:
                return index
        raise AssertionError("unreachable: row bounds checked above")

    def position_in_subarray(self, row: int) -> Tuple[int, int, int]:
        """Return ``(subarray_index, offset, size)`` for ``row``."""
        self._check_row(row)
        start = 0
        for index, size in enumerate(self.sizes):
            if row < start + size:
                return index, row - start, size
            start += size
        raise AssertionError("unreachable: row bounds checked above")

    def rows_of(self, subarray: int) -> range:
        """Return the row range of subarray ``subarray``."""
        if not 0 <= subarray < self.count:
            raise ValueError(f"subarray {subarray} out of range")
        bounds = self.boundaries
        return range(bounds[subarray], bounds[subarray + 1])

    def is_edge_row(self, row: int) -> bool:
        """Whether ``row`` is the first or last row of its subarray."""
        __, offset, size = self.position_in_subarray(row)
        return offset == 0 or offset == size - 1

    def same_subarray(self, row_a: int, row_b: int) -> bool:
        """Whether two rows share a subarray (disturbance domain)."""
        return self.subarray_of(row_a) == self.subarray_of(row_b)

    @property
    def middle_subarray(self) -> int:
        """Index of the subarray containing the bank's middle row."""
        return self.subarray_of(self.rows // 2)

    @property
    def last_subarray(self) -> int:
        """Index of the last subarray in the bank."""
        return self.count - 1

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} out of range [0, {self.rows})")


@dataclass(frozen=True)
class HBM2Geometry:
    """Dimensions of one HBM2 stack, as characterized in the paper."""

    channels: int = 8
    pseudo_channels: int = 2
    banks: int = 16
    rows: int = 16384
    row_bits: int = 8192
    dies: int = 4
    subarrays: SubarrayLayout = field(default_factory=SubarrayLayout)

    def __post_init__(self) -> None:
        if self.subarrays.rows != self.rows:
            raise ValueError(
                f"subarray layout covers {self.subarrays.rows} rows, "
                f"bank has {self.rows}"
            )
        if self.channels % self.dies:
            raise ValueError("channels must spread evenly across dies")

    @property
    def row_bytes(self) -> int:
        """Row size in bytes (1 KiB for all tested chips)."""
        return self.row_bits // 8

    @property
    def total_banks(self) -> int:
        """Banks across the whole stack."""
        return self.channels * self.pseudo_channels * self.banks

    @property
    def density_bytes(self) -> int:
        """Stack density in bytes (4 GiB for all tested chips)."""
        return self.total_banks * self.rows * self.row_bytes

    @property
    def channels_per_die(self) -> int:
        """Channels co-located on one 3D-stacked DRAM die."""
        return self.channels // self.dies

    def die_of_channel(self, channel: int) -> int:
        """Map a channel to the die it lives on.

        The paper observes channels cluster into groups of two with similar
        read-disturbance behaviour and hypothesizes each group shares a die
        (Observation 8).  The reported groups — CH0/CH7 together in Chip 0,
        CH3/CH4 together in every chip — imply the mirrored pairing
        (0,7), (1,6), (2,5), (3,4), which we adopt.
        """
        self._check(channel, self.channels, "channel")
        return min(channel, self.channels - 1 - channel)

    def check_address(self, channel: int, pseudo_channel: int, bank: int,
                      row: int) -> None:
        """Validate a full row address; raise :class:`ValueError` if bad."""
        self._check(channel, self.channels, "channel")
        self._check(pseudo_channel, self.pseudo_channels, "pseudo channel")
        self._check(bank, self.banks, "bank")
        self._check(row, self.rows, "row")

    def iter_banks(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate ``(channel, pseudo_channel, bank)`` across the stack."""
        return itertools.product(
            range(self.channels), range(self.pseudo_channels),
            range(self.banks))

    @staticmethod
    def _check(value: int, limit: int, label: str) -> None:
        if not 0 <= value < limit:
            raise ValueError(f"{label} {value} out of range [0, {limit})")


@dataclass(frozen=True, order=True)
class RowAddress:
    """Fully qualified physical row address inside one HBM2 stack."""

    channel: int
    pseudo_channel: int
    bank: int
    row: int

    def validate(self, geometry: HBM2Geometry) -> "RowAddress":
        """Return self after bounds-checking against ``geometry``."""
        geometry.check_address(
            self.channel, self.pseudo_channel, self.bank, self.row)
        return self

    def neighbor(self, offset: int) -> "RowAddress":
        """Row at ``row + offset`` in the same bank (may be out of range)."""
        return RowAddress(
            self.channel, self.pseudo_channel, self.bank, self.row + offset)

    def with_row(self, row: int) -> "RowAddress":
        """Same bank coordinates with a different row index."""
        return RowAddress(self.channel, self.pseudo_channel, self.bank, row)

    @property
    def bank_key(self) -> Tuple[int, int, int]:
        """Hashable bank identity ``(channel, pseudo_channel, bank)``."""
        return (self.channel, self.pseudo_channel, self.bank)


def adjacent_rows(address: RowAddress, geometry: HBM2Geometry,
                  radius: int = 1) -> List[RowAddress]:
    """Physically adjacent rows within ``radius``, clipped to the subarray.

    Disturbance does not cross subarray boundaries (sense-amplifier stripes
    isolate neighboring subarrays), which is exactly what the paper's
    subarray reverse engineering exploits (footnote 3).
    """
    layout = geometry.subarrays
    neighbors = []
    for offset in range(-radius, radius + 1):
        if offset == 0:
            continue
        row = address.row + offset
        if not 0 <= row < geometry.rows:
            continue
        if not layout.same_subarray(address.row, row):
            continue
        neighbors.append(address.with_row(row))
    return neighbors


#: Geometry shared by every chip the paper tests.
DEFAULT_GEOMETRY = HBM2Geometry()
