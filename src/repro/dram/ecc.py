"""Error-correcting-code substrates for the Section 8 analysis.

The paper argues (Section 8.1, Fig. 15) that the observed RowHammer BER
overwhelms widely deployed ECC:

- **SECDED (72,64)** corrects one and detects two bitflips per 64-bit word;
  the paper counts hundreds of thousands of words with more than two flips.
- a **Hamming(7,4)** code *could* correct the observed worst case but at a
  prohibitive 75% storage overhead.

Both codecs are implemented bit-exactly so the word-level analysis can
classify real flip patterns (corrected / detected / miscorrected /
undetected) instead of assuming the textbook guarantees.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np


class DecodeStatus(enum.Enum):
    """Outcome of decoding one codeword."""

    OK = "ok"
    CORRECTED = "corrected"
    DETECTED = "detected_uncorrectable"
    MISCORRECTED = "miscorrected"


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class SecdedCodec:
    """Extended Hamming SECDED(72,64) over bit arrays.

    Codeword layout follows the classic construction: positions 1..71 hold
    the Hamming(71,64) code (check bits at power-of-two positions), and an
    overall parity bit extends it to single-error-correct /
    double-error-detect.
    """

    data_bits: int = 64

    @property
    def check_bits(self) -> int:
        """Hamming check bits required for ``data_bits`` (7 for 64)."""
        r = 0
        while (1 << r) < self.data_bits + r + 1:
            r += 1
        return r

    @property
    def codeword_bits(self) -> int:
        """Total codeword length including overall parity (72 for 64)."""
        return self.data_bits + self.check_bits + 1

    def _data_positions(self) -> np.ndarray:
        positions = [p for p in range(1, self.codeword_bits)
                     if not _is_power_of_two(p)]
        return np.array(positions[: self.data_bits])

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode ``data_bits`` bits into a ``codeword_bits`` array.

        Index 0 of the returned array is the overall parity bit; indices
        1.. hold the Hamming codeword positions.
        """
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (self.data_bits,):
            raise ValueError(f"expected {self.data_bits} data bits")
        codeword = np.zeros(self.codeword_bits, dtype=np.uint8)
        codeword[self._data_positions()] = data
        for r in range(self.check_bits):
            parity_pos = 1 << r
            covered = [p for p in range(1, self.codeword_bits)
                       if (p & parity_pos) and p != parity_pos]
            codeword[parity_pos] = np.bitwise_xor.reduce(codeword[covered])
        codeword[0] = np.bitwise_xor.reduce(codeword[1:])
        return codeword

    def decode(self, codeword: np.ndarray) -> Tuple[np.ndarray,
                                                    DecodeStatus]:
        """Decode, correcting single errors and detecting double errors.

        Three or more errors may silently decode (``OK``-looking) or
        miscorrect; the return status reflects what the *decoder believes*,
        which is exactly the security-relevant behaviour.
        """
        codeword = np.asarray(codeword, dtype=np.uint8).copy()
        if codeword.shape != (self.codeword_bits,):
            raise ValueError(f"expected {self.codeword_bits} codeword bits")
        syndrome = 0
        for r in range(self.check_bits):
            parity_pos = 1 << r
            covered = [p for p in range(1, self.codeword_bits)
                       if p & parity_pos]
            if np.bitwise_xor.reduce(codeword[covered]):
                syndrome |= parity_pos
        overall = int(np.bitwise_xor.reduce(codeword))
        if syndrome == 0 and overall == 0:
            return codeword[self._data_positions()], DecodeStatus.OK
        if overall == 1:
            # Decoder believes: single error (possibly in the parity bit).
            if 0 < syndrome < self.codeword_bits:
                codeword[syndrome] ^= 1
            status = DecodeStatus.CORRECTED
            return codeword[self._data_positions()], status
        # Non-zero syndrome with even parity: double error detected.
        return codeword[self._data_positions()], DecodeStatus.DETECTED

    def evaluate_flips(self, data: np.ndarray,
                       flip_positions: np.ndarray) -> DecodeStatus:
        """Ground-truth outcome of flipping codeword bits of ``data``.

        Encodes, applies the flips, decodes, and compares against the true
        data to distinguish a real correction from a miscorrection and a
        detected error from a silent one.
        """
        encoded = self.encode(data)
        corrupted = encoded.copy()
        flip_positions = np.asarray(flip_positions, dtype=int)
        if flip_positions.size:
            if (flip_positions.min() < 0
                    or flip_positions.max() >= self.codeword_bits):
                raise ValueError("flip position out of codeword range")
            corrupted[flip_positions] ^= 1
        decoded, status = self.decode(corrupted)
        truth = encoded[self._data_positions()]
        if status is DecodeStatus.DETECTED:
            return DecodeStatus.DETECTED
        if np.array_equal(decoded, truth):
            return status
        return DecodeStatus.MISCORRECTED


@dataclass(frozen=True)
class Hamming74Codec:
    """Hamming(7,4): corrects one bitflip per 4 data bits.

    Storage overhead is 3 parity bits per 4 data bits (75%), the cost the
    paper cites to argue ECC alone is an impractical RowHammer defense.
    """

    @property
    def storage_overhead(self) -> float:
        """Parity bits per data bit (0.75)."""
        return 3.0 / 4.0

    def encode(self, nibble: np.ndarray) -> np.ndarray:
        """Encode 4 data bits into a 7-bit codeword (positions 1..7)."""
        nibble = np.asarray(nibble, dtype=np.uint8)
        if nibble.shape != (4,):
            raise ValueError("expected 4 data bits")
        code = np.zeros(8, dtype=np.uint8)  # index 0 unused
        code[[3, 5, 6, 7]] = nibble
        code[1] = code[3] ^ code[5] ^ code[7]
        code[2] = code[3] ^ code[6] ^ code[7]
        code[4] = code[5] ^ code[6] ^ code[7]
        return code[1:]

    def decode(self, codeword: np.ndarray) -> Tuple[np.ndarray,
                                                    DecodeStatus]:
        """Decode a 7-bit codeword, correcting up to one error."""
        codeword = np.asarray(codeword, dtype=np.uint8)
        if codeword.shape != (7,):
            raise ValueError("expected 7 codeword bits")
        code = np.zeros(8, dtype=np.uint8)
        code[1:] = codeword
        s1 = code[1] ^ code[3] ^ code[5] ^ code[7]
        s2 = code[2] ^ code[3] ^ code[6] ^ code[7]
        s4 = code[4] ^ code[5] ^ code[6] ^ code[7]
        syndrome = s1 | (s2 << 1) | (s4 << 2)
        status = DecodeStatus.OK
        if syndrome:
            code[syndrome] ^= 1
            status = DecodeStatus.CORRECTED
        return code[[3, 5, 6, 7]], status

    def words_per_row(self, row_bits: int = 8192) -> int:
        """Number of 4-bit datawords protected in one row."""
        return row_bits // 4


def classify_flip_count(flips_in_word: int) -> str:
    """SECDED guarantee class for a word with ``flips_in_word`` bitflips.

    Mirrors the Section 8 argument: one flip is correctable, two are
    detectable but uncorrectable, three or more can escape detection.
    """
    if flips_in_word < 0:
        raise ValueError("flip count must be non-negative")
    if flips_in_word == 0:
        return "clean"
    if flips_in_word == 1:
        return "correctable"
    if flips_in_word == 2:
        return "detectable_uncorrectable"
    return "potentially_undetectable"
