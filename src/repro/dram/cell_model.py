"""Statistical cell fault model for read disturbance.

The model replaces the physical DRAM cells of the paper's six HBM2 chips.
Each DRAM cell has a *hammer threshold*: the accumulated effective
disturbance (expressed in units of baseline double-sided hammer counts) at
which the cell flips.  Thresholds follow a **two-population mixture**:

- a *weak* population (a small per-row fraction ``f_weak``) with log-normal
  thresholds around 10**mu_weak.  These cells produce the paper's RowHammer
  regime: HC_first in the tens of thousands and BER around one percent at
  256K hammers.  The log-spread ``sigma_weak`` controls the HC_nth /
  HC_first ratios of Section 5 (mean HC_tenth about 1.76x HC_first).
- a *strong* population (everything else) with much higher thresholds that
  only become reachable when RowPress amplification multiplies effective
  disturbance (Section 6), driving BER toward the ~50% polarity cap.

A single log-normal population cannot satisfy the paper's joint constraints;
the ablation benchmark ``benchmarks/test_ablation_mixture.py`` demonstrates
this quantitatively.

Randomness is deterministic: every row derives its cells from a Philox
counter keyed by the row coordinates, so re-testing a row reproduces the
same cells without storing the 4 GiB array.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np
from scipy.special import ndtr, ndtri

#: Default log10 spread of the weak population.  Together with the
#: row-level sigma couplings in :mod:`repro.chips.profiles`, chosen so the
#: 10th order statistic of the weak-cell thresholds sits ~1.6-1.8x above
#: the minimum for typical weak-population sizes (Section 5, Obsv. 18).
DEFAULT_SIGMA_WEAK = 0.25

#: Default strong-population parameters (log10 of baseline hammer units);
#: calibrated so Fig. 12's BER reaches ~31% at t_AggON = tREFI and ~50%
#: (the polarity cap) at 9*tREFI with 150K hammers.
DEFAULT_MU_STRONG = 6.85
DEFAULT_SIGMA_STRONG = 0.388

#: Weak cells cluster spatially within 64-bit words (Section 8: most words
#: with at least one bitflip have more than one, defeating SECDED).  Word
#: weights are Gamma(alpha)-distributed; smaller alpha = stronger
#: clustering.  Calibrated against Fig. 15's word histogram.
WORD_BITS = 64
WORD_CLUSTER_ALPHA = 0.18


def order_stats_from_draws(n: int, draws: np.ndarray) -> np.ndarray:
    """The ``k`` smallest order statistics of ``n`` iid U(0,1).

    Uses the sequential conditional-spacings method on ``k = len(draws)``
    raw uniforms: ``U_(1)`` is ``1 - (1 - V)**(1/n)`` and, given ``U_(j)``,
    the next order statistic is
    ``U_(j) + (1 - U_(j)) * (1 - (1 - V)**(1/(n - j)))``.  This avoids
    materializing all ``n`` draws (n is the weak-cell count of a row) and,
    crucially, makes the first ``k1 < k2`` outputs identical across calls
    that share the same draw stream.

    ``draws`` may be 1-D (one row) or 2-D of shape ``(rows, k)`` for a
    vectorized batch; the order statistics are computed along the last
    axis.
    """
    draws = np.asarray(draws, dtype=float)
    k = draws.shape[-1]
    n = np.asarray(n)
    if np.any(n < 1):
        raise ValueError("n must be at least 1")
    if k < 1 or np.any(k > n):
        raise ValueError("number of draws must be in [1, n]")
    order_stats = np.empty_like(draws)
    current = np.zeros(draws.shape[:-1], dtype=float)
    for j in range(k):
        remaining = n - j
        step = 1.0 - (1.0 - draws[..., j]) ** (1.0 / remaining)
        current = current + (1.0 - current) * step
        order_stats[..., j] = current
    return order_stats


def sample_smallest_uniforms(n: int, k: int,
                             rng: np.random.Generator) -> np.ndarray:
    """Sample the ``k`` smallest order statistics of ``n`` iid U(0,1)."""
    if n < 1:
        raise ValueError("n must be at least 1")
    if not 1 <= k <= n:
        raise ValueError("k must be in [1, n]")
    return order_stats_from_draws(n, rng.random(k))


@dataclass(frozen=True)
class CellPopulation:
    """Mixture parameters for one row under one data pattern.

    Thresholds are expressed in *baseline hammer units*: the per-side
    activation count of a standard double-sided pattern at minimal on-time
    (t_AggON = tRAS) that delivers the same disturbance.  Effective hammers
    for arbitrary tests are ``hammer_count * amplification * coupling``.
    """

    #: Fraction of the row's cells in the weak population (sets the
    #: RowHammer-regime BER plateau, ~0.5..3%).
    f_weak: float
    #: log10 median threshold of the weak population.
    mu_weak: float
    #: log10 spread of the weak population.
    sigma_weak: float = DEFAULT_SIGMA_WEAK
    #: log10 median threshold of the strong population.
    mu_strong: float = DEFAULT_MU_STRONG
    #: log10 spread of the strong population.
    sigma_strong: float = DEFAULT_SIGMA_STRONG
    #: Fraction of strong cells storing their vulnerable (charged) polarity
    #: under the active data pattern; caps extreme-t_AggON BER near 50%
    #: (Observation 22).
    flippable_strong_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.f_weak < 1.0:
            raise ValueError("f_weak must be in (0, 1)")
        if self.sigma_weak <= 0 or self.sigma_strong <= 0:
            raise ValueError("sigmas must be positive")
        if not 0.0 <= self.flippable_strong_fraction <= 1.0:
            raise ValueError("flippable_strong_fraction must be in [0, 1]")

    def weak_cell_count(self, row_bits: int) -> int:
        """Number of weak cells in a row of ``row_bits`` bits (at least 1)."""
        return max(1, int(round(self.f_weak * row_bits)))

    def ber(self, effective_hammers: float) -> float:
        """Expected bit error rate after ``effective_hammers`` disturbance.

        Closed form: the mixture CDF of cell thresholds evaluated at the
        accumulated disturbance.
        """
        if effective_hammers <= 0:
            return 0.0
        log_h = math.log10(effective_hammers)
        weak = self.f_weak * ndtr(
            (log_h - self.mu_weak) / self.sigma_weak)
        strong = ((1.0 - self.f_weak) * self.flippable_strong_fraction
                  * ndtr((log_h - self.mu_strong) / self.sigma_strong))
        return float(weak + strong)

    def ber_array(self, effective_hammers: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`ber` over an array of disturbances."""
        hammers = np.asarray(effective_hammers, dtype=float)
        out = np.zeros_like(hammers)
        positive = hammers > 0
        log_h = np.log10(hammers[positive])
        weak = self.f_weak * ndtr(
            (log_h - self.mu_weak) / self.sigma_weak)
        strong = ((1.0 - self.f_weak) * self.flippable_strong_fraction
                  * ndtr((log_h - self.mu_strong) / self.sigma_strong))
        out[positive] = weak + strong
        return out

    def hammers_for_ber(self, target_ber: float) -> float:
        """Invert :meth:`ber` for the weak-population regime.

        Only valid for targets below the weak-population plateau
        (``target_ber < f_weak``); raises :class:`ValueError` otherwise.
        """
        if not 0.0 < target_ber < self.f_weak:
            raise ValueError(
                "target BER must be in (0, f_weak) for the weak regime")
        z = ndtri(target_ber / self.f_weak)
        return 10.0 ** (self.mu_weak + self.sigma_weak * z)

    def threshold_quantile(self, q: float) -> float:
        """Weak-population threshold quantile (baseline hammer units)."""
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        return 10.0 ** (self.mu_weak + self.sigma_weak * ndtri(q))

    def min_threshold_quantile(self, row_bits: int, q: float = 0.5) -> float:
        """Quantile of the row's *minimum* cell threshold.

        The minimum of ``n`` weak cells has CDF ``1 - (1 - F)**n``; this
        returns its ``q`` quantile, the typical HC_first of the row in
        baseline units.
        """
        n = self.weak_cell_count(row_bits)
        u = 1.0 - (1.0 - q) ** (1.0 / n)
        return self.threshold_quantile(u)

    def sample_min_threshold(self, row_bits: int,
                             rng: np.random.Generator) -> float:
        """Sample the row's minimum cell threshold (baseline units)."""
        return self.sample_smallest_thresholds(row_bits, 1, rng)[0]

    def sample_smallest_thresholds(self, row_bits: int, k: int,
                                   rng: np.random.Generator) -> np.ndarray:
        """Sample the ``k`` smallest cell thresholds of a row.

        These are the hammer counts (in baseline units) at which the 1st,
        2nd, ..., k-th bitflip appears — the quantity Section 5 studies.
        """
        n = self.weak_cell_count(row_bits)
        if k > n:
            raise ValueError(
                f"row has only {n} weak cells; cannot sample {k} smallest")
        uniforms = sample_smallest_uniforms(n, k, rng)
        return 10.0 ** (self.mu_weak + self.sigma_weak * ndtri(uniforms))

    def smallest_thresholds_from_draws(self, row_bits: int,
                                       draws: np.ndarray) -> np.ndarray:
        """Smallest cell thresholds from externally supplied uniforms.

        The deterministic draw stream (see
        :meth:`RowDisturbanceProfile.order_stat_draws`) guarantees the
        analytic HC_first/HC_nth values and the exact device engine's
        materialized thresholds agree bit-for-bit.
        """
        n = self.weak_cell_count(row_bits)
        uniforms = order_stats_from_draws(n, draws)
        return 10.0 ** (self.mu_weak + self.sigma_weak * ndtri(uniforms))

    def materialize_thresholds(self, row_bits: int,
                               rng: np.random.Generator,
                               weak_draws: Optional[np.ndarray] = None
                               ) -> np.ndarray:
        """Materialize per-cell thresholds for an exact simulation.

        Returns an array of ``row_bits`` thresholds in baseline hammer
        units.  Strong cells that store their non-vulnerable polarity are
        assigned an infinite threshold.

        ``weak_draws`` optionally supplies the raw uniforms feeding the
        weak-population order statistics; when it comes from the same
        deterministic stream as :meth:`RowDisturbanceProfile.hc_nth`, the
        exact device engine and the analytic HC paths agree bit-for-bit.
        """
        n_weak = self.weak_cell_count(row_bits)
        if weak_draws is None:
            weak_draws = rng.random(n_weak)
        if weak_draws.shape != (n_weak,):
            raise ValueError(f"expected {n_weak} weak draws")
        weak_values = self.smallest_thresholds_from_draws(
            row_bits, weak_draws)
        thresholds = np.full(row_bits, np.inf)
        strong_mask = np.ones(row_bits, dtype=bool)
        weak_indices = sample_clustered_positions(row_bits, n_weak, rng)
        strong_mask[weak_indices] = False
        thresholds[weak_indices] = weak_values
        strong_indices = np.flatnonzero(strong_mask)
        flippable = rng.random(strong_indices.size) \
            < self.flippable_strong_fraction
        chosen = strong_indices[flippable]
        # Truncate the strong population at -3 sigma: its extreme lower
        # tail would otherwise occasionally undercut the weak minimum and
        # break the HC_first consistency between the exact and analytic
        # engines (the closed-form BER ignores the same 0.13% tail mass).
        strong_z = np.maximum(rng.normal(size=chosen.size), -3.0)
        thresholds[chosen] = 10.0 ** (self.mu_strong
                                      + self.sigma_strong * strong_z)
        return thresholds

    def with_coupling(self, coupling: float) -> "CellPopulation":
        """Fold a disturbance-coupling factor into the thresholds.

        A coupling of ``c`` divides every threshold by ``c`` (equivalently
        shifts both log-medians down by ``log10(c)``), so callers can keep
        passing raw hammer counts.
        """
        if coupling <= 0:
            raise ValueError("coupling must be positive")
        shift = math.log10(coupling)
        return replace(self, mu_weak=self.mu_weak - shift,
                       mu_strong=self.mu_strong - shift)


@dataclass(frozen=True)
class RowDisturbanceProfile:
    """Bound pair of a row's cell population and its deterministic RNG seed.

    Produced by :class:`repro.chips.profiles.ChipProfile` for a
    ``(row address, data pattern)`` pair; consumed by the device engine and
    the analytic experiment paths.
    """

    population: CellPopulation
    seed: int
    row_bits: int = 8192

    def rng(self, namespace: int = 0x3A7) -> np.random.Generator:
        """Deterministic generator for this row/pattern combination."""
        from repro.dram.seeding import generator_for

        return generator_for(self.seed, namespace)

    def order_stat_draws(self, k: int) -> np.ndarray:
        """Deterministic raw uniforms feeding the weak order statistics.

        Draw ``j`` is a pure function of ``(seed, j)``, so requesting
        ``k1 < k2`` draws yields identical prefixes — the property that
        keeps HC_first, HC_nth, and the materialized thresholds mutually
        consistent (and makes all three vectorizable across rows).
        """
        from repro.dram.seeding import uniform_array_for

        return uniform_array_for((self.seed, 0x0D), np.arange(k))

    def expected_ber(self, effective_hammers: float) -> float:
        """Closed-form expected BER (see :meth:`CellPopulation.ber`)."""
        return self.population.ber(effective_hammers)

    def sampled_ber(self, effective_hammers: float,
                    rng: Optional[np.random.Generator] = None) -> float:
        """Binomially sampled BER, adding finite-row sampling noise."""
        generator = rng if rng is not None else self.rng(0x5B)
        p = self.population.ber(effective_hammers)
        flips = generator.binomial(self.row_bits, p)
        return flips / self.row_bits

    def hc_first(self, amplification: float = 1.0) -> float:
        """The row's HC_first under disturbance ``amplification``.

        Deterministic for a fixed profile: the row's minimum cell
        threshold divided by the amplification, floored at one activation
        (RowPress at 16 ms reaches HC_first = 1; Observation 23).
        """
        return float(self.hc_nth(1, amplification)[0])

    def hc_nth(self, n: int, amplification: float = 1.0) -> np.ndarray:
        """Hammer counts at which the first ``n`` bitflips appear."""
        thresholds = self.population.smallest_thresholds_from_draws(
            self.row_bits, self.order_stat_draws(n))
        return np.maximum(1.0, thresholds / amplification)

    def materialize(self) -> np.ndarray:
        """Per-cell thresholds for the exact device engine.

        Bit-consistent with :meth:`hc_nth`: the weak-population values
        come from the same deterministic draw stream.
        """
        n_weak = self.population.weak_cell_count(self.row_bits)
        return self.population.materialize_thresholds(
            self.row_bits, self.rng(), self.order_stat_draws(n_weak))


def sample_clustered_positions(row_bits: int, count: int,
                               rng: np.random.Generator,
                               word_bits: int = WORD_BITS,
                               alpha: float = WORD_CLUSTER_ALPHA
                               ) -> np.ndarray:
    """Sample ``count`` distinct bit positions with word-level clustering.

    Words receive Gamma(``alpha``)-distributed weights and cells land in
    words proportionally (without replacement within a word), reproducing
    the paper's observation that RowHammer bitflips concentrate in a few
    64-bit words (Fig. 15) rather than spreading uniformly.
    """
    if count > row_bits:
        raise ValueError("cannot place more cells than bits")
    words = row_bits // word_bits
    weights = rng.gamma(alpha, size=words)
    weights_sum = weights.sum()
    if weights_sum <= 0:
        weights = np.full(words, 1.0 / words)
    else:
        weights = weights / weights_sum
    positions: list = []
    counts = rng.multinomial(count, weights)
    # A word holds at most word_bits cells; spill any excess uniformly.
    excess = 0
    for word, word_count in enumerate(counts):
        take = min(word_count, word_bits)
        excess += word_count - take
        if take:
            offsets = rng.choice(word_bits, size=take, replace=False)
            positions.extend(word * word_bits + offsets)
    if excess:
        remaining = np.setdiff1d(np.arange(row_bits),
                                 np.asarray(positions, dtype=int))
        positions.extend(rng.choice(remaining, size=excess, replace=False))
    return np.asarray(positions, dtype=np.int64)


def solve_mu_weak(target_hc_first: float, f_weak: float, row_bits: int,
                  sigma_weak: float = DEFAULT_SIGMA_WEAK) -> float:
    """Calibrate ``mu_weak`` so the median HC_first lands on a target.

    Used by the chip profiles: given the paper's per-chip minimum/typical
    HC_first and BER plateau, solve for the weak-population median.
    """
    if target_hc_first <= 0:
        raise ValueError("target_hc_first must be positive")
    n = max(1, int(round(f_weak * row_bits)))
    median_min_u = 1.0 - 0.5 ** (1.0 / n)
    z = ndtri(median_min_u)
    return math.log10(target_hc_first) - sigma_weak * z


def expected_hc_first(mu_weak: float, f_weak: float, row_bits: int,
                      sigma_weak: float = DEFAULT_SIGMA_WEAK) -> float:
    """Median HC_first implied by a parameter set (inverse of the solver)."""
    n = max(1, int(round(f_weak * row_bits)))
    median_min_u = 1.0 - 0.5 ** (1.0 / n)
    return 10.0 ** (mu_weak + sigma_weak * ndtri(median_min_u))
