"""Cell-array working-set policy: chunk sizes and memory-mapped spill.

Full-geometry sweeps (8 channels x 2 pseudo channels x 16 banks x 16384
rows) evaluate cell populations over coordinate cross-products far
larger than any one bank.  Materializing those arrays whole-device is
what used to pin peak RSS to the sweep size; instead, the vectorized
engines stream **bank-sized chunks** through a fixed working set:

- :func:`cells_chunk_elems` bounds how many population elements one
  evaluation chunk may hold (``HBMSIM_CELLS_CHUNK``); chunk boundaries
  always fall on whole-combo blocks (:func:`chunk_combo_blocks`), so
  every chunk is a contiguous slice of the full batch and — because all
  population kernels are elementwise with per-combo seed-chain prefixes
  — bit-identical to the same slice of an all-at-once evaluation
  (asserted in ``tests/core/test_chunked_population.py``).
- :func:`allocate_cells` places the *persistent* outputs (per-row
  threshold matrices, assembled result grids) either in ordinary memory
  or, with ``HBMSIM_CELLS_MMAP`` enabled, in an unlinked temp-file
  memory map the OS can page out — RSS stays flat even when the
  logical arrays do not.

Both knobs follow the strict-parse contract of ``HBMSIM_BATCH``: a
recognizable value is honoured, an unrecognizable one warns once per
distinct value and falls back to the default — a typo must never
silently select a different execution shape.
"""

from __future__ import annotations

import os
import tempfile
import warnings
from typing import List, Set, Tuple

import numpy as np

_CHUNK_ENV = "HBMSIM_CELLS_CHUNK"
_MMAP_ENV = "HBMSIM_CELLS_MMAP"

#: Default chunk bound, in population elements.  65536 elements keep a
#: chunk's ~15 float64 intermediate arrays inside a few MiB while still
#: amortizing numpy kernel launch cost; every population up to 21 full
#: combos of 3072 rows (the Table 2 fig05/fig07 shape) streams in a
#: handful of chunks, and the scale-0.25 bench populations fit in one
#: chunk (the historical all-at-once code path, byte-for-byte).
DEFAULT_CHUNK_ELEMS = 65536

_MMAP_ON = frozenset({"1", "true", "yes", "on"})
_MMAP_OFF = frozenset({"0", "false", "no", "off", ""})

#: Unrecognized values already warned about (warn once per distinct
#: value, not once per call — both knobs are read per evaluation).
_WARNED_VALUES: Set[Tuple[str, str]] = set()


def _warn_once(env: str, value: str, fallback: str) -> None:
    if (env, value) in _WARNED_VALUES:
        return
    _WARNED_VALUES.add((env, value))
    warnings.warn(
        f"unrecognized {env}={value!r}; {fallback}",
        RuntimeWarning, stacklevel=3)


def cells_chunk_elems() -> int:
    """Chunk bound in elements (``HBMSIM_CELLS_CHUNK``).

    A positive integer is honoured as-is; ``0`` and negative values are
    rejected loudly (a zero-sized working set is a configuration error,
    not a preference), and an unparsable value warns once and keeps the
    default.
    """
    value = os.environ.get(_CHUNK_ENV)
    if value is None or not value.strip():
        return DEFAULT_CHUNK_ELEMS
    try:
        parsed = int(value.strip())
    except ValueError:
        _warn_once(_CHUNK_ENV, value,
                   f"expected a positive integer — keeping the default "
                   f"chunk of {DEFAULT_CHUNK_ELEMS} elements")
        return DEFAULT_CHUNK_ELEMS
    if parsed <= 0:
        raise ValueError(
            f"{_CHUNK_ENV} must be a positive element count, got "
            f"{value!r}")
    return parsed


def cells_mmap_enabled() -> bool:
    """Whether persistent cell arrays spill to memory-mapped temp files
    (``HBMSIM_CELLS_MMAP``; default off — anonymous memory)."""
    value = os.environ.get(_MMAP_ENV)
    if value is None:
        return False
    normalized = value.strip().lower()
    if normalized in _MMAP_ON:
        return True
    if normalized not in _MMAP_OFF:
        _warn_once(_MMAP_ENV, value,
                   "expected one of 0/false/no/off or 1/true/yes/on — "
                   "mmap spill stays disabled")
    return False


def allocate_cells(shape: Tuple[int, ...], dtype: object) -> np.ndarray:
    """Allocate a persistent cell array under the spill policy.

    With ``HBMSIM_CELLS_MMAP`` off this is ``np.empty`` (unchanged
    behaviour).  With it on, the array lives in an *unlinked* temporary
    file mapping: identical numerics and indexing, but the pages are
    file-backed, so the OS can evict cold chunks instead of swapping —
    the device-scale threshold matrices stop counting against a flat
    RSS budget.  The backing file is deleted up-front; the mapping dies
    with the array (no cleanup path, no leak on crash).
    """
    if not cells_mmap_enabled():
        return np.empty(shape, dtype=dtype)
    handle = tempfile.TemporaryFile(prefix="hbmsim-cells-")
    try:
        return np.memmap(handle, dtype=dtype, mode="w+", shape=shape)
    finally:
        # np.memmap holds its own reference to the mapping; the Python
        # file object is safe to close (the unlinked inode lives on
        # until the mapping is dropped).
        handle.close()


def chunk_combo_blocks(n_combos: int, rows_per_combo: int,
                       chunk_elems: int) -> List[Tuple[int, int]]:
    """Split a rows-fastest combo batch into whole-combo chunk ranges.

    Returns ``[(start, stop), ...]`` combo-index ranges covering
    ``range(n_combos)`` in order, each holding at least one combo and at
    most ``chunk_elems // rows_per_combo`` of them (always at least one
    — a single combo larger than the bound still evaluates; the bound
    is a working-set target, not a hard split of seed-chain blocks).
    """
    if n_combos <= 0:
        return []
    if rows_per_combo <= 0:
        raise ValueError("rows_per_combo must be positive")
    per_chunk = max(1, chunk_elems // rows_per_combo)
    return [(start, min(start + per_chunk, n_combos))
            for start in range(0, n_combos, per_chunk)]
