"""Deterministic seed derivation for the statistical fault models.

Every random quantity in the substrate (cell thresholds, retention ladders,
pattern affinities) must be a pure function of the chip seed and the
coordinates involved, so that re-testing any row reproduces the same cells
without storing the full 4 GiB state.  This module provides a splitmix64-
based mixer that folds an arbitrary sequence of integers into a 64-bit seed
suitable for ``numpy.random.Philox``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

_MASK64 = 0xFFFFFFFFFFFFFFFF


def splitmix64(value: int) -> int:
    """One splitmix64 scrambling round (public-domain constants)."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def derive_seed(*components: int) -> int:
    """Fold integer components into one well-mixed 64-bit seed."""
    state = 0x243F6A8885A308D3  # pi fractional bits: fixed namespace
    for component in components:
        state = splitmix64((state ^ (component & _MASK64)) & _MASK64)
    return state


def generator_for(*components: int) -> np.random.Generator:
    """Philox generator keyed by the mixed components."""
    seed = derive_seed(*components)
    key = np.array([seed, splitmix64(seed)], dtype=np.uint64)
    return np.random.Generator(np.random.Philox(key=key))


def uniform_for(*components: int) -> float:
    """One deterministic U(0,1) draw keyed by the components.

    Used for per-coordinate modulation factors (e.g. a channel's pattern
    affinity) where creating a full generator would be wasteful.
    """
    return splitmix64(derive_seed(*components)) / float(_MASK64 + 1)


def normal_for(*components: int) -> float:
    """One deterministic standard-normal draw keyed by the components."""
    # Box-Muller on two decorrelated uniforms derived from the same key.
    u1 = uniform_for(*components, 0x55AA)
    u2 = uniform_for(*components, 0xAA55)
    u1 = max(u1, 1.0e-12)
    return float(np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2))


# ----------------------------------------------------------------------
# Vectorized mirrors.
#
# The experiment sweeps touch hundreds of thousands of rows; the helpers
# below fold one varying integer array through exactly the same splitmix64
# chain as the scalar functions, so vectorized statistics are
# *bit-identical* to what the device engine computes row by row.
# ----------------------------------------------------------------------

_INIT_STATE = 0x243F6A8885A308D3


def splitmix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`splitmix64` over a uint64 array.

    uint64 wraparound is the algorithm, not an error: inputs go through
    ``np.asarray`` because ndarray integer ops (any ndim) wrap silently,
    while numpy *generic* scalars would raise overflow warnings.  The
    scrambling rounds update their temporaries in place — the same
    operations (hence bits) as the naive expression at roughly half the
    memory traffic, which dominates on sweep-sized arrays.
    """
    values = np.asarray(values, dtype=np.uint64)
    values = values + np.uint64(0x9E3779B97F4A7C15)
    mixed = values >> np.uint64(30)
    mixed ^= values
    mixed *= np.uint64(0xBF58476D1CE4E5B9)
    values = mixed >> np.uint64(27)
    values ^= mixed
    values *= np.uint64(0x94D049BB133111EB)
    mixed = values >> np.uint64(31)
    mixed ^= values
    return mixed


def seed_array_for(pre: tuple, varying: np.ndarray,
                   post: tuple = ()) -> np.ndarray:
    """Vector of ``derive_seed(*pre, v, *post)`` for each ``v``."""
    state = _INIT_STATE
    for component in pre:
        state = splitmix64((state ^ (component & _MASK64)) & _MASK64)
    states = splitmix64_array(
        np.uint64(state) ^ np.asarray(varying, dtype=np.uint64))
    for component in post:
        states = splitmix64_array(
            states ^ np.uint64(component & _MASK64))
    return states


def uniform_array_for(pre: tuple, varying: np.ndarray,
                      post: tuple = ()) -> np.ndarray:
    """Vector of ``uniform_for(*pre, v, *post)`` for each ``v``."""
    seeds = seed_array_for(pre, varying, post)
    return splitmix64_array(seeds).astype(np.float64) / float(_MASK64 + 1)


def normal_array_for(pre: tuple, varying: np.ndarray,
                     post: tuple = ()) -> np.ndarray:
    """Vector of ``normal_for(*pre, v, *post)`` for each ``v``."""
    u1 = uniform_array_for(pre, varying, post + (0x55AA,))
    u2 = uniform_array_for(pre, varying, post + (0xAA55,))
    u1 = np.maximum(u1, 1.0e-12)
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)


def seed_array_mixed(*components) -> np.ndarray:
    """Vectorized :func:`derive_seed` over mixed scalar/array components.

    Each component may be a Python int or an integer array; arrays are
    broadcast against each other, and the splitmix64 chain folds them in
    the given order — element ``i`` of the result equals
    ``derive_seed(*[c if scalar else c[i] for c in components])``
    bit-for-bit.  This generalizes :func:`seed_array_for` (one varying
    position) to coordinate batches where channel, bank, *and* row all
    vary per element.
    """
    state: object = np.uint64(_INIT_STATE)
    scalar_prefix = True
    int_state = _INIT_STATE
    for component in components:
        if scalar_prefix and isinstance(component, (int, np.integer)):
            int_state = splitmix64(
                (int_state ^ (int(component) & _MASK64)) & _MASK64)
            continue
        if scalar_prefix:
            state = np.uint64(int_state)
            scalar_prefix = False
        if isinstance(component, (int, np.integer)):
            array = np.uint64(int(component) & _MASK64)
        else:
            array = np.asarray(component, dtype=np.uint64)
        state = splitmix64_array(state ^ array)
    if scalar_prefix:
        return np.uint64(int_state)
    return state


def fold_seed_states(states: np.ndarray, *components) -> np.ndarray:
    """Continue per-element :func:`derive_seed` chains with more folds.

    ``states`` is an array of chain states (what :func:`seed_array_mixed`
    returns); each component — scalar or broadcastable array — is folded
    exactly as another ``derive_seed`` argument would be.  Lets callers
    with block-structured coordinates (e.g. a combo cross-product where
    channel/bank are constant within each block) fold the shared prefix
    once per block and only run the full-size arrays through the varying
    tail — bit-identical to the flat chain, at a fraction of the passes.
    """
    states = np.asarray(states, dtype=np.uint64)
    for component in components:
        if isinstance(component, (int, np.integer)):
            value = np.uint64(int(component) & _MASK64)
        else:
            value = np.asarray(component, dtype=np.uint64)
        states = splitmix64_array(states ^ value)
    return states


#: 2**-64 is an exact power of two, so ``draw * _INV_2_64`` rounds
#: identically to ``draw / 2**64`` — the scalar path's division — for
#: every uint64 input.
_INV_2_64 = 2.0 ** -64


def uniforms_from_states(states: np.ndarray) -> np.ndarray:
    """U(0,1) draws from completed chain states (one per element)."""
    draws = splitmix64_array(np.atleast_1d(states)).astype(np.float64)
    draws *= _INV_2_64
    return draws


def normals_from_states(states: np.ndarray) -> np.ndarray:
    """Standard-normal draws from completed chain states.

    Branches each chain at the two Box-Muller tags, then applies the
    Box-Muller transform with in-place kernels — the identical operation
    sequence (hence bits) as the scalar :func:`normal_for`, minus the
    intermediate allocations.
    """
    state = np.atleast_1d(np.asarray(states, dtype=np.uint64))
    u1 = splitmix64_array(
        splitmix64_array(state ^ np.uint64(0x55AA))).astype(np.float64)
    u1 *= _INV_2_64
    u2 = splitmix64_array(
        splitmix64_array(state ^ np.uint64(0xAA55))).astype(np.float64)
    u2 *= _INV_2_64
    np.maximum(u1, 1.0e-12, out=u1)
    np.log(u1, out=u1)
    u1 *= -2.0
    np.sqrt(u1, out=u1)
    u2 *= 2.0 * np.pi
    np.cos(u2, out=u2)
    u1 *= u2
    return u1


def uniform_array_mixed(*components) -> np.ndarray:
    """Vectorized :func:`uniform_for` over mixed scalar/array components."""
    return uniforms_from_states(seed_array_mixed(*components))


def normal_array_mixed(*components) -> np.ndarray:
    """Vectorized :func:`normal_for` over mixed scalar/array components.

    Folds the shared component prefix once, then branches the chain at
    the two Box-Muller tags — the same states (hence bits) as two full
    :func:`uniform_array_mixed` chains at nearly half the array work.
    """
    return normals_from_states(seed_array_mixed(*components))


def uniforms_from_seeds(seeds: np.ndarray, post: tuple) -> np.ndarray:
    """Vector of ``uniform_for(seed, *post)`` over an array of seeds.

    Each seed is folded as the *first component* of a fresh chain, exactly
    like the scalar ``uniform_for(seed, *post)`` — so draws keyed by a
    precomputed ``derive_seed`` value (e.g. a row profile seed) match the
    scalar path bit-for-bit.
    """
    states = splitmix64_array(
        np.uint64(_INIT_STATE) ^ np.asarray(seeds, dtype=np.uint64))
    for component in post:
        states = splitmix64_array(states ^ np.uint64(component & _MASK64))
    draws = splitmix64_array(states).astype(np.float64)
    draws *= _INV_2_64
    return draws
