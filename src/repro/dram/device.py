"""HBM2 stack command-execution engine with fault physics.

:class:`HBM2Stack` executes the command vocabulary of
:mod:`repro.dram.commands` against simulated banks, maintaining:

- row-buffer state machines and command timing accounting,
- per-victim-row accumulated disturbance (in baseline hammer units; see
  :mod:`repro.dram.disturbance`), materializing per-cell thresholds lazily
  from the chip's statistical profile,
- data retention clocks (a row's charge is restored by its own activation,
  by rolling REF refresh, or by a TRR victim refresh),
- the undocumented TRR engine of :mod:`repro.dram.trr`,
- logical-to-physical row mapping (commands use logical addresses; physics
  and TRR operate on physical rows).

Bitflips are *committed* whenever a row's charge is restored: cells whose
threshold lies below the accumulated disturbance (or whose retention time
elapsed) latch their inverted value and — being discharged — cannot flip
again until rewritten.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.dram.cell_model import CellPopulation, RowDisturbanceProfile
from repro.dram.commands import Command, CommandKind
from repro.dram.disturbance import DEFAULT_DISTURBANCE, DisturbanceModel
from repro.dram.geometry import (DEFAULT_GEOMETRY, HBM2Geometry, RowAddress,
                                 adjacent_rows)
from repro.dram.mode_registers import ModeRegisters
from repro.dram.retention import DEFAULT_RETENTION, RetentionModel
from repro.dram.row_mapping import IdentityMapping, RowMapping
from repro.dram.seeding import derive_seed
from repro.dram.timing import DEFAULT_TIMINGS, TimingParameters
from repro.errors import TimingError
from repro.dram.trr import TrrConfig, TrrEngine

#: Victim-byte -> canonical data pattern name (Table 1 of the paper).
_PATTERN_BY_VICTIM_BYTE = {
    0x00: "Rowstripe0",
    0xFF: "Rowstripe1",
    0x55: "Checkered0",
    0xAA: "Checkered1",
}

#: Flat per-row readback/write IO time (ns): 1 KiB over a pseudo channel.
ROW_IO_NS = 107.0

#: Fractional change in effective disturbance per degree C above the
#: calibration temperature.  The paper pins Chip 0 at 82 C and reports
#: all statistics at the chips' operating points; the temperature
#: *sensitivity* follows the DDR4 literature it cites (RowHammer
#: vulnerability grows mildly with temperature; SpyHammer exploits it).
TEMPERATURE_HC_SENSITIVITY = 0.0025

#: Retention time halves roughly every 10 C (standard DRAM behaviour).
RETENTION_DOUBLING_C = 10.0


def classify_victim_pattern(data: np.ndarray) -> str:
    """Classify a row image into a canonical pattern name or ``custom``."""
    data = np.asarray(data, dtype=np.uint8)
    if data.size == 0:
        return "custom"
    first = int(data[0])
    if not np.all(data == first):
        return "custom"
    return _PATTERN_BY_VICTIM_BYTE.get(first, "custom")


class UniformProfileProvider:
    """Default cell-profile provider: one population for every row.

    Unit tests and examples that do not need the calibrated chip population
    use this; :class:`repro.chips.profiles.ChipProfile` supplies the real,
    spatially modulated provider.
    """

    def __init__(self, population: Optional[CellPopulation] = None,
                 seed: int = 1, row_bits: int = 8192) -> None:
        if population is None:
            population = CellPopulation(f_weak=0.014, mu_weak=5.45)
        self.population = population
        self.seed = seed
        self.row_bits = row_bits

    def profile(self, address: RowAddress,
                pattern: str) -> RowDisturbanceProfile:
        """Profile for a (row, pattern) pair; uniform across the stack."""
        seed = derive_seed(self.seed, address.channel,
                           address.pseudo_channel, address.bank,
                           address.row, hash_pattern(pattern))
        return RowDisturbanceProfile(self.population, seed, self.row_bits)


def hash_pattern(pattern: str) -> int:
    """Stable integer id for a pattern name (order-independent)."""
    value = 0
    for char in pattern:
        value = (value * 131 + ord(char)) & 0xFFFFFFFF
    return value


@dataclass
class BankState:
    """Row-buffer state of one bank."""

    open_row: Optional[int] = None
    open_since: float = 0.0


@dataclass
class _RowState:
    """Lazy fault-physics state of one touched physical row."""

    data: np.ndarray
    acc_units: float = 0.0
    restored_at: float = 0.0
    already_flipped: Optional[np.ndarray] = None
    pattern: str = "custom"
    thresholds: Optional[np.ndarray] = None
    #: Cheap lower bounds: the row's weakest cell threshold and weakest
    #: retention time.  Commits below both skip cell materialization —
    #: the fast path that keeps benign (non-hammering) traffic cheap.
    min_threshold: Optional[float] = None
    retention_floor_ns: Optional[float] = None


@dataclass(frozen=True)
class TraceEntry:
    """One recorded command (DRAM-Bender-style debug trace)."""

    time_ns: float
    kind: str
    channel: int = -1
    pseudo_channel: int = -1
    bank: int = -1
    row: int = -1
    count: int = 0

    def __str__(self) -> str:
        location = ""
        if self.channel >= 0:
            location = f" ch{self.channel} pc{self.pseudo_channel}"
            if self.bank >= 0:
                location += f" ba{self.bank}"
            if self.row >= 0:
                location += f" row {self.row}"
        suffix = f" x{self.count}" if self.count > 1 else ""
        return f"[{self.time_ns / 1.0e3:12.3f} us] {self.kind}" \
               f"{location}{suffix}"


@dataclass
class DeviceStats:
    """Command counters for tests and reporting."""

    acts: int = 0
    pres: int = 0
    reads: int = 0
    writes: int = 0
    refs: int = 0
    trr_victim_refreshes: int = 0
    committed_bitflips: int = 0
    ecc_corrections: int = 0


class HBM2Stack:
    """One simulated HBM2 stack (Section 3's device under test)."""

    def __init__(self,
                 geometry: HBM2Geometry = DEFAULT_GEOMETRY,
                 timings: TimingParameters = DEFAULT_TIMINGS,
                 disturbance: DisturbanceModel = DEFAULT_DISTURBANCE,
                 retention: Optional[RetentionModel] = DEFAULT_RETENTION,
                 trr_config: Optional[TrrConfig] = None,
                 profile_provider=None,
                 row_mapping: Optional[RowMapping] = None,
                 disable_ecc: bool = True,
                 calibration_temperature_c: Optional[float] = None) -> None:
        self.geometry = geometry
        self.timings = timings
        self.disturbance = disturbance
        self.retention = retention
        #: Temperature the cell model was calibrated at (the chip's
        #: operating point during characterization); ``None`` disables
        #: temperature effects.
        self.calibration_temperature_c = calibration_temperature_c
        #: Current chip temperature (drive it from the thermal rig via
        #: :meth:`set_temperature`).
        self.temperature_c = calibration_temperature_c
        self.mode_registers = ModeRegisters()
        if disable_ecc:
            # The paper's methodology (Section 3.1): clear the MR bit so
            # raw bitflips are observable.  Pass ``disable_ecc=False`` to
            # study the chip as it powers up (on-die SECDED active).
            self.mode_registers.set_field(4, "ecc_enable", False)
        if trr_config is None:
            trr_config = TrrConfig(enabled=False)
        self.trr_config = trr_config
        if profile_provider is None:
            profile_provider = UniformProfileProvider(row_bits=geometry.row_bits)
        self.profile_provider = profile_provider
        if row_mapping is None:
            row_mapping = IdentityMapping(geometry.rows)
        self.row_mapping = row_mapping
        self.now_ns = 0.0
        self.stats = DeviceStats()
        self._trace: Optional[Deque[TraceEntry]] = None
        self._banks: Dict[Tuple[int, int, int], BankState] = {}
        self._rows: Dict[Tuple[int, int, int], Dict[int, _RowState]] = {}
        self._trr: Dict[Tuple[int, int], TrrEngine] = {}
        self._ref_pointer: Dict[Tuple[int, int], int] = {}
        self._pc_ref_time: Dict[Tuple[int, int], Dict[int, float]] = {}
        for channel in range(geometry.channels):
            for pc in range(geometry.pseudo_channels):
                self._trr[(channel, pc)] = TrrEngine(
                    trr_config, geometry.banks, geometry.rows)
                self._ref_pointer[(channel, pc)] = 0
                self._pc_ref_time[(channel, pc)] = {}

    # ------------------------------------------------------------------
    # Command interface
    # ------------------------------------------------------------------

    def execute(self, command: Command) -> Optional[np.ndarray]:
        """Execute one command; RD returns the row image."""
        kind = command.kind
        if kind is CommandKind.WAIT:
            return self.wait(command.duration)
        if kind is CommandKind.NOP:
            return None
        address = RowAddress(command.channel, command.pseudo_channel,
                             command.bank, command.row)
        if kind is CommandKind.REF:
            return self.refresh(command.channel, command.pseudo_channel)
        if kind is CommandKind.ACT:
            return self.activate(address)
        if kind is CommandKind.PRE:
            return self.precharge(command.channel, command.pseudo_channel,
                                  command.bank)
        if kind is CommandKind.RD:
            return self.read_row(address)
        if kind is CommandKind.WR:
            if command.data is None:
                raise ValueError("WR command requires a row image")
            return self.write_row(address, command.data)
        if kind is CommandKind.HAMMER:
            return self.hammer(address, command.count, command.t_on)
        raise ValueError(f"unhandled command kind {kind}")

    def run(self, commands: Iterable[Command]) -> List[Optional[np.ndarray]]:
        """Execute a command sequence, collecting per-command results."""
        return [self.execute(command) for command in commands]

    # ------------------------------------------------------------------
    # Row-level operations
    # ------------------------------------------------------------------

    def wait(self, duration_ns: float) -> None:
        """Advance device time without issuing commands."""
        if duration_ns < 0:
            raise ValueError("duration must be non-negative")
        self.now_ns += duration_ns

    def activate(self, address: RowAddress) -> None:
        """Open a row (logical address).  Restores the row's own charge."""
        address.validate(self.geometry)
        physical = self._to_physical(address)
        bank = self._bank(physical)
        if bank.open_row is not None:
            raise TimingError(
                f"ACT to bank {physical.bank_key} with row "
                f"{bank.open_row} already open")
        self._commit(physical)
        self._trr[(physical.channel, physical.pseudo_channel)].on_activate(
            physical.bank, physical.row)
        bank.open_row = physical.row
        bank.open_since = self.now_ns
        self.stats.acts += 1
        self._record("ACT", physical.channel, physical.pseudo_channel,
                     physical.bank, physical.row)

    def precharge(self, channel: int, pseudo_channel: int,
                  bank_index: int) -> None:
        """Close a bank, applying disturbance to the open row's neighbors."""
        key = (channel, pseudo_channel, bank_index)
        bank = self._banks.get(key)
        if bank is None or bank.open_row is None:
            # No open row: still a PRE on the bus, so the trace must
            # agree with stats.pres (DRAM-Bender traces count both).
            self.stats.pres += 1
            self._record("PRE", channel, pseudo_channel, bank_index)
            return
        t_on = self.now_ns - bank.open_since
        if t_on < self.timings.t_ras:
            # The test platform honors tRAS: stretch the open time.
            self.now_ns = bank.open_since + self.timings.t_ras
            t_on = self.timings.t_ras
        physical = RowAddress(channel, pseudo_channel, bank_index,
                              bank.open_row)
        self._disturb_neighbors(physical, count=1, t_on=t_on)
        bank.open_row = None
        self.now_ns += self.timings.t_rp
        self.stats.pres += 1
        self._record("PRE", channel, pseudo_channel, bank_index)

    def read_row(self, address: RowAddress) -> np.ndarray:
        """Activate-read-precharge cycle returning the full row image.

        Committing happens at activation: disturbance and retention flips
        latch into the stored data before it is driven out.
        """
        address.validate(self.geometry)
        physical = self._to_physical(address)
        bank = self._bank(physical)
        if bank.open_row is not None and bank.open_row != physical.row:
            raise TimingError("RD to a bank with a different row open")
        opened_here = bank.open_row is None
        if opened_here:
            self.activate(address)
        state = self._row_state(physical)
        data = state.data.copy()
        if self.mode_registers.ecc_enabled:
            data = self._apply_on_die_ecc(state, data)
        self.now_ns += self.timings.t_rcd + ROW_IO_NS
        if opened_here:
            self.precharge(physical.channel, physical.pseudo_channel,
                           physical.bank)
        self.stats.reads += 1
        self._record("RD", physical.channel, physical.pseudo_channel,
                     physical.bank, physical.row)
        return data

    def write_row(self, address: RowAddress, data: np.ndarray) -> None:
        """Activate-write-precharge cycle storing a full row image.

        Writing re-arms every cell: accumulated disturbance and the
        flipped-cell record are cleared.
        """
        address.validate(self.geometry)
        data = np.asarray(data, dtype=np.uint8)
        if data.size != self.geometry.row_bytes:
            raise ValueError(
                f"row image must be {self.geometry.row_bytes} bytes")
        physical = self._to_physical(address)
        bank = self._bank(physical)
        if bank.open_row is not None and bank.open_row != physical.row:
            raise TimingError("WR to a bank with a different row open")
        opened_here = bank.open_row is None
        if opened_here:
            # Write replaces content; skip the commit an ACT would do.
            self._trr[(physical.channel,
                       physical.pseudo_channel)].on_activate(
                physical.bank, physical.row)
            bank.open_row = physical.row
            bank.open_since = self.now_ns
            self.stats.acts += 1
        rows = self._rows.setdefault(physical.bank_key, {})
        rows[physical.row] = _RowState(
            data=data.copy(), restored_at=self.now_ns,
            pattern=classify_victim_pattern(data))
        self.now_ns += self.timings.t_rcd + ROW_IO_NS
        if opened_here:
            self.precharge(physical.channel, physical.pseudo_channel,
                           physical.bank)
        self.stats.writes += 1
        self._record("WR", physical.channel, physical.pseudo_channel,
                     physical.bank, physical.row)

    def hammer(self, address: RowAddress, count: int,
               t_on: Optional[float] = None) -> None:
        """Fused ACT/PRE cycles: ``count`` activations with on-time ``t_on``.

        Semantically equivalent to the unrolled loop as long as no REF
        interleaves; programs that interleave REFs issue shorter hammers.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        address.validate(self.geometry)
        physical = self._to_physical(address)
        bank = self._bank(physical)
        if bank.open_row is not None:
            raise TimingError("HAMMER requires a closed bank")
        effective_t_on = self.timings.t_ras if t_on is None else max(
            t_on, self.timings.t_ras)
        self._commit(physical)
        self._trr[(physical.channel, physical.pseudo_channel)].on_activate(
            physical.bank, physical.row, count=count)
        self._disturb_neighbors(physical, count=count, t_on=effective_t_on)
        self.now_ns += count * self.timings.act_to_act(effective_t_on)
        self.stats.acts += count
        self.stats.pres += count
        self._record("HAMMER", physical.channel,
                     physical.pseudo_channel, physical.bank,
                     physical.row, count)

    def refresh(self, channel: int, pseudo_channel: int) -> None:
        """One REF command: rolling refresh plus TRR victim refreshes."""
        pc_key = (channel, pseudo_channel)
        if pc_key not in self._trr:
            raise ValueError(f"no such pseudo channel {pc_key}")
        victims = self._trr[pc_key].on_refresh()
        for bank_index, victim_row in victims:
            physical = RowAddress(channel, pseudo_channel, bank_index,
                                  victim_row)
            self._commit(physical)
            # A refresh internally activates the row, so a TRR victim
            # refresh disturbs *its* neighbors by one activation — the
            # lever the HalfDouble access pattern exploits (Section 8.1:
            # TRR's victim refreshes act as near-aggressor activations).
            self._disturb_neighbors(physical, count=1,
                                    t_on=self.timings.t_ras)
            self.stats.trr_victim_refreshes += 1
        pointer = self._ref_pointer[pc_key]
        per_ref = self.timings.rows_refreshed_per_ref
        ref_times = self._pc_ref_time[pc_key]
        for offset in range(per_ref):
            row = (pointer + offset) % self.geometry.rows
            ref_times[row] = self.now_ns
            for bank_index in range(self.geometry.banks):
                bank_rows = self._rows.get(
                    (channel, pseudo_channel, bank_index))
                if bank_rows and row in bank_rows:
                    self._commit(RowAddress(channel, pseudo_channel,
                                            bank_index, row))
        self._ref_pointer[pc_key] = (pointer + per_ref) % self.geometry.rows
        self.now_ns += self.timings.t_rfc
        self.stats.refs += 1
        self._record("REF", channel, pseudo_channel)

    def refresh_burst(self, channel: int, pseudo_channel: int,
                      count: int) -> None:
        """Issue ``count`` REF commands as one batched operation.

        Bit-identical to ``count`` sequential :meth:`refresh` calls —
        same TRR victim refreshes, rolling-refresh commits, retention
        clocks, stats and final ``now_ns`` (the per-REF timestamps replay
        the scalar clock's float accumulation order) — but without the
        per-REF Python dispatch: the TRR engine fast-forwards through
        :meth:`~repro.dram.trr.TrrEngine.run_epochs`, rolling-refresh
        touches of *materialized* rows replay as individual commits at
        their exact REF timestamps, and the untouched majority of the
        ref-time bookkeeping collapses into one bulk update.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        pc_key = (channel, pseudo_channel)
        if pc_key not in self._trr:
            raise ValueError(f"no such pseudo channel {pc_key}")
        if self._trace is not None or count < 4:
            # Tracing wants one entry per REF; tiny bursts are not worth
            # the setup.  The scalar loop is the reference semantics.
            for __ in range(count):
                self.refresh(channel, pseudo_channel)
            return
        timings = self.timings
        t_rfc = timings.t_rfc
        per_ref = timings.rows_refreshed_per_ref
        rows = self.geometry.rows
        banks = self.geometry.banks
        pointer = self._ref_pointer[pc_key]
        ref_times = self._pc_ref_time[pc_key]
        # Per-REF timestamps with the scalar clock's exact accumulation
        # order (np.add.accumulate is strictly sequential, so ref_t[i]
        # reproduces `now += t_rfc` i times bit-for-bit).
        steps = np.full(count + 1, t_rfc)
        steps[0] = self.now_ns
        ref_t = np.cumsum(steps)

        victim_schedule = self._trr[pc_key].run_epochs({}, count)

        # Rows whose rolling-refresh touches must replay as individual
        # commits: everything materialized now, plus whatever a TRR
        # victim refresh may materialize mid-burst (its blast radius).
        candidates = set()
        for bank_index in range(banks):
            bank_rows = self._rows.get((channel, pseudo_channel,
                                        bank_index))
            if bank_rows:
                candidates.update(bank_rows)
        radius = self.disturbance.blast_radius
        for __, victims in victim_schedule:
            for __bank, victim_row in victims:
                candidates.update(range(max(0, victim_row - radius),
                                        min(rows, victim_row + radius + 1)))

        # Event list: (ref_index, phase, slot, payload) replayed in the
        # scalar order — victims first (phase 0), then rolling touches
        # in slot order within each REF.
        slots = count * per_ref
        events: list = [(offset - 1, 0, 0, victims)
                        for offset, victims in victim_schedule]
        if candidates:
            if len(candidates) * (1 + slots // rows) < slots:
                for row in candidates:
                    first_slot = (row - pointer) % rows
                    for slot in range(first_slot, slots, rows):
                        events.append((slot // per_ref, 1,
                                       slot % per_ref, row))
            else:
                slot_idx = np.arange(slots, dtype=np.int64)
                swept = (pointer + slot_idx) % rows
                hits = slot_idx[np.isin(
                    swept, np.fromiter(candidates, dtype=np.int64))]
                for slot in hits.tolist():
                    events.append((slot // per_ref, 1, slot % per_ref,
                                   int((pointer + slot) % rows)))
        events.sort(key=lambda event: event[:3])

        for ref_index, phase, __slot, payload in events:
            self.now_ns = float(ref_t[ref_index])
            if phase == 0:
                for bank_index, victim_row in payload:
                    physical = RowAddress(channel, pseudo_channel,
                                          bank_index, victim_row)
                    self._commit(physical)
                    self._disturb_neighbors(physical, count=1,
                                            t_on=timings.t_ras)
                    self.stats.trr_victim_refreshes += 1
            else:
                row = payload
                ref_times[row] = self.now_ns
                for bank_index in range(banks):
                    bank_rows = self._rows.get(
                        (channel, pseudo_channel, bank_index))
                    if bank_rows and row in bank_rows:
                        self._commit(RowAddress(channel, pseudo_channel,
                                                bank_index, row))

        # Bulk ref-time update: only each row's *last* touch survives,
        # so replaying the final min(slots, rows) slots suffices (zip
        # feeds dict.update in ascending slot order; later wins).
        tail = np.arange(max(0, slots - rows), slots, dtype=np.int64)
        ref_times.update(zip(((pointer + tail) % rows).tolist(),
                             ref_t[tail // per_ref].tolist()))
        self._ref_pointer[pc_key] = (pointer + slots) % rows
        self.now_ns = float(ref_t[count])
        self.stats.refs += count

    # ------------------------------------------------------------------
    # Inspection helpers (no time advance, no state mutation)
    # ------------------------------------------------------------------

    def inspect_row(self, address: RowAddress) -> np.ndarray:
        """Row image as a read *would* return it, without side effects."""
        address.validate(self.geometry)
        physical = self._to_physical(address)
        state = self._rows.get(physical.bank_key, {}).get(physical.row)
        if state is None:
            return np.zeros(self.geometry.row_bytes, dtype=np.uint8)
        flips = self._pending_flip_bits(physical, state)
        data = state.data.copy()
        _xor_bits(data, flips)
        return data

    def accumulated_units(self, address: RowAddress) -> float:
        """Disturbance accumulated on a (logical) row since last restore."""
        physical = self._to_physical(address.validate(self.geometry))
        state = self._rows.get(physical.bank_key, {}).get(physical.row)
        return 0.0 if state is None else state.acc_units

    def trr_engine(self, channel: int, pseudo_channel: int) -> TrrEngine:
        """The TRR engine of a pseudo channel (for probes and tests)."""
        return self._trr[(channel, pseudo_channel)]

    def rolling_refresh_pointer(self, channel: int,
                                pseudo_channel: int) -> int:
        """Next row slot the pseudo channel's rolling refresh covers.

        Epoch-level replays (``repro.core.trr_bypass.run_attack_epochs``)
        use this to predict which future REF commands sweep a given row.
        """
        pc_key = (channel, pseudo_channel)
        if pc_key not in self._ref_pointer:
            raise ValueError(f"no such pseudo channel {pc_key}")
        return self._ref_pointer[pc_key]

    def last_rolling_refresh_ns(self, physical: RowAddress) -> float:
        """Device time of the last rolling refresh of a physical row
        (0.0 if the row has not been swept since power-up)."""
        pc_key = (physical.channel, physical.pseudo_channel)
        if pc_key not in self._pc_ref_time:
            raise ValueError(f"no such pseudo channel {pc_key}")
        return self._pc_ref_time[pc_key].get(physical.row, 0.0)

    # ------------------------------------------------------------------
    # Command tracing (debugging aid, off by default)
    # ------------------------------------------------------------------

    def enable_tracing(self, capacity: int = 4096) -> None:
        """Record the last ``capacity`` commands in a ring buffer."""
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._trace = deque(maxlen=capacity)

    def disable_tracing(self) -> None:
        """Stop recording and drop the buffer."""
        self._trace = None

    def trace(self) -> List[TraceEntry]:
        """The recorded command history, oldest first."""
        if self._trace is None:
            return []
        return list(self._trace)

    def _record(self, kind: str, channel: int = -1,
                pseudo_channel: int = -1, bank: int = -1, row: int = -1,
                count: int = 0) -> None:
        if self._trace is not None:
            self._trace.append(TraceEntry(
                self.now_ns, kind, channel, pseudo_channel, bank, row,
                count))

    # ------------------------------------------------------------------
    # Temperature coupling
    # ------------------------------------------------------------------

    def set_temperature(self, temperature_c: float) -> None:
        """Update the chip temperature (e.g. from the thermal rig)."""
        self.temperature_c = float(temperature_c)

    def temperature_disturbance_factor(self) -> float:
        """Disturbance multiplier at the current temperature.

        1.0 at the calibration temperature; grows (shrinks) by
        ``TEMPERATURE_HC_SENSITIVITY`` per degree above (below) it,
        floored at 0.2.
        """
        if (self.calibration_temperature_c is None
                or self.temperature_c is None):
            return 1.0
        delta = self.temperature_c - self.calibration_temperature_c
        return max(0.2, 1.0 + TEMPERATURE_HC_SENSITIVITY * delta)

    def retention_acceleration(self) -> float:
        """Retention-time acceleration: 2x per RETENTION_DOUBLING_C."""
        if (self.calibration_temperature_c is None
                or self.temperature_c is None):
            return 1.0
        delta = self.temperature_c - self.calibration_temperature_c
        return 2.0 ** (delta / RETENTION_DOUBLING_C)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _to_physical(self, address: RowAddress) -> RowAddress:
        return address.with_row(self.row_mapping.to_physical(address.row))

    def _bank(self, physical: RowAddress) -> BankState:
        return self._banks.setdefault(physical.bank_key, BankState())

    def _row_state(self, physical: RowAddress) -> _RowState:
        rows = self._rows.setdefault(physical.bank_key, {})
        state = rows.get(physical.row)
        if state is None:
            state = _RowState(
                data=np.zeros(self.geometry.row_bytes, dtype=np.uint8),
                restored_at=0.0, pattern="Rowstripe0")
            rows[physical.row] = state
        return state

    def _disturb_neighbors(self, physical: RowAddress, count: int,
                           t_on: float) -> None:
        radius = self.disturbance.blast_radius
        temperature_factor = self.temperature_disturbance_factor()
        for neighbor in adjacent_rows(physical, self.geometry, radius):
            distance = abs(neighbor.row - physical.row)
            units = count * temperature_factor \
                * self.disturbance.units_per_activation(t_on, distance)
            if units <= 0:
                continue
            state = self._row_state(neighbor)
            state.acc_units += units

    def _last_restore(self, physical: RowAddress, state: _RowState) -> float:
        pc_time = self._pc_ref_time[(physical.channel,
                                     physical.pseudo_channel)]
        return max(state.restored_at, pc_time.get(physical.row, 0.0))

    def _pending_flip_bits(self, physical: RowAddress,
                           state: _RowState) -> np.ndarray:
        """Bit positions flipping at the next restore (not yet committed)."""
        flips: List[np.ndarray] = []
        if state.acc_units > 0:
            if state.min_threshold is None:
                # The analytic weak minimum equals materialize()'s
                # weakest weak cell bit-for-bit (shared order-statistics
                # stream); the strong population is truncated at -3
                # sigma, so the combined bound is exact.
                profile = self.profile_provider.profile(physical,
                                                        state.pattern)
                population = profile.population
                strong_floor = 10.0 ** (population.mu_strong
                                        - 3.0 * population.sigma_strong)
                state.min_threshold = min(float(profile.hc_first()),
                                          strong_floor)
            if state.acc_units >= state.min_threshold:
                thresholds = self._thresholds_for(physical, state)
                flips.append(np.flatnonzero(
                    thresholds <= state.acc_units))
        if self.retention is not None:
            elapsed = self.now_ns - self._last_restore(physical, state)
            if elapsed > 0:
                effective = elapsed * self.retention_acceleration()
                if state.retention_floor_ns is None:
                    state.retention_floor_ns = \
                        self.retention.row_retention_ns(physical)
                if effective >= state.retention_floor_ns:
                    flips.append(self.retention.failing_bits(physical,
                                                             effective))
        if not flips:
            return np.empty(0, dtype=np.int64)
        candidates = np.unique(np.concatenate(flips)).astype(np.int64)
        if state.already_flipped is not None:
            candidates = candidates[~state.already_flipped[candidates]]
        return candidates

    def _thresholds_for(self, physical: RowAddress,
                        state: _RowState) -> np.ndarray:
        if state.thresholds is None:
            profile = self.profile_provider.profile(physical, state.pattern)
            state.thresholds = profile.materialize()
        return state.thresholds

    def _apply_on_die_ecc(self, state: _RowState,
                          data: np.ndarray) -> np.ndarray:
        """On-die SECDED view of a row: single-bit flips per 64-bit word
        are corrected on the fly; multi-bit words pass through unchanged.

        Chips power up with on-die ECC enabled; the paper clears the MR
        bit precisely because this masking hides the raw bitflips
        (Section 3.1).  The model idealizes the hidden parity cells as
        flip-free and does not emulate miscorrection.
        """
        if state.already_flipped is None or not state.already_flipped.any():
            return data
        flips_per_word = state.already_flipped.reshape(-1, 64).sum(axis=1)
        correctable_words = np.flatnonzero(flips_per_word == 1)
        if correctable_words.size == 0:
            return data
        corrected = data.copy()
        flat = state.already_flipped.reshape(-1, 64)
        # Each correctable word has exactly one set bit, so argmax finds
        # its offset; distinct words map to distinct bytes (64 bits = 8
        # bytes per word), making the fancy-indexed XOR collision-free.
        offsets = np.argmax(flat[correctable_words], axis=1)
        bits = correctable_words * 64 + offsets
        corrected[bits // 8] ^= (
            np.uint8(1) << (7 - bits % 8).astype(np.uint8))
        self.stats.ecc_corrections += int(correctable_words.size)
        return corrected

    def _commit(self, physical: RowAddress) -> None:
        """Restore a row's charge, latching any pending bitflips."""
        state = self._rows.get(physical.bank_key, {}).get(physical.row)
        if state is None:
            return
        flips = self._pending_flip_bits(physical, state)
        if flips.size:
            if state.already_flipped is None:
                state.already_flipped = np.zeros(
                    self.geometry.row_bits, dtype=bool)
            _xor_bits(state.data, flips)
            state.already_flipped[flips] = True
            self.stats.committed_bitflips += int(flips.size)
        state.acc_units = 0.0
        state.restored_at = self.now_ns


def _xor_bits(data: np.ndarray, bit_positions: np.ndarray) -> None:
    """Flip the given bit positions (MSB-first within each byte) in place."""
    if bit_positions.size == 0:
        return
    byte_index = bit_positions // 8
    bit_in_byte = 7 - (bit_positions % 8)
    np.bitwise_xor.at(data, byte_index,
                      (1 << bit_in_byte).astype(np.uint8))
