"""Read-disturbance physics: RowHammer/RowPress amplification and coupling.

The central quantity is the **amplification factor** ``d(t_AggON)``: how much
more disturbance one aggressor activation delivers when the row stays open
for ``t_AggON`` instead of the minimal ``tRAS``.  RowHammer is the
``d == 1`` regime; RowPress is the observation that ``d`` grows by orders of
magnitude with on-time (Section 6).  The curve is a monotone log-log
interpolation through anchors calibrated to the paper:

- ``1x`` at ``tRAS`` (29 ns) by definition,
- ``~55x`` at ``tREFI`` (3.9 us): mean HC_first drops 83689 -> 1519,
- ``222.57x`` at ``9 * tREFI`` (35.1 us): the paper quotes this factor,
- ``>= 1.5e5x`` at 16 ms (half tREFW), where HC_first reaches 1 for every
  tested row (Observation 23, Takeaway 7),
- intermediate small-on-time anchors (58/87/116 ns) set so Fig. 12's BER
  growth at 150K hammers follows the reported 0.08/0.24/0.40/0.73% series.

Disturbance is measured in *baseline hammer units*: one unit equals the
disturbance a victim receives from one full double-sided hammer (one ACT on
each neighbor at minimal on-time).  A single neighbor activation therefore
contributes 0.5 units, scaled by amplification and by a distance factor
(rows at +-2 receive a small fraction; disturbance never crosses subarray
boundaries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

#: (t_AggON ns, amplification) anchor points; must be increasing in both.
DEFAULT_AMPLIFICATION_ANCHORS: Tuple[Tuple[float, float], ...] = (
    (29.0, 1.0),
    (58.0, 1.45),
    (87.0, 1.75),
    (116.0, 2.50),
    (3.9e3, 55.09),
    (35.1e3, 222.57),
    (16.0e6, 1.5e5),
)

#: Relative disturbance received by victims at each physical distance.
DEFAULT_DISTANCE_FACTORS: Dict[int, float] = {1: 1.0, 2: 0.015}


@dataclass(frozen=True)
class DisturbanceModel:
    """RowPress amplification curve plus distance coupling."""

    anchors: Tuple[Tuple[float, float], ...] = DEFAULT_AMPLIFICATION_ANCHORS
    distance_factors: Dict[int, float] = field(
        default_factory=lambda: dict(DEFAULT_DISTANCE_FACTORS))

    def __post_init__(self) -> None:
        times = [t for t, __ in self.anchors]
        amps = [a for __, a in self.anchors]
        if len(self.anchors) < 2:
            raise ValueError("need at least two amplification anchors")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("anchor times must be strictly increasing")
        if any(b < a for a, b in zip(amps, amps[1:])):
            raise ValueError("anchor amplifications must be non-decreasing")
        if times[0] <= 0 or amps[0] <= 0:
            raise ValueError("anchors must be positive")

    @property
    def min_t_on(self) -> float:
        """Smallest anchored on-time (the tRAS baseline)."""
        return self.anchors[0][0]

    @property
    def blast_radius(self) -> int:
        """Largest distance at which an aggressor disturbs a victim."""
        return max(self.distance_factors)

    def amplification(self, t_on: float) -> float:
        """Disturbance amplification at aggressor on-time ``t_on`` (ns).

        On-times at or below the baseline return 1.0 (a row cannot stay
        open for less than tRAS); on-times beyond the last anchor
        extrapolate along the final log-log segment.
        """
        if t_on <= self.min_t_on:
            return 1.0
        log_times = np.log10([t for t, __ in self.anchors])
        log_amps = np.log10([a for __, a in self.anchors])
        log_t = np.log10(t_on)
        if log_t >= log_times[-1]:
            slope = ((log_amps[-1] - log_amps[-2])
                     / (log_times[-1] - log_times[-2]))
            return float(10.0 ** (log_amps[-1]
                                  + slope * (log_t - log_times[-1])))
        return float(10.0 ** np.interp(log_t, log_times, log_amps))

    def amplification_array(self, t_on: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`amplification`, element-wise bit-identical.

        The interpolation and extrapolation run through one log-log
        :func:`numpy.interp` call instead of a Python loop.  The final
        ``10 ** x`` step goes through C ``pow`` per element (not numpy's
        SIMD power kernel, which rounds differently on ~5% of inputs by
        1 ulp) so every element equals the scalar method exactly —
        studies may freely mix the two without perturbing report hashes.
        """
        values = np.asarray(t_on, dtype=float)
        flat = values.reshape(-1)
        result = np.ones(flat.shape, dtype=float)
        above = flat > self.min_t_on
        if above.any():
            log_times = np.log10([t for t, __ in self.anchors])
            log_amps = np.log10([a for __, a in self.anchors])
            log_t = np.log10(flat[above])
            log_result = np.interp(log_t, log_times, log_amps)
            beyond = log_t >= log_times[-1]
            if beyond.any():
                slope = ((log_amps[-1] - log_amps[-2])
                         / (log_times[-1] - log_times[-2]))
                log_result[beyond] = (log_amps[-1]
                                      + slope * (log_t[beyond]
                                                 - log_times[-1]))
            result[above] = [10.0 ** value
                             for value in log_result.tolist()]
        return result.reshape(values.shape)

    def distance_factor(self, distance: int) -> float:
        """Coupling at ``abs(row delta)`` = ``distance`` (0 beyond radius)."""
        if distance <= 0:
            raise ValueError("distance must be positive")
        return self.distance_factors.get(distance, 0.0)

    def units_per_activation(self, t_on: float, distance: int = 1) -> float:
        """Baseline hammer units one neighbor ACT delivers to a victim.

        One *double-sided* hammer (one ACT on each side) delivers one unit,
        so a single activation at distance 1 delivers 0.5 units, scaled by
        the on-time amplification.
        """
        return 0.5 * self.amplification(t_on) * self.distance_factor(distance)

    def effective_hammers(self, hammer_count: float, t_on: float,
                          sides: int = 2, distance: int = 1) -> float:
        """Effective baseline units of a multi-sided hammer pattern.

        ``hammer_count`` is the per-side activation count (the paper's
        convention, Section 3.1).  A double-sided pattern at baseline
        on-time maps to exactly ``hammer_count`` units.
        """
        if hammer_count < 0:
            raise ValueError("hammer_count must be non-negative")
        if sides < 1:
            raise ValueError("sides must be at least 1")
        per_act = self.units_per_activation(t_on, distance)
        return hammer_count * sides * per_act

    def hc_first_scale(self, t_on: float) -> float:
        """Factor by which HC_first shrinks at on-time ``t_on``.

        The paper reports an average reduction of 222.57x at 35.1 us
        (Section 1, key observation 3).
        """
        return self.amplification(t_on)


#: Model shared by all chips (per-chip variation enters via cell thresholds).
DEFAULT_DISTURBANCE = DisturbanceModel()
