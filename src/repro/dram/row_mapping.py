"""Logical-to-physical DRAM row address mapping.

DRAM manufacturers remap memory-controller-visible (logical) row addresses
to internal physical rows for repair and layout reasons.  To identify
physically adjacent aggressor rows, the paper reverse-engineers the mapping
following prior work (Section 3.1).  We implement the common mapping
families seen in real chips; each simulated chip is assigned one, and the
reverse-engineering routine in
:mod:`repro.bender.routines.mapping_reveng` recovers it from single-sided
hammer experiments alone.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


class RowMapping(abc.ABC):
    """Bijective logical <-> physical row mapping within a bank."""

    def __init__(self, rows: int) -> None:
        if rows <= 0:
            raise ValueError("rows must be positive")
        self.rows = rows

    @abc.abstractmethod
    def to_physical(self, logical: int) -> int:
        """Map a logical row to its physical row."""

    @abc.abstractmethod
    def to_logical(self, physical: int) -> int:
        """Map a physical row back to the logical address."""

    def _check(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} out of range [0, {self.rows})")

    def physical_neighbors(self, logical: int, radius: int = 1):
        """Logical addresses of the rows physically adjacent to ``logical``.

        This is the operation an attacker needs: given a victim's logical
        address, find the logical addresses to activate so the *physical*
        neighbors are hammered.
        """
        self._check(logical)
        physical = self.to_physical(logical)
        neighbors = []
        for offset in range(-radius, radius + 1):
            if offset == 0:
                continue
            candidate = physical + offset
            if 0 <= candidate < self.rows:
                neighbors.append(self.to_logical(candidate))
        return neighbors

    @property
    def name(self) -> str:
        """Family name used by the reverse-engineering report."""
        return type(self).__name__


class IdentityMapping(RowMapping):
    """Logical addresses equal physical addresses."""

    def to_physical(self, logical: int) -> int:
        self._check(logical)
        return logical

    def to_logical(self, physical: int) -> int:
        self._check(physical)
        return physical


@dataclass(frozen=True)
class _XorSpec:
    """Parameters of an XOR scramble: target bit receives XOR of source."""

    target_bit: int
    source_bit: int


class XorScrambleMapping(RowMapping):
    """Vendor-style XOR scramble: one address bit is XORed with another.

    A common real-chip scheme flips row address bit ``target`` whenever bit
    ``source`` is set, which shuffles adjacency within 8-row groups.  The
    transform is an involution, so forward and inverse coincide.
    """

    def __init__(self, rows: int, target_bit: int = 1,
                 source_bit: int = 2) -> None:
        super().__init__(rows)
        if target_bit == source_bit:
            raise ValueError("target and source bits must differ")
        if rows <= max(1 << target_bit, 1 << source_bit):
            raise ValueError("scrambled bits exceed the row address width")
        self._spec = _XorSpec(target_bit, source_bit)

    def to_physical(self, logical: int) -> int:
        self._check(logical)
        if logical & (1 << self._spec.source_bit):
            return logical ^ (1 << self._spec.target_bit)
        return logical

    def to_logical(self, physical: int) -> int:
        self._check(physical)
        return self.to_physical(physical)  # involution


class MirrorOddMapping(RowMapping):
    """Low-bit swap inside 4-row groups (the "mirrored" vendor layout).

    Odd/even pairs inside each 4-row group are reordered as
    ``0, 1, 2, 3 -> 0, 2, 1, 3`` physically, a pattern observed on several
    DDR4 vendors and adopted here as a third distinct family.
    """

    _PERMUTATION = (0, 2, 1, 3)

    def to_physical(self, logical: int) -> int:
        self._check(logical)
        group = logical & ~0x3
        return group | self._PERMUTATION[logical & 0x3]

    def to_logical(self, physical: int) -> int:
        self._check(physical)
        return self.to_physical(physical)  # the permutation is an involution


class BlockInterleaveMapping(RowMapping):
    """Even/odd interleave inside 8-row groups.

    Physically, logical rows ``0..7`` of each group land at
    ``0, 2, 4, 6, 1, 3, 5, 7`` — the layout some vendors use to pair
    true- and anti-cell rows.  Unlike the XOR/mirror involutions, the
    displacement between logically and physically adjacent rows can
    exceed 2, so a memory controller that assumes an identity mapping
    refreshes rows that are *never* the real victims (the
    hiding-internal-topology cost quantified in the defense ablation).
    """

    _TO_PHYSICAL = (0, 2, 4, 6, 1, 3, 5, 7)
    _TO_LOGICAL = (0, 4, 1, 5, 2, 6, 3, 7)

    def to_physical(self, logical: int) -> int:
        self._check(logical)
        group = logical & ~0x7
        return group | self._TO_PHYSICAL[logical & 0x7]

    def to_logical(self, physical: int) -> int:
        self._check(physical)
        group = physical & ~0x7
        return group | self._TO_LOGICAL[physical & 0x7]


MAPPING_FAMILIES = {
    "IdentityMapping": IdentityMapping,
    "XorScrambleMapping": XorScrambleMapping,
    "MirrorOddMapping": MirrorOddMapping,
    "BlockInterleaveMapping": BlockInterleaveMapping,
}


def make_mapping(family: str, rows: int) -> RowMapping:
    """Instantiate a mapping family by name."""
    if family not in MAPPING_FAMILIES:
        raise ValueError(f"unknown mapping family {family!r}")
    return MAPPING_FAMILIES[family](rows)
