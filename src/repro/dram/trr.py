"""Undocumented in-DRAM Target Row Refresh (TRR) engine.

Section 7 of the paper reverse-engineers a proprietary TRR mechanism in
Chip 0 (operating *on top of* the documented JESD235 TRR Mode, and active
even when TRR Mode is not entered).  The uncovered behaviour:

- **Obsv. 24**: every 17th REF command is *TRR-capable* (can perform a
  victim refresh).
- **Obsv. 25**: when a row R is detected as an aggressor, both neighbors
  R-1 and R+1 are refreshed.
- **Obsv. 26**: the *first row activated after a TRR-capable REF* is always
  detected as an aggressor.
- **Obsv. 27**: a row activated at least half as many times as the total
  activation count between two REF commands is detected as an aggressor.

The paper further shows (Fig. 14) that a bypass pattern needs **at least 4
dummy rows**; with 3 or fewer dummies the mechanism still catches the real
aggressors even though neither published rule fires.  We model this with a
small sampler CAM of capacity 4 that latches the first distinct rows
activated after a TRR-capable REF — a strict generalization of Obsv. 26
that reproduces the >= 4 dummy requirement (documented as an inference in
DESIGN.md).  Detected aggressors accumulate until the next TRR-capable REF,
which refreshes their neighbors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Set, Tuple

#: One epoch of activations: bank -> ordered ``(row, count)`` pairs in
#: first-activation order (the same contract as :meth:`TrrEngine.note_window`).
EpochCounts = Mapping[int, Sequence[Tuple[int, int]]]

#: Sparse victim-refresh schedule: ``(window_offset, victims)`` pairs where
#: ``window_offset`` is 1-based within the run and ``victims`` lists
#: ``(bank, victim_row)`` in emission order.  Windows without victim
#: refreshes are omitted.
VictimSchedule = List[Tuple[int, List[Tuple[int, int]]]]


@dataclass(frozen=True)
class TrrConfig:
    """Parameters of the undocumented TRR sampler."""

    #: Every Nth REF command is TRR-capable (Obsv. 24).
    capable_interval: int = 17
    #: Capacity of the first-activated-rows CAM (reproduces the >= 4
    #: dummy-row requirement of Fig. 14; generalizes Obsv. 26).
    cam_capacity: int = 4
    #: Enable the per-window majority activation-count rule (Obsv. 27).
    count_rule: bool = True
    #: Enable the first-activation CAM rule (Obsv. 26).
    first_act_rule: bool = True
    #: Master enable; chips without the proprietary mechanism disable it.
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.capable_interval < 1:
            raise ValueError("capable_interval must be at least 1")
        if self.cam_capacity < 1:
            raise ValueError("cam_capacity must be at least 1")


@dataclass
class _BankTracker:
    """Per-bank sampler state."""

    #: Distinct rows activated since the last TRR-capable REF, in first-
    #: activation order, truncated to the CAM capacity.
    cam: List[int] = field(default_factory=list)
    cam_members: Set[int] = field(default_factory=set)
    #: Activation counts in the current REF-to-REF window.
    window_counts: Dict[int, int] = field(default_factory=dict)
    window_total: int = 0
    #: Aggressors flagged by the count rule, pending the next capable REF.
    pending: Set[int] = field(default_factory=set)


class TrrEngine:
    """Sampler + victim-refresh logic for one pseudo channel.

    The device calls :meth:`on_activate` for every row activation and
    :meth:`on_refresh` for every REF; the latter returns the list of
    ``(bank, victim_row)`` pairs the DRAM internally refreshes when the REF
    is TRR-capable.
    """

    def __init__(self, config: TrrConfig, banks: int, rows: int) -> None:
        self.config = config
        self.banks = banks
        self.rows = rows
        self.ref_count = 0
        self._trackers = [_BankTracker() for __ in range(banks)]
        #: History of (ref index, detected aggressors) for probing tests.
        self.detection_log: List[Tuple[int, Dict[int, List[int]]]] = []

    def reset(self) -> None:
        """Forget all sampler state (power-on condition)."""
        self.ref_count = 0
        self._trackers = [_BankTracker() for __ in range(self.banks)]
        self.detection_log.clear()

    @property
    def refs_until_capable(self) -> int:
        """REF commands remaining until the next TRR-capable one."""
        interval = self.config.capable_interval
        remainder = self.ref_count % interval
        return interval - remainder

    def is_capable_ref(self, ref_index: int) -> bool:
        """Whether the ``ref_index``-th REF (1-based) is TRR-capable."""
        return ref_index % self.config.capable_interval == 0

    def on_activate(self, bank: int, row: int, count: int = 1) -> None:
        """Record ``count`` activations of ``row`` (fused hammers pass >1)."""
        if not self.config.enabled:
            return
        if not 0 <= bank < self.banks:
            raise ValueError(f"bank {bank} out of range")
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} out of range")
        if count < 1:
            raise ValueError("count must be at least 1")
        tracker = self._trackers[bank]
        if (self.config.first_act_rule
                and len(tracker.cam) < self.config.cam_capacity
                and row not in tracker.cam_members):
            tracker.cam.append(row)
            tracker.cam_members.add(row)
        tracker.window_counts[row] = tracker.window_counts.get(row, 0) + count
        tracker.window_total += count

    def note_window(self, bank: int,
                    ordered_counts: Sequence[Tuple[int, int]]) -> None:
        """Fast path: record a whole REF-to-REF window of activations.

        ``ordered_counts`` lists ``(row, count)`` in first-activation
        order; semantically identical to interleaved :meth:`on_activate`
        calls where each row's first activation follows the given order.
        """
        for row, count in ordered_counts:
            self.on_activate(bank, row, count)

    def on_refresh(self) -> List[Tuple[int, int]]:
        """Process one REF command.

        Closes every bank's activation window (applying the count rule) and,
        if this REF is TRR-capable, returns the ``(bank, victim_row)`` pairs
        to refresh and re-arms the CAM.
        """
        if not self.config.enabled:
            return []
        self.ref_count += 1
        victims: List[Tuple[int, int]] = []
        capable = self.is_capable_ref(self.ref_count)
        detected_by_bank: Dict[int, List[int]] = {}
        for bank, tracker in enumerate(self._trackers):
            self._apply_count_rule(tracker)
            tracker.window_counts = {}
            tracker.window_total = 0
            if not capable:
                continue
            detected = set(tracker.pending)
            if self.config.first_act_rule:
                detected.update(tracker.cam)
            if detected:
                detected_by_bank[bank] = sorted(detected)
            for aggressor in detected:
                for victim in (aggressor - 1, aggressor + 1):
                    if 0 <= victim < self.rows:
                        victims.append((bank, victim))
            tracker.pending.clear()
            tracker.cam = []
            tracker.cam_members = set()
        if capable:
            self.detection_log.append((self.ref_count, detected_by_bank))
        return victims

    # ------------------------------------------------------------------
    # Array-form epoch execution
    # ------------------------------------------------------------------

    def run_epochs(self, epoch: EpochCounts, repeats: int) -> VictimSchedule:
        """Execute ``repeats`` identical (epoch, REF) windows at once.

        Bit-identical to repeating ``note_window(bank, epoch[bank])`` for
        every bank followed by one :meth:`on_refresh`, ``repeats`` times:
        the same victim-refresh pairs in the same order (returned as a
        sparse per-window schedule), the same :attr:`detection_log`
        entries, and the same end state for any subsequent command.

        The speedup comes from the mechanism's *periodic steady state*:
        every TRR-capable REF clears the CAM and the pending set, and
        every REF clears the activation window — so once one full
        capable-to-capable period of identical epochs has been simulated,
        every later period repeats it exactly and is replicated
        arithmetically instead of re-executed.
        """
        if repeats < 0:
            raise ValueError("repeats must be non-negative")
        if not self.config.enabled or repeats == 0:
            return []
        ref_start = self.ref_count
        interval = self.config.capable_interval
        events: VictimSchedule = []
        first_capable = 0  # 1-based offset of the first capable REF
        simulated = 0
        while simulated < repeats:
            if first_capable and simulated >= first_capable + interval:
                break
            for bank, ordered_counts in epoch.items():
                self.note_window(bank, ordered_counts)
            victims = self.on_refresh()
            simulated += 1
            if victims:
                events.append((simulated, victims))
            if not first_capable and self.is_capable_ref(self.ref_count):
                first_capable = simulated
        if simulated == repeats:
            return events
        # Steady state reached: the capable REF at `first_capable +
        # interval` was computed from the cleared post-capable state, so
        # every later capable REF emits the same victims and logs the
        # same detections.  Non-capable REFs emit nothing.
        period_victims: List[Tuple[int, int]] = []
        period_detected: Dict[int, List[int]] = {}
        if events and events[-1][0] == simulated:
            period_victims = events[-1][1]
        if self.detection_log and \
                self.detection_log[-1][0] == ref_start + simulated:
            period_detected = self.detection_log[-1][1]
        offset = simulated + interval
        while offset <= repeats:
            if period_victims:
                events.append((offset, list(period_victims)))
            self.detection_log.append(
                (ref_start + offset,
                 {bank: list(rows)
                  for bank, rows in period_detected.items()}))
            offset += interval
        # Fast-forward the engine state: the tail windows past the last
        # capable REF replay against a cleared tracker (what any capable
        # REF leaves behind), closing each window non-capably.
        self.ref_count = ref_start + repeats
        tail = (repeats - first_capable) % interval
        self._trackers = [_BankTracker() for __ in range(self.banks)]
        for __ in range(tail):
            for bank, ordered_counts in epoch.items():
                self.note_window(bank, ordered_counts)
            for tracker in self._trackers:
                self._apply_count_rule(tracker)
                tracker.window_counts = {}
                tracker.window_total = 0
        return events

    def _apply_count_rule(self, tracker: _BankTracker) -> None:
        if not self.config.count_rule or tracker.window_total == 0:
            return
        total = tracker.window_total
        for row, count in tracker.window_counts.items():
            # "More than half" with the paper's own example of 5-of-10
            # counting as detected: threshold is >= half.
            if 2 * count >= total:
                tracker.pending.add(row)
