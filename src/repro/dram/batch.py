"""Batched row-population execution engine.

The paper's methodology evaluates the same measurement — initialize the
pattern window, hammer the two neighbors, read the victim — over
thousands of victim rows.  Driving :class:`~repro.dram.device.HBM2Stack`
one command at a time replays that faithfully but serializes every row
through Python-level command dispatch.  This engine evaluates the *same
physics* against arrays of victim rows in one shot:

- per-cell threshold arrays for the whole row sample are stacked into one
  ``(rows, row_bits)`` matrix (materialized once and reused across
  probes, where the scalar path re-materializes per probe),
- accumulated-disturbance units replay the exact float operation order of
  the command engine (window-init writes, then each aggressor's fused
  hammer),
- pending-flip masks, retention failures, on-die ECC correction and the
  data-pattern XOR are applied across the population with numpy.

**Equivalence contract** (asserted in ``tests/dram/test_batch.py``): for
any victim set, :meth:`RowBatchProfile.hammer` returns bit-identical row
images and flip counts to running ``initialize_window`` /
``double_sided_hammer`` / ``read_row`` per victim on the device.  The
engine is a *measurement surface*: it does not mutate device state,
advance device time, or update command statistics, exactly like the
analytic engine in :mod:`repro.core.analytic`.

TRR-enabled devices are fully supported: the measurement window issues
no REF commands, so TRR cannot alter what the batch measures, and the
engine *mirrors* the measurement's activation stream into the device's
TRR sampler (the one piece of device state whose future behaviour
depends on the activation history) so that later REF commands see the
same sampler state as after the scalar command sequence.

**Fault plans batch too**: fault draws are pure functions of ``(seed,
tag, command counter)`` and the measurement window's command layout is
static, so a ``FaultyStack``-wrapped plain stack is supported — the
session layer classifies each victim's window with the plan's
vectorized samplers (:meth:`repro.faults.plan.FaultPlan.drop_mask` and
friends), measures the untouched windows through this engine, and
replays only the fault-hit windows per-command.  ``HBMSIM_BATCH=0``
still forces the scalar path everywhere (the escape hatch), and the
scalar interpreter remains the oracle in the differential property
tests.

The module also defines the **epoch plan** lowering used by the TRR-aware
executors: a hammer schedule between two REF commands, represented as
per-bank ordered ``(row, count)`` arrays (:class:`EpochPlan`).  The
array-form :meth:`repro.dram.trr.TrrEngine.run_epochs` consumes these
plans directly, which is what lets the Section 7 attack replay and the
REF-heavy defense workloads skip per-command execution entirely.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dram.cells import allocate_cells, cells_chunk_elems
from repro.dram.device import ROW_IO_NS, HBM2Stack, classify_victim_pattern
from repro.dram.geometry import RowAddress
from repro.dram.timing import TimingParameters

#: Window-init radius of the paper's methodology (Table 1: the pattern
#: extends to distance 8 from the victim).  Mirrors
#: ``repro.bender.routines.rowinit.PATTERN_RADIUS`` without importing the
#: bender layer from the dram layer.
PATTERN_RADIUS = 8

_ENV_FLAG = "HBMSIM_BATCH"
_DISABLE_VALUES = frozenset({"0", "false", "no", "off"})
_ENABLE_VALUES = frozenset({"1", "true", "yes", "on", ""})
#: Unrecognized ``HBMSIM_BATCH`` values already warned about (warn once
#: per distinct value, not once per call — the flag is read on every
#: batching decision).
_WARNED_VALUES: set = set()


def batch_enabled() -> bool:
    """Whether batched execution is enabled (``HBMSIM_BATCH`` escape
    hatch; ``0/false/no/off`` disables, ``1/true/yes/on`` enables,
    default enabled).  Any other value warns once and keeps batching
    enabled — a typo like ``HBMSIM_BATCH=00`` must not silently select
    an engine the user did not ask for.
    """
    value = os.environ.get(_ENV_FLAG)
    if value is None:
        return True
    normalized = value.strip().lower()
    if normalized in _DISABLE_VALUES:
        return False
    if normalized not in _ENABLE_VALUES and value not in _WARNED_VALUES:
        _WARNED_VALUES.add(value)
        import warnings

        warnings.warn(
            f"unrecognized {_ENV_FLAG}={value!r}; expected one of "
            "0/false/no/off or 1/true/yes/on — batching stays enabled",
            RuntimeWarning, stacklevel=2)
    return True


def engine_supported(device: object) -> bool:
    """Whether ``device`` can be measured through the batch engine.

    Requires a plain :class:`HBM2Stack` (subclasses could override
    command semantics, diverging from the engine's closed-form replay),
    either bare or behind a :class:`~repro.faults.injector.FaultyStack`
    — the wrapper only perturbs the *command stream*, which the session
    layer replays around the engine; the physics underneath are exactly
    the plain stack's.  TRR-enabled stacks are supported: the profile
    mirrors each measurement's activation stream into the TRR sampler
    (see :meth:`RowBatchProfile._mirror_trr`), so later REF commands
    select the same victims as after the scalar command sequence.
    """
    from repro.faults.injector import FaultyStack

    if isinstance(device, FaultyStack):
        device = device.wrapped
    return type(device) is HBM2Stack


@dataclass
class BatchHammerResult:
    """Outcome of one batched hammer evaluation."""

    #: Victims, in request order.
    victims: List[RowAddress]
    #: Per-victim row images exactly as ``read_row`` would return them.
    images: np.ndarray
    #: Committed flip mask per victim (pre-ECC), ``(rows, row_bits)``.
    committed: np.ndarray
    #: Observed mismatch mask vs the expected pattern image (post-ECC).
    observed_flips: np.ndarray
    #: Observed bitflip count per victim (what ``count_bitflips`` sees).
    bitflips: np.ndarray


class RowBatchProfile:
    """Stacked fault-physics state for a batch of victim rows.

    Building the profile materializes every victim's cell thresholds and
    retention floor once; :meth:`hammer` then evaluates any (count,
    t_AggON) schedule against the whole batch without touching the
    device.  Victims may be arbitrary addresses (different banks or
    channels); each is evaluated independently, which matches the scalar
    sequence because every measurement re-initializes its whole pattern
    window (blast radius 2 < init radius 8 — no cross-victim residue
    survives the re-init).
    """

    def __init__(self, device: HBM2Stack, victims: Sequence[RowAddress],
                 pattern: Any, radius: int = PATTERN_RADIUS) -> None:
        if not engine_supported(device):
            raise ValueError(
                "batch engine requires a plain HBM2Stack (or one behind "
                "a FaultyStack); use the scalar command path instead")
        from repro.faults.injector import FaultyStack

        if isinstance(device, FaultyStack):
            # The engine replays the *physics*; command-stream faults
            # are the session layer's concern (it only routes fault-free
            # windows here).
            device = device.wrapped
        self.device = device
        self.victims = [address.validate(device.geometry)
                        for address in victims]
        self.pattern = pattern
        self.radius = radius
        geometry = device.geometry
        expected = pattern.victim_row(geometry.row_bytes)
        #: The profile the device looks up is keyed on the *written*
        #: victim image, classified back to a canonical pattern name.
        self.pattern_name = classify_victim_pattern(expected)
        self.expected = np.asarray(expected, dtype=np.uint8)

        n = len(self.victims)
        layout = geometry.subarrays
        model = device.disturbance
        provider = device.profile_provider

        # The threshold matrix is the batch's dominant allocation (one
        # float per cell); place it under the spill policy so full-
        # geometry batches can live in a memory-mapped working set.
        self.thresholds = allocate_cells((n, geometry.row_bits), float)
        self.min_thresholds = np.empty(n, dtype=float)
        self.retention_floors = np.full(n, np.inf)
        self.init_units = np.zeros(n, dtype=float)
        #: Whether the aggressor at row-1 / row+1 exists in the bank.
        self.has_low_aggressor = np.zeros(n, dtype=bool)
        self.has_high_aggressor = np.zeros(n, dtype=bool)
        #: ... and also shares the victim's subarray (disturbs it).
        self.low_disturbs = np.zeros(n, dtype=bool)
        self.high_disturbs = np.zeros(n, dtype=bool)
        #: Window rows written after the victim (for the retention clock).
        self.upper_writes = np.zeros(n, dtype=np.int64)

        timings = device.timings
        #: Open time of one window-init write (stretched to tRAS).
        self.t_write_on = max(timings.t_rcd + ROW_IO_NS, timings.t_ras)
        temperature = device.temperature_disturbance_factor()
        distances = sorted(model.distance_factors)

        for index, victim in enumerate(self.victims):
            row = victim.row
            if row - 1 < 0 and row + 1 >= geometry.rows:
                raise ValueError("victim has no neighbors in the bank")
            self.has_low_aggressor[index] = row - 1 >= 0
            self.has_high_aggressor[index] = row + 1 < geometry.rows
            self.low_disturbs[index] = (
                row - 1 >= 0 and layout.same_subarray(row, row - 1))
            self.high_disturbs[index] = (
                row + 1 < geometry.rows
                and layout.same_subarray(row, row + 1))
            self.upper_writes[index] = min(radius,
                                           geometry.rows - 1 - row)
            # Window-init disturbance: rewriting the victim clears its
            # accumulator, so only the writes *after* it (rows victim+d,
            # ascending d) contribute — replayed in the same add order.
            units = 0.0
            for distance in distances:
                neighbor = row + distance
                if distance > radius or neighbor >= geometry.rows:
                    continue
                if not layout.same_subarray(row, neighbor):
                    continue
                contribution = (1 * temperature) \
                    * model.units_per_activation(self.t_write_on, distance)
                if contribution > 0:
                    units += contribution
            self.init_units[index] = units

            profile = provider.profile(victim, self.pattern_name)
            population = profile.population
            strong_floor = 10.0 ** (population.mu_strong
                                    - 3.0 * population.sigma_strong)
            self.min_thresholds[index] = min(float(profile.hc_first()),
                                             strong_floor)
            self.thresholds[index] = profile.materialize()
            if device.retention is not None:
                self.retention_floors[index] = \
                    device.retention.row_retention_ns(victim)

    def __len__(self) -> int:
        return len(self.victims)

    # ------------------------------------------------------------------

    def _elapsed_at_read(self, counts: np.ndarray, effective_t_on: float,
                         indices: np.ndarray) -> np.ndarray:
        """Time between the victim's init write and the read's commit.

        Replays the command clock: the victim's own write, the window
        writes above it, then one fused hammer per in-range aggressor.
        """
        timings = self.device.timings
        per_write = self.t_write_on + timings.t_rp
        commands = (self.has_low_aggressor[indices].astype(np.int64)
                    + self.has_high_aggressor[indices].astype(np.int64))
        return (per_write * (1 + self.upper_writes[indices])
                + commands * counts * timings.act_to_act(effective_t_on))

    def hammer(self, counts: Union[int, np.ndarray],
               t_on: Optional[float] = None,
               subset: Optional[np.ndarray] = None,
               mirror_trr: bool = True) -> BatchHammerResult:
        """Evaluate a double-sided hammer of ``counts`` per aggressor.

        ``counts`` broadcasts over the batch (per-victim counts are what
        the vectorized HC_first bisection feeds).  ``subset`` restricts
        evaluation to the given victim indices (results align with the
        subset order).  ``mirror_trr=False`` skips the TRR sampler
        mirroring — a speculative executor evaluates probes it may later
        discard and must not leak their activations into the sampler;
        it replays accepted windows itself via :meth:`mirror_window`.
        """
        device = self.device
        timings = device.timings
        if subset is None:
            indices = np.arange(len(self.victims))
        else:
            indices = np.asarray(subset, dtype=np.int64)
        counts = np.broadcast_to(
            np.asarray(counts, dtype=np.int64), indices.shape).copy()
        if (counts < 0).any():
            raise ValueError("count must be non-negative")
        effective_t_on = timings.t_ras if t_on is None \
            else max(t_on, timings.t_ras)

        # Accumulated units at the read's commit, replaying the command
        # engine's add order: init writes first, then aggressor hammers
        # (low side, then high side), each `count * temperature * upa`.
        temperature = device.temperature_disturbance_factor()
        per_activation = device.disturbance.units_per_activation(
            effective_t_on, 1)
        per_side = (counts * temperature) * per_activation
        acc = self.init_units[indices].copy()
        low = self.low_disturbs[indices]
        acc[low] += per_side[low]
        high = self.high_disturbs[indices]
        acc[high] += per_side[high]

        # Compare thresholds in row chunks sized to the cell working-set
        # bound: the fancy-indexed gather ``self.thresholds[indices]``
        # would materialize a float copy of the whole selection at once,
        # which is exactly the per-batch peak the chunk policy caps.
        # Elementwise comparison per chunk is bit-identical.
        committed = np.empty((indices.size, self.thresholds.shape[1]),
                             dtype=bool)
        chunk_rows = max(1,
                         cells_chunk_elems() // self.thresholds.shape[1])
        for start in range(0, indices.size, chunk_rows):
            stop = min(start + chunk_rows, indices.size)
            committed[start:stop] = (
                self.thresholds[indices[start:stop]]
                <= acc[start:stop, None])
        # min-threshold fast path parity: acc below the row's weakest
        # cell yields an empty mask by construction (the bound is exact).

        if device.retention is not None:
            elapsed = self._elapsed_at_read(counts, effective_t_on, indices)
            effective = elapsed * device.retention_acceleration()
            failing = np.flatnonzero(
                effective >= self.retention_floors[indices])
            for position in failing:
                victim = self.victims[int(indices[position])]
                bits = device.retention.failing_bits(
                    victim, float(effective[position]))
                committed[position, bits] = True

        images = np.broadcast_to(
            self.expected, (indices.size, self.expected.size)).copy()
        images ^= np.packbits(committed, axis=1)

        observed = committed
        if device.mode_registers.ecc_enabled:
            corrections = _ecc_correction_mask(committed)
            if corrections is not None:
                images ^= np.packbits(corrections, axis=1)
                observed = committed & ~corrections

        if mirror_trr:
            self._mirror_trr(indices, counts)

        return BatchHammerResult(
            victims=[self.victims[int(i)] for i in indices],
            images=images,
            committed=committed,
            observed_flips=observed,
            bitflips=observed.sum(axis=1),
        )

    def _mirror_trr(self, indices: np.ndarray,
                    counts: np.ndarray) -> None:
        """Replay the measurement's activation stream into the sampler.

        The scalar sequence per victim is: the window-init writes
        (ascending rows), one fused hammer per in-range aggressor (low
        side first), then the read's activation of the victim.  Each is
        an ``on_activate`` the TRR sampler observes; replaying them in
        the same order keeps the sampler — CAM, window counts, pending
        set — bit-identical to the scalar command path, so any later REF
        refreshes the same victims.  (No REF occurs inside the
        measurement itself, so this is the only device state the batch
        evaluation has to keep in sync.)
        """
        for position, index in enumerate(indices):
            self.mirror_window(int(index), int(counts[position]))

    def mirror_window(self, index: int, count: int) -> None:
        """Mirror one victim's measurement window into the TRR sampler.

        Public so a speculative executor can replay accepted windows in
        scalar visit order after evaluating them with
        ``hammer(..., mirror_trr=False)``.
        """
        device = self.device
        if not device.trr_config.enabled:
            return
        geometry = device.geometry
        victim = self.victims[index]
        engine = device.trr_engine(victim.channel, victim.pseudo_channel)
        low = max(0, victim.row - self.radius)
        high = min(geometry.rows - 1, victim.row + self.radius)
        stream = [(row, 1) for row in range(low, high + 1)]
        if count > 0:
            if victim.row - 1 >= 0:
                stream.append((victim.row - 1, count))
            if victim.row + 1 < geometry.rows:
                stream.append((victim.row + 1, count))
        stream.append((victim.row, 1))
        engine.note_window(victim.bank, stream)


@dataclass(frozen=True)
class EpochPlan:
    """One REF-to-REF run of activations, lowered to count arrays.

    A hammer schedule between two REF commands is a sequence of fused
    hammers: ``rows[i]`` receives ``counts[i]`` activations in bank
    ``banks[i]``, with entries listed in first-activation order within
    each bank (the contract of :meth:`repro.dram.trr.TrrEngine.
    note_window`).  Repeating the same plan every tREFI — exactly what
    the Section 7 bypass attack and the defense-evaluation attack loops
    do — is what :meth:`repro.dram.trr.TrrEngine.run_epochs` and the
    epoch-level executors consume wholesale instead of dispatching each
    hammer as a command.
    """

    banks: np.ndarray
    rows: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.banks) == len(self.rows) == len(self.counts)):
            raise ValueError("banks/rows/counts must align")
        if len(self.counts) and int(np.min(self.counts)) < 1:
            raise ValueError("counts must be at least 1")

    @classmethod
    def single_bank(cls, bank: int,
                    pairs: Sequence[tuple]) -> "EpochPlan":
        """Lower an ordered ``(row, count)`` schedule in one bank."""
        rows = np.asarray([row for row, __ in pairs], dtype=np.int64)
        counts = np.asarray([count for __, count in pairs],
                            dtype=np.int64)
        banks = np.full(len(rows), bank, dtype=np.int64)
        return cls(banks=banks, rows=rows, counts=counts)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def total_activations(self) -> int:
        """ACTs issued per epoch (the tREFI activation-budget user)."""
        return int(self.counts.sum())

    def as_trr_epoch(self) -> Dict[int, List[Tuple[int, int]]]:
        """The ``bank -> ordered (row, count)`` mapping ``run_epochs``
        consumes (entry order within each bank is preserved)."""
        epoch: Dict[int, List[Tuple[int, int]]] = {}
        for bank, row, count in zip(self.banks.tolist(),
                                    self.rows.tolist(),
                                    self.counts.tolist()):
            epoch.setdefault(bank, []).append((row, count))
        return epoch

    def entry_durations(self, timings: TimingParameters,
                        t_on: Optional[float] = None) -> List[float]:
        """Wall-clock time of each fused hammer, in entry order.

        Scalar replay adds ``count * act_to_act(t_on)`` to the device
        clock once per hammer command; callers accumulate these values
        in the same order to stay bit-identical with that clock.
        """
        effective = timings.t_ras if t_on is None \
            else max(t_on, timings.t_ras)
        per_act = timings.act_to_act(effective)
        return [count * per_act for count in self.counts.tolist()]


def _ecc_correction_mask(committed: np.ndarray) -> Optional[np.ndarray]:
    """Single-bit-per-64-bit-word SECDED corrections for a flip stack.

    Mirrors ``HBM2Stack._apply_on_die_ecc``: words with exactly one
    committed flip are corrected (that bit restored in the read image);
    multi-bit words pass through.  Returns ``None`` when nothing is
    correctable.
    """
    n, row_bits = committed.shape
    words = committed.reshape(n, row_bits // 64, 64)
    flips_per_word = words.sum(axis=2)
    correctable = flips_per_word == 1
    if not correctable.any():
        return None
    corrections = np.zeros_like(committed)
    rows, word_index = np.nonzero(correctable)
    offsets = np.argmax(words[rows, word_index], axis=1)
    corrections[rows, word_index * 64 + offsets] = True
    return corrections
