"""HBM2 command set.

The paper's testing infrastructure issues raw DRAM commands (ACT, PRE, RD,
WR, REF) with precise timing control.  We mirror that command vocabulary,
plus two test-platform conveniences that DRAM Bender programs express as
loops and that our interpreter may fuse for speed:

- ``HAMMER``: ``count`` back-to-back ACT/PRE cycles to one row with a fixed
  on-time (semantically identical to the unrolled loop),
- ``WAIT``: advance time without issuing commands (used by retention and
  RowPress experiments).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np


class CommandKind(enum.Enum):
    """DRAM command opcode."""

    ACT = "ACT"
    PRE = "PRE"
    RD = "RD"
    WR = "WR"
    REF = "REF"
    NOP = "NOP"
    HAMMER = "HAMMER"
    WAIT = "WAIT"


@dataclass
class Command:
    """One command addressed to a pseudo channel of an HBM2 channel.

    Only the fields relevant to the command kind need to be set; the device
    validates the rest.  ``data`` carries a full row image for WR and is
    filled in by the device for RD.
    """

    kind: CommandKind
    channel: int = 0
    pseudo_channel: int = 0
    bank: int = 0
    row: int = 0
    #: Per-side activation count for HAMMER.
    count: int = 1
    #: Aggressor on-time for HAMMER, or explicit open time for ACT/PRE pairs.
    t_on: Optional[float] = None
    #: Wait duration for WAIT (ns).
    duration: float = 0.0
    #: Row image (uint8 array) for WR; populated on RD.
    data: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if self.duration < 0:
            raise ValueError("duration must be non-negative")

    @property
    def is_row_command(self) -> bool:
        """Whether the command addresses a specific row."""
        return self.kind in (CommandKind.ACT, CommandKind.HAMMER,
                             CommandKind.WR, CommandKind.RD)


def act(channel: int, pseudo_channel: int, bank: int, row: int,
        t_on: Optional[float] = None) -> Command:
    """Build an activate command."""
    return Command(CommandKind.ACT, channel, pseudo_channel, bank, row,
                   t_on=t_on)


def pre(channel: int, pseudo_channel: int, bank: int) -> Command:
    """Build a precharge command."""
    return Command(CommandKind.PRE, channel, pseudo_channel, bank)


def rd(channel: int, pseudo_channel: int, bank: int, row: int) -> Command:
    """Build a read command (whole-row readback, as test platforms do)."""
    return Command(CommandKind.RD, channel, pseudo_channel, bank, row)


def wr(channel: int, pseudo_channel: int, bank: int, row: int,
       data: np.ndarray) -> Command:
    """Build a write command carrying a full row image."""
    return Command(CommandKind.WR, channel, pseudo_channel, bank, row,
                   data=data)


def ref(channel: int, pseudo_channel: int) -> Command:
    """Build a periodic refresh command for a pseudo channel."""
    return Command(CommandKind.REF, channel, pseudo_channel)


def hammer(channel: int, pseudo_channel: int, bank: int, row: int,
           count: int, t_on: Optional[float] = None) -> Command:
    """Build a fused hammer command (``count`` ACT/PRE cycles)."""
    return Command(CommandKind.HAMMER, channel, pseudo_channel, bank, row,
                   count=count, t_on=t_on)


def wait(duration: float) -> Command:
    """Build a wait command advancing device time by ``duration`` ns."""
    return Command(CommandKind.WAIT, duration=duration)
