"""HBM2 command timing parameters (JESD235-style).

The testing infrastructure in the paper controls HBM2 command timings at the
granularity of the 600 MHz interface clock (1.66 ns).  The parameters below
are chosen to be consistent with every timing-derived number in the paper:

- minimum ``t_AggON`` of 29.0 ns, set by ``tRAS`` (Section 6),
- ``tREFI`` of 3.9 us and refresh window ``tREFW`` of 32 ms (Section 2.2),
- maximum REF postponement of ``9 * tREFI`` = 35.1 us,
- activation budget between two REFs of
  ``floor((tREFI - tRFC) / tRC) == 78`` (Section 7),
- 8205 REF commands per refresh window (the bypass attack repeats its
  pattern ``8205 * 2`` times to cover two tREFW).

All times are expressed in nanoseconds (float).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import cached_property

# Re-homed into the shared taxonomy (repro.errors); re-exported here so
# the historical `from repro.dram.timing import TimingError` keeps working.
from repro.errors import TimingError

__all__ = ["TimingError", "TimingParameters", "DEFAULT_TIMINGS"]


@dataclass(frozen=True)
class TimingParameters:
    """Timing parameter set for one HBM2 channel."""

    #: Interface clock period (600 MHz command clock).
    t_ck: float = 1.0e3 / 600.0
    #: Minimum time a row stays open before PRE (charge restoration).
    t_ras: float = 29.0
    #: Precharge latency (row close to next ACT in the same bank).
    t_rp: float = 16.0
    #: ACT-to-ACT cycle time in the same bank (t_ras + t_rp).
    t_rc: float = 45.0
    #: ACT to column command (RD/WR) delay.
    t_rcd: float = 14.0
    #: Average periodic refresh interval.
    t_refi: float = 3900.0
    #: Refresh cycle time (REF command execution time).
    t_rfc: float = 350.0
    #: Refresh window: every cell refreshed once per window.
    t_refw: float = 32.0e6
    #: Maximum REF postponement allowed by the standard (9 * tREFI).
    max_ref_postpone: float = 9 * 3900.0

    def __post_init__(self) -> None:
        if not math.isclose(self.t_rc, self.t_ras + self.t_rp):
            raise ValueError("t_rc must equal t_ras + t_rp")
        if self.t_refi <= self.t_rfc:
            raise ValueError("t_refi must exceed t_rfc")

    # Cached: the refresh path reads these once per REF command, and a
    # defense evaluation issues millions of REFs.  The dataclass is
    # frozen, so caching on first read is safe (cached_property writes
    # to __dict__ directly, bypassing the frozen __setattr__).
    @cached_property
    def refs_per_window(self) -> int:
        """Number of REF commands issued per refresh window."""
        return int(self.t_refw // self.t_refi)

    @cached_property
    def rows_refreshed_per_ref(self) -> int:
        """Rows refreshed per bank by one REF (rolling refresh pointer)."""
        rows = 16384
        return max(1, math.ceil(rows / self.refs_per_window))

    @property
    def activation_budget(self) -> int:
        """Maximum ACTs between two REF commands.

        This is the ``floor((tREFI - tRFC) / tRC) == 78`` budget the
        Section 7 bypass attack fully utilizes.
        """
        return int((self.t_refi - self.t_rfc) // self.t_rc)

    def act_to_act(self, t_aggr_on: float) -> float:
        """Time consumed by one open-close cycle with on-time ``t_aggr_on``.

        The aggressor row stays open for ``max(t_aggr_on, t_ras)`` and the
        bank then needs ``t_rp`` to precharge before the next ACT.
        """
        return max(t_aggr_on, self.t_ras) + self.t_rp

    def hammer_duration(self, hammer_count: int, t_aggr_on: float,
                        sides: int = 2) -> float:
        """Wall-clock time of a multi-sided hammer with per-side count.

        A double-sided pattern with hammer count ``N`` performs ``2 * N``
        row activations in total (Section 3.1).
        """
        if hammer_count < 0:
            raise ValueError("hammer_count must be non-negative")
        if sides < 1:
            raise ValueError("sides must be at least 1")
        return hammer_count * sides * self.act_to_act(t_aggr_on)

    def hammers_within(self, duration: float, t_aggr_on: float,
                       sides: int = 2) -> int:
        """Largest per-side hammer count whose pattern fits in ``duration``."""
        per_cycle = sides * self.act_to_act(t_aggr_on)
        return int(duration // per_cycle)

    def quantize(self, time_ns: float) -> float:
        """Round a time up to the next interface clock edge."""
        return math.ceil(time_ns / self.t_ck) * self.t_ck

    def scaled(self, **overrides: float) -> "TimingParameters":
        """Copy with selected fields replaced (keeps t_rc consistent)."""
        params = replace(self, **overrides)
        return params


#: Default timings used by every simulated chip.
DEFAULT_TIMINGS = TimingParameters()
