"""Greedy failure shrinking (delta debugging for SoftBender programs).

Given a failing :class:`~repro.fuzz.generator.FuzzCase` and a predicate
that re-runs the differential harness, repeatedly applies the smallest
behavior-shrinking transformations that keep the failure alive:

- delete one instruction (at any nesting depth),
- unwrap a loop into a single pass of its body,
- halve a loop's iteration count (toward 1),
- halve a HAMMER's activation count / a WAIT's duration,
- drop the fault plan, re-enable/disable nothing else,
- turn TRR off.

Each accepted transformation restarts the scan, so the result is a
local minimum: no single remaining transformation preserves the
failure.  Greedy and deterministic — the same failure always shrinks to
the same reproducer.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Iterator, List, Optional

from repro.bender.program import Instruction, Loop, TestProgram
from repro.dram.commands import Command, CommandKind
from repro.fuzz.generator import FuzzCase

#: Upper bound on accepted transformations (defensive; generated
#: programs are far smaller).
MAX_STEPS = 10_000


def _copy_instructions(instructions: List[Instruction]
                       ) -> List[Instruction]:
    copied: List[Instruction] = []
    for instruction in instructions:
        if isinstance(instruction, Loop):
            copied.append(Loop(instruction.count,
                               _copy_instructions(instruction.body)))
        else:
            copied.append(instruction)
    return copied


def _with_instructions(program: TestProgram,
                       instructions: List[Instruction]) -> TestProgram:
    shrunk = TestProgram(program.name)
    shrunk.instructions = instructions
    return shrunk


def _variants(instructions: List[Instruction]
              ) -> Iterator[List[Instruction]]:
    """All single-step reductions of an instruction list."""
    for index, instruction in enumerate(instructions):
        # 1. delete the instruction outright
        yield (_copy_instructions(instructions[:index])
               + _copy_instructions(instructions[index + 1:]))
        if isinstance(instruction, Loop):
            # 2. unwrap: one pass of the body, no loop node
            yield (_copy_instructions(instructions[:index])
                   + _copy_instructions(instruction.body)
                   + _copy_instructions(instructions[index + 1:]))
            # 3. halve the iteration count (toward 1)
            if instruction.count > 1:
                halved = _copy_instructions(instructions)
                loop = halved[index]
                assert isinstance(loop, Loop)
                loop.count = max(1, instruction.count // 2)
                yield halved
            # 4. recurse into the body
            for body in _variants(instruction.body):
                nested = _copy_instructions(instructions)
                nested[index] = Loop(instruction.count, body)
                yield nested
        elif isinstance(instruction, Command):
            if instruction.kind is CommandKind.HAMMER \
                    and instruction.count > 1:
                reduced = _copy_instructions(instructions)
                reduced[index] = replace(instruction,
                                         count=instruction.count // 2)
                yield reduced
            if instruction.kind is CommandKind.WAIT \
                    and instruction.duration > 1.0:
                reduced = _copy_instructions(instructions)
                reduced[index] = replace(instruction,
                                         duration=instruction.duration / 2)
                yield reduced


def _case_variants(case: FuzzCase) -> Iterator[FuzzCase]:
    """Context reductions first (cheapest to rule out), then program."""
    if case.fault_plan is not None:
        yield replace(case, fault_plan=None)
    if case.trr_enabled:
        yield replace(case, trr_enabled=False)
    for instructions in _variants(case.program.instructions):
        yield case.with_program(
            _with_instructions(case.program, instructions))


def shrink(case: Any, still_fails: Callable[[Any], bool],
           max_steps: int = MAX_STEPS,
           variants: Optional[Callable[[Any], Iterator[Any]]] = None
           ) -> Any:
    """Greedily minimize ``case`` while ``still_fails`` holds.

    ``still_fails(case)`` must be True on entry; the returned case
    still fails and no single further reduction keeps it failing.
    ``variants`` yields the single-step reductions of a case — the
    default covers :class:`~repro.fuzz.generator.FuzzCase` programs;
    :func:`repro.fuzz.search.search_case_variants` plugs in HC_first
    search cases.
    """
    reduce = _case_variants if variants is None else variants
    current = case
    for __ in range(max_steps):
        accepted: Optional[Any] = None
        for candidate in reduce(current):
            if still_fails(candidate):
                accepted = candidate
                break
        if accepted is None:
            return current
        current = accepted
    return current
