"""Regression-corpus persistence for shrunk fuzzer reproducers.

One reproducer is a directory holding two files:

- ``program.sbp`` — the shrunk program as SoftBender assembly
  (:func:`~repro.bender.assembler.disassemble`); human-readable and
  directly replayable,
- ``case.json`` — the execution context (campaign seed/index, TRR
  enable, fault plan) plus the divergence strings that were observed
  when the case was saved.

``tests/fuzz/corpus/`` replays every committed reproducer through the
differential harness on each test run, so a divergence found once by a
nightly campaign stays fixed forever.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

from repro.bender.assembler import assemble, disassemble
from repro.faults.plan import FaultPlan
from repro.fuzz.generator import FuzzCase

PROGRAM_FILE = "program.sbp"
CASE_FILE = "case.json"


def save_case(directory: Path, case: FuzzCase,
              divergences: Sequence[str] = ()) -> Path:
    """Persist one reproducer under ``directory / case.name``."""
    target = Path(directory) / case.name
    target.mkdir(parents=True, exist_ok=True)
    (target / PROGRAM_FILE).write_text(disassemble(case.program),
                                       encoding="utf-8")
    payload = {
        "seed": case.seed,
        "index": case.index,
        "trr_enabled": case.trr_enabled,
        "fault_plan": None if case.fault_plan is None
        else case.fault_plan.to_dict(),
        "divergences": list(divergences),
    }
    (target / CASE_FILE).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return target


def load_case(directory: Path, row_bytes: int = 1024) -> FuzzCase:
    """Load one persisted reproducer."""
    directory = Path(directory)
    payload = json.loads((directory / CASE_FILE).read_text(
        encoding="utf-8"))
    source = (directory / PROGRAM_FILE).read_text(encoding="utf-8")
    program = assemble(source, name=directory.name, row_bytes=row_bytes)
    plan: Optional[FaultPlan] = None
    if payload.get("fault_plan") is not None:
        plan = FaultPlan.from_dict(payload["fault_plan"])
    return FuzzCase(seed=int(payload["seed"]),
                    index=int(payload["index"]),
                    program=program,
                    trr_enabled=bool(payload["trr_enabled"]),
                    fault_plan=plan)


def iter_corpus(root: Path, row_bytes: int = 1024
                ) -> Iterator[FuzzCase]:
    """Yield every reproducer under ``root`` (sorted, deterministic)."""
    root = Path(root)
    if not root.is_dir():
        return
    for entry in sorted(root.iterdir()):
        if (entry / CASE_FILE).is_file():
            yield load_case(entry, row_bytes=row_bytes)


def corpus_names(root: Path) -> List[str]:
    """Names of the persisted reproducers (for reporting)."""
    return [case.name for case in iter_corpus(root)]
