"""Regression-corpus persistence for shrunk fuzzer reproducers.

One reproducer is a directory holding a ``case.json`` with a ``kind``
field selecting the case type:

- ``"program"`` — a differential program case.  ``case.json`` carries
  the execution context (campaign seed/index, TRR enable, fault plan)
  and a sibling ``program.sbp`` holds the shrunk program as SoftBender
  assembly (:func:`~repro.bender.assembler.disassemble`);
  human-readable and directly replayable,
- ``"search"`` — an HC_first differential search case
  (:class:`~repro.fuzz.search.SearchCase`): JSON-only, the victims and
  search parameters fully describe the reproducer.

Either kind also records the divergence strings observed when the case
was saved.  ``tests/fuzz/corpus/`` replays every committed reproducer
through the matching differential harness on each test run, so a
divergence found once by a nightly campaign stays fixed forever.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

from repro.bender.assembler import assemble, disassemble
from repro.dram.geometry import RowAddress
from repro.faults.plan import FaultPlan
from repro.fuzz.generator import FuzzCase
from repro.fuzz.search import SearchCase

PROGRAM_FILE = "program.sbp"
CASE_FILE = "case.json"

AnyCase = Union[FuzzCase, SearchCase]


def _write_json(target: Path, payload: dict) -> None:
    (target / CASE_FILE).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def save_case(directory: Path, case: AnyCase,
              divergences: Sequence[str] = ()) -> Path:
    """Persist one reproducer under ``directory / case.name``."""
    target = Path(directory) / case.name
    target.mkdir(parents=True, exist_ok=True)
    payload = {
        "seed": case.seed,
        "index": case.index,
        "fault_plan": None if case.fault_plan is None
        else case.fault_plan.to_dict(),
        "divergences": list(divergences),
    }
    if isinstance(case, SearchCase):
        payload.update({
            "kind": "search",
            "victims": [[v.channel, v.pseudo_channel, v.bank, v.row]
                        for v in case.victims],
            "pattern": case.pattern,
            "start": case.start,
            "max_hammers": case.max_hammers,
            "tolerance": case.tolerance,
            "trr_enabled": case.trr_enabled,
        })
    else:
        payload.update({
            "kind": "program",
            "trr_enabled": case.trr_enabled,
        })
        (target / PROGRAM_FILE).write_text(disassemble(case.program),
                                           encoding="utf-8")
    _write_json(target, payload)
    return target


def load_case(directory: Path, row_bytes: int = 1024) -> AnyCase:
    """Load one persisted reproducer (dispatching on its ``kind``)."""
    directory = Path(directory)
    payload = json.loads((directory / CASE_FILE).read_text(
        encoding="utf-8"))
    plan: Optional[FaultPlan] = None
    if payload.get("fault_plan") is not None:
        plan = FaultPlan.from_dict(payload["fault_plan"])
    kind = payload.get("kind", "program")
    if kind == "search":
        return SearchCase(
            seed=int(payload["seed"]),
            index=int(payload["index"]),
            victims=tuple(RowAddress(*map(int, entry))
                          for entry in payload["victims"]),
            pattern=str(payload["pattern"]),
            start=int(payload["start"]),
            max_hammers=int(payload["max_hammers"]),
            tolerance=float(payload["tolerance"]),
            trr_enabled=bool(payload["trr_enabled"]),
            fault_plan=plan)
    if kind != "program":
        raise ValueError(
            f"unknown corpus case kind {kind!r} in {directory}")
    source = (directory / PROGRAM_FILE).read_text(encoding="utf-8")
    program = assemble(source, name=directory.name, row_bytes=row_bytes)
    return FuzzCase(seed=int(payload["seed"]),
                    index=int(payload["index"]),
                    program=program,
                    trr_enabled=bool(payload["trr_enabled"]),
                    fault_plan=plan)


def iter_corpus(root: Path, row_bytes: int = 1024
                ) -> Iterator[AnyCase]:
    """Yield every reproducer under ``root`` (sorted, deterministic)."""
    root = Path(root)
    if not root.is_dir():
        return
    for entry in sorted(root.iterdir()):
        if (entry / CASE_FILE).is_file():
            yield load_case(entry, row_bytes=row_bytes)


def corpus_names(root: Path) -> List[str]:
    """Names of the persisted reproducers (for reporting)."""
    return [case.name for case in iter_corpus(root)]
