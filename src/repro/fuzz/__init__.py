"""Differential program fuzzer: ``repro.fuzz``.

The repo executes SoftBender programs through three engines that must
agree flip for flip:

- the scalar :class:`~repro.bender.interpreter.Interpreter` (the
  oracle),
- the compiled :class:`~repro.bender.compile.PlanExecutor` (epoch
  replay),
- the *checked* interpreter (:meth:`~repro.bender.interpreter.
  Interpreter.run_checked`), which streams every executed command
  through the online :class:`~repro.lint.stream.TimingChecker`.

This package generates seeded random programs (loops, REF schedules,
HAMMER patterns, fault plans, TRR on/off), runs each through all three
engines, and cross-checks:

- full device-state snapshots (reads, clock, stats, per-row cell state,
  TRR sampler internals, fault schedule) are identical across engines,
- raised errors match by type and message,
- the streaming checker's error-severity findings predict the device's
  ``TimingError`` exactly — including on fault-plan-mutated streams,
- with no fault plan, the offline batch verifier makes the same
  prediction and its symbolic clock matches the device clock.

Failures are shrunk to minimal reproducers (:mod:`repro.fuzz.shrink`)
and persisted as assembly + JSON (:mod:`repro.fuzz.corpus`) so a found
divergence becomes a regression test.  Entry point::

    python -m repro.fuzz --seed 0 --budget 200

and ``--mutate NAME`` runs the campaign against a deliberately seeded
engine bug (:mod:`repro.fuzz.mutations`) to prove the harness can
actually catch one.

``--search-budget N`` adds HC_first differential search probes
(:mod:`repro.fuzz.search`): each case runs a random victim set through
the scalar per-victim :func:`~repro.bender.routines.hcfirst.
search_hc_first` loop and the speculative-replay
:func:`~repro.bender.routines.hcfirst.search_hc_first_rows` under a
random fault plan, cross-checking results, fault events, command
counter and TRR sampler state.
"""

from repro.fuzz.corpus import iter_corpus, load_case, save_case
from repro.fuzz.generator import FuzzCase, generate_case, generate_program
from repro.fuzz.harness import (CaseResult, EngineOutcome, run_budget,
                                run_case, snapshot_state)
from repro.fuzz.mutations import MUTATIONS, seeded_bug
from repro.fuzz.search import (SearchCase, SearchCaseResult,
                               generate_search_case, run_search_budget,
                               run_search_case, search_case_variants)
from repro.fuzz.shrink import shrink

__all__ = [
    "FuzzCase", "generate_case", "generate_program",
    "CaseResult", "EngineOutcome", "run_budget", "run_case",
    "snapshot_state",
    "SearchCase", "SearchCaseResult", "generate_search_case",
    "run_search_budget", "run_search_case", "search_case_variants",
    "iter_corpus", "load_case", "save_case",
    "MUTATIONS", "seeded_bug",
    "shrink",
]
