"""Seeded random SoftBender program generator.

Every case is a pure function of ``(seed, index)`` — the generator
draws from a ``numpy`` ``Philox``-seeded generator keyed on both, so a
failing case replays from its two integers alone (no corpus file
needed).  Programs stay within the assembly language's expressive range
(WR rows carry a uniform fill byte) so every generated case round-trips
through :func:`~repro.bender.assembler.disassemble` /
:func:`~repro.bender.assembler.assemble` for corpus persistence.

The distribution is tuned to the rules under test: a small row pool per
bank makes row-buffer conflicts (P001/P002 — device ``TimingError``)
common, optional REF schedules switch programs between refresh-managed
and refresh-free regimes (P004–P006), HAMMER counts cross the per-tREFI
activation budget, and nested loops exercise the batch verifier's
steady-state extrapolation and the compiler's epoch fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from repro.bender.program import Instruction, Loop, TestProgram, tagged_read
from repro.dram import commands as cmd
from repro.dram.geometry import RowAddress
from repro.faults.plan import FaultPlan

#: Row pool per bank — small on purpose: collisions make P001/P002 and
#: TRR-relevant aggressor reuse common.
ROWS: List[int] = [100, 101, 102, 200]

#: Banks/channels the generator addresses (all within the default
#: geometry at any scale).
BANKS = 2

#: Upper bound on generated top-level instructions.
MAX_TOP_LEVEL = 12

#: Upper bound on loop iteration counts (crosses both the steady-walk
#: threshold and the compiler's minimum epoch repeat count).
MAX_LOOP_COUNT = 300

#: Upper bound on per-HAMMER activation counts.
MAX_HAMMER = 64


@dataclass(frozen=True)
class FuzzCase:
    """One differential-fuzzing input: program + execution context."""

    seed: int
    index: int
    program: TestProgram
    trr_enabled: bool
    fault_plan: Optional[FaultPlan]

    @property
    def name(self) -> str:
        return self.program.name

    def with_program(self, program: TestProgram) -> "FuzzCase":
        """The same context over a (typically shrunk) program."""
        return replace(self, program=program)


def _rng_for(seed: int, index: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.Philox(key=np.uint64(seed), counter=np.uint64(index)))


def _address(rng: np.random.Generator) -> RowAddress:
    return RowAddress(0, 0, int(rng.integers(0, BANKS)),
                      ROWS[int(rng.integers(0, len(ROWS)))])


def _instruction(rng: np.random.Generator, row_bytes: int,
                 tag_counter: List[int], depth: int) -> Instruction:
    """Draw one instruction; loops nest at most two deep."""
    choice = int(rng.integers(0, 9 if depth < 2 else 8))
    address = _address(rng)
    if choice == 0:
        return cmd.act(address.channel, address.pseudo_channel,
                       address.bank, address.row)
    if choice == 1:
        return cmd.pre(address.channel, address.pseudo_channel,
                       address.bank)
    if choice == 2:
        tag_counter[0] += 1
        return tagged_read(address, f"t{tag_counter[0]}")
    if choice == 3:
        fill = int(rng.integers(0, 256))
        return cmd.wr(address.channel, address.pseudo_channel,
                      address.bank, address.row,
                      np.full(row_bytes, fill, dtype=np.uint8))
    if choice == 4:
        count = int(rng.integers(0, MAX_HAMMER))
        t_on: Optional[float] = None
        if rng.random() < 0.4:
            # Half the declared on-times sit below tRAS (P003).
            t_on = float(rng.integers(10, 80))
        return cmd.hammer(address.channel, address.pseudo_channel,
                          address.bank, address.row, count, t_on)
    if choice == 5:
        return cmd.wait(float(rng.integers(10, 2000)))
    if choice == 6:
        return cmd.ref(0, 0)
    if choice == 7:
        # ACT/PRE pair: the benign shape most real routines use.
        return cmd.act(address.channel, address.pseudo_channel,
                       address.bank, address.row)
    body: List[Instruction] = [
        _instruction(rng, row_bytes, tag_counter, depth + 1)
        for __ in range(int(rng.integers(1, 5)))]
    return Loop(int(rng.integers(1, MAX_LOOP_COUNT)), body)


def generate_program(rng: np.random.Generator, name: str,
                     row_bytes: int) -> TestProgram:
    """One random loop-structured program."""
    program = TestProgram(name)
    tag_counter = [0]
    for __ in range(int(rng.integers(2, MAX_TOP_LEVEL))):
        program.append(_instruction(rng, row_bytes, tag_counter, 0))
    return program


def _fault_plan(rng: np.random.Generator, seed: int,
                index: int) -> Optional[FaultPlan]:
    """A modest, wall-clock-safe fault plan (or none, half the time).

    Stalls and hangs are excluded on purpose: stalls sleep real time
    (a fuzzing campaign must stay fast) and hangs abort mid-program by
    design — neither exercises engine equivalence beyond what drops,
    ghosts, jitter and read-path corruption already do.
    """
    if rng.random() < 0.5:
        return None
    return FaultPlan(
        seed=seed * 1_000_003 + index,
        drop_rate=float(rng.choice([0.0, 0.02, 0.1])),
        ghost_rate=float(rng.choice([0.0, 0.05])),
        act_jitter_rate=float(rng.choice([0.0, 0.2])),
        act_jitter_ns=5.0,
        read_flip_rate=float(rng.choice([0.0, 0.1])),
        stuck_row_rate=float(rng.choice([0.0, 0.05])),
    )


def generate_case(seed: int, index: int,
                  row_bytes: int = 1024) -> FuzzCase:
    """The ``index``-th case of campaign ``seed`` (pure function)."""
    rng = _rng_for(seed, index)
    program = generate_program(rng, f"fuzz-{seed}-{index}", row_bytes)
    trr_enabled = bool(rng.random() < 0.5)
    plan = _fault_plan(rng, seed, index)
    return FuzzCase(seed=seed, index=index, program=program,
                    trr_enabled=trr_enabled, fault_plan=plan)
