"""Command-line entry point: ``python -m repro.fuzz``.

Runs a differential fuzzing campaign (see :mod:`repro.fuzz`) and exits:

- ``0`` — every case agreed across all engines/paths (or, with
  ``--mutate``, the seeded bug was caught and shrunk),
- ``1`` — a divergence was found (or a seeded bug escaped),
- ``2`` — usage error.

Examples::

    python -m repro.fuzz --seed 0 --budget 200
    python -m repro.fuzz --seed 0 --budget 200 --search-budget 20
    python -m repro.fuzz --seed 0 --budget 200 --corpus out/fuzz
    python -m repro.fuzz --replay tests/fuzz/corpus
    python -m repro.fuzz --seed 0 --budget 50 --mutate clock-skew
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.bender.assembler import disassemble
from repro.dram.device import HBM2Stack
from repro.fuzz.corpus import iter_corpus, save_case
from repro.fuzz.generator import FuzzCase
from repro.fuzz.harness import (CaseResult, run_budget, run_case,
                                still_fails)
from repro.fuzz.mutations import MUTATIONS, seeded_bug
from repro.fuzz.search import (SearchCaseResult, run_search_budget,
                               run_search_case, search_case_variants,
                               still_fails_search)
from repro.fuzz.shrink import shrink

AnyResult = Union[CaseResult, SearchCaseResult]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential program fuzzer: run seeded random "
                    "SoftBender programs through the scalar, compiled "
                    "and online-checked engines and cross-check them "
                    "flip for flip.")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default: 0)")
    parser.add_argument("--budget", type=int, default=200,
                        help="number of generated cases (default: 200)")
    parser.add_argument("--search-budget", type=int, default=0,
                        help="number of generated HC_first search cases "
                             "(scalar-per-victim search_hc_first vs the "
                             "speculative search_hc_first_rows; "
                             "default: 0)")
    parser.add_argument("--corpus", type=Path, default=None,
                        help="directory to write shrunk reproducers to")
    parser.add_argument("--replay", type=Path, default=None,
                        help="replay persisted reproducers from this "
                             "directory instead of generating")
    parser.add_argument("--mutate", choices=MUTATIONS, default=None,
                        help="activate a seeded engine bug; the campaign "
                             "then MUST find and shrink a failure")
    parser.add_argument("--keep-going", action="store_true",
                        help="collect every failing case instead of "
                             "stopping at the first")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-failure program dumps")
    return parser


def _report_failure(result: AnyResult, quiet: bool) -> None:
    print(result.describe())
    if quiet:
        return
    case = result.case
    print("  shrunk reproducer:")
    if isinstance(result, SearchCaseResult):
        for victim in case.victims:
            print(f"    victim ch{victim.channel} pc"
                  f"{victim.pseudo_channel} ba{victim.bank} "
                  f"row {victim.row}")
        print(f"    pattern {case.pattern}, start {case.start}, "
              f"max_hammers {case.max_hammers}, "
              f"tolerance {case.tolerance}")
    else:
        for line in disassemble(case.program).splitlines():
            print(f"    {line}")
    if case.fault_plan is not None:
        print(f"  fault plan: {case.fault_plan.to_dict()}")
    print(f"  trr_enabled: {case.trr_enabled}")


def _shrink_failures(failures: Sequence[AnyResult],
                     corpus: Optional[Path],
                     quiet: bool) -> None:
    for failure in failures:
        if isinstance(failure, SearchCaseResult):
            shrunk = shrink(failure.case, still_fails_search,
                            variants=search_case_variants)
            result: AnyResult = run_search_case(shrunk)
        else:
            shrunk = shrink(failure.case, still_fails)
            result = run_case(shrunk)
        if result.ok:  # shrinking raced a flaky predicate; keep original
            result = failure
        _report_failure(result, quiet)
        if corpus is not None:
            target = save_case(corpus, result.case, result.divergences)
            print(f"  saved reproducer to {target}")


def _replay(root: Path, keep_going: bool) -> List[AnyResult]:
    row_bytes = HBM2Stack().geometry.row_bytes
    failures: List[AnyResult] = []
    replayed = 0
    for case in iter_corpus(root, row_bytes=row_bytes):
        replayed += 1
        result: AnyResult = run_case(case) if isinstance(case, FuzzCase) \
            else run_search_case(case)
        if not result.ok:
            failures.append(result)
            if not keep_going:
                break
    print(f"replayed {replayed} corpus case(s), "
          f"{len(failures)} failing")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.budget < 0:
        parser.error("--budget must be non-negative")
    if args.search_budget < 0:
        parser.error("--search-budget must be non-negative")

    context = seeded_bug(args.mutate) if args.mutate \
        else contextlib.nullcontext()
    with context:
        failures: List[AnyResult]
        if args.replay is not None:
            failures = _replay(args.replay, args.keep_going)
        else:
            failures = list(run_budget(args.seed, args.budget,
                                       keep_going=args.keep_going))
            print(f"ran {args.budget} generated case(s) "
                  f"(seed {args.seed}), {len(failures)} failing")
            if args.search_budget and (args.keep_going or not failures):
                search_failures = run_search_budget(
                    args.seed, args.search_budget,
                    keep_going=args.keep_going)
                print(f"ran {args.search_budget} generated search "
                      f"case(s) (seed {args.seed}), "
                      f"{len(search_failures)} failing")
                failures.extend(search_failures)
        if failures:
            _shrink_failures(failures, args.corpus, args.quiet)

    if args.mutate:
        if failures:
            print(f"mutation {args.mutate!r}: caught and shrunk "
                  f"({len(failures)} failure(s))")
            return 0
        print(f"mutation {args.mutate!r}: ESCAPED the campaign "
              f"(no divergence found)", file=sys.stderr)
        return 1
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover — exercised via CLI tests
    sys.exit(main())
