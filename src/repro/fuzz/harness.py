"""Differential execution harness: three engines, one verdict.

Runs one :class:`~repro.fuzz.generator.FuzzCase` through the scalar
interpreter, the compiled :class:`~repro.bender.compile.PlanExecutor`
and the checked interpreter (:meth:`~repro.bender.interpreter.
Interpreter.run_checked`), each on a fresh identically-configured
device, and cross-checks everything the engines must agree on:

- the full device-state snapshot (tagged reads byte for byte, clock,
  command statistics, rolling-refresh state, per-row cell state, TRR
  sampler internals, fault event schedule + command counter),
- raised errors, by type and message,
- lint agreement: the online checker's error-severity findings must
  predict the device's ``TimingError`` exactly — on the *mutated*
  stream when a fault plan is active — and, fault-free, the offline
  batch verifier must make the same prediction with a matching
  symbolic clock.

Any disagreement is a :class:`CaseResult` with human-readable
divergence strings; the caller (CLI) shrinks and persists it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bender.compile import PlanExecutor
from repro.bender.interpreter import ExecutionResult, Interpreter
from repro.dram.device import HBM2Stack
from repro.dram.trr import TrrConfig
from repro.faults.injector import FaultyStack
from repro.fuzz.generator import FuzzCase, generate_case
from repro.lint.findings import Finding
from repro.lint.protocol import verify_program

ENGINES = ("scalar", "compiled", "checked")

Snapshot = Dict[str, Any]


def snapshot_state(device: HBM2Stack, result: ExecutionResult,
                   stack: Optional[FaultyStack] = None) -> Snapshot:
    """Everything the engines must agree on, equality-comparable."""
    snap: Snapshot = {
        "elapsed": result.elapsed_ns,
        "executed": result.commands_executed,
        "reads": {tag: [image.tobytes() for image in images]
                  for tag, images in result.reads.items()},
        "now": device.now_ns,
        "stats": vars(device.stats).copy(),
        "pointer": dict(device._ref_pointer),
        "ref_times": {key: dict(times)
                      for key, times in device._pc_ref_time.items()},
        "rows": {},
        "trr": [],
    }
    for bank_key, rows in device._rows.items():
        for row, state in rows.items():
            snap["rows"][(bank_key, row)] = (
                state.data.tobytes(), state.acc_units, state.restored_at,
                None if state.already_flipped is None
                else state.already_flipped.tobytes())
    for pc_key, engine in device._trr.items():
        for tracker in engine._trackers:
            snap["trr"].append((pc_key, tuple(tracker.cam),
                                dict(tracker.window_counts),
                                tracker.window_total))
    if stack is not None:
        snap["events"] = [(e.index, e.fault, e.command, e.detail)
                          for e in stack.events]
        snap["digest"] = stack.schedule_digest()
        snap["counter"] = stack._counter
    return snap


@dataclass
class EngineOutcome:
    """What one engine produced for one case."""

    engine: str
    snapshot: Optional[Snapshot] = None
    #: ``(type name, message)`` when the engine raised.
    error: Optional[Tuple[str, str]] = None
    #: Online checker findings (checked engine only).
    findings: List[Finding] = field(default_factory=list)


@dataclass
class CaseResult:
    """Differential verdict for one case."""

    case: FuzzCase
    outcomes: Dict[str, EngineOutcome] = field(default_factory=dict)
    divergences: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def describe(self) -> str:
        lines = [f"{self.case.name}: {len(self.divergences)} divergence(s)"]
        lines.extend(f"  - {text}" for text in self.divergences)
        return "\n".join(lines)


def _fresh_device(case: FuzzCase) -> HBM2Stack:
    return HBM2Stack(trr_config=TrrConfig(enabled=case.trr_enabled))


def _run_engine(case: FuzzCase, engine: str) -> EngineOutcome:
    """Execute the case on a fresh device through one engine."""
    device = _fresh_device(case)
    outcome = EngineOutcome(engine=engine)
    runner: Any
    if engine == "compiled":
        runner = PlanExecutor(device, fault_plan=case.fault_plan)
    else:
        runner = Interpreter(device, fault_plan=case.fault_plan)
    try:
        if engine == "checked":
            result, findings = runner.run_checked(
                case.program, on_finding=outcome.findings.append)
        else:
            result = runner.run(case.program)
            findings = None
    except Exception as exc:  # noqa: BLE001 — error parity is the check
        outcome.error = (type(exc).__name__, str(exc))
        return outcome
    if findings is not None:
        outcome.findings = findings
    stack = runner.device if isinstance(runner.device, FaultyStack) \
        else None
    outcome.snapshot = snapshot_state(device, result, stack)
    return outcome


def _compare_snapshots(result: CaseResult) -> None:
    reference = result.outcomes["scalar"]
    for engine in ENGINES[1:]:
        other = result.outcomes[engine]
        if other.error != reference.error:
            result.divergences.append(
                f"error parity: scalar={reference.error} "
                f"{engine}={other.error}")
            continue
        if reference.snapshot is None or other.snapshot is None:
            continue
        for key in reference.snapshot:
            if reference.snapshot[key] != other.snapshot[key]:
                result.divergences.append(
                    f"state divergence on {key!r}: scalar vs {engine}")


def _check_lint_agreement(result: CaseResult) -> None:
    """Error-severity findings must predict TimingError exactly."""
    checked = result.outcomes["checked"]
    if checked.error is not None and checked.error[0] != "TimingError":
        # The program died for non-protocol reasons (e.g. a malformed
        # WR payload): the lint layer makes no prediction about those,
        # and error parity across engines was already checked.
        return
    raised_timing = checked.error is not None \
        and checked.error[0] == "TimingError"
    online_errors = [finding for finding in checked.findings
                     if finding.severity == "error"]
    if raised_timing and not online_errors:
        result.divergences.append(
            "online checker missed the TimingError the device raised: "
            f"{checked.error}")
    if online_errors and not raised_timing:
        rules = sorted({finding.rule for finding in online_errors})
        result.divergences.append(
            "online checker predicted a TimingError the device never "
            f"raised ({', '.join(rules)})")
    if result.case.fault_plan is not None:
        return
    # Fault-free: the offline batch verifier judges the same stream
    # the device saw, so its prediction must match too.
    report = verify_program(result.case.program)
    predicted = bool(report.errors)
    if predicted != raised_timing:
        result.divergences.append(
            f"batch verifier predicted error={predicted} but device "
            f"raised={raised_timing}")
    scalar = result.outcomes["scalar"]
    if not raised_timing and not predicted and scalar.snapshot is not None:
        elapsed = scalar.snapshot["elapsed"]
        if not math.isclose(elapsed, report.elapsed_ns,
                            rel_tol=1.0e-9, abs_tol=1.0e-6):
            result.divergences.append(
                f"symbolic clock {report.elapsed_ns!r} != device clock "
                f"{elapsed!r}")


def run_case(case: FuzzCase) -> CaseResult:
    """Run one case through all three engines and cross-check."""
    result = CaseResult(case=case)
    for engine in ENGINES:
        result.outcomes[engine] = _run_engine(case, engine)
    _compare_snapshots(result)
    _check_lint_agreement(result)
    return result


def still_fails(case: FuzzCase) -> bool:
    """Whether a (shrunk) case still diverges — the shrink predicate."""
    return not run_case(case).ok


def run_budget(seed: int, budget: int,
               row_bytes: Optional[int] = None,
               keep_going: bool = False,
               on_progress: Optional[Callable[[int, CaseResult], None]]
               = None) -> List[CaseResult]:
    """Run ``budget`` generated cases; return the failing results.

    Stops at the first failure unless ``keep_going`` — a campaign
    usually wants one shrunk reproducer, not two hundred variants of
    the same bug.
    """
    if row_bytes is None:
        row_bytes = HBM2Stack().geometry.row_bytes
    failures: List[CaseResult] = []
    for index in range(budget):
        case = generate_case(seed, index, row_bytes=row_bytes)
        result = run_case(case)
        if on_progress is not None:
            on_progress(index, result)
        if not result.ok:
            failures.append(result)
            if not keep_going:
                break
    return failures
