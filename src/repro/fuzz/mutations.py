"""Deliberately seeded engine bugs (mutation testing for the fuzzer).

A differential fuzzer that has never caught a bug is unfalsifiable.
Each mutation here monkeypatches one engine with a realistic defect;
``python -m repro.fuzz --mutate NAME`` runs the campaign with the
defect active and succeeds only if the harness catches it and shrinks
it to a minimal reproducer.  CI runs one mutation per smoke job, so
"the fuzzer can actually detect an engine divergence" is itself a
tested property.

Mutations:

- ``clock-skew`` — the compiled executor leaks 1 ns of extra device
  time per program (the classic epoch-replay accounting bug),
- ``lint-blind`` — the streaming checker stops reporting P001, so the
  online findings no longer predict the device's ``TimingError``,
- ``lost-faults`` — the compiled executor classifies every epoch
  window as clean, silently skipping injected read-path faults.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Dict, Iterator

import numpy as np

MUTATIONS = ("clock-skew", "lint-blind", "lost-faults")


@contextlib.contextmanager
def _patched(owner: Any, name: str, value: Any) -> Iterator[None]:
    original = getattr(owner, name)
    setattr(owner, name, value)
    try:
        yield
    finally:
        setattr(owner, name, original)


def _clock_skew() -> "contextlib.AbstractContextManager[None]":
    from repro.bender.compile import PlanExecutor

    original = PlanExecutor.run

    def buggy_run(self: Any, program: Any) -> Any:
        result = original(self, program)
        # Leak time on the bare device (below the fault layer, so the
        # injected bug does not perturb the fault schedule itself).
        inner = getattr(self.device, "wrapped", self.device)
        inner.wait(1.0)
        return result

    return _patched(PlanExecutor, "run", buggy_run)


def _lint_blind() -> "contextlib.AbstractContextManager[None]":
    from repro.lint.stream import TimingChecker

    original = TimingChecker.report

    def blind_report(self: Any, rule_id: str, message: str,
                     path: str) -> None:
        if rule_id == "P001":
            return
        original(self, rule_id, message, path)

    return _patched(TimingChecker, "report", blind_report)


def _lost_faults() -> "contextlib.AbstractContextManager[None]":
    import repro.bender.compile as compile_module

    def clean_mask(plan: Any, base_counter: int, body: Any,
                   repeats: int) -> np.ndarray:
        return np.zeros(repeats, dtype=bool)

    return _patched(compile_module, "dirty_window_mask", clean_mask)


_FACTORIES: Dict[str, Callable[
    [], "contextlib.AbstractContextManager[None]"]] = {
    "clock-skew": _clock_skew,
    "lint-blind": _lint_blind,
    "lost-faults": _lost_faults,
}


def seeded_bug(name: str) -> "contextlib.AbstractContextManager[None]":
    """Context manager activating one named engine defect."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r}; known: {', '.join(MUTATIONS)}"
        ) from None
    return factory()
