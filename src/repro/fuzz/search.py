"""HC_first differential search probes: scalar oracle vs speculation.

The program fuzzer (:mod:`repro.fuzz.harness`) cross-checks the three
program engines; this module fuzzes the other differential contract the
repo ships — :func:`~repro.bender.routines.hcfirst.search_hc_first_rows`
must be bit-identical to the scalar per-victim
:func:`~repro.bender.routines.hcfirst.search_hc_first` loop under any
fault plan (speculative counter replay, PR 10).  Each case draws a
victim set, search parameters, a TRR enable and an optional fault plan,
runs both paths on fresh identically-configured devices and
cross-checks:

- per-victim results (``hc_first``, ``probes``, ``found``), in order,
- raised errors, by type and message,
- the injected fault-event log, event for event, and its digest,
- the final command counter (the speculative path must consume exactly
  the counters a scalar replay would),
- TRR sampler internals (accepted speculations mirror their activation
  windows; the sampler must land in the scalar end state).

Victim pools are tuned to the speculative path's hard cases: rows within
``2 * radius`` of each other exercise the drop-overlap demotion, edge
rows exercise the single-aggressor window shape, and tight
``max_hammers`` budgets exercise budget-exhaustion parity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.bender.host import BenderSession
from repro.bender.routines.hcfirst import (HcFirstResult, search_hc_first,
                                           search_hc_first_rows)
from repro.chips.profiles import make_chip
from repro.core.patterns import pattern_by_name
from repro.dram.geometry import RowAddress
from repro.dram.trr import TrrConfig
from repro.faults.injector import FaultyStack
from repro.faults.plan import FaultPlan
from repro.fuzz.generator import _rng_for

#: The chip every search case runs on (calibration is cached, so fresh
#: devices are cheap and identical).
CHIP_INDEX = 1

#: Patterns the generator draws from.
PATTERN_NAMES = ("Checkered0", "Rowstripe1")

#: Row pool: a tight cluster (overlapping windows at radius 8 — the
#: drop-demotion path), a loner, and both bank edges.
ROW_POOL = (0, 8, 100, 104, 110, 116, 5000, 16383)

#: Search-budget pool: small budgets end searches "not found" (budget
#: exhaustion parity), large ones always bisect to a flip.
MAX_HAMMER_POOL = (30_000, 120_000, 600_000)


@dataclass(frozen=True)
class SearchCase:
    """One differential HC_first-search input."""

    seed: int
    index: int
    victims: Tuple[RowAddress, ...]
    pattern: str
    start: int
    max_hammers: int
    tolerance: float
    trr_enabled: bool
    fault_plan: Optional[FaultPlan]

    @property
    def name(self) -> str:
        return f"search-{self.seed}-{self.index}"


def _search_fault_plan(rng: np.random.Generator, seed: int,
                       index: int) -> Optional[FaultPlan]:
    """A device-fault plan biased toward the speculative hard cases.

    Stalls and hangs are excluded for the same reasons as the program
    fuzzer's plans; rates run hotter than the chaos-gate plan so dirty
    windows, overlap demotions and mispredicted bases are common rather
    than rare.
    """
    if rng.random() < 0.25:
        return None
    return FaultPlan(
        seed=seed * 2_000_003 + index,
        drop_rate=float(rng.choice([0.0, 0.001, 0.01])),
        act_jitter_rate=float(rng.choice([0.0, 0.01])),
        act_jitter_ns=5.0,
        read_flip_rate=float(rng.choice([0.0, 0.005, 0.05])),
        stuck_row_rate=float(rng.choice([0.0, 0.05])),
    )


def generate_search_case(seed: int, index: int) -> SearchCase:
    """The ``index``-th search case of campaign ``seed`` (pure)."""
    # Offset the Philox counter space so search cases never reuse a
    # program case's draw stream at equal (seed, index).
    rng = _rng_for(seed, (1 << 32) + index)
    geometry = make_chip(CHIP_INDEX).geometry
    count = int(rng.integers(1, 5))
    victims: List[RowAddress] = []
    seen = set()
    for __ in range(count):
        address = RowAddress(
            int(rng.integers(0, 2)), int(rng.integers(0, 2)),
            int(rng.integers(0, 2)),
            min(ROW_POOL[int(rng.integers(0, len(ROW_POOL)))],
                geometry.rows - 1))
        key = (address.channel, address.pseudo_channel, address.bank,
               address.row)
        if key not in seen:
            seen.add(key)
            victims.append(address)
    return SearchCase(
        seed=seed, index=index, victims=tuple(victims),
        pattern=PATTERN_NAMES[int(rng.integers(0, len(PATTERN_NAMES)))],
        start=int(2 ** rng.integers(10, 13)),
        max_hammers=int(rng.choice(MAX_HAMMER_POOL)),
        tolerance=float(rng.choice([0.01, 0.03, 0.1])),
        trr_enabled=bool(rng.random() < 0.5),
        fault_plan=_search_fault_plan(rng, seed, index))


# -- execution -------------------------------------------------------------


def _fresh_session(case: SearchCase) -> BenderSession:
    chip = make_chip(CHIP_INDEX)
    device = chip.make_device(
        trr_config=TrrConfig(enabled=case.trr_enabled))
    if case.fault_plan is not None \
            and case.fault_plan.device_faults_enabled():
        device = FaultyStack(device, case.fault_plan)
    return BenderSession(device, mapping=chip.row_mapping())


def _trr_snapshot(session: BenderSession) -> List[Tuple]:
    device = session.device
    if isinstance(device, FaultyStack):
        device = device.wrapped
    snapshot = []
    for pc_key, engine in device._trr.items():
        for tracker in engine._trackers:
            snapshot.append((pc_key, tuple(tracker.cam),
                             dict(tracker.window_counts),
                             tracker.window_total))
    return snapshot


@dataclass
class SearchOutcome:
    """What one path (scalar oracle or batched) produced."""

    path: str
    results: List[HcFirstResult] = field(default_factory=list)
    error: Optional[Tuple[str, str]] = None
    events: List[Tuple] = field(default_factory=list)
    counter: Optional[int] = None
    trr: List[Tuple] = field(default_factory=list)


def _run_path(case: SearchCase, path: str) -> SearchOutcome:
    session = _fresh_session(case)
    pattern = pattern_by_name(case.pattern)
    outcome = SearchOutcome(path=path)
    try:
        if path == "scalar":
            outcome.results = [
                search_hc_first(session, victim, pattern,
                                start=case.start,
                                max_hammers=case.max_hammers,
                                tolerance=case.tolerance)
                for victim in case.victims]
        else:
            outcome.results = search_hc_first_rows(
                session, list(case.victims), pattern, start=case.start,
                max_hammers=case.max_hammers, tolerance=case.tolerance)
    except Exception as exc:  # noqa: BLE001 — error parity is the check
        outcome.error = (type(exc).__name__, str(exc))
    if isinstance(session.device, FaultyStack):
        outcome.events = [(e.index, e.fault, e.command, e.detail)
                          for e in session.device.events]
        outcome.counter = session.device._counter
    outcome.trr = _trr_snapshot(session)
    return outcome


@dataclass
class SearchCaseResult:
    """Differential verdict for one search case."""

    case: SearchCase
    scalar: Optional[SearchOutcome] = None
    batched: Optional[SearchOutcome] = None
    divergences: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def describe(self) -> str:
        lines = [f"{self.case.name}: {len(self.divergences)} "
                 "divergence(s)"]
        lines.extend(f"  - {text}" for text in self.divergences)
        return "\n".join(lines)


def run_search_case(case: SearchCase) -> SearchCaseResult:
    """Run both paths on fresh devices and cross-check everything."""
    result = SearchCaseResult(case=case)
    scalar = _run_path(case, "scalar")
    batched = _run_path(case, "batched")
    result.scalar, result.batched = scalar, batched
    if scalar.error != batched.error:
        result.divergences.append(
            f"error parity: scalar={scalar.error} "
            f"batched={batched.error}")
        return result
    for index, (mine, theirs) in enumerate(zip(scalar.results,
                                               batched.results)):
        for attribute in ("hc_first", "probes", "found"):
            if getattr(mine, attribute) != getattr(theirs, attribute):
                result.divergences.append(
                    f"victim[{index}] {attribute}: "
                    f"scalar={getattr(mine, attribute)} "
                    f"batched={getattr(theirs, attribute)}")
    if len(scalar.results) != len(batched.results):
        result.divergences.append(
            f"result count: scalar={len(scalar.results)} "
            f"batched={len(batched.results)}")
    if scalar.events != batched.events:
        result.divergences.append(
            f"fault events: scalar logged {len(scalar.events)}, "
            f"batched logged {len(batched.events)} (or order/payload "
            "differs)")
    if scalar.counter != batched.counter:
        result.divergences.append(
            f"command counter: scalar={scalar.counter} "
            f"batched={batched.counter}")
    if scalar.trr != batched.trr:
        result.divergences.append("TRR sampler state diverged")
    return result


def still_fails_search(case: SearchCase) -> bool:
    """Whether a (shrunk) search case still diverges."""
    return not run_search_case(case).ok


def run_search_budget(seed: int, budget: int,
                      keep_going: bool = False,
                      on_progress: Optional[
                          Callable[[int, SearchCaseResult], None]] = None
                      ) -> List[SearchCaseResult]:
    """Run ``budget`` generated search cases; return failing results."""
    failures: List[SearchCaseResult] = []
    for index in range(budget):
        case = generate_search_case(seed, index)
        result = run_search_case(case)
        if on_progress is not None:
            on_progress(index, result)
        if not result.ok:
            failures.append(result)
            if not keep_going:
                break
    return failures


# -- shrinking -------------------------------------------------------------


def search_case_variants(case: SearchCase) -> Iterator[SearchCase]:
    """All single-step reductions of a search case.

    Context first (cheapest to rule out), then victims, then budget —
    feed to :func:`repro.fuzz.shrink.shrink` as its ``variants``.
    """
    if case.fault_plan is not None:
        yield replace(case, fault_plan=None)
    if case.trr_enabled:
        yield replace(case, trr_enabled=False)
    if len(case.victims) > 1:
        for index in range(len(case.victims)):
            yield replace(case, victims=case.victims[:index]
                          + case.victims[index + 1:])
    if case.max_hammers > case.start:
        yield replace(case, max_hammers=max(case.start,
                                            case.max_hammers // 2))
    if case.tolerance < 0.1:
        yield replace(case, tolerance=min(0.1, case.tolerance * 2))
