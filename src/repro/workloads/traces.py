"""Synthetic DRAM activation traces.

Defense mechanisms are judged on two axes: whether they stop attacks and
what they cost *benign* workloads.  The trace generator produces a
row-activation stream with Zipf-distributed row popularity — the shape
cache-filtered DRAM traffic exhibits — batched into per-row activation
counts per scheduling epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.dram.geometry import RowAddress


@dataclass
class AccessTrace:
    """A batched activation trace against one bank."""

    channel: int
    pseudo_channel: int
    bank: int
    #: One epoch = list of (row, activation count), issued in order.
    epochs: List[List[Tuple[int, int]]] = field(default_factory=list)

    @property
    def total_activations(self) -> int:
        return sum(count for epoch in self.epochs
                   for __, count in epoch)

    @property
    def distinct_rows(self) -> int:
        rows = {row for epoch in self.epochs for row, __ in epoch}
        return len(rows)

    def hottest_row_share(self) -> float:
        """Fraction of activations landing on the most popular row."""
        totals: Dict[int, int] = {}
        for epoch in self.epochs:
            for row, count in epoch:
                totals[row] = totals.get(row, 0) + count
        if not totals:
            return 0.0
        return max(totals.values()) / self.total_activations

    def addresses(self) -> Iterator[Tuple[RowAddress, int]]:
        """Iterate (address, count) in trace order."""
        for epoch in self.epochs:
            for row, count in epoch:
                yield (RowAddress(self.channel, self.pseudo_channel,
                                  self.bank, row), count)


def benign_trace(total_activations: int = 100_000,
                 rows: int = 16384,
                 zipf_exponent: float = 0.7,
                 epoch_activations: int = 2_000,
                 channel: int = 0, pseudo_channel: int = 0, bank: int = 0,
                 seed: int = 0xBE19,
                 rng: Optional[np.random.Generator] = None) -> AccessTrace:
    """Generate a Zipf-popularity activation trace.

    ``zipf_exponent`` around 0.7 keeps the hottest row at a few percent
    of the stream — busy but benign (well under any RowHammer-relevant
    rate); larger exponents approach pathological hot-row workloads.
    """
    if total_activations < 1:
        raise ValueError("total_activations must be positive")
    if not 0.0 <= zipf_exponent < 3.0:
        raise ValueError("zipf_exponent must be in [0, 3)")
    if rng is None:
        rng = np.random.default_rng(seed)
    ranks = np.arange(1, rows + 1, dtype=float)
    weights = ranks ** -zipf_exponent
    weights /= weights.sum()
    # Popularity rank -> physical row: shuffled so hot rows spread out.
    placement = rng.permutation(rows)
    trace = AccessTrace(channel, pseudo_channel, bank)
    remaining = total_activations
    while remaining > 0:
        budget = min(epoch_activations, remaining)
        drawn = rng.choice(rows, size=budget, p=weights)
        unique, counts = np.unique(drawn, return_counts=True)
        order = rng.permutation(unique.size)
        epoch = [(int(placement[unique[i]]), int(counts[i]))
                 for i in order]
        trace.epochs.append(epoch)
        remaining -= budget
    return trace
