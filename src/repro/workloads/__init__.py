"""Synthetic memory workloads for defense-overhead evaluation."""

from repro.workloads.traces import AccessTrace, benign_trace
from repro.workloads.overhead import (BenignOverheadReport,
                                      measure_benign_overhead)

__all__ = [
    "AccessTrace",
    "benign_trace",
    "BenignOverheadReport",
    "measure_benign_overhead",
]
