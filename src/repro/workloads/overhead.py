"""Benign-workload overhead measurement for mitigation controllers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.chips.profiles import ChipProfile
from repro.defenses.base import DefendedDevice, MitigationController
from repro.dram.batch import batch_enabled
from repro.dram.trr import TrrConfig
from repro.workloads.traces import AccessTrace, benign_trace


@dataclass(frozen=True)
class BenignOverheadReport:
    """What a defense costs a benign workload."""

    defense: str
    total_activations: int
    preventive_refreshes: int
    throttle_delay_ns: float
    corrupted_rows: int
    elapsed_ns: float

    @property
    def refreshes_per_kilo_act(self) -> float:
        return 1000.0 * self.preventive_refreshes \
            / max(1, self.total_activations)

    @property
    def slowdown_fraction(self) -> float:
        """Throttle delay relative to total execution time."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.throttle_delay_ns / self.elapsed_ns


def measure_benign_overhead(
        chip: ChipProfile,
        controller_factory: Callable[[], Optional[MitigationController]],
        defense_name: str,
        trace: Optional[AccessTrace] = None) -> BenignOverheadReport:
    """Replay a benign trace through a defended device.

    Periodic REFs are issued at the tREFI cadence (real controllers
    always do), and row integrity is spot-checked: a correct defense
    must never corrupt benign data.
    """
    if trace is None:
        trace = benign_trace()
    controller = controller_factory()
    device = chip.make_device(trr_config=TrrConfig(enabled=False))
    target = DefendedDevice(device, controller) \
        if controller is not None else device
    start_ns = device.now_ns
    next_ref_ns = start_ns + device.timings.t_refi
    t_refi = device.timings.t_refi
    t_rfc = device.timings.t_rfc
    use_burst = batch_enabled()
    for address, count in trace.addresses():
        target.hammer(address, count)
        if device.now_ns < next_ref_ns:
            continue
        if use_burst:
            # Pre-simulate the catch-up (each REF advances exactly
            # tRFC) and issue one burst — bit-identical to the loop.
            refs = 0
            now_sim = device.now_ns
            while now_sim >= next_ref_ns:
                refs += 1
                now_sim += t_rfc
                next_ref_ns += t_refi
            target.refresh_burst(trace.channel, trace.pseudo_channel,
                                 refs)
        else:
            while device.now_ns >= next_ref_ns:
                target.refresh(trace.channel, trace.pseudo_channel)
                next_ref_ns += t_refi
    # Integrity spot check: benign rows must read back what was written.
    import numpy as np

    corrupted = 0
    probe_rows = sorted({row for epoch in trace.epochs[:3]
                         for row, __ in epoch})[:16]
    image = np.full(chip.geometry.row_bytes, 0x3C, dtype=np.uint8)
    for row in probe_rows:
        address = trace.addresses().__next__()[0].with_row(row)
        target.write_row(address, image)
        if not np.array_equal(target.read_row(address), image):
            corrupted += 1
    stats = controller.stats if controller is not None else None
    return BenignOverheadReport(
        defense=defense_name,
        total_activations=trace.total_activations,
        preventive_refreshes=(stats.preventive_refreshes if stats
                              else 0),
        throttle_delay_ns=(stats.throttle_delay_ns if stats else 0.0),
        corrupted_rows=corrupted,
        elapsed_ns=device.now_ns - start_ns,
    )
