"""Defense evaluation harness: every attack vs every controller.

Metrics per (attack, defense) cell:

- **bitflips** in the victim after the attack (0 = protected),
- **refresh overhead**: preventive refreshes per observed activation,
- **throttle overhead**: attacker-visible delay imposed (BlockHammer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.bender.host import BenderSession
from repro.bender.routines.rowinit import initialize_window
from repro.chips.profiles import ChipProfile
from repro.core import metrics
from repro.core.patterns import CHECKERED0, DataPattern
from repro.defenses.base import DefendedDevice, MitigationController
from repro.dram.batch import batch_enabled
from repro.dram.geometry import RowAddress


@dataclass(frozen=True)
class DefenseReport:
    """Outcome of one attack against one defense."""

    attack: str
    defense: str
    bitflips: int
    observed_activations: int
    preventive_refreshes: int
    throttle_delay_ns: float

    @property
    def protected(self) -> bool:
        return self.bitflips == 0

    @property
    def refresh_overhead(self) -> float:
        if self.observed_activations == 0:
            return 0.0
        return self.preventive_refreshes / self.observed_activations

    @property
    def throttle_delay_ms(self) -> float:
        return self.throttle_delay_ns / 1.0e6


def defended_session(chip: ChipProfile,
                     controller: Optional[MitigationController],
                     with_trr: bool = False) -> BenderSession:
    """A session on a (possibly) defended device.

    The in-DRAM TRR is disabled by default so the memory-controller
    defense is evaluated on its own merits.
    """
    from repro.dram.trr import TrrConfig

    device = chip.make_device(trr_config=TrrConfig(enabled=with_trr))
    if controller is not None:
        device = DefendedDevice(device, controller)
    return BenderSession(device, mapping=chip.row_mapping())


# ----------------------------------------------------------------------
# Attack scenarios (each returns victim bitflips)
# ----------------------------------------------------------------------

class _RefPacer:
    """Issues the periodic REFs a real memory controller cannot skip.

    Attacks on live systems race the refresh schedule; modelling it is
    what lets throttling defenses (BlockHammer) win — pacing an attack
    across windows is pointless when every window also restores the
    victim's charge.
    """

    def __init__(self, session: BenderSession, victim: RowAddress) -> None:
        self.session = session
        self.victim = victim
        self.t_refi = session.device.timings.t_refi
        self.next_ref_ns = session.device.now_ns + self.t_refi

    def tick(self) -> None:
        device = self.session.device
        if device.now_ns < self.next_ref_ns:
            return
        from repro.faults.injector import FaultyStack

        if batch_enabled() and not isinstance(device, FaultyStack):
            # Pre-simulate the catch-up loop arithmetically (each REF
            # advances the clock by exactly tRFC), then issue the whole
            # burst at once.  refresh_burst — both the stack's and the
            # DefendedDevice wrapper's — is bit-identical to the
            # sequential REFs, so the report hash cannot move.  A
            # FaultyStack takes the sequential loop: refresh_burst
            # would delegate through ``__getattr__`` past the fault
            # draws, while per-REF calls tick the injector's counter
            # exactly like the scalar engine.
            count = 0
            now_sim = device.now_ns
            next_sim = self.next_ref_ns
            t_rfc = device.timings.t_rfc
            while now_sim >= next_sim:
                count += 1
                now_sim += t_rfc
                next_sim += self.t_refi
            device.refresh_burst(self.victim.channel,
                                 self.victim.pseudo_channel, count)
            self.next_ref_ns = next_sim
            return
        while device.now_ns >= self.next_ref_ns:
            device.refresh(self.victim.channel,
                           self.victim.pseudo_channel)
            self.next_ref_ns += self.t_refi


def burst_double_sided(session: BenderSession, victim: RowAddress,
                       hammer_count: int = 450_000,
                       pattern: DataPattern = CHECKERED0,
                       chunk: int = 64) -> int:
    """Maximum-rate double-sided hammering under live refresh."""
    initialize_window(session, victim, pattern)
    pacer = _RefPacer(session, victim)
    aggressors = session.aggressors_of(victim)
    remaining = hammer_count
    while remaining > 0:
        step = min(chunk, remaining)
        for aggressor in aggressors:
            session.device.hammer(aggressor, step)
        remaining -= step
        pacer.tick()
    observed = session.read_physical_row(victim)
    return metrics.count_bitflips(pattern.victim_row(), observed)


def rowpress_burst(session: BenderSession, victim: RowAddress,
                   hammer_count: int = 4096, t_on: float = 35.1e3,
                   pattern: DataPattern = CHECKERED0,
                   chunk: int = 8) -> int:
    """RowPress attack: few activations, long on-time (Takeaway 7)."""
    initialize_window(session, victim, pattern)
    pacer = _RefPacer(session, victim)
    aggressors = session.aggressors_of(victim)
    remaining = hammer_count
    while remaining > 0:
        step = min(chunk, remaining)
        for aggressor in aggressors:
            session.device.hammer(aggressor, step, t_on)
        remaining -= step
        pacer.tick()
    observed = session.read_physical_row(victim)
    return metrics.count_bitflips(pattern.victim_row(), observed)


def pick_vulnerable_victim(chip: ChipProfile, channel: int = 0,
                           bank: int = 0, pseudo_channel: int = 0,
                           max_hc_first: float = 60_000.0,
                           search_rows: int = 2048) -> RowAddress:
    """The victim an attacker would pick: small HC_first.

    Under live refresh an aggressor accumulates at most one refresh
    window of disturbance (~355K baseline units, or ~455 activations at
    t_AggON = 35.1 us), so only sufficiently weak rows are attackable at
    all — exactly why the paper's templating step matters.
    """
    from repro.core import analytic

    rows = analytic.stratified_rows(chip.geometry.rows, search_rows)
    hc = analytic.wcdp_hc_first(chip, channel, pseudo_channel, bank,
                                rows)["Checkered0"]
    candidates = rows[hc <= max_hc_first]
    if candidates.size == 0:
        best = int(rows[int(hc.argmin())])
        return RowAddress(channel, pseudo_channel, bank, best)
    # Avoid bank edges so double-sided aggressors exist.
    inner = candidates[(candidates > 2) & (candidates
                                           < chip.geometry.rows - 2)]
    chosen = int(inner[0]) if inner.size else int(candidates[0])
    return RowAddress(channel, pseudo_channel, bank, chosen)


ATTACKS: Dict[str, Callable[[BenderSession, RowAddress], int]] = {
    "double_sided_burst": burst_double_sided,
    "rowpress_burst": rowpress_burst,
}


def evaluate(chip: ChipProfile,
             controller_factory: Callable[[], Optional[
                 MitigationController]],
             defense_name: str,
             victim: RowAddress,
             attacks: Optional[Dict[str, Callable]] = None
             ) -> Dict[str, DefenseReport]:
    """Run every attack against fresh instances of one defense."""
    if attacks is None:
        attacks = ATTACKS
    reports = {}
    for attack_name, attack in attacks.items():
        controller = controller_factory()
        session = defended_session(chip, controller)
        bitflips = attack(session, victim)
        stats = controller.stats if controller is not None else None
        reports[attack_name] = DefenseReport(
            attack=attack_name,
            defense=defense_name,
            bitflips=bitflips,
            observed_activations=(stats.observed_activations
                                  if stats else 0),
            preventive_refreshes=(stats.preventive_refreshes
                                  if stats else 0),
            throttle_delay_ns=(stats.throttle_delay_ns if stats else 0.0),
        )
    return reports
