"""Graphene: Misra-Gries frequent-item counting (Park et al., MICRO 2020).

A small table of counters tracks the most-activated rows per bank.  The
Misra-Gries guarantee: any row activated more than ``W / (entries + 1)``
times in a window of ``W`` activations is in the table with a count no
more than ``W / (entries + 1)`` below its true count.  When a counter
crosses the threshold, both neighbors are refreshed and the counter
resets — so no row can accumulate ``threshold * (spills + 1)``
activations undetected.  Deterministic protection, unlike PARA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.defenses.base import MitigationController
from repro.dram.geometry import RowAddress
from repro.dram.row_mapping import RowMapping


@dataclass
class _BankTable:
    """One bank's Misra-Gries counter table."""

    entries: int
    counters: Dict[int, int] = field(default_factory=dict)
    #: Misra-Gries spill base: subtracted implicitly from all rows.
    spill: int = 0

    def add(self, row: int, count: int) -> int:
        """Add activations; return the row's current estimated count."""
        if row in self.counters:
            self.counters[row] += count
            return self.counters[row]
        if len(self.counters) < self.entries:
            self.counters[row] = count
            return count
        # Misra-Gries decrement-all: consume the smallest counters.
        remaining = count
        while remaining > 0 and len(self.counters) >= self.entries:
            smallest = min(self.counters.values())
            step = min(remaining, smallest)
            self.spill += step
            remaining -= step
            for key in [k for k, v in self.counters.items()
                        if v == smallest]:
                self.counters[key] -= step
                if self.counters[key] <= 0:
                    del self.counters[key]
        if remaining > 0:
            self.counters[row] = remaining
            return remaining
        return 0

    def reset(self, row: int) -> None:
        """Reset a row's counter after its victims were refreshed."""
        self.counters.pop(row, None)

    def clear(self) -> None:
        self.counters.clear()
        self.spill = 0


class Graphene(MitigationController):
    """Graphene-style deterministic tracker.

    ``threshold`` should sit near a quarter of the chip's minimum
    HC_first: victims are refreshed every ``threshold`` activations, so
    the worst-case accumulation between refreshes stays well below the
    first bitflip.
    """

    def __init__(self, threshold: int = 4096, entries: int = 64,
                 rows: int = 16384,
                 believed_mapping: Optional[RowMapping] = None) -> None:
        super().__init__(rows, believed_mapping)
        if threshold < 1:
            raise ValueError("threshold must be positive")
        if entries < 1:
            raise ValueError("entries must be positive")
        self.threshold = threshold
        self.entries = entries
        self._tables: Dict[Tuple[int, int, int], _BankTable] = {}

    def threshold_for(self, address: RowAddress) -> int:
        """Detection threshold for this address (uniform by default;
        the heterogeneity-aware subclass overrides this)."""
        return self.threshold

    def observe(self, address: RowAddress, count: int,
                t_on: Optional[float], now_ns: float) -> List[int]:
        table = self._tables.setdefault(address.bank_key,
                                        _BankTable(self.entries))
        estimated = table.add(address.row, count)
        if estimated >= self.threshold_for(address):
            table.reset(address.row)
            return self.victims_of(address.row)
        return []

    def observe_epoch(self, entries: Sequence[
            Tuple[RowAddress, int, Optional[float]]],
            now_ns: float) -> List[int]:
        """Order-preserving epoch step for the deterministic tracker.

        Misra-Gries updates do not commute — a decrement-all consumes
        whatever counters are *currently* smallest — so the epoch step
        must replay entries in issue order.  The win over the reference
        loop is mechanical: the bank-table lookup is hoisted, and the
        victim translation runs only for entries that cross threshold.
        """
        victims: List[int] = []
        for address, count, __ in entries:
            table = self._tables.setdefault(address.bank_key,
                                            _BankTable(self.entries))
            if table.add(address.row, count) >= self.threshold_for(
                    address):
                table.reset(address.row)
                victims.extend(self.victims_of(address.row))
        return victims

    def on_window_rollover(self, now_ns: float) -> None:
        """Counters reset every refresh window (all cells refreshed)."""
        for table in self._tables.values():
            table.clear()
