"""Vulnerability-aware mitigation (Section 8.2, first implication).

"A RowHammer defense mechanism can adapt to the heterogeneous
distribution of the RowHammer and RowPress vulnerability across channels
and subarrays, which may allow the defense mechanism to more efficiently
prevent read disturbance bitflips."

:class:`HeterogeneousGraphene` does exactly that: it profiles the chip
once (the vendor or an at-boot characterization pass would), derives a
per-(channel, subarray) detection threshold from the *local* minimum
HC_first instead of the global worst case, and spends preventive
refreshes only where the silicon is actually weak.  The
``test_ablation_defenses`` benchmark quantifies the refresh savings.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.chips.profiles import ChipProfile
from repro.core import analytic
from repro.defenses.graphene import Graphene
from repro.dram.geometry import RowAddress
from repro.dram.row_mapping import RowMapping


def profile_local_thresholds(chip: ChipProfile, rows_per_subarray: int = 24,
                             safety_divisor: float = 4.0,
                             floor: int = 512) -> Dict[Tuple[int, int], int]:
    """Per-(channel, subarray) Graphene thresholds from profiling.

    Samples each subarray's WCDP HC_first and sets the local detection
    threshold to ``local_min / safety_divisor`` — the same margin a
    uniform design would apply to the *global* minimum.
    """
    geometry = chip.geometry
    layout = geometry.subarrays
    thresholds: Dict[Tuple[int, int], int] = {}
    for channel in range(geometry.channels):
        for subarray in range(layout.count):
            rows_range = layout.rows_of(subarray)
            rows = np.unique(np.linspace(
                rows_range.start, rows_range.stop - 1,
                rows_per_subarray).astype(int))
            hc = analytic.wcdp_hc_first(chip, channel, 0, 0, rows)["WCDP"]
            local = float(hc.min())
            thresholds[(channel, subarray)] = max(
                floor, int(local / safety_divisor))
    return thresholds


class HeterogeneousGraphene(Graphene):
    """Graphene with per-(channel, subarray) thresholds."""

    def __init__(self, chip: ChipProfile, entries: int = 64,
                 believed_mapping: Optional[RowMapping] = None,
                 safety_divisor: float = 4.0,
                 rows_per_subarray: int = 24) -> None:
        self.chip = chip
        self.local_thresholds = profile_local_thresholds(
            chip, rows_per_subarray=rows_per_subarray,
            safety_divisor=safety_divisor)
        uniform = min(self.local_thresholds.values())
        super().__init__(threshold=uniform, entries=entries,
                         rows=chip.geometry.rows,
                         believed_mapping=believed_mapping)
        self._layout = chip.geometry.subarrays
        # threshold_for is a pure function of (channel, logical row);
        # memoizing it keeps the (inherited, order-preserving)
        # observe_epoch step from re-walking the believed mapping and
        # subarray layout for every entry.  Bit-identical by purity.
        self._threshold_memo: Dict[Tuple[int, int], int] = {}

    def threshold_for(self, address: RowAddress) -> int:
        key = (address.channel, address.row)
        cached = self._threshold_memo.get(key)
        if cached is None:
            subarray = self._layout.subarray_of(
                self.believed_mapping.to_physical(address.row))
            cached = self.local_thresholds.get(
                (address.channel, subarray), self.threshold)
            self._threshold_memo[key] = cached
        return cached

    def uniform_equivalent_threshold(self) -> int:
        """The single threshold a vulnerability-blind design must use
        (the global minimum of the local ones)."""
        return min(self.local_thresholds.values())

    def mean_threshold(self) -> float:
        """Average local threshold — the headroom heterogeneity buys."""
        return float(np.mean(list(self.local_thresholds.values())))
