"""BlockHammer: blacklist-and-throttle (Yaglikci et al., HPCA 2021).

Instead of refreshing victims, BlockHammer *throttles* aggressors: rows
whose activation rate (estimated with counting Bloom filters) exceeds a
blacklist threshold get their subsequent activations delayed so that no
row can receive more than ``max_safe_activations`` within one refresh
window — making HC_first unreachable by construction, at the cost of
attacker-visible latency (benign workloads rarely hit the blacklist).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.defenses.base import MitigationController
from repro.dram.geometry import RowAddress
from repro.dram.row_mapping import RowMapping
from repro.dram.timing import DEFAULT_TIMINGS, TimingParameters


class CountingBloomFilter:
    """Counting Bloom filter over (bank, row) activation counts."""

    def __init__(self, size: int = 1024, hashes: int = 4,
                 seed: int = 0xB10C,
                 rng: Optional[np.random.Generator] = None) -> None:
        if size < 8 or hashes < 1:
            raise ValueError("size must be >= 8 and hashes >= 1")
        self.size = size
        self.hashes = hashes
        self.counts = np.zeros(size, dtype=np.int64)
        if rng is None:
            rng = np.random.default_rng(seed)
        self._salts = [int(s) for s in rng.integers(1, 2 ** 62,
                                                    size=hashes)]

    def _indices(self, key: int) -> np.ndarray:
        # Full-avalanche mixing: multiplicative hashing modulo a
        # power-of-two size catastrophically aliases low bits.
        from repro.dram.seeding import splitmix64

        return np.array([splitmix64(key ^ salt) % self.size
                         for salt in self._salts], dtype=int)

    def add(self, key: int, count: int = 1) -> None:
        self.counts[self._indices(key)] += count

    def add_many(self, keys: Sequence[int],
                 counts: Sequence[int]) -> None:
        """Array-form :meth:`add` over many keys at once.

        Bit-identical to sequential ``add`` calls in any order: integer
        increments commute.  The one trap is hash-index collisions
        *within* a key — fancy-index ``+=`` applies the count once per
        distinct slot, so each key's index set is deduplicated before
        the fused scatter-add.
        """
        all_indices = []
        all_counts = []
        for key, count in zip(keys, counts):
            unique = np.unique(self._indices(key))
            all_indices.append(unique)
            all_counts.append(np.full(unique.size, count,
                                      dtype=np.int64))
        if all_indices:
            np.add.at(self.counts, np.concatenate(all_indices),
                      np.concatenate(all_counts))

    def estimate(self, key: int) -> int:
        """Count-min estimate (never undercounts)."""
        return int(self.counts[self._indices(key)].min())

    def clear(self) -> None:
        self.counts[:] = 0


class BlockHammer(MitigationController):
    """Blacklist-and-throttle controller.

    Once a row's estimated count passes ``blacklist_threshold``, its
    remaining activation budget for the window is paced evenly over the
    rest of the refresh window, capping the total at
    ``max_safe_activations``.
    """

    def __init__(self, blacklist_threshold: int = 2048,
                 max_safe_activations: int = 8192,
                 rows: int = 16384,
                 believed_mapping: Optional[RowMapping] = None,
                 timings: TimingParameters = DEFAULT_TIMINGS,
                 filter_size: int = 4096,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(rows, believed_mapping)
        if blacklist_threshold >= max_safe_activations:
            raise ValueError(
                "blacklist_threshold must be below max_safe_activations")
        self.blacklist_threshold = blacklist_threshold
        self.max_safe_activations = max_safe_activations
        self.timings = timings
        self.filter = CountingBloomFilter(size=filter_size, rng=rng)
        self._window_start_ns = 0.0

    @staticmethod
    def _key(address: RowAddress) -> int:
        return (((address.channel * 2 + address.pseudo_channel) * 16
                 + address.bank) << 14) | address.row

    def throttle_ns(self, address: RowAddress, count: int,
                    t_on: Optional[float], now_ns: float) -> float:
        """Delay so the row cannot exceed the safe budget this window."""
        estimate = self.filter.estimate(self._key(address))
        if estimate + count <= self.blacklist_threshold:
            return 0.0
        # Pace the row: it may spend at most max_safe activations per
        # window, i.e. one activation per (tREFW / max_safe).
        window_elapsed = now_ns - self._window_start_ns
        pace_ns = self.timings.t_refw / self.max_safe_activations
        earliest = self._window_start_ns + estimate * pace_ns
        target = max(now_ns, earliest) + (count - 1) * max(
            0.0, pace_ns - self.timings.t_rc)
        del window_elapsed
        return max(0.0, target - now_ns)

    def observe(self, address: RowAddress, count: int,
                t_on: Optional[float], now_ns: float) -> List[int]:
        self.filter.add(self._key(address), count)
        return []  # BlockHammer never refreshes; it throttles.

    def observe_epoch(self, entries: Sequence[
            Tuple[RowAddress, int, Optional[float]]],
            now_ns: float) -> List[int]:
        """Fully vectorizable epoch step.

        BlockHammer's observation state is the counting Bloom filter,
        and filter increments commute — so the whole epoch collapses
        into one fused scatter-add with no ordering constraint (unlike
        PARA's RNG stream or Graphene's Misra-Gries table).
        """
        if not entries:
            return []
        self.filter.add_many(
            [self._key(address) for address, __, __ in entries],
            [count for __, count, __ in entries])
        return []

    def on_window_rollover(self, now_ns: float) -> None:
        self.filter.clear()
        self._window_start_ns = now_ns

    def is_blacklisted(self, address: RowAddress) -> bool:
        """Whether the row currently exceeds the blacklist threshold."""
        return self.filter.estimate(self._key(address)) \
            > self.blacklist_threshold
