"""PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).

Stateless: with probability ``p`` per activation, refresh one neighbor
of the activated row.  No counters, no SRAM — protection is statistical:
an aggressor activated N times leaves a victim unrefreshed with
probability ``(1 - p/2)^N``, which vanishes long before a RowHammer-scale
N when ``p`` is chosen against the chip's minimum HC_first.

``RowPressAwarePara`` additionally scales the sampling probability by the
RowPress amplification of the observed on-time (Takeaway 7's defense
implication): a single 35.1 us activation disturbs like ~223 ordinary
ones and is sampled accordingly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.defenses.base import MitigationController
from repro.dram.disturbance import DEFAULT_DISTURBANCE, DisturbanceModel
from repro.dram.geometry import RowAddress
from repro.dram.row_mapping import RowMapping


def para_probability_for(hc_first_min: float,
                         failure_probability: float = 1.0e-9) -> float:
    """Choose p so an HC_first-strength attack fails w.h.p.

    Solves ``(1 - p/2)^N <= failure_probability`` for N = hc_first_min.
    """
    if hc_first_min <= 0:
        raise ValueError("hc_first_min must be positive")
    if not 0.0 < failure_probability < 1.0:
        raise ValueError("failure_probability must be in (0, 1)")
    return min(1.0, 2.0 * (1.0 - failure_probability
                           ** (1.0 / hc_first_min)))


class Para(MitigationController):
    """Classic PARA with a deterministic (seeded) sampler."""

    def __init__(self, probability: float = 0.001, rows: int = 16384,
                 believed_mapping: Optional[RowMapping] = None,
                 seed: int = 0x9A7A,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(rows, believed_mapping)
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self.probability = probability
        # An injected generator lets campaigns share one seeded stream;
        # the default remains the fixed per-controller seed.
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    def _samples(self, count: int, probability: float) -> int:
        if count <= 0:
            return 0
        # Fused hammers batch the per-ACT Bernoulli draws binomially.
        return int(self._rng.binomial(count, min(1.0, probability)))

    def observe(self, address: RowAddress, count: int,
                t_on: Optional[float], now_ns: float) -> List[int]:
        samples = self._samples(count, self.probability)
        if samples == 0:
            return []
        neighbors = self.victims_of(address.row)
        if not neighbors:
            return []
        picks = self._rng.integers(0, len(neighbors), size=samples)
        return [neighbors[int(pick)] for pick in picks]

    def observe_epoch(self, entries: Sequence[
            Tuple[RowAddress, int, Optional[float]]],
            now_ns: float) -> List[int]:
        """PARA's epoch step is the reference loop, deliberately.

        Every :meth:`observe` draws from the shared generator — one
        ``binomial`` then (if sampled) one ``integers`` call — and that
        *draw order* is the bit-identity contract with the scalar
        engine.  Reordering or fusing the draws (e.g. one vectorized
        binomial over the whole epoch) would yield a statistically
        equivalent but bitwise different victim stream, breaking the
        report-hash equivalence the batch engine guarantees.
        """
        return super().observe_epoch(entries, now_ns)


class RowPressAwarePara(Para):
    """PARA whose sampling probability scales with the on-time.

    Plain PARA undersamples RowPress: a 35.1 us activation delivers
    ~223x the disturbance but is sampled once.  Scaling ``p`` by the
    amplification restores the designed failure probability (capped at
    1, i.e. always refresh, for extreme on-times).
    """

    def __init__(self, probability: float = 0.001, rows: int = 16384,
                 believed_mapping: Optional[RowMapping] = None,
                 disturbance: DisturbanceModel = DEFAULT_DISTURBANCE,
                 seed: int = 0x9A7B,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(probability, rows, believed_mapping, seed, rng)
        self.disturbance = disturbance

    def observe(self, address: RowAddress, count: int,
                t_on: Optional[float], now_ns: float) -> List[int]:
        amplification = 1.0
        if t_on is not None:
            amplification = self.disturbance.amplification(t_on)
        samples = self._samples(count, self.probability * amplification)
        if samples == 0:
            return []
        neighbors = self.victims_of(address.row)
        if not neighbors:
            return []
        picks = self._rng.integers(0, len(neighbors), size=samples)
        return [neighbors[int(pick)] for pick in picks]
