"""Memory-controller-side RowHammer mitigation framework.

Section 8.2: "HBM2 memory controller designers likely need to implement
other read disturbance defense mechanisms in their designs because
designers cannot rely on the undocumented TRR mechanism."  This package
provides that layer: a :class:`MitigationController` observes the
activation stream the way a memory controller would and issues
*preventive refreshes* (activate + precharge on the would-be victims),
and :class:`DefendedDevice` wires a controller in front of any simulated
HBM2 stack so every attack in the repository can be replayed against it.

Controllers operate on logical addresses and translate to physical
adjacency through a *believed* row mapping.  Vendors hide their internal
topologies; passing the wrong mapping models exactly the cost of that
secrecy (the `test_ablation_defenses` benchmark quantifies it).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.dram.device import HBM2Stack
from repro.dram.commands import Command, CommandKind
from repro.dram.geometry import RowAddress
from repro.dram.row_mapping import IdentityMapping, RowMapping


@dataclass
class ControllerStats:
    """Bookkeeping of a mitigation controller."""

    observed_activations: int = 0
    preventive_refreshes: int = 0
    throttle_delay_ns: float = 0.0

    def refresh_overhead(self) -> float:
        """Preventive refreshes per observed activation."""
        if self.observed_activations == 0:
            return 0.0
        return self.preventive_refreshes / self.observed_activations


class MitigationController(abc.ABC):
    """Observes activations; decides which victim rows to refresh.

    Subclasses implement :meth:`observe`.  The believed mapping defaults
    to identity (what a controller without vendor documentation must
    assume).
    """

    def __init__(self, rows: int = 16384,
                 believed_mapping: Optional[RowMapping] = None) -> None:
        self.rows = rows
        self.believed_mapping = believed_mapping or IdentityMapping(rows)
        self.stats = ControllerStats()

    @abc.abstractmethod
    def observe(self, address: RowAddress, count: int,
                t_on: Optional[float], now_ns: float) -> List[int]:
        """Process ``count`` activations of a logical row.

        Returns the *logical* rows to preventively refresh now.
        """

    def observe_epoch(self, entries: Sequence[
            Tuple[RowAddress, int, Optional[float]]],
            now_ns: float) -> List[int]:
        """Process one epoch's worth of activations in a single call.

        ``entries`` lists ``(address, count, t_on)`` in issue order — the
        same stream :meth:`observe` would see call by call.  Returns the
        concatenated victim lists in observation order.

        This reference implementation *is* the per-ACT path: it loops
        :meth:`observe` so the sequential contract (call order, RNG draw
        order, counter update order) is preserved exactly.  Subclasses
        may override with an array-form step, but only where the state
        update provably commutes (BlockHammer's filter adds do; PARA's
        RNG stream and Graphene's Misra-Gries table do not) — parity
        with this loop is the bit-identity contract, enforced by
        ``tests/defenses/test_observe_epoch.py``.
        """
        victims: List[int] = []
        for address, count, t_on in entries:
            victims.extend(self.observe(address, count, t_on, now_ns))
        return victims

    def victims_of(self, logical_row: int) -> List[int]:
        """Believed logical addresses of the row's physical neighbors."""
        return self.believed_mapping.physical_neighbors(logical_row)

    def throttle_ns(self, address: RowAddress, count: int,
                    t_on: Optional[float], now_ns: float) -> float:
        """Extra delay to impose before the activations (BlockHammer)."""
        return 0.0

    def on_window_rollover(self, now_ns: float) -> None:
        """Hook invoked when a refresh window (tREFW) elapses."""


class DefendedDevice:
    """An HBM2 stack fronted by a mitigation controller.

    Quacks like :class:`~repro.dram.device.HBM2Stack` for the SoftBender
    session/interpreter (``execute``, row operations, ``geometry`` ...),
    so any attack program runs unmodified against a defended system.
    Preventive refreshes go through the real command path — they cost
    time and, like any activation, disturb their own neighbors.
    """

    def __init__(self, device: HBM2Stack,
                 controller: MitigationController) -> None:
        self.device = device
        self.controller = controller
        self._window_start_ns = device.now_ns

    # -- attribute passthrough -------------------------------------------

    def __getattr__(self, name):
        return getattr(self.device, name)

    # -- command interface -------------------------------------------------

    def execute(self, command: Command):
        if command.kind is CommandKind.HAMMER:
            address = RowAddress(command.channel, command.pseudo_channel,
                                 command.bank, command.row)
            return self.hammer(address, command.count, command.t_on)
        if command.kind is CommandKind.ACT:
            address = RowAddress(command.channel, command.pseudo_channel,
                                 command.bank, command.row)
            return self.activate(address)
        return self.device.execute(command)

    def run(self, commands) -> list:
        return [self.execute(command) for command in commands]

    # -- defended row operations --------------------------------------------

    def hammer(self, address: RowAddress, count: int,
               t_on: Optional[float] = None) -> None:
        self._check_rollover()
        delay = self.controller.throttle_ns(address, count, t_on,
                                            self.device.now_ns)
        if delay > 0:
            self.device.wait(delay)
            self.controller.stats.throttle_delay_ns += delay
        self.device.hammer(address, count, t_on)
        self._mitigate(address, count, t_on)

    def activate(self, address: RowAddress) -> None:
        self._check_rollover()
        delay = self.controller.throttle_ns(address, 1, None,
                                            self.device.now_ns)
        if delay > 0:
            self.device.wait(delay)
            self.controller.stats.throttle_delay_ns += delay
        self.device.activate(address)
        self._mitigate(address, 1, None)

    def read_row(self, address: RowAddress):
        return self.device.read_row(address)

    def write_row(self, address: RowAddress, data) -> None:
        self.device.write_row(address, data)

    def refresh(self, channel: int, pseudo_channel: int) -> None:
        self._check_rollover()
        self.device.refresh(channel, pseudo_channel)

    def refresh_burst(self, channel: int, pseudo_channel: int,
                      count: int) -> None:
        """``count`` REFs, bit-identical to ``count`` :meth:`refresh`.

        The scalar path re-checks the tREFW rollover before every REF;
        a burst must not overshoot that boundary, or the controller's
        :meth:`~MitigationController.on_window_rollover` would fire at a
        later ``now_ns`` than in the sequential replay.  Each chunk is
        therefore sized to stop strictly short of the window edge, and
        the check re-runs between chunks — the rollover fires at exactly
        the REF index (hence exactly the clock value) the scalar loop
        would have produced.
        """
        timings = self.device.timings
        remaining = int(count)
        while remaining > 0:
            self._check_rollover()
            elapsed = self.device.now_ns - self._window_start_ns
            headroom = int((timings.t_refw - elapsed) / timings.t_rfc) - 2
            chunk = min(remaining, max(1, headroom))
            self.device.refresh_burst(channel, pseudo_channel, chunk)
            remaining -= chunk

    def wait(self, duration_ns: float) -> None:
        self.device.wait(duration_ns)

    # -- internals ----------------------------------------------------------

    def _mitigate(self, address: RowAddress, count: int,
                  t_on: Optional[float]) -> None:
        controller = self.controller
        controller.stats.observed_activations += count
        victims = controller.observe(address, count, t_on,
                                     self.device.now_ns)
        for logical_row in victims:
            victim = address.with_row(logical_row)
            bank = self.device._banks.get(victim.bank_key)
            if bank is not None and bank.open_row is not None:
                continue  # cannot interleave while the bank is open
            self.device.activate(victim)
            self.device.precharge(victim.channel, victim.pseudo_channel,
                                  victim.bank)
            controller.stats.preventive_refreshes += 1

    def _check_rollover(self) -> None:
        window = self.device.timings.t_refw
        if self.device.now_ns - self._window_start_ns >= window:
            self._window_start_ns = self.device.now_ns
            self.controller.on_window_rollover(self.device.now_ns)
