"""Memory-controller RowHammer defenses (Section 8.2 made executable)."""

from repro.defenses.base import (ControllerStats, DefendedDevice,
                                 MitigationController)
from repro.defenses.blockhammer import BlockHammer, CountingBloomFilter
from repro.defenses.evaluate import (ATTACKS, DefenseReport,
                                     burst_double_sided, defended_session,
                                     evaluate, pick_vulnerable_victim,
                                     rowpress_burst)
from repro.defenses.graphene import Graphene
from repro.defenses.heterogeneous import (HeterogeneousGraphene,
                                          profile_local_thresholds)
from repro.defenses.para import Para, RowPressAwarePara, para_probability_for

__all__ = [
    "ControllerStats",
    "DefendedDevice",
    "MitigationController",
    "BlockHammer",
    "CountingBloomFilter",
    "ATTACKS",
    "DefenseReport",
    "burst_double_sided",
    "defended_session",
    "evaluate",
    "pick_vulnerable_victim",
    "rowpress_burst",
    "Graphene",
    "HeterogeneousGraphene",
    "profile_local_thresholds",
    "Para",
    "RowPressAwarePara",
    "para_probability_for",
]
