"""Deterministic fault injection around an :class:`HBM2Stack`.

:class:`FaultyStack` wraps a device and perturbs its command interface
the way a real FPGA test platform misbehaves during a multi-hour
campaign:

- **RD interface bit errors** — bits flip on the bus, not in the array
  (re-reading the row returns clean data unless it flips again),
- **dropped commands** — ACT/PRE/WR/REF/WAIT silently lost,
- **ghost commands** — PRE/REF executed twice (bus glitch replay),
- **ACT timing jitter** — the aggressor on-time of ACT/HAMMER cycles
  stretches by a deterministic jitter, perturbing RowPress-style
  disturbance accounting,
- **stuck-at cells** — per-row readout bits pinned to fixed values,
- **platform stalls** — real wall-clock sleeps (to trip runner
  timeouts),
- **hangs** — the board stops responding:
  :class:`~repro.errors.PlatformHangError`.

Every decision derives from ``(plan.seed, fault tag, command counter)``
via the splitmix64 chain of :mod:`repro.dram.seeding`, so the same plan
over the same command stream yields a byte-identical fault schedule
(assert with :meth:`FaultyStack.schedule_digest`).  The wrapper keeps
the full device surface available through delegation, so routines,
sessions, and the interpreter use it as a drop-in device.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.dram.commands import Command, CommandKind
from repro.dram.device import HBM2Stack, _xor_bits
from repro.dram.geometry import RowAddress
from repro.dram.seeding import generator_for, uniform_for
from repro.errors import PlatformHangError
from repro.faults.plan import (DROPPABLE, GHOSTABLE, TAG_DROP, TAG_GHOST,
                               TAG_HANG, TAG_JITTER, TAG_RDFLIP, TAG_STALL,
                               TAG_STUCK, FaultPlan)

#: Exit code used when a worker-level crash fault kills the process.
CRASH_EXIT_CODE = 97

# The tags/kind sets live in :mod:`repro.faults.plan` (shared with the
# vectorized samplers); the historical module-private names stay valid.
_TAG_STALL = TAG_STALL
_TAG_HANG = TAG_HANG
_TAG_DROP = TAG_DROP
_TAG_GHOST = TAG_GHOST
_TAG_JITTER = TAG_JITTER
_TAG_RDFLIP = TAG_RDFLIP
_TAG_STUCK = TAG_STUCK

_DROPPABLE = DROPPABLE
_GHOSTABLE = GHOSTABLE


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, in command order."""

    index: int      #: command counter value when the fault fired
    fault: str      #: "stall" | "hang" | "drop" | "ghost" | "jitter" |
                    #: "rd-flip" | "stuck"
    command: str    #: command kind the fault applied to
    detail: Tuple[int, ...] = ()

    def __str__(self) -> str:
        suffix = f" {list(self.detail)}" if self.detail else ""
        return f"#{self.index} {self.fault} on {self.command}{suffix}"


class FaultyStack:
    """Chaos wrapper: an :class:`HBM2Stack` behind a glitchy platform.

    Delegates everything it does not intercept, so it drops into any
    code that expects a device.  The wrapped device's *internal*
    composition (e.g. ``read_row`` issuing its own ACT/PRE) is not
    re-intercepted: one host-visible operation makes one set of fault
    decisions, which keeps the schedule aligned with the command stream
    a real platform sees.
    """

    def __init__(self, device: HBM2Stack, plan: FaultPlan) -> None:
        if isinstance(device, FaultyStack):
            device = device.wrapped
        self.wrapped = device
        self.plan = plan
        self.events: List[FaultEvent] = []
        self._counter = 0
        self._stuck_cache: Dict[Tuple[int, int, int, int],
                                Optional[Tuple[np.ndarray, np.ndarray]]] = {}

    def __getattr__(self, name: str) -> Any:
        return getattr(self.wrapped, name)

    # -- fault schedule inspection ---------------------------------------

    def schedule_digest(self) -> str:
        """SHA-256 over the injected fault schedule (order-sensitive)."""
        digest = hashlib.sha256()
        for event in self.events:
            digest.update(repr((event.index, event.fault, event.command,
                                event.detail)).encode("utf-8"))
        return digest.hexdigest()

    # -- decision machinery ----------------------------------------------

    def _draw(self, tag: int, index: int) -> float:
        return uniform_for(self.plan.seed, tag, index)

    def _log(self, index: int, fault: str, command: str,
             detail: Tuple[int, ...] = (),
             sink: Optional[List[FaultEvent]] = None) -> None:
        target = self.events if sink is None else sink
        target.append(FaultEvent(index, fault, command, detail))

    def _platform(self, command: str) -> Tuple[int, Optional[str]]:
        """Advance the command counter and fire platform-level faults.

        Returns ``(index, action)`` where action is ``"drop"``,
        ``"ghost"`` or ``None``.  Raises on an injected hang.
        """
        self._counter += 1
        index = self._counter
        plan = self.plan
        if plan.stall_rate and self._draw(_TAG_STALL, index) \
                < plan.stall_rate:
            self._log(index, "stall", command)
            time.sleep(plan.stall_seconds)
        if plan.hang_rate and self._draw(_TAG_HANG, index) < plan.hang_rate:
            self._log(index, "hang", command)
            raise PlatformHangError(
                f"injected platform hang at command #{index} ({command})")
        if command in _DROPPABLE and plan.drop_rate \
                and self._draw(_TAG_DROP, index) < plan.drop_rate:
            self._log(index, "drop", command)
            return index, "drop"
        if command in _GHOSTABLE and plan.ghost_rate \
                and self._draw(_TAG_GHOST, index) < plan.ghost_rate:
            self._log(index, "ghost", command)
            return index, "ghost"
        return index, None

    def _jitter_ns(self, index: int, command: str) -> float:
        """Deterministic ACT-interval jitter (0.0 when the fault misses)."""
        plan = self.plan
        if not plan.act_jitter_rate or not plan.act_jitter_ns:
            return 0.0
        if self._draw(_TAG_JITTER, index) >= plan.act_jitter_rate:
            return 0.0
        fraction = uniform_for(plan.seed, _TAG_JITTER, index, 1)
        jitter = plan.act_jitter_ns * fraction
        self._log(index, "jitter", command, (int(round(jitter * 1000)),))
        return jitter

    # -- intercepted command interface ------------------------------------

    def execute(self, command: Command) -> Optional[np.ndarray]:
        """Execute one command under the fault plan (RD returns data)."""
        kind = command.kind
        if kind is CommandKind.WAIT:
            return self.wait(command.duration)
        if kind is CommandKind.NOP:
            return None
        address = RowAddress(command.channel, command.pseudo_channel,
                             command.bank, command.row)
        if kind is CommandKind.REF:
            return self.refresh(command.channel, command.pseudo_channel)
        if kind is CommandKind.ACT:
            return self.activate(address)
        if kind is CommandKind.PRE:
            return self.precharge(command.channel, command.pseudo_channel,
                                  command.bank)
        if kind is CommandKind.RD:
            return self.read_row(address)
        if kind is CommandKind.WR:
            if command.data is None:
                raise ValueError("WR command requires a row image")
            return self.write_row(address, command.data)
        if kind is CommandKind.HAMMER:
            return self.hammer(address, command.count, command.t_on)
        raise ValueError(f"unhandled command kind {kind}")

    def run(self, commands: Iterable[Command]) -> List[Optional[np.ndarray]]:
        """Execute a command sequence through the fault layer."""
        return [self.execute(command) for command in commands]

    def wait(self, duration_ns: float) -> None:
        _, action = self._platform("WAIT")
        if action == "drop":
            return None  # the platform lost the wait: time not advanced
        return self.wrapped.wait(duration_ns)

    def activate(self, address: RowAddress) -> None:
        index, action = self._platform("ACT")
        jitter = self._jitter_ns(index, "ACT")
        if jitter:
            self.wrapped.wait(jitter)
        if action == "drop":
            return None
        return self.wrapped.activate(address)

    def precharge(self, channel: int, pseudo_channel: int,
                  bank_index: int) -> None:
        _, action = self._platform("PRE")
        if action == "drop":
            return None
        result = self.wrapped.precharge(channel, pseudo_channel, bank_index)
        if action == "ghost":
            self.wrapped.precharge(channel, pseudo_channel, bank_index)
        return result

    def refresh(self, channel: int, pseudo_channel: int) -> None:
        _, action = self._platform("REF")
        if action == "drop":
            return None
        result = self.wrapped.refresh(channel, pseudo_channel)
        if action == "ghost":
            self.wrapped.refresh(channel, pseudo_channel)
        return result

    def write_row(self, address: RowAddress, data: np.ndarray) -> None:
        _, action = self._platform("WR")
        if action == "drop":
            return None
        return self.wrapped.write_row(address, data)

    def hammer(self, address: RowAddress, count: int,
               t_on: Optional[float] = None) -> None:
        index, _ = self._platform("HAMMER")
        jitter = self._jitter_ns(index, "HAMMER")
        if jitter:
            base = self.wrapped.timings.t_ras if t_on is None else t_on
            t_on = base + jitter
        return self.wrapped.hammer(address, count, t_on)

    def read_row(self, address: RowAddress) -> np.ndarray:
        index, _ = self._platform("RD")
        data = self.wrapped.read_row(address)
        return self.apply_read_faults(address, data, index)

    # -- batch-executor hooks ----------------------------------------------

    def advance_counter(self, count: int) -> int:
        """Skip ``count`` command slots whose fault draws are known misses.

        The batched executors classify future command counters with the
        plan's vectorized samplers; a span where *no* draw hits is
        executed on the fast engine and its counters consumed here in
        one step, keeping the schedule aligned with the command stream
        a scalar replay would see.  Returns the new counter value.
        """
        self._counter += count
        return self._counter

    def apply_read_faults(self, address: RowAddress, data: np.ndarray,
                          index: int,
                          events: Optional[List[FaultEvent]] = None
                          ) -> np.ndarray:
        """Data-path faults (stuck cells, then RD bit errors) for the
        read at command counter ``index``, logging events in order.

        ``read_row`` uses this after every wrapped read; the batched
        executors call it directly on engine-computed row images at the
        read's statically known counter.  ``events`` redirects the
        logged fault events into a caller-owned buffer instead of
        :attr:`events` — a speculative executor evaluates reads at
        *assumed* counters and must be able to discard (or defer) the
        resulting events until the speculation is accepted.
        """
        data = self._apply_stuck_cells(address, data, index, events)
        return self._apply_read_flips(data, index, events)

    # -- data-path faults --------------------------------------------------

    def _apply_read_flips(self, data: np.ndarray, index: int,
                          events: Optional[List[FaultEvent]] = None
                          ) -> np.ndarray:
        plan = self.plan
        if not plan.read_flip_rate \
                or self._draw(_TAG_RDFLIP, index) >= plan.read_flip_rate:
            return data
        positions = plan.read_flip_positions(index, data.size * 8)
        data = data.copy()
        _xor_bits(data, positions)
        self._log(index, "rd-flip", "RD",
                  tuple(int(p) for p in positions), sink=events)
        return data

    def _stuck_bits_for(self, address: RowAddress) \
            -> Optional[Tuple[np.ndarray, np.ndarray]]:
        key = (address.channel, address.pseudo_channel, address.bank,
               address.row)
        if key in self._stuck_cache:
            return self._stuck_cache[key]
        plan = self.plan
        stuck: Optional[Tuple[np.ndarray, np.ndarray]] = None
        if plan.stuck_row_rate and uniform_for(
                plan.seed, _TAG_STUCK, *key) < plan.stuck_row_rate:
            rng = generator_for(plan.seed, _TAG_STUCK, *key, 1)
            count = 1 + int(rng.integers(plan.stuck_bits_per_row))
            row_bits = self.wrapped.geometry.row_bits
            positions = np.unique(rng.integers(row_bits, size=count))
            values = rng.integers(2, size=positions.size).astype(np.uint8)
            stuck = (positions.astype(np.int64), values)
        self._stuck_cache[key] = stuck
        return stuck

    def _apply_stuck_cells(self, address: RowAddress, data: np.ndarray,
                           index: int,
                           events: Optional[List[FaultEvent]] = None
                           ) -> np.ndarray:
        stuck = self._stuck_bits_for(address)
        if stuck is None:
            return data
        positions, values = stuck
        data = data.copy()
        byte_index = positions // 8
        bit_in_byte = (7 - positions % 8).astype(np.uint8)
        mask = (np.uint8(1) << bit_in_byte)
        # Clear the stuck bits, then OR in the stuck values.
        np.bitwise_and.at(data, byte_index, np.uint8(0xFF) ^ mask)
        np.bitwise_or.at(data, byte_index,
                         (values << bit_in_byte).astype(np.uint8))
        self._log(index, "stuck", "RD", tuple(int(p) for p in positions),
                  sink=events)
        return data


def wrap_device(device: HBM2Stack,
                plan: Optional[FaultPlan]) -> HBM2Stack:
    """Wrap ``device`` when ``plan`` injects device-level faults.

    Returns the device unchanged for ``None`` plans, plans with only
    worker-level knobs, or devices already wrapped — so the fault-free
    path stays bit-identical to a build without this layer.
    """
    if plan is None or not plan.device_faults_enabled():
        return device
    if isinstance(device, FaultyStack):
        return device
    return FaultyStack(device, plan)


def apply_worker_faults(plan: Optional[FaultPlan], experiment_id: str,
                        attempt: int) -> None:
    """Fire worker-level faults for one experiment attempt.

    ``stall_experiments`` sleeps (pushing the attempt over a runner
    timeout); ``crash_once`` hard-kills the process on the first
    attempt, simulating a board/host crash the runner must survive.
    """
    if plan is None:
        return
    stall = plan.stall_experiments.get(experiment_id, 0.0)
    if stall > 0:
        time.sleep(stall)
    if experiment_id in plan.crash_once and attempt == 1:
        os._exit(CRASH_EXIT_CODE)
