"""Fault plans: deterministic, seedable chaos configuration.

A :class:`FaultPlan` describes *which* platform faults to inject and at
what rates; the :class:`~repro.faults.injector.FaultyStack` wrapper and
the resilient runner consume it.  Every stochastic decision is a pure
function of ``(plan.seed, fault kind, command counter)`` through the
same splitmix64 machinery the cell model uses
(:mod:`repro.dram.seeding`), so the same plan replayed over the same
command stream produces a byte-identical fault schedule.

Two fault families live here:

- **Device/interface faults** (consumed by ``FaultyStack``): bit errors
  on RD data, dropped and ghost (duplicated) commands, timing jitter on
  ACT intervals, stuck-at cells, wall-clock platform stalls, and
  simulated board hangs (raised as
  :class:`~repro.errors.PlatformHangError`).
- **Worker-level faults** (consumed by the resilient runner's worker
  processes): hard crashes of the process running a given experiment
  (``crash_once``) and forced wall-clock stalls per experiment id
  (``stall_experiments``) — the levers the chaos tests use to exercise
  timeout and crash recovery end to end.

Activation
----------

Programmatic: ``faults.install_plan(plan)`` /
``faults.clear_plan()``.  Environment: set ``HBMSIM_FAULTS`` to a JSON
object of :class:`FaultPlan` fields, e.g.::

    HBMSIM_FAULTS='{"seed": 7, "read_flip_rate": 0.01, "drop_rate": 0.002}'

The environment plan is inherited by experiment worker processes, so a
whole sweep runs under the same chaos.  With no plan installed the
device path is untouched — experiment reports stay bit-identical to a
fault-free run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, FrozenSet, Mapping, Optional, Tuple

import numpy as np

from repro.dram.seeding import (generator_for, uniform_array_for,
                                uniform_array_mixed, uniform_for)
from repro.errors import FaultPlanError

_ENV_PLAN = "HBMSIM_FAULTS"

# Fault-kind tags folded into the seed chain (arbitrary, fixed).  They
# live here — not in the injector — so both the scalar ``FaultyStack``
# and the vectorized samplers below key the *same* splitmix64 chains.
TAG_STALL = 0x51A11
TAG_HANG = 0x4A46
TAG_DROP = 0xD309
TAG_GHOST = 0x6057
TAG_JITTER = 0x71EE
TAG_RDFLIP = 0x2DF1
TAG_STUCK = 0x57C4

#: Command kinds a drop fault can lose / a ghost fault can duplicate.
DROPPABLE: FrozenSet[str] = frozenset({"ACT", "PRE", "WR", "REF", "WAIT"})
GHOSTABLE: FrozenSet[str] = frozenset({"PRE", "REF"})


@dataclass(frozen=True)
class FaultPlan:
    """One chaos configuration; all rates are probabilities in [0, 1]."""

    #: Root seed for every fault decision.
    seed: int = 0

    # -- interface faults on read data ---------------------------------
    #: Probability that one RD's returned data suffers interface bit
    #: errors (flips on the bus, not in the array).
    read_flip_rate: float = 0.0
    #: Number of bits flipped when a RD is corrupted.
    read_flip_bits: int = 1

    # -- command stream faults ------------------------------------------
    #: Probability a droppable command (ACT/PRE/WR/REF/WAIT) is lost.
    drop_rate: float = 0.0
    #: Probability a ghostable command (PRE/REF) is executed twice.
    ghost_rate: float = 0.0

    # -- timing faults ---------------------------------------------------
    #: Probability an ACT/HAMMER interval picks up timing jitter.
    act_jitter_rate: float = 0.0
    #: Maximum jitter magnitude added to the aggressor on-time (ns).
    act_jitter_ns: float = 0.0

    # -- stuck-at cells ---------------------------------------------------
    #: Probability a given row has stuck-at bits on its readout path.
    stuck_row_rate: float = 0.0
    #: Maximum stuck bits per affected row (actual count is derived
    #: deterministically per row in [1, max]).
    stuck_bits_per_row: int = 4

    # -- platform stalls / hangs -----------------------------------------
    #: Probability a command stalls the platform for ``stall_seconds``
    #: of real wall-clock time (exercises runner timeouts).
    stall_rate: float = 0.0
    stall_seconds: float = 0.05
    #: Probability a command makes the simulated board stop responding
    #: (raises :class:`~repro.errors.PlatformHangError`).
    hang_rate: float = 0.0

    # -- worker-level faults (resilient-runner chaos) ---------------------
    #: Experiment ids whose worker process is hard-killed on the first
    #: attempt (simulates a board/host crash mid-run; retries succeed).
    crash_once: Tuple[str, ...] = ()
    #: Experiment id -> seconds of forced wall-clock stall before the
    #: experiment body runs (used to push one id over ``--timeout``).
    stall_experiments: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in ("read_flip_rate", "drop_rate", "ghost_rate",
                     "act_jitter_rate", "stuck_row_rate", "stall_rate",
                     "hang_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultPlanError(
                    f"{name} must be within [0, 1], got {value!r}")
        if self.read_flip_bits < 1:
            raise FaultPlanError("read_flip_bits must be >= 1")
        if self.stuck_bits_per_row < 1:
            raise FaultPlanError("stuck_bits_per_row must be >= 1")
        if self.act_jitter_ns < 0 or self.stall_seconds < 0:
            raise FaultPlanError("jitter/stall magnitudes must be >= 0")
        object.__setattr__(self, "crash_once", tuple(self.crash_once))
        object.__setattr__(self, "stall_experiments",
                           dict(self.stall_experiments))

    # -- classification ---------------------------------------------------

    def device_faults_enabled(self) -> bool:
        """Whether any device/interface fault can fire under this plan."""
        return any((self.read_flip_rate, self.drop_rate, self.ghost_rate,
                    self.act_jitter_rate, self.stuck_row_rate,
                    self.stall_rate, self.hang_rate))

    def worker_faults_enabled(self) -> bool:
        """Whether any worker-level fault is configured."""
        return bool(self.crash_once or self.stall_experiments)

    # -- vectorized samplers ----------------------------------------------
    #
    # Every scalar fault decision the injector makes is a pure function
    # of ``(seed, tag, command counter)``; the samplers below evaluate
    # the same splitmix64 chains over whole command-counter arrays, so a
    # batched executor can classify thousands of future command slots in
    # one pass — bit-identical to replaying them one by one.

    def _rate_mask(self, tag: int, rate: float,
                   indices: np.ndarray) -> np.ndarray:
        """``uniform_for(seed, tag, i) < rate`` for each counter ``i``.

        A zero rate returns an all-False mask without touching the seed
        chain, matching the scalar short-circuit (``if plan.rate and
        ...``) which never draws for disabled faults.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if not rate:
            return np.zeros(indices.shape, dtype=bool)
        draws = uniform_array_for((self.seed, tag), indices)
        return draws < rate

    def stall_mask(self, indices: np.ndarray) -> np.ndarray:
        """Which command counters stall the platform."""
        return self._rate_mask(TAG_STALL, self.stall_rate, indices)

    def hang_mask(self, indices: np.ndarray) -> np.ndarray:
        """Which command counters hang the platform."""
        return self._rate_mask(TAG_HANG, self.hang_rate, indices)

    def drop_mask(self, indices: np.ndarray) -> np.ndarray:
        """Which counters lose their command.

        Callers restrict ``indices`` to commands whose kind is in
        :data:`DROPPABLE`; the mask itself is kind-agnostic, exactly
        like the scalar draw.
        """
        return self._rate_mask(TAG_DROP, self.drop_rate, indices)

    def ghost_mask(self, indices: np.ndarray) -> np.ndarray:
        """Which counters duplicate their command (:data:`GHOSTABLE`
        kinds only; drop takes precedence at equal counters)."""
        return self._rate_mask(TAG_GHOST, self.ghost_rate, indices)

    def draw_jitter_array(
            self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(hit mask, jitter ns)`` for ACT/HAMMER counters.

        Magnitudes are only meaningful where the mask is True; they are
        computed with the identical ``uniform_for(seed, tag, i, 1)``
        draw the scalar :meth:`FaultyStack._jitter_ns` uses.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if not self.act_jitter_rate or not self.act_jitter_ns:
            return (np.zeros(indices.shape, dtype=bool),
                    np.zeros(indices.shape, dtype=np.float64))
        hits = self._rate_mask(TAG_JITTER, self.act_jitter_rate, indices)
        magnitudes = np.zeros(indices.shape, dtype=np.float64)
        if hits.any():
            fractions = uniform_array_for((self.seed, TAG_JITTER),
                                          indices[hits], (1,))
            magnitudes[hits] = self.act_jitter_ns * fractions
        return hits, magnitudes

    def classify_probe_windows(
            self, bases: np.ndarray, writes: np.ndarray,
            hammers: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Classify measurement windows laid out on per-row virtual
        counter streams.

        Window ``k`` is a ``WR``×``writes[k]`` / ``HAMMER``×
        ``hammers[k]`` / ``RD``×1 command sequence whose first command
        draws at counter ``bases[k] + 1`` (the injector pre-increments
        before every draw).  ``bases`` is an *explicit* counter base per
        window rather than one global running tick, which lets a
        speculative executor lay out many rows' probe paths and ask, in
        one vectorized pass, which windows a scalar replay would have
        perturbed.

        Returns ``(dirty, read_indices)``:

        - ``dirty[k]`` — the window is touched by a fault the batch
          engine cannot express: a stall or hang anywhere in it, a drop
          on one of its WRs, or jitter on one of its HAMMERs.  (PRE/REF
          never appear inside a window, so ghost faults cannot fire;
          read-path faults — stuck cells and RD bit errors — are *not*
          dirtying because they apply to the returned image after the
          fact.)
        - ``read_indices[k]`` — the counter of the window's RD, where
          the read-path draws for that probe key.
        """
        bases = np.asarray(bases, dtype=np.int64)
        writes = np.asarray(writes, dtype=np.int64)
        hammers = np.asarray(hammers, dtype=np.int64)
        lengths = writes + hammers + 1
        total = int(lengths.sum())
        read_indices = bases + lengths
        if total == 0:
            return np.zeros(bases.shape, dtype=bool), read_indices
        window_of = np.repeat(np.arange(bases.size), lengths)
        offsets = (np.arange(total)
                   - np.repeat(np.cumsum(lengths) - lengths, lengths))
        indices = np.repeat(bases, lengths) + offsets + 1
        hits = self.stall_mask(indices) | self.hang_mask(indices)
        if self.drop_rate:
            is_write = offsets < np.repeat(writes, lengths)
            hits[is_write] |= self.drop_mask(indices[is_write])
        if self.act_jitter_rate and self.act_jitter_ns:
            is_hammer = ((offsets >= np.repeat(writes, lengths))
                         & (offsets < np.repeat(writes + hammers,
                                                lengths)))
            jitter_hits, __ = self.draw_jitter_array(indices[is_hammer])
            hits[is_hammer] |= jitter_hits
        dirty = np.zeros(bases.shape, dtype=bool)
        np.logical_or.at(dirty, window_of, hits)
        return dirty, read_indices

    def draw_bitflips_array(self, indices: np.ndarray) -> np.ndarray:
        """Which RD counters suffer interface bit errors.

        Flip *positions* stay per-command Philox draws — fetch them with
        :meth:`read_flip_positions` for the (rare) hit counters.
        """
        return self._rate_mask(TAG_RDFLIP, self.read_flip_rate, indices)

    def read_flip_positions(self, index: int,
                            data_bits: int) -> np.ndarray:
        """Bit positions flipped by the RD fault at counter ``index``."""
        rng = generator_for(self.seed, TAG_RDFLIP, index, 1)
        return np.unique(rng.integers(data_bits,
                                      size=self.read_flip_bits))

    def stuck_row_mask(self, channels: np.ndarray, pcs: np.ndarray,
                       banks: np.ndarray,
                       rows: np.ndarray) -> np.ndarray:
        """Which ``(channel, pc, bank, row)`` tuples have stuck cells."""
        rows = np.asarray(rows, dtype=np.int64)
        if not self.stuck_row_rate:
            return np.zeros(rows.shape, dtype=bool)
        draws = uniform_array_mixed(self.seed, TAG_STUCK,
                                    np.asarray(channels, dtype=np.int64),
                                    np.asarray(pcs, dtype=np.int64),
                                    np.asarray(banks, dtype=np.int64),
                                    rows)
        return draws < self.stuck_row_rate

    def sampler_hits(self, index: int, tag: int, rate: float) -> bool:
        """Scalar probe: does the fault keyed by ``tag`` fire at
        counter ``index``?  (Shared by tests asserting scalar/vector
        agreement.)"""
        if not rate:
            return False
        return uniform_for(self.seed, tag, index) < rate

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable rendering (suitable for ``HBMSIM_FAULTS``)."""
        payload: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, tuple):
                value = list(value)
            elif isinstance(value, Mapping):
                value = dict(value)
            payload[spec.name] = value
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        """Parse and validate a plan payload.

        Every rejection is a :class:`~repro.errors.FaultPlanError`
        naming the offending key *path* (``stall_experiments.fig05``,
        ``crash_once[2]``) and, for unknown fields, the full list of
        valid keys — a chaos spec typo'd in ``HBMSIM_FAULTS`` or a
        service request should explain itself, not stack-trace.
        """
        known = [spec.name for spec in fields(cls)]
        unknown = sorted(set(payload) - set(known))
        if unknown:
            plural = "s" if len(unknown) != 1 else ""
            raise FaultPlanError(
                f"unknown fault plan field{plural}: "
                f"{', '.join(unknown)}; valid fields: "
                f"{', '.join(known)}")
        clean: Dict[str, Any] = {}
        for name, value in payload.items():
            if name == "crash_once":
                clean[name] = cls._parse_crash_once(value)
            elif name == "stall_experiments":
                clean[name] = cls._parse_stall_experiments(value)
            elif name in ("seed", "read_flip_bits",
                          "stuck_bits_per_row"):
                clean[name] = cls._parse_number(name, value,
                                                integral=True)
            else:
                clean[name] = cls._parse_number(name, value)
        return cls(**clean)

    @staticmethod
    def _parse_number(name: str, value: Any,
                      integral: bool = False) -> Any:
        kind = "an integer" if integral else "a number"
        if isinstance(value, bool) \
                or not isinstance(value, (int, float)) \
                or (integral and not isinstance(value, int)):
            raise FaultPlanError(
                f"fault plan field {name}: must be {kind}, got "
                f"{value!r}")
        return value

    @staticmethod
    def _parse_crash_once(value: Any) -> Tuple[str, ...]:
        if isinstance(value, str) \
                or not isinstance(value, (list, tuple)):
            raise FaultPlanError(
                f"fault plan field crash_once: must be a list of "
                f"experiment ids, got {value!r}")
        for position, item in enumerate(value):
            if not isinstance(item, str):
                raise FaultPlanError(
                    f"fault plan field crash_once[{position}]: must "
                    f"be an experiment id string, got {item!r}")
        return tuple(value)

    @staticmethod
    def _parse_stall_experiments(value: Any) -> Dict[str, float]:
        if not isinstance(value, Mapping):
            raise FaultPlanError(
                f"fault plan field stall_experiments: must be an "
                f"object of experiment id -> stall seconds, got "
                f"{value!r}")
        parsed: Dict[str, float] = {}
        for key, seconds in value.items():
            if not isinstance(key, str):
                raise FaultPlanError(
                    f"fault plan field stall_experiments: keys must "
                    f"be experiment id strings, got {key!r}")
            if isinstance(seconds, bool) \
                    or not isinstance(seconds, (int, float)) \
                    or seconds < 0:
                raise FaultPlanError(
                    f"fault plan field stall_experiments.{key}: must "
                    f"be a non-negative number of seconds, got "
                    f"{seconds!r}")
            parsed[key] = float(seconds)
        return parsed

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise FaultPlanError(
                f"HBMSIM_FAULTS is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise FaultPlanError(
                f"HBMSIM_FAULTS must be a JSON object of fault plan "
                f"fields, got {type(payload).__name__}")
        return cls.from_dict(payload)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)


# ----------------------------------------------------------------------
# Active-plan resolution: programmatic install wins over the environment.
# ----------------------------------------------------------------------

_installed: Optional[FaultPlan] = None
#: Tiny parse cache so active_plan() in a command hot path stays cheap.
_env_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def install_plan(plan: FaultPlan) -> None:
    """Activate a plan for this process (overrides ``HBMSIM_FAULTS``)."""
    global _installed
    if not isinstance(plan, FaultPlan):
        raise FaultPlanError(f"expected a FaultPlan, got {type(plan)!r}")
    _installed = plan


def clear_plan() -> None:
    """Deactivate any programmatically installed plan."""
    global _installed
    _installed = None


def active_plan() -> Optional[FaultPlan]:
    """The plan in effect: installed plan, else ``HBMSIM_FAULTS``, else
    ``None`` (no chaos)."""
    global _env_cache
    if _installed is not None:
        return _installed
    spec = os.environ.get(_ENV_PLAN) or None
    cached_spec, cached_plan = _env_cache
    if spec == cached_spec:
        return cached_plan
    plan = FaultPlan.from_json(spec) if spec is not None else None
    _env_cache = (spec, plan)
    return plan
