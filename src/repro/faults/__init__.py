"""Deterministic fault-injection layer (platform chaos).

The paper's campaigns run on real FPGA platforms that glitch: interface
bit errors, lost commands, board hangs.  This package models that layer
so any experiment can run under reproducible chaos:

- :class:`FaultPlan` — seedable chaos configuration
  (:mod:`repro.faults.plan`), activated programmatically via
  :func:`install_plan` or through the ``HBMSIM_FAULTS`` environment
  variable (JSON of plan fields).
- :class:`FaultyStack` — drop-in device wrapper injecting the faults
  (:mod:`repro.faults.injector`); the bender interpreter and host
  session wrap automatically when a plan is active.
- :func:`apply_worker_faults` — worker-level chaos (crashes, stalls)
  consumed by the resilient experiment runner.
"""

from repro.faults.injector import (CRASH_EXIT_CODE, FaultEvent, FaultyStack,
                                   apply_worker_faults, wrap_device)
from repro.faults.plan import (FaultPlan, active_plan, clear_plan,
                               install_plan)

__all__ = [
    "FaultPlan",
    "FaultEvent",
    "FaultyStack",
    "CRASH_EXIT_CODE",
    "active_plan",
    "install_plan",
    "clear_plan",
    "wrap_device",
    "apply_worker_faults",
]
