"""Memory templating: finding exploitable bitflips (Section 8.1).

Practical RowHammer exploits need bitflips at *specific* bit offsets with
a *specific* direction (e.g. flipping a physical-page-number bit of a
page-table entry mapped into the victim row).  Templating is the scan for
rows that deliver such flips.  The paper's second implication: an
attacker should template the most vulnerable channel first — this module
quantifies exactly that speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bender.host import BenderSession
from repro.bender.routines.ber_test import measure_row_ber
from repro.chips.profiles import ChipProfile
from repro.core.patterns import CHECKERED0, DataPattern
from repro.dram.geometry import RowAddress


@dataclass(frozen=True)
class ExploitTemplate:
    """What a specific exploit needs from a bitflip.

    ``bit_offsets`` are the usable positions within a 64-bit word (e.g.
    the PPN bits of a page-table entry); ``word_stride`` spaces the
    words that would hold PTEs when the victim row backs a page table.
    """

    name: str
    bit_offsets: Tuple[int, ...]
    word_stride: int = 1

    def __post_init__(self) -> None:
        if not self.bit_offsets:
            raise ValueError("need at least one usable bit offset")
        if any(not 0 <= b < 64 for b in self.bit_offsets):
            raise ValueError("bit offsets must lie within a 64-bit word")
        if self.word_stride < 1:
            raise ValueError("word_stride must be positive")

    def matches(self, flip_positions: np.ndarray) -> np.ndarray:
        """The subset of row bit positions usable by this exploit."""
        positions = np.asarray(flip_positions, dtype=int)
        words = positions // 64
        offsets = positions % 64
        usable = np.isin(offsets, self.bit_offsets) \
            & (words % self.word_stride == 0)
        return positions[usable]


#: A page-table-entry-style template: flips in the low PPN bits of the
#: words an attacker can steer a page-table entry into (the classic
#: privilege-escalation target).  Deliberately narrow — most rows with
#: bitflips do NOT qualify, which is why templating takes time.
PTE_TEMPLATE = ExploitTemplate("pte-ppn", bit_offsets=tuple(range(12, 19)),
                               word_stride=16)


@dataclass
class TemplatingResult:
    """Outcome of scanning one channel for exploitable rows."""

    channel: int
    rows_scanned: int
    #: (physical row, usable bit positions) for each exploitable row.
    exploitable: List[Tuple[int, np.ndarray]] = field(default_factory=list)
    simulated_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Exploitable rows per scanned row."""
        if self.rows_scanned == 0:
            return 0.0
        return len(self.exploitable) / self.rows_scanned

    @property
    def seconds_per_hit(self) -> Optional[float]:
        """Simulated scan time per exploitable row found."""
        if not self.exploitable:
            return None
        return self.simulated_seconds / len(self.exploitable)


class TemplatingCampaign:
    """Scan rows of one chip for exploit-grade bitflips."""

    def __init__(self, chip: ChipProfile,
                 template: ExploitTemplate = PTE_TEMPLATE,
                 hammer_count: int = 200_000,
                 pattern: DataPattern = CHECKERED0) -> None:
        self.chip = chip
        self.template = template
        self.hammer_count = hammer_count
        self.pattern = pattern

    def scan_channel(self, channel: int, rows: Sequence[int],
                     bank: int = 0,
                     pseudo_channel: int = 0) -> TemplatingResult:
        """Hammer every row in ``rows`` and collect exploitable hits."""
        session = BenderSession(self.chip.make_device(),
                                mapping=self.chip.row_mapping())
        start_ns = session.device.now_ns
        result = TemplatingResult(channel=channel, rows_scanned=len(rows))
        for row in rows:
            victim = RowAddress(channel, pseudo_channel, bank, int(row))
            measurement = measure_row_ber(
                session, victim, self.pattern,
                hammer_count=self.hammer_count)
            usable = self.template.matches(measurement.flip_positions)
            if usable.size:
                result.exploitable.append((int(row), usable))
        result.simulated_seconds = (session.device.now_ns
                                    - start_ns) / 1.0e9
        return result

    def best_channel_first(self, rows_per_channel: int = 64,
                           probe_rows: int = 128) -> List[int]:
        """Channel scan order by decreasing vulnerability (Section 8.1).

        Uses a cheap analytic probe (the attacker equivalent: a coarse
        pre-scan) to order channels by mean WCDP BER.
        """
        from repro.core import analytic

        rows = analytic.stratified_rows(self.chip.geometry.rows,
                                        probe_rows)
        means = {}
        for channel in range(self.chip.geometry.channels):
            bers = analytic.wcdp_ber(self.chip, channel, 0, 0, rows,
                                     sampled=False)
            means[channel] = float(bers["WCDP"].mean())
        return sorted(means, key=means.get, reverse=True)
