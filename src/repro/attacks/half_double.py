"""HalfDouble: turning the TRR defense into an attack primitive.

Section 8.1 (fourth implication): "the victim row refreshes performed by
the TRR mechanism could be used as a near aggressor row activation,
carrying over the read disturbance effects of the far aggressor to the
victim row in a HalfDouble access pattern."

The pattern hammers *far* aggressors at distance 2 from the victim.  Two
disturbance paths reach the victim:

1. the weak direct distance-2 coupling of every far activation,
2. each time TRR detects a far aggressor and refreshes its +-1 neighbors
   — the rows directly adjacent to the victim — the refresh internally
   activates those near rows, delivering full-strength distance-1
   disturbance to the victim.

This module runs the pattern command-accurately with the TRR engine
enabled and disabled, isolating the defense's contribution to the
victim's accumulated disturbance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bender.host import BenderSession
from repro.bender.program import TestProgram
from repro.chips.profiles import ChipProfile
from repro.core.patterns import CHECKERED0, DataPattern
from repro.dram.geometry import RowAddress
from repro.dram.trr import TrrConfig


@dataclass(frozen=True)
class HalfDoubleResult:
    """Victim disturbance with and without the TRR mechanism's help."""

    victim: RowAddress
    windows: int
    far_acts_per_window: int
    #: Accumulated baseline hammer units on the victim.
    units_with_trr: float
    units_without_trr: float
    trr_victim_refreshes: int

    @property
    def trr_contribution(self) -> float:
        """Extra disturbance units the defense delivered to the victim."""
        return self.units_with_trr - self.units_without_trr

    @property
    def amplification(self) -> float:
        """units_with / units_without (> 1 when TRR helps the attacker)."""
        if self.units_without_trr == 0:
            return float("inf")
        return self.units_with_trr / self.units_without_trr


def _run(chip: ChipProfile, victim: RowAddress, windows: int,
         far_acts: int, pattern: DataPattern,
         trr_enabled: bool) -> tuple:
    trr = TrrConfig(enabled=trr_enabled)
    session = BenderSession(chip.make_device(trr_config=trr),
                            mapping=chip.row_mapping())
    geometry = session.device.geometry
    far_rows = [victim.row - 2, victim.row + 2]
    if any(not 0 <= row < geometry.rows for row in far_rows):
        raise ValueError("victim must sit at least 2 rows inside the bank")
    session.write_physical_row(victim, pattern.victim_row())
    fars = [session.logical_of_physical(victim.with_row(row))
            for row in far_rows]
    program = TestProgram("half_double")
    for __ in range(windows):
        # The far rows are the first (and dominant) activations of every
        # window, so the TRR sampler reliably detects them and refreshes
        # their +-1 neighbors — the rows adjacent to the victim.
        for far in fars:
            program.hammer(far, far_acts)
        program.refresh(victim.channel, victim.pseudo_channel)
    session.run(program)
    units = session.device.accumulated_units(
        session.logical_of_physical(victim))
    return units, session.device.stats.trr_victim_refreshes


def half_double_disturbance(chip: ChipProfile,
                            victim: RowAddress,
                            windows: int = 170,
                            far_acts_per_window: int = 8,
                            pattern: DataPattern = CHECKERED0
                            ) -> HalfDoubleResult:
    """Quantify the TRR-assisted disturbance of a HalfDouble pattern.

    Each far aggressor receives ``far_acts_per_window`` activations per
    tREFI window — enough for the count rule (each far row holds half of
    the window's activations) while keeping the direct distance-2
    leakage small, so the TRR-recruited component stands out.  Returns
    the victim's accumulated disturbance with the undocumented TRR
    enabled vs disabled; the difference is pure
    defense-turned-attack-primitive.
    """
    if windows < 1:
        raise ValueError("windows must be at least 1")
    with_trr, refreshes = _run(chip, victim, windows,
                               far_acts_per_window, pattern, True)
    without_trr, __ = _run(chip, victim, windows, far_acts_per_window,
                           pattern, False)
    return HalfDoubleResult(
        victim=victim,
        windows=windows,
        far_acts_per_window=far_acts_per_window,
        units_with_trr=with_trr,
        units_without_trr=without_trr,
        trr_victim_refreshes=refreshes,
    )
