"""Many-sided RowHammer: overflowing the TRR sampler without dummies.

TRRespass showed that in-DRAM trackers with a small capacity lose track
when *many* aggressor pairs hammer concurrently.  The mechanism uncovered
in Section 7 samples only the first 4 distinct rows activated after a
TRR-capable REF — exactly two double-sided pairs.  A third pair cycled at
the back of the round-robin escapes sampling every period: the front
pairs' aggressors *are* the dummy rows, no dedicated filler needed.  The
78-activation window budget then lets the escaping pair spend nearly
half the window on each aggressor — enough to cross HC_first within one
refresh window — while the sacrificial pairs idle at one activation
each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.bender.host import BenderSession
from repro.bender.program import TestProgram
from repro.chips.profiles import ChipProfile
from repro.core import metrics
from repro.core.patterns import CHECKERED0, DataPattern
from repro.dram.geometry import RowAddress


@dataclass
class ManySidedResult:
    """Per-victim bitflips of one many-sided campaign."""

    pair_count: int
    target_acts_per_aggressor: int
    windows: int
    #: victim physical row -> bitflips observed.
    flips: Dict[int, int] = field(default_factory=dict)

    @property
    def victims_flipped(self) -> int:
        """Number of victims with at least one bitflip."""
        return sum(1 for count in self.flips.values() if count > 0)

    @property
    def total_flips(self) -> int:
        """Bitflips across every victim."""
        return sum(self.flips.values())


def run_many_sided(chip: ChipProfile,
                   victim_rows: Sequence[int],
                   sacrificial_acts: int = 1,
                   windows: int = 16410,
                   channel: int = 0, pseudo_channel: int = 0,
                   bank: int = 0,
                   pattern: DataPattern = CHECKERED0) -> ManySidedResult:
    """Run a many-sided campaign against several victims in one bank.

    The pairs at the front of the round-robin are *sacrificial*: they
    fill the TRR sampler with ``sacrificial_acts`` activations per
    aggressor per window, so the final pair can spend the remaining
    budget — ``(78 - (P-1) * 2 * sacrificial_acts) / 2`` activations per
    side per window — undetected.  Victims must be spaced at least 4
    rows apart so aggressor sets do not overlap.
    """
    if len(victim_rows) < 1:
        raise ValueError("need at least one victim")
    if sacrificial_acts < 1:
        raise ValueError("sacrificial_acts must be at least 1")
    spaced = sorted(victim_rows)
    if any(b - a < 4 for a, b in zip(spaced, spaced[1:])):
        raise ValueError("victims must be at least 4 rows apart")
    session = BenderSession(chip.make_device(),
                            mapping=chip.row_mapping())
    device = session.device
    budget = device.timings.activation_budget
    pair_count = len(victim_rows)
    front_budget = (pair_count - 1) * 2 * sacrificial_acts
    target_acts = (budget - front_budget) // 2
    # The count rule fires at half the window total; stay strictly below.
    total = front_budget + 2 * target_acts
    while target_acts > 0 and 2 * target_acts >= total:
        target_acts -= 1
        total = front_budget + 2 * target_acts
    if target_acts < 1:
        raise ValueError(
            f"{pair_count} pairs leave no budget for the target pair")
    victims = [RowAddress(channel, pseudo_channel, bank, row)
               for row in victim_rows]
    for victim in victims:
        session.write_physical_row(victim, pattern.victim_row())
    pair_aggressors: List[List[RowAddress]] = [
        session.aggressors_of(victim) for victim in victims]
    program = TestProgram(f"many_sided[{pair_count}p]")
    for __ in range(windows):
        for index, aggressors in enumerate(pair_aggressors):
            acts = (target_acts if index == pair_count - 1
                    else sacrificial_acts)
            for aggressor in aggressors:
                program.hammer(aggressor, acts)
        program.refresh(channel, pseudo_channel)
    session.run(program)
    result = ManySidedResult(
        pair_count=pair_count,
        target_acts_per_aggressor=target_acts,
        windows=windows,
    )
    expected = pattern.victim_row()
    for victim in victims:
        observed = session.read_physical_row(victim)
        result.flips[victim.row] = metrics.count_bitflips(expected,
                                                          observed)
    return result
