"""Read-disturbance attack library (Section 8.1 made executable).

The paper's implications for future attacks, each implemented against
the simulated chips:

- :mod:`repro.attacks.templating` — memory templating: scan for
  exploitable bitflips, faster on the most vulnerable channel,
- :mod:`repro.attacks.many_sided` — TRRespass-style many-sided patterns
  that overflow the TRR sampler without dedicated dummy rows,
- :mod:`repro.attacks.half_double` — HalfDouble: recruit the TRR
  mechanism's own victim refreshes as near-aggressor activations,
- the dummy-row bypass itself lives in :mod:`repro.core.trr_bypass`
  (it is part of the paper's main contribution).
"""

from repro.attacks.half_double import (HalfDoubleResult,
                                       half_double_disturbance)
from repro.attacks.many_sided import ManySidedResult, run_many_sided
from repro.attacks.templating import (PTE_TEMPLATE, ExploitTemplate,
                                      TemplatingCampaign,
                                      TemplatingResult)

__all__ = [
    "HalfDoubleResult",
    "half_double_disturbance",
    "ManySidedResult",
    "run_many_sided",
    "PTE_TEMPLATE",
    "ExploitTemplate",
    "TemplatingCampaign",
    "TemplatingResult",
]
