"""Tables 1-3: experiment configuration tables.

These tables are methodological (data patterns, tested component counts,
chip labels); reproducing them verifies the configuration of this library
matches the paper's setup exactly.
"""

from __future__ import annotations

from repro.analysis.reporting import render_table
from repro.chips.profiles import CHIP_SPECS
from repro.core.patterns import ALL_PATTERNS
from repro.experiments.base import ExperimentResult

#: Table 2 of the paper: components tested per experiment type.
TABLE2_COMPONENTS = {
    "RowHammer BER": {"rows": 16384, "banks": 1, "pseudo_channels": 1,
                      "channels": 8},
    "RowHammer HCfirst": {"rows": 3072, "banks": 3, "pseudo_channels": 2,
                          "channels": 8},
    "RowPress BER": {"rows": 384, "banks": 1, "pseudo_channels": 1,
                     "channels": 3},
    "RowPress HCfirst": {"rows": 384, "banks": 1, "pseudo_channels": 1,
                         "channels": 3},
}


def run_table1(scale: float = 1.0) -> ExperimentResult:
    """Table 1: data patterns used in the experiments."""
    rows = []
    for pattern in ALL_PATTERNS:
        rows.append([
            pattern.name,
            f"0x{pattern.victim_byte:02X}",
            f"0x{pattern.aggressor_byte:02X}",
            f"0x{pattern.far_byte:02X}",
        ])
    text = render_table(
        ["Pattern", "Victim (V)", "Aggressors (V +- 1)", "V +- [2:8]"],
        rows, title="Table 1: data patterns")
    data = {pattern.name: {
        "victim": pattern.victim_byte,
        "aggressor": pattern.aggressor_byte,
        "far": pattern.far_byte} for pattern in ALL_PATTERNS}
    paper = {
        "Rowstripe0": {"victim": 0x00, "aggressor": 0xFF, "far": 0x00},
        "Rowstripe1": {"victim": 0xFF, "aggressor": 0x00, "far": 0xFF},
        "Checkered0": {"victim": 0x55, "aggressor": 0xAA, "far": 0x55},
        "Checkered1": {"victim": 0xAA, "aggressor": 0x55, "far": 0xAA},
    }
    return ExperimentResult("table1", "Data patterns", text, data, paper)


def run_table2(scale: float = 1.0) -> ExperimentResult:
    """Table 2: tested DRAM components per experiment type."""
    rows = [[name, spec["rows"], spec["banks"], spec["pseudo_channels"],
             spec["channels"]]
            for name, spec in TABLE2_COMPONENTS.items()]
    text = render_table(
        ["Experiment Type", "Rows (Per Bank)", "Banks", "Pseudo Channels",
         "Channels"],
        rows, title="Table 2: tested DRAM components")
    return ExperimentResult("table2", "Tested components", text,
                            dict(TABLE2_COMPONENTS),
                            dict(TABLE2_COMPONENTS))


def run_table3(scale: float = 1.0) -> ExperimentResult:
    """Table 3: chip labels per FPGA board."""
    rows = [[spec.board, spec.label] for spec in CHIP_SPECS]
    text = render_table(["FPGA Board", "Chip Label"], rows,
                        title="Table 3: HBM2 chip labels")
    data = {spec.label: spec.board for spec in CHIP_SPECS}
    paper = {"Chip 0": "Bittware XUPVVH"}
    paper.update({f"Chip {i}": "AMD Xilinx Alveo U50"
                  for i in range(1, 6)})
    return ExperimentResult("table3", "Chip labels", text, data, paper)
